//! The durability tap: a WAL-backed store whose world is mutated
//! through the ordinary [`World`] write API — every mutation is captured
//! by the change stream and group-committed as one WAL frame per batch.
//!
//! Before the unified change pipeline this module mirrored the entire
//! `World` mutation API method-by-method, which meant any mutation that
//! *didn't* go through the mirror — a `ScriptEngine::tick`, an effect
//! batch, a subsystem holding `&mut World` — was silently not durable.
//! Now [`WalStore`] attaches a change-stream tap
//! ([`World::attach_tap_pinned`]): callers mutate [`WalStore::world_mut`]
//! however they like (individual writes, `World::apply_batch`, whole
//! scripted ticks) and [`WalStore::commit`] turns the pending stream
//! segment into **one** WAL frame ([`WalRecord::Batch`] when the
//! segment holds more than one op).
//!
//! ## Two durability modes
//!
//! * **Sync** ([`WalStore::new`]): frame encoding and the durable flush
//!   run on the caller's thread. The knob is `group_commit`: how many
//!   logged ops may sit in the OS buffer before a durable flush. 1 =
//!   synchronous logging (lose nothing committed, pay a flush per
//!   commit); N = group commit (lose at most the unflushed ops).
//! * **Async** ([`WalStore::new_async`]): [`WalStore::commit`] is
//!   *enqueue-and-return*. The pending segment is handed over a bounded
//!   channel to a background **writer thread** that encodes the frame,
//!   appends it, and issues the durable flush per a time/size
//!   group-commit policy ([`FlushPolicy::flush_every`]). Every commit
//!   is assigned a monotone [`CommitSeq`]; the writer publishes a
//!   **durable watermark** as flushes land. Callers ack-track with
//!   [`WalStore::last_enqueued`] / [`WalStore::last_durable`] /
//!   [`WalStore::wait_durable`]. A full queue **blocks** the committer
//!   (backpressure — never drops), and writer-side I/O errors are
//!   surfaced on the next commit/wait instead of being lost. This is
//!   the paper's tick-rate contract: the scripted tick never blocks on
//!   fsync; durability happens underneath, bounded by the unacked
//!   window `last_enqueued - last_durable`.
//!
//! In both modes the durability tap is **pinned**
//! ([`World::attach_tap_pinned`]): a tap-retention policy on the
//! store's world can never evict it, so a lagging flusher backpressures
//! instead of silently un-happening durability. Mutations not yet
//! [`WalStore::commit`]ted are lost by a crash outright — commit is the
//! durability boundary.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use gamedb_core::{Change, CoreError, DurabilityWatermark, Query, TapId, ViewId, World};
use gamedb_metrics::MetricsRegistry;

use crate::backend::{Backend, BackendError};
use crate::metrics::WalMetrics;
use crate::snapshot;
use crate::wal::{decode_log, replay_after_checkpoint, WalRecord};

/// Recover a world from raw durable parts: `(seq, bytes)` snapshots in
/// ascending sequence order and the raw event log. This is the one
/// recovery algorithm — [`WalStore::crash_and_recover`] and the
/// crash-point sweep ([`crate::crashpoint`]) both run it:
///
/// 1. Decode the log into records, stopping cleanly at the first torn
///    or corrupt frame (a torn batch frame drops the whole batch —
///    batch commits are atomic).
/// 2. Take the newest snapshot that decodes; fall back to older ones if
///    a snapshot itself is unreadable.
/// 3. Replay the record tail after that snapshot's checkpoint mark —
///    nothing when the mark is absent (see
///    [`replay_after_checkpoint`]); catalog records rebuild indexes and
///    views along the way.
/// 4. Fold outstanding view changes and reset every changelog, so
///    subscribers re-anchor at the recovery tick instead of receiving
///    pre-crash churn twice.
///
/// Returns `(world, snapshot seq used, records replayed)`.
pub fn recover_from_parts<S: AsRef<[u8]>>(
    snapshots: &[(u64, S)],
    log: &[u8],
) -> Result<(World, u64, usize), StoreError> {
    let (records, _) = decode_log(log);
    let mut last_err: Option<StoreError> = None;
    for (seq, data) in snapshots.iter().rev() {
        let mut world = match snapshot::decode(data.as_ref()) {
            Ok((world, _tick)) => world,
            Err(e) => {
                last_err = Some(StoreError::Backend(BackendError::Io(
                    std::io::Error::other(e.to_string()),
                )));
                continue;
            }
        };
        let replayed = replay_after_checkpoint(&mut world, &records, *seq)?;
        world.refresh_views();
        world.reset_view_changelogs();
        return Ok((world, *seq, replayed));
    }
    Err(last_err.unwrap_or(StoreError::Backend(BackendError::NoSnapshot)))
}

/// A monotone commit sequence number: one per commit boundary handed to
/// the durability pipeline (frames and checkpoint marks both consume
/// one). `CommitSeq(0)` means "nothing committed yet". The durable
/// watermark ([`WalStore::last_durable`]) is the highest `CommitSeq`
/// whose frame has been durably flushed; everything at or below it
/// survives any crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CommitSeq(pub u64);

impl CommitSeq {
    /// The sequence as a bare integer.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for CommitSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The background writer's time/size group-commit policy: flush when
/// `every_ops` logged ops have accumulated **or** when the oldest
/// unflushed frame has waited `max_delay` — whichever comes first. A
/// [`WalStore::wait_durable`] call also hints the writer to flush
/// immediately, so waiters never sit out the full delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Flush once this many ops are buffered in the OS (size trigger).
    pub every_ops: usize,
    /// Flush once the oldest unflushed frame is this old (time trigger).
    pub max_delay: Duration,
}

impl FlushPolicy {
    /// One writer-clock tick of the time trigger (the granularity
    /// `flush_every`'s `max_delay_ticks` is denominated in).
    pub const TICK: Duration = Duration::from_millis(1);

    /// Build a policy: flush every `n_ops` ops or every
    /// `max_delay_ticks` writer-clock ticks (1 tick = 1 ms), whichever
    /// fires first.
    pub fn flush_every(n_ops: usize, max_delay_ticks: u64) -> FlushPolicy {
        FlushPolicy {
            every_ops: n_ops.max(1),
            max_delay: Self::TICK * (max_delay_ticks.max(1) as u32),
        }
    }
}

impl Default for FlushPolicy {
    fn default() -> Self {
        FlushPolicy::flush_every(64, 2)
    }
}

/// One coherent reading of the durability watermark
/// ([`WalStore::watermark_snapshot`]): everything at or below `durable`
/// survives any crash; `lag` commit boundaries would be lost by a crash
/// right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalWatermark {
    /// Highest [`CommitSeq`] handed to the durability pipeline.
    pub enqueued: CommitSeq,
    /// Highest [`CommitSeq`] durably flushed.
    pub durable: CommitSeq,
    /// `enqueued - durable`, computed from one durable read.
    pub lag: u64,
}

/// Store statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WalStats {
    /// WAL frames appended by commits (one per non-empty commit;
    /// checkpoint-mark frames are counted by `checkpoints`, not here).
    pub records: u64,
    /// Mutation ops captured across all committed frames.
    pub ops: u64,
    /// Durable flushes issued **on the caller's thread** (sync-mode
    /// commits, checkpoints, compaction). Async-writer flushes are
    /// counted by [`WalStore::writer_flushes`].
    pub flushes: u64,
    /// Snapshots written.
    pub checkpoints: u64,
}

/// What the background writer is told to do. Commands flow through one
/// FIFO channel, so ordering between frames and checkpoint snapshots is
/// the enqueue order — exactly the order the sync path would have
/// written them in.
enum WriterCmd {
    /// One commit's pending change-stream segment. The writer encodes
    /// it (one frame; `Batch` when multi-op) and appends it. `enqueued`
    /// stamps the commit boundary so the writer can report
    /// enqueue→durable latency once a flush covers the frame.
    Frame {
        seq: u64,
        changes: Vec<Change>,
        enqueued: Instant,
    },
    /// A checkpoint: install the pre-encoded snapshot, append its mark,
    /// and flush durably.
    Checkpoint {
        seq: u64,
        snapshot_seq: u64,
        snapshot: Bytes,
    },
    /// Flush now if anything is buffered (a `wait_durable` hint).
    Flush,
    /// Test hook: block until the gate closes — a deterministically
    /// stalled writer for backpressure regression tests.
    #[cfg(test)]
    Stall(Receiver<()>),
}

/// State the writer publishes back to the store.
#[derive(Debug, Default)]
struct WriterState {
    /// Highest [`CommitSeq`] durably flushed.
    durable: u64,
    /// Durable flushes the writer has issued.
    flushes: u64,
    /// A writer-side failure (I/O error, backend crash). Surfaced on
    /// the next commit/wait; the writer thread has exited.
    error: Option<String>,
}

#[derive(Debug, Default)]
struct WriterShared {
    state: Mutex<WriterState>,
    durable_cv: Condvar,
    /// Crash simulation: when set, the writer exits immediately without
    /// flushing — in-flight frames vanish like any other unflushed
    /// write.
    abort: AtomicBool,
    /// Instrumentation handles, installed by
    /// [`WalStore::attach_metrics`] after the writer is spawned. The
    /// writer reads this only at flush boundaries, never per frame.
    metrics: Mutex<Option<WalMetrics>>,
}

impl WriterShared {
    fn fail(&self, msg: String) {
        let mut st = self.state.lock().expect("writer state poisoned");
        if st.error.is_none() {
            st.error = Some(msg);
        }
        drop(st);
        if let Some(m) = &*self.metrics.lock().expect("writer metrics poisoned") {
            m.writer_errors.inc();
        }
        self.durable_cv.notify_all();
    }
}

/// Flush the backend and publish the durable watermark up to `upto`.
/// Returns false when the writer must stop (I/O error, or the backend
/// crashed at a scheduled fault — claiming durability past a crash
/// would be a lie, so the watermark freezes at the last clean flush).
/// `inflight` holds the (commit seq, enqueue instant) of every frame
/// appended but not yet durable; the covered prefix is drained into the
/// enqueue→durable latency histogram when metrics are attached.
fn writer_flush(
    backend: &Mutex<Backend>,
    shared: &WriterShared,
    upto: u64,
    inflight: &mut Vec<(u64, Instant)>,
) -> bool {
    {
        let mut b = backend.lock().expect("backend poisoned");
        if let Err(e) = b.flush() {
            drop(b);
            shared.fail(format!("writer flush failed: {e}"));
            return false;
        }
        if b.fault_fired() {
            drop(b);
            shared.fail(
                "backend crashed at a scheduled fault: durability stops at the last clean flush"
                    .into(),
            );
            return false;
        }
    }
    let mut st = shared.state.lock().expect("writer state poisoned");
    st.durable = st.durable.max(upto);
    st.flushes += 1;
    drop(st);
    let covered = inflight.iter().take_while(|(seq, _)| *seq <= upto).count();
    if let Some(m) = &*shared.metrics.lock().expect("writer metrics poisoned") {
        m.flushes.inc();
        m.flush_commits.observe(covered as u64);
        for (_, enqueued) in &inflight[..covered] {
            m.enqueue_to_durable_us
                .observe(enqueued.elapsed().as_micros() as u64);
        }
    }
    inflight.drain(..covered);
    shared.durable_cv.notify_all();
    true
}

/// The background writer: drain the command channel, append frames,
/// group-commit per the policy. Exits on clean disconnect (flushing
/// everything buffered first), on abort (flushing nothing — crash
/// semantics), or on a backend failure (error published).
fn writer_loop(
    rx: Receiver<WriterCmd>,
    backend: Arc<Mutex<Backend>>,
    shared: Arc<WriterShared>,
    policy: FlushPolicy,
) {
    let mut buffered_ops = 0usize;
    let mut appended_seq = 0u64;
    let mut deadline: Option<Instant> = None;
    // (commit seq, enqueue instant) of appended-but-not-durable frames,
    // in seq order — drained into the latency histogram at each flush
    let mut inflight: Vec<(u64, Instant)> = Vec::new();
    loop {
        if shared.abort.load(Ordering::SeqCst) {
            return;
        }
        let msg = match deadline {
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    Err(RecvTimeoutError::Timeout)
                } else {
                    rx.recv_timeout(d - now)
                }
            }
            None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
        };
        if shared.abort.load(Ordering::SeqCst) {
            return;
        }
        match msg {
            Ok(WriterCmd::Frame {
                seq,
                changes,
                enqueued,
            }) => {
                // frame encoding happens here, off the mutating thread
                let mut ops: Vec<WalRecord> =
                    changes.iter().map(WalRecord::from_change).collect();
                let record = if ops.len() == 1 {
                    ops.pop().expect("len checked")
                } else {
                    WalRecord::Batch { ops }
                };
                backend
                    .lock()
                    .expect("backend poisoned")
                    .append_log(&record.encode());
                buffered_ops += changes.len();
                appended_seq = seq;
                inflight.push((seq, enqueued));
                if buffered_ops >= policy.every_ops {
                    if !writer_flush(&backend, &shared, appended_seq, &mut inflight) {
                        return;
                    }
                    buffered_ops = 0;
                    deadline = None;
                } else if deadline.is_none() {
                    deadline = Some(Instant::now() + policy.max_delay);
                }
            }
            Ok(WriterCmd::Checkpoint {
                seq,
                snapshot_seq,
                snapshot,
            }) => {
                {
                    let mut b = backend.lock().expect("backend poisoned");
                    b.put_snapshot(snapshot_seq, snapshot);
                    b.append_log(&WalRecord::CheckpointMark { seq: snapshot_seq }.encode());
                }
                appended_seq = seq;
                if !writer_flush(&backend, &shared, appended_seq, &mut inflight) {
                    return;
                }
                buffered_ops = 0;
                deadline = None;
            }
            Ok(WriterCmd::Flush) | Err(RecvTimeoutError::Timeout) => {
                if buffered_ops > 0 {
                    if !writer_flush(&backend, &shared, appended_seq, &mut inflight) {
                        return;
                    }
                    buffered_ops = 0;
                }
                deadline = None;
            }
            #[cfg(test)]
            Ok(WriterCmd::Stall(gate)) => {
                let _ = gate.recv();
            }
            Err(RecvTimeoutError::Disconnected) => {
                // clean shutdown: make everything enqueued durable
                if buffered_ops > 0 {
                    writer_flush(&backend, &shared, appended_seq, &mut inflight);
                }
                return;
            }
        }
    }
}

/// The background half of an async-mode store.
struct AsyncWriter {
    tx: Option<Sender<WriterCmd>>,
    shared: Arc<WriterShared>,
    handle: Option<JoinHandle<()>>,
    policy: FlushPolicy,
    queue_cap: usize,
}

impl AsyncWriter {
    fn spawn(backend: Arc<Mutex<Backend>>, policy: FlushPolicy, queue_cap: usize) -> AsyncWriter {
        let shared = Arc::new(WriterShared::default());
        let (tx, rx) = bounded(queue_cap);
        let shared2 = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("wal-writer".into())
            .spawn(move || writer_loop(rx, backend, shared2, policy))
            .expect("spawn wal writer thread");
        AsyncWriter {
            tx: Some(tx),
            shared,
            handle: Some(handle),
            policy,
            queue_cap,
        }
    }

    /// Surface a stored writer-side failure.
    fn check(&self) -> Result<(), StoreError> {
        let st = self.shared.state.lock().expect("writer state poisoned");
        match &st.error {
            Some(e) => Err(StoreError::Writer(e.clone())),
            None => Ok(()),
        }
    }

    /// Blocking enqueue (backpressure); a dead writer surfaces its
    /// stored error instead.
    fn send(&self, cmd: WriterCmd) -> Result<(), StoreError> {
        let tx = self.tx.as_ref().expect("writer channel open");
        if tx.send(cmd).is_err() {
            self.check()?;
            return Err(StoreError::Writer("wal writer exited".into()));
        }
        Ok(())
    }

    fn durable(&self) -> u64 {
        self.shared.state.lock().expect("writer state poisoned").durable
    }

    /// Frames waiting in the hand-off queue right now.
    fn queue_len(&self) -> usize {
        self.tx.as_ref().map_or(0, Sender::len)
    }

    fn wait_durable(&self, seq: u64) -> Result<(), StoreError> {
        {
            let st = self.shared.state.lock().expect("writer state poisoned");
            if st.durable >= seq {
                return Ok(());
            }
            if let Some(e) = &st.error {
                return Err(StoreError::Writer(e.clone()));
            }
        }
        // hint the writer so the waiter doesn't sit out max_delay
        if let Some(tx) = &self.tx {
            let _ = tx.send(WriterCmd::Flush);
        }
        let mut st = self.shared.state.lock().expect("writer state poisoned");
        loop {
            if st.durable >= seq {
                return Ok(());
            }
            if let Some(e) = &st.error {
                return Err(StoreError::Writer(e.clone()));
            }
            st = self
                .shared
                .durable_cv
                .wait(st)
                .expect("writer state poisoned");
        }
    }

    /// Crash simulation: the writer dies mid-flight. Nothing buffered
    /// is flushed; in-flight queue contents vanish with the thread.
    fn abort_for_crash(&mut self) {
        self.shared.abort.store(true, Ordering::SeqCst);
        self.tx = None; // wake a blocked recv via disconnect
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for AsyncWriter {
    fn drop(&mut self) {
        // clean shutdown: disconnect, let the writer flush the tail,
        // join. (A crashed store already aborted; both are None then.)
        self.tx = None;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Durability mode (and its live state).
enum Mode {
    Sync {
        group_commit: usize,
        /// ops appended to the OS buffer since the last durable flush
        pending: usize,
        /// highest CommitSeq durably flushed
        durable: u64,
    },
    Async(AsyncWriter),
}

/// The mode parameters needed to rebuild a store after recovery.
enum Blueprint {
    Sync(usize),
    Async(FlushPolicy, usize),
}

/// A world whose mutations are redo-logged through a change-stream tap.
pub struct WalStore {
    /// The live world. Mutate it freely through [`WalStore::world_mut`];
    /// the tap captures every write path.
    world: World,
    tap: TapId,
    backend: Arc<Mutex<Backend>>,
    snapshot_seq: u64,
    mode: Mode,
    /// Highest CommitSeq handed to the durability pipeline.
    last_enqueued: u64,
    /// stats
    pub stats: WalStats,
    /// Instrumentation handles ([`WalStore::attach_metrics`]).
    metrics: Option<WalMetrics>,
    /// Sync mode's (commit seq, enqueue instant) of frames appended but
    /// not yet flushed — the caller-thread counterpart of the async
    /// writer's inflight list. Empty in async mode and when no metrics
    /// are attached.
    sync_inflight: Vec<(u64, Instant)>,
}

impl WalStore {
    /// Wrap a world in **sync** mode: attaches the pinned durability
    /// tap and writes the base snapshot immediately. Frame encoding and
    /// flushing run on the caller's thread; `group_commit` ops may sit
    /// in the OS buffer between flushes.
    pub fn new(
        world: World,
        backend: Backend,
        group_commit: usize,
    ) -> Result<Self, BackendError> {
        Self::build(world, backend, Blueprint::Sync(group_commit.max(1)))
    }

    /// Wrap a world in **async** mode: [`WalStore::commit`] becomes
    /// enqueue-and-return, and a background writer thread does frame
    /// encoding, appends, and time/size group commit per `policy`. The
    /// hand-off queue holds at most `queue_frames` commits; a full
    /// queue blocks the committer (backpressure — never drops).
    pub fn new_async(
        world: World,
        backend: Backend,
        policy: FlushPolicy,
        queue_frames: usize,
    ) -> Result<Self, BackendError> {
        Self::build(world, backend, Blueprint::Async(policy, queue_frames.max(1)))
    }

    fn build(mut world: World, mut backend: Backend, blueprint: Blueprint) -> Result<Self, BackendError> {
        let tap = world.attach_tap_pinned();
        backend.put_snapshot(0, snapshot::encode(&world));
        backend.append_log(&WalRecord::CheckpointMark { seq: 0 }.encode());
        backend.flush()?;
        Ok(Self::assemble(
            world,
            tap,
            Arc::new(Mutex::new(backend)),
            0,
            blueprint,
            WalStats::default(),
            None,
        ))
    }

    fn assemble(
        world: World,
        tap: TapId,
        backend: Arc<Mutex<Backend>>,
        snapshot_seq: u64,
        blueprint: Blueprint,
        stats: WalStats,
        metrics: Option<WalMetrics>,
    ) -> WalStore {
        let mode = match blueprint {
            Blueprint::Sync(group_commit) => Mode::Sync {
                group_commit,
                pending: 0,
                durable: 0,
            },
            Blueprint::Async(policy, queue_cap) => {
                let writer = AsyncWriter::spawn(Arc::clone(&backend), policy, queue_cap);
                *writer.shared.metrics.lock().expect("writer metrics poisoned") = metrics.clone();
                Mode::Async(writer)
            }
        };
        WalStore {
            world,
            tap,
            backend,
            snapshot_seq,
            mode,
            last_enqueued: 0,
            stats,
            metrics,
            sync_inflight: Vec::new(),
        }
    }

    /// Attach a metrics registry: commits, flush coalescing, the
    /// enqueue→durable latency histogram, watermark lag, and writer
    /// errors are reported into `registry` from here on (catalog in
    /// ARCHITECTURE.md § Observability). Purely observational. Replaces
    /// any previous attachment; survives
    /// [`WalStore::crash_and_recover`] like the rest of the blueprint.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        let m = WalMetrics::new(registry);
        if let Mode::Async(w) = &self.mode {
            *w.shared.metrics.lock().expect("writer metrics poisoned") = Some(m.clone());
        }
        self.metrics = Some(m);
    }

    /// Detach the registry attached by [`WalStore::attach_metrics`].
    pub fn detach_metrics(&mut self) {
        if let Mode::Async(w) = &self.mode {
            *w.shared.metrics.lock().expect("writer metrics poisoned") = None;
        }
        self.metrics = None;
        self.sync_inflight.clear();
    }

    /// Read access to the world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable world access — the **only** mutation surface the store
    /// needs. Every write path (individual sets, `World::apply_batch`,
    /// effect application, scripted ticks, catalog operations) is
    /// captured by the attached tap; call [`WalStore::commit`] to make
    /// the accumulated mutations durable as one WAL frame. Mutations
    /// never committed are lost by a crash — that is the commit
    /// boundary, not a bypass.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Backend access (write-volume metrics, durable reads). The guard
    /// locks the async writer out of the backend while held — keep it
    /// short-lived.
    pub fn backend(&self) -> MutexGuard<'_, Backend> {
        self.backend.lock().expect("backend poisoned")
    }

    /// Mutable backend access — the crash-point sweep schedules byte-
    /// offset faults on the live backend through this.
    pub fn backend_mut(&mut self) -> MutexGuard<'_, Backend> {
        self.backend.lock().expect("backend poisoned")
    }

    /// True when commits are drained by the background writer.
    pub fn is_async(&self) -> bool {
        matches!(self.mode, Mode::Async(_))
    }

    /// Durable flushes the background writer has issued (0 in sync
    /// mode — see [`WalStats::flushes`] for caller-thread flushes).
    pub fn writer_flushes(&self) -> u64 {
        match &self.mode {
            Mode::Sync { .. } => 0,
            Mode::Async(w) => w.shared.state.lock().expect("writer state poisoned").flushes,
        }
    }

    /// Ops mutated since the last [`WalStore::commit`] (the exposure a
    /// crash right now would lose beyond the unacked window).
    pub fn uncommitted(&self) -> usize {
        self.world.tap_pending(self.tap).len()
    }

    /// The highest [`CommitSeq`] handed to the durability pipeline.
    pub fn last_enqueued(&self) -> CommitSeq {
        CommitSeq(self.last_enqueued)
    }

    /// The durable watermark: the highest [`CommitSeq`] whose frame has
    /// been durably flushed. Everything at or below it survives any
    /// crash; the unacked window `last_enqueued - last_durable` bounds
    /// the loss of a crash right now.
    pub fn last_durable(&self) -> CommitSeq {
        match &self.mode {
            Mode::Sync { durable, .. } => CommitSeq(*durable),
            Mode::Async(w) => CommitSeq(w.durable()),
        }
    }

    /// Commits enqueued but not yet durable (the ack-tracked loss
    /// window a crash right now would take, in commit boundaries).
    pub fn unacked(&self) -> u64 {
        self.last_enqueued - self.last_durable().0
    }

    /// One coherent reading of the durability watermark: the durable
    /// seq is read **once**, so `lag` is exactly `enqueued - durable`
    /// for the values returned — composing [`WalStore::last_enqueued`],
    /// [`WalStore::last_durable`], and [`WalStore::unacked`] yourself
    /// can tear when the background writer flushes between the calls.
    pub fn watermark_snapshot(&self) -> WalWatermark {
        let durable = self.last_durable();
        WalWatermark {
            enqueued: CommitSeq(self.last_enqueued),
            durable,
            lag: self.last_enqueued - durable.0,
        }
    }

    /// Block until commit `seq` is durable. In async mode this hints
    /// the writer to flush immediately (waiters never sit out the group
    /// delay) and surfaces any writer-side failure; in sync mode it
    /// issues the flush inline. A `seq` beyond
    /// [`WalStore::last_enqueued`] is clamped to it — waiting for a
    /// commit that was never enqueued would wait forever.
    pub fn wait_durable(&mut self, seq: CommitSeq) -> Result<(), StoreError> {
        let seq = seq.0.min(self.last_enqueued);
        match &mut self.mode {
            Mode::Sync { pending, durable, .. } => {
                if *durable < seq {
                    self.backend.lock().expect("backend poisoned").flush()?;
                    self.stats.flushes += 1;
                    *pending = 0;
                    *durable = self.last_enqueued;
                    if let Some(m) = &self.metrics {
                        m.flushes.inc();
                        m.flush_commits.observe(self.sync_inflight.len() as u64);
                        for (_, enqueued) in self.sync_inflight.drain(..) {
                            m.enqueue_to_durable_us
                                .observe(enqueued.elapsed().as_micros() as u64);
                        }
                        m.watermark_lag.set(0);
                    }
                }
                Ok(())
            }
            Mode::Async(w) => w.wait_durable(seq),
        }
    }

    /// Commit the pending change-stream segment: every op captured
    /// since the last commit lands in **one** WAL frame (a
    /// [`WalRecord::Batch`] when there is more than one). Sync mode
    /// appends and flushes here, per `group_commit`; async mode assigns
    /// a [`CommitSeq`], enqueues the segment for the background writer
    /// (blocking only when the bounded queue is full), and returns —
    /// the tick thread never waits on fsync. Returns the number of ops
    /// committed (0 = nothing pending).
    pub fn commit(&mut self) -> Result<usize, StoreError> {
        if self.world.tap_evicted(self.tap) {
            // unreachable with a pinned tap; kept as a loud invariant —
            // an evicted durability tap means records were dropped
            // unlogged, and that must never look like success.
            return Err(StoreError::DurabilityTapEvicted);
        }
        let n = match &mut self.mode {
            Mode::Sync {
                group_commit,
                pending,
                durable,
            } => {
                let mut ops: Vec<WalRecord> = self
                    .world
                    .tap_pending(self.tap)
                    .iter()
                    .map(WalRecord::from_change)
                    .collect();
                if ops.is_empty() {
                    return Ok(0);
                }
                self.world.ack_tap(self.tap);
                let n = ops.len();
                let record = if n == 1 {
                    ops.pop().expect("len checked")
                } else {
                    WalRecord::Batch { ops }
                };
                self.last_enqueued += 1;
                if self.metrics.is_some() {
                    self.sync_inflight.push((self.last_enqueued, Instant::now()));
                }
                let mut b = self.backend.lock().expect("backend poisoned");
                b.append_log(&record.encode());
                *pending += n;
                if *pending >= *group_commit {
                    b.flush()?;
                    drop(b);
                    self.stats.flushes += 1;
                    *pending = 0;
                    *durable = self.last_enqueued;
                    if let Some(m) = &self.metrics {
                        m.flushes.inc();
                        m.flush_commits.observe(self.sync_inflight.len() as u64);
                        for (_, enqueued) in self.sync_inflight.drain(..) {
                            m.enqueue_to_durable_us
                                .observe(enqueued.elapsed().as_micros() as u64);
                        }
                    }
                }
                n
            }
            Mode::Async(w) => {
                // surface writer-side failures from earlier flushes
                // BEFORE acking the tap, so no segment is consumed by a
                // dead pipeline
                w.check()?;
                let pending = self.world.tap_pending(self.tap);
                if pending.is_empty() {
                    return Ok(0);
                }
                let changes: Vec<Change> = pending.to_vec();
                self.world.ack_tap(self.tap);
                let n = changes.len();
                self.last_enqueued += 1;
                w.send(WriterCmd::Frame {
                    seq: self.last_enqueued,
                    changes,
                    enqueued: Instant::now(),
                })?;
                n
            }
        };
        self.stats.records += 1;
        self.stats.ops += n as u64;
        if let Some(m) = &self.metrics {
            m.commits.inc();
            m.commit_ops.add(n as u64);
            m.commit_batch_ops.observe(n as u64);
            let durable = match &self.mode {
                Mode::Sync { durable, .. } => *durable,
                Mode::Async(w) => w.durable(),
            };
            m.watermark_lag
                .set(self.last_enqueued.saturating_sub(durable) as i64);
            if let Mode::Async(w) = &self.mode {
                m.queue_depth.set(w.queue_len() as i64);
            }
        }
        Ok(n)
    }

    /// The subscriber attach point: adopt the live view already
    /// maintaining `query` (first boot registered it, or recovery
    /// re-materialized it), or register — and commit — a fresh one.
    /// Subscribers that take a query (threshold watchers, auditors,
    /// interest bubbles) route their registration through this so the
    /// subscription itself is durable without registering duplicates
    /// after a restart.
    pub fn ensure_view(&mut self, query: Query) -> Result<ViewId, StoreError> {
        match self.world.find_view(&query) {
            Some(id) => Ok(id),
            None => {
                let id = self.world.register_view(query);
                self.commit()?;
                Ok(id)
            }
        }
    }

    /// Write a checkpoint: pending mutations are committed first, then
    /// snapshot + mark. The log logically truncates at the mark (replay
    /// skips everything before it). Checkpoints are durably synchronous
    /// in both modes — the call returns only once the snapshot and its
    /// mark are on disk (in async mode the snapshot is encoded on the
    /// caller's thread, ordered through the writer's queue behind every
    /// enqueued frame, and waited on).
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        self.commit()?;
        self.snapshot_seq += 1;
        let snap = snapshot::encode(&self.world);
        self.last_enqueued += 1;
        let seq = self.last_enqueued;
        match &mut self.mode {
            Mode::Sync { pending, durable, .. } => {
                let mut b = self.backend.lock().expect("backend poisoned");
                b.put_snapshot(self.snapshot_seq, snap);
                b.append_log(
                    &WalRecord::CheckpointMark {
                        seq: self.snapshot_seq,
                    }
                    .encode(),
                );
                b.flush()?;
                drop(b);
                self.stats.flushes += 1;
                *pending = 0;
                *durable = seq;
                self.stats.checkpoints += 1;
                if let Some(m) = &self.metrics {
                    m.checkpoints.inc();
                    m.flushes.inc();
                    m.flush_commits.observe(self.sync_inflight.len() as u64);
                    for (_, enqueued) in self.sync_inflight.drain(..) {
                        m.enqueue_to_durable_us
                            .observe(enqueued.elapsed().as_micros() as u64);
                    }
                    m.watermark_lag.set(0);
                }
                Ok(())
            }
            Mode::Async(w) => {
                w.send(WriterCmd::Checkpoint {
                    seq,
                    snapshot_seq: self.snapshot_seq,
                    snapshot: snap,
                })?;
                self.stats.checkpoints += 1;
                if let Some(m) = &self.metrics {
                    m.checkpoints.inc();
                }
                w.wait_durable(seq)
            }
        }
    }

    /// Compact the event log: drop every record before the last
    /// checkpoint mark (replay never looks at them) and atomically
    /// rewrite the log as just that tail. Returns (bytes before, bytes
    /// after). The writer is quiesced first ([`WalStore::wait_durable`]
    /// of everything enqueued), so compaction never races an in-flight
    /// append. Without compaction the log grows without bound — this is
    /// the maintenance task a live MMO schedules alongside checkpoints.
    pub fn compact_log(&mut self) -> Result<(u64, u64), StoreError> {
        self.commit()?;
        self.wait_durable(CommitSeq(self.last_enqueued))?;
        let mut b = self.backend.lock().expect("backend poisoned");
        let before = b.log_len()?;
        let log = b.read_log()?;
        let (records, _) = decode_log(&log);
        let cut = records
            .iter()
            .rposition(
                |r| matches!(r, WalRecord::CheckpointMark { seq } if *seq == self.snapshot_seq),
            )
            .unwrap_or(0); // keep the mark itself: recovery anchors on it
        let mut tail = Vec::new();
        for r in &records[cut..] {
            tail.extend_from_slice(&r.encode());
        }
        b.replace_log(&tail);
        b.flush()?;
        let after = b.log_len()?;
        drop(b);
        self.stats.flushes += 1;
        Ok((before, after))
    }

    /// Crash (unflushed writes, in-flight writer frames, and
    /// uncommitted mutations all vanish) then recover: load the latest
    /// decodable durable snapshot — catalog included — and replay the
    /// durable log tail through [`recover_from_parts`]. In async mode
    /// the writer thread is **aborted at whatever it was doing** (no
    /// farewell flush — that is what a crash means) and a fresh writer
    /// is spawned for the recovered store. The recovered world carries
    /// its indexes, its standing views at their original slots
    /// (pre-crash [`ViewId`] handles keep resolving), its lineage, and
    /// its tick counter; view changelogs restart empty at the recovery
    /// tick, a fresh pinned durability tap is attached, and commit
    /// sequences restart at 0. Returns the recovered store and the
    /// number of records replayed.
    pub fn crash_and_recover(mut self) -> Result<(WalStore, usize), StoreError> {
        let blueprint = match &mut self.mode {
            Mode::Sync { group_commit, .. } => Blueprint::Sync(*group_commit),
            Mode::Async(w) => {
                let bp = Blueprint::Async(w.policy, w.queue_cap);
                w.abort_for_crash();
                bp
            }
        };
        let backend = Arc::clone(&self.backend);
        let stats = self.stats;
        let metrics = self.metrics.clone();
        let snapshot_parts;
        let log;
        {
            let mut b = backend.lock().expect("backend poisoned");
            b.crash();
            let mut snaps = Vec::new();
            for seq in b.snapshot_seqs()? {
                snaps.push((seq, b.read_snapshot(seq)?));
            }
            snapshot_parts = snaps;
            log = b.read_log()?;
        }
        drop(self); // old writer (if any) is already down; release the world
        let (mut world, seq, replayed) = recover_from_parts(&snapshot_parts, &log)?;
        let tap = world.attach_tap_pinned();
        Ok((
            Self::assemble(world, tap, backend, seq, blueprint, stats, metrics),
            replayed,
        ))
    }

    /// Deterministically stall the background writer until the returned
    /// gate is dropped — the backpressure regression hook.
    #[cfg(test)]
    fn stall_writer_for_test(&mut self) -> Sender<()> {
        let (gate_tx, gate_rx) = bounded(1);
        match &self.mode {
            Mode::Async(w) => w.send(WriterCmd::Stall(gate_rx)).expect("writer alive"),
            Mode::Sync { .. } => panic!("stall_writer_for_test requires async mode"),
        }
        gate_tx
    }
}

/// The ack-tracking surface consumers outside `persist` gate on — a
/// Strict-level replicator refuses to ship state past the durable
/// watermark (`gamedb-sync`'s `Replicator::sync_stream_durable`).
impl DurabilityWatermark for WalStore {
    fn enqueued_seq(&self) -> u64 {
        self.last_enqueued
    }

    fn durable_seq(&self) -> u64 {
        self.last_durable().0
    }
}

/// Errors from the WAL store.
#[derive(Debug)]
pub enum StoreError {
    Core(CoreError),
    Backend(BackendError),
    /// The world's tap-retention policy evicted the durability tap:
    /// mutations were dropped unlogged, so commits can no longer claim
    /// durability. Unreachable since the durability tap became pinned
    /// ([`World::attach_tap_pinned`]); kept as a loud invariant.
    DurabilityTapEvicted,
    /// The background writer failed (I/O error or backend crash) on an
    /// earlier flush; the message names the original failure. Surfaced
    /// on the first commit/wait after the failure, never lost.
    Writer(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Core(e) => write!(f, "world: {e}"),
            StoreError::Backend(e) => write!(f, "backend: {e}"),
            StoreError::DurabilityTapEvicted => write!(
                f,
                "durability tap evicted by the tap-retention policy: \
                 mutations were dropped unlogged"
            ),
            StoreError::Writer(msg) => write!(f, "wal writer: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CoreError> for StoreError {
    fn from(e: CoreError) -> Self {
        StoreError::Core(e)
    }
}

impl From<BackendError> for StoreError {
    fn from(e: BackendError) -> Self {
        StoreError::Backend(e)
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::temp_dir;
    use gamedb_content::{CmpOp, Value, ValueType};
    use gamedb_core::{Effect, EffectBuffer, IndexKind, TickExecutor, WriteBatch};
    use gamedb_spatial::Vec2;

    fn fresh(group_commit: usize, label: &str) -> WalStore {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let backend = Backend::open(temp_dir(label)).unwrap();
        WalStore::new(w, backend, group_commit).unwrap()
    }

    #[test]
    fn compaction_shrinks_log_and_preserves_recovery() {
        let mut s = fresh(1, "wal-compact");
        let e = s.world_mut().spawn_at(Vec2::new(0.0, 0.0));
        s.commit().unwrap();
        for i in 0..200 {
            s.world_mut().set(e, "hp", Value::Float(i as f32)).unwrap();
            s.commit().unwrap();
        }
        s.checkpoint().unwrap();
        // post-checkpoint writes must survive compaction
        s.world_mut().set(e, "hp", Value::Float(777.0)).unwrap();
        s.commit().unwrap();
        let (before, after) = s.compact_log().unwrap();
        assert!(after < before / 4, "before={before} after={after}");
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(777.0));
        assert_eq!(replayed, 1, "only the post-checkpoint record replays");
    }

    /// The regression the pinned tap closes: a tap-retention policy on
    /// the store's own world used to evict the durability tap under
    /// churn, turning every later commit into an error (and before
    /// that, into silent data loss). The durability tap is now pinned
    /// ([`World::attach_tap_pinned`]) — retention skips it, the window
    /// simply outgrows the limit, and every op still reaches the log.
    #[test]
    fn pinned_durability_tap_survives_retention_pressure() {
        let mut s = fresh(1, "wal-pinned");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.commit().unwrap();
        // a retention window far smaller than the churn burst
        s.world_mut().set_tap_retention(Some(8));
        for i in 0..64 {
            s.world_mut().set(e, "hp", Value::Float(i as f32)).unwrap();
        }
        assert_eq!(s.uncommitted(), 64, "pinned tap kept every record");
        assert_eq!(s.commit().unwrap(), 64);
        s.checkpoint().unwrap();
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(63.0));
    }

    #[test]
    fn compaction_without_checkpoint_is_safe() {
        let mut s = fresh(1, "wal-compact2");
        let e = s.world_mut().spawn_at(Vec2::new(0.0, 0.0));
        s.world_mut().set(e, "hp", Value::Float(5.0)).unwrap();
        s.commit().unwrap();
        let (before, after) = s.compact_log().unwrap();
        assert_eq!(before, after, "nothing before the base mark to drop");
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(5.0));
    }

    #[test]
    fn repeated_compaction_is_idempotent() {
        let mut s = fresh(1, "wal-compact3");
        let e = s.world_mut().spawn_at(Vec2::new(0.0, 0.0));
        for i in 0..50 {
            s.world_mut().set(e, "hp", Value::Float(i as f32)).unwrap();
            s.commit().unwrap();
        }
        s.checkpoint().unwrap();
        let (_, first) = s.compact_log().unwrap();
        let (before2, second) = s.compact_log().unwrap();
        assert_eq!(first, before2);
        assert_eq!(first, second);
    }

    #[test]
    fn synchronous_logging_loses_nothing() {
        let mut s = fresh(1, "wal-sync");
        let e = s.world_mut().spawn_at(Vec2::new(1.0, 2.0));
        s.commit().unwrap();
        s.world_mut().set(e, "hp", Value::Float(33.0)).unwrap();
        s.commit().unwrap();
        s.world_mut().set_pos(e, Vec2::new(5.0, 5.0)).unwrap();
        s.commit().unwrap();
        let live_rows = s.world().rows();
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().rows(), live_rows);
        assert_eq!(replayed, 3, "one frame per commit");
    }

    #[test]
    fn uncommitted_mutations_are_lost_committed_ones_are_not() {
        let mut s = fresh(1, "wal-uncommitted");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.world_mut().set(e, "hp", Value::Float(1.0)).unwrap();
        assert_eq!(s.uncommitted(), 3, "spawn + pos + hp captured");
        s.commit().unwrap();
        assert_eq!(s.uncommitted(), 0);
        // mutated but never committed: the crash eats it
        s.world_mut().set(e, "hp", Value::Float(99.0)).unwrap();
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(1.0));
    }

    #[test]
    fn group_commit_bounds_loss() {
        let mut s = fresh(10, "wal-group");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.commit().unwrap(); // 2 ops buffered (spawn + pos)
        // 8 more single-op commits => exactly one flush of 10 fires
        for i in 0..8 {
            s.world_mut().set(e, "hp", Value::Float(i as f32)).unwrap();
            s.commit().unwrap();
        }
        // 3 committed-but-unflushed frames follow
        for i in 100..103 {
            s.world_mut().set(e, "hp", Value::Float(i as f32)).unwrap();
            s.commit().unwrap();
        }
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(replayed, 9, "only the flushed group survives");
        assert_eq!(
            recovered.world().get_f32(e, "hp"),
            Some(7.0),
            "last durable write wins; the 3 unflushed are lost"
        );
    }

    #[test]
    fn batch_commit_is_one_frame_and_atomic() {
        let mut s = fresh(1, "wal-batchframe");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.commit().unwrap();
        let frames_before = s.stats.records;
        // a multi-op mutation burst commits as one frame
        let mut batch = WriteBatch::new();
        for i in 0..10 {
            batch.set(e, "hp", Value::Float(i as f32));
        }
        s.world_mut().apply_batch(batch).unwrap();
        let n = s.commit().unwrap();
        assert_eq!(n, 10);
        assert_eq!(s.stats.records, frames_before + 1, "one frame per batch");
        // a torn batch frame drops the whole batch, not half of it
        let log = s.backend().read_log().unwrap();
        let (full, _) = decode_log(&log);
        let (torn, _) = decode_log(&log[..log.len() - 1]);
        assert_eq!(torn.len(), full.len() - 1, "batch frames are atomic");
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(9.0));
    }

    /// The durability hole the pipeline closes: an effect batch applied
    /// straight to `world_mut()` — the path the old mirrored API could
    /// not see — survives crash and recovery bit-identically.
    #[test]
    fn effect_batches_through_world_mut_are_durable() {
        let mut s = fresh(1, "wal-effects");
        let a = s.world_mut().spawn_at(Vec2::ZERO);
        let b = s.world_mut().spawn_at(Vec2::new(1.0, 0.0));
        s.world_mut().set(a, "hp", Value::Float(50.0)).unwrap();
        s.world_mut().set(b, "hp", Value::Float(50.0)).unwrap();
        s.commit().unwrap();

        let mut buf = EffectBuffer::new();
        buf.push(a, "hp", Effect::Add(-10.0));
        buf.push(b, "hp", Effect::Add(5.0));
        buf.push(b, "pos", Effect::AddVec2(2.0, 0.0));
        buf.apply(s.world_mut()).unwrap();
        s.commit().unwrap();

        let live = s.world().rows();
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().rows(), live);
        assert_eq!(recovered.world().get_f32(a, "hp"), Some(40.0));
    }

    /// A whole executor tick against the store's world — systems,
    /// merged effects, tick bump — is durable with one commit.
    #[test]
    fn executor_ticks_through_world_mut_are_durable() {
        let mut s = fresh(1, "wal-tick");
        for i in 0..4 {
            let e = s.world_mut().spawn_at(Vec2::new(i as f32, 0.0));
            s.world_mut().set(e, "hp", Value::Float(100.0)).unwrap();
        }
        s.commit().unwrap();
        let drain: &gamedb_core::System<'_> = &|id, _w, buf: &mut EffectBuffer| {
            buf.push(id, "hp", Effect::Add(-7.0));
        };
        for _ in 0..3 {
            TickExecutor::sequential()
                .run_tick(s.world_mut(), &[drain])
                .unwrap();
            s.commit().unwrap();
        }
        let live = s.world().rows();
        let tick = s.world().tick();
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().rows(), live);
        assert_eq!(recovered.world().tick(), tick, "tick counter recovers");
    }

    #[test]
    fn checkpoint_truncates_replay() {
        let mut s = fresh(1, "wal-cp");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.commit().unwrap();
        for i in 0..50 {
            s.world_mut().set(e, "hp", Value::Float(i as f32)).unwrap();
            s.commit().unwrap();
        }
        s.checkpoint().unwrap();
        s.world_mut().set(e, "hp", Value::Float(999.0)).unwrap();
        s.commit().unwrap();
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(replayed, 1, "only the post-checkpoint tail replays");
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(999.0));
    }

    #[test]
    fn checkpoint_commits_pending_mutations_first() {
        let mut s = fresh(1, "wal-cp-pending");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.world_mut().set(e, "hp", Value::Float(41.0)).unwrap();
        // no explicit commit: checkpoint must not strand these
        s.checkpoint().unwrap();
        assert_eq!(s.uncommitted(), 0);
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(41.0));
    }

    #[test]
    fn despawn_survives_recovery() {
        let mut s = fresh(1, "wal-despawn");
        let a = s.world_mut().spawn_at(Vec2::ZERO);
        let b = s.world_mut().spawn_at(Vec2::new(1.0, 0.0));
        s.world_mut().despawn(a);
        s.commit().unwrap();
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert!(!recovered.world().is_live(a));
        assert!(recovered.world().is_live(b));
        assert_eq!(recovered.world().len(), 1);
    }

    #[test]
    fn unpositioned_spawns_are_durable() {
        // spawn() (no position) was unloggable under the mirrored API
        let mut s = fresh(1, "wal-flag");
        let flag = s.world_mut().spawn();
        s.world_mut()
            .define_component("armed", ValueType::Bool)
            .unwrap();
        s.world_mut().set(flag, "armed", Value::Bool(true)).unwrap();
        s.commit().unwrap();
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert!(recovered.world().is_live(flag));
        assert_eq!(recovered.world().pos(flag), None);
        assert_eq!(recovered.world().get_bool(flag, "armed"), Some(true));
    }

    #[test]
    fn recovery_then_continue_then_recover_again() {
        let mut s = fresh(1, "wal-twice");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.world_mut().set(e, "hp", Value::Float(1.0)).unwrap();
        s.commit().unwrap();
        let (mut s, _) = s.crash_and_recover().unwrap();
        s.world_mut().set(e, "hp", Value::Float(2.0)).unwrap();
        let f = s.world_mut().spawn_at(Vec2::new(9.0, 9.0));
        s.commit().unwrap();
        let (s, _) = s.crash_and_recover().unwrap();
        assert_eq!(s.world().get_f32(e, "hp"), Some(2.0));
        assert!(s.world().is_live(f));
    }

    #[test]
    fn catalog_operations_survive_recovery() {
        let mut s = fresh(1, "wal-catalog");
        let a = s.world_mut().spawn_at(Vec2::ZERO);
        let b = s.world_mut().spawn_at(Vec2::new(50.0, 0.0));
        s.world_mut().set(a, "hp", Value::Float(5.0)).unwrap();
        s.world_mut().set(b, "hp", Value::Float(80.0)).unwrap();
        s.world_mut().create_index("hp", IndexKind::Sorted).unwrap();
        let wounded = s
            .world_mut()
            .register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(50.0)));
        let near = s
            .world_mut()
            .register_view(Query::select().within(Vec2::ZERO, 10.0));
        s.world_mut()
            .retarget_view(near, Vec2::new(50.0, 0.0), 10.0);
        let t = s.world().tick();
        s.world_mut().advance_tick_to(t + 1);
        s.world_mut().remove_component(a, "hp").unwrap();
        let t = s.world().tick();
        s.world_mut().advance_tick_to(t + 1);
        s.commit().unwrap();

        let (recovered, _) = s.crash_and_recover().unwrap();
        let w = recovered.world();
        assert_eq!(w.tick(), 2, "tick counter recovers");
        // pre-crash handles resolve against the recovered world
        assert!(w.has_view(wounded));
        assert!(w.has_view(near));
        assert_eq!(w.view_rows(wounded), w.view_query(wounded).run_scan(w));
        assert!(w.view_rows(wounded).is_empty(), "a lost its hp component");
        assert_eq!(w.view_rows(near), &[b], "retarget survived");
        assert!(
            w.view_changelog(wounded).is_empty() && w.view_changelog(near).is_empty(),
            "changelogs re-anchor at the recovery tick"
        );
        // the rebuilt index answers probes exactly
        let mut out = vec![];
        assert!(w.index_probe("hp", CmpOp::Ge, &Value::Float(0.0), &mut out));
        assert_eq!(out, vec![b]);
    }

    #[test]
    fn dropped_catalog_entries_stay_dropped_after_recovery() {
        let mut s = fresh(1, "wal-catalog-drop");
        s.world_mut().create_index("hp", IndexKind::Hash).unwrap();
        let v = s.world_mut().register_view(Query::select());
        s.checkpoint().unwrap();
        s.world_mut().drop_view(v);
        s.world_mut().drop_index("hp");
        s.commit().unwrap();
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(replayed, 1, "both drops share one batch frame");
        let w = recovered.world();
        assert!(!w.has_view(v), "dropped view stays dropped");
        assert!(w.index_on("hp").is_none(), "dropped index stays dropped");
        // the burned slot is not reused
        let cat = w.export_catalog();
        assert_eq!(cat.view_slots, 1);
        assert!(cat.views.is_empty());
    }

    #[test]
    fn catalog_in_snapshot_and_in_tail_compose() {
        let mut s = fresh(1, "wal-catalog-compose");
        let a = s.world_mut().spawn_at(Vec2::ZERO);
        s.world_mut().set(a, "hp", Value::Float(5.0)).unwrap();
        // index before the checkpoint (arrives via snapshot catalog)
        s.world_mut().create_index("hp", IndexKind::Sorted).unwrap();
        s.checkpoint().unwrap();
        // view after the checkpoint (arrives via WAL replay)
        let v = s
            .world_mut()
            .register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(50.0)));
        let b = s.world_mut().spawn_at(Vec2::ZERO);
        s.world_mut().set(b, "hp", Value::Float(1.0)).unwrap();
        s.commit().unwrap();
        let (recovered, _) = s.crash_and_recover().unwrap();
        let w = recovered.world();
        assert_eq!(
            w.indexed_components().collect::<Vec<_>>(),
            vec![("hp", IndexKind::Sorted)]
        );
        assert_eq!(w.view_rows(v), &[a, b]);
        assert_eq!(w.view_rows(v), w.view_query(v).run_scan(w));
    }

    #[test]
    fn recovery_tolerates_a_corrupt_latest_snapshot() {
        use std::io::Write;
        let mut s = fresh(1, "wal-snap-fallback");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.world_mut().set(e, "hp", Value::Float(3.0)).unwrap();
        s.checkpoint().unwrap();
        s.world_mut().set(e, "hp", Value::Float(9.0)).unwrap();
        s.commit().unwrap();
        // scribble over snapshot 1: recovery must fall back to snapshot 0
        // and replay the full tail (whose mark-1 record is a no-op)
        let path = s.backend().dir().join("snapshot-1.db");
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(b"scribble").unwrap();
        drop(f);
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(9.0));
    }

    #[test]
    fn stats_track_activity() {
        let mut s = fresh(2, "wal-stats");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.commit().unwrap(); // 1 frame, 2 ops
        s.world_mut().set(e, "hp", Value::Float(1.0)).unwrap();
        s.commit().unwrap();
        s.world_mut().set(e, "hp", Value::Float(2.0)).unwrap();
        s.commit().unwrap();
        s.checkpoint().unwrap();
        assert_eq!(s.stats.records, 3);
        assert_eq!(s.stats.ops, 4);
        assert!(s.stats.flushes >= 2);
        assert_eq!(s.stats.checkpoints, 1);
    }

    // ---- async writer mode ----

    fn fresh_async(policy: FlushPolicy, queue: usize, label: &str) -> WalStore {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let backend = Backend::open(temp_dir(label)).unwrap();
        WalStore::new_async(w, backend, policy, queue).unwrap()
    }

    #[test]
    fn async_commit_is_enqueue_and_watermark_catches_up() {
        let mut s = fresh_async(FlushPolicy::flush_every(512, 1000), 64, "wal-async-basic");
        assert!(s.is_async());
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.commit().unwrap();
        for i in 0..20 {
            s.world_mut().set(e, "hp", Value::Float(i as f32)).unwrap();
            s.commit().unwrap();
        }
        assert_eq!(s.last_enqueued(), CommitSeq(21));
        assert!(s.last_durable() <= s.last_enqueued());
        s.wait_durable(s.last_enqueued()).unwrap();
        assert_eq!(s.last_durable(), CommitSeq(21));
        assert_eq!(s.unacked(), 0);
        assert!(s.writer_flushes() >= 1);
    }

    /// The headline contract: `wait_durable(last_enqueued())` then
    /// crash-and-recover loses **zero** ops, bit-identically.
    #[test]
    fn wait_durable_then_crash_loses_zero_ops() {
        let mut s = fresh_async(FlushPolicy::flush_every(512, 1000), 8, "wal-async-zeroloss");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.commit().unwrap();
        for i in 0..100 {
            s.world_mut().set(e, "hp", Value::Float(i as f32)).unwrap();
            s.commit().unwrap();
        }
        s.wait_durable(s.last_enqueued()).unwrap();
        let live = s.world().rows();
        let tick = s.world().tick();
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(replayed, 101, "every acked frame recovers");
        assert_eq!(recovered.world().rows(), live);
        assert_eq!(recovered.world().tick(), tick);
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(99.0));
        assert!(recovered.is_async(), "recovered store keeps its mode");
    }

    /// Without a wait, a crash loses at most the unacked window — and
    /// never an op at or below the published durable watermark.
    #[test]
    fn async_crash_loses_at_most_the_unacked_window() {
        let mut s = fresh_async(FlushPolicy::flush_every(4, 1000), 64, "wal-async-window");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.commit().unwrap();
        for i in 0..50 {
            s.world_mut().set(e, "hp", Value::Float(i as f32)).unwrap();
            s.commit().unwrap();
        }
        let acked = s.last_durable().as_u64();
        let (_recovered, replayed) = s.crash_and_recover().unwrap();
        assert!(
            replayed as u64 >= acked,
            "acked {acked} commits, only {replayed} recovered"
        );
        assert!(replayed <= 51, "can't recover more than was committed");
    }

    /// A full queue blocks the committer (backpressure) — and while the
    /// writer is stalled, a tap-retention policy on the store's world
    /// must not evict the pinned durability tap.
    #[test]
    fn stalled_writer_backpressures_commit_and_never_evicts_the_tap() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let mut s = fresh_async(FlushPolicy::flush_every(1, 1), 2, "wal-async-stall");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.commit().unwrap();
        s.wait_durable(s.last_enqueued()).unwrap();
        s.world_mut().set_tap_retention(Some(4));
        let gate = s.stall_writer_for_test();
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let store = &mut s;
            let done_ref = &done;
            let worker = scope.spawn(move || {
                for i in 0..8 {
                    store
                        .world_mut()
                        .set(e, "hp", Value::Float(i as f32))
                        .unwrap();
                    store.commit().unwrap();
                }
                done_ref.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(50));
            // 8 commits into a queue of 2 behind a stalled writer
            // cannot all have completed (conservative: a false pass is
            // possible under extreme scheduling, a false fail is not)
            assert!(
                !done.load(Ordering::SeqCst),
                "commit must block on a full writer queue, not drop"
            );
            drop(gate); // un-stall: the queue drains
            worker.join().unwrap();
        });
        s.wait_durable(s.last_enqueued()).unwrap();
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(
            recovered.world().get_f32(e, "hp"),
            Some(7.0),
            "no op was dropped by backpressure or tap retention"
        );
    }

    /// A writer-side backend fault freezes the watermark at the last
    /// clean flush and surfaces on wait and on the next commit — never
    /// silently lost.
    #[test]
    fn writer_fault_surfaces_on_wait_and_next_commit() {
        use crate::backend::FaultKind;
        let mut s = fresh_async(FlushPolicy::flush_every(1, 1000), 8, "wal-async-err");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.commit().unwrap();
        s.wait_durable(s.last_enqueued()).unwrap();
        let acked = s.last_durable();
        let len = s.backend().log_len().unwrap();
        s.backend_mut().schedule_log_fault(len, FaultKind::Torn);
        s.world_mut().set(e, "hp", Value::Float(1.0)).unwrap();
        s.commit().unwrap();
        assert!(matches!(
            s.wait_durable(s.last_enqueued()),
            Err(StoreError::Writer(_))
        ));
        assert_eq!(s.last_durable(), acked, "watermark never claims past a fault");
        s.world_mut().set(e, "hp", Value::Float(2.0)).unwrap();
        assert!(matches!(s.commit(), Err(StoreError::Writer(_))));
        assert_eq!(s.uncommitted(), 1, "a dead pipeline consumes no segment");
    }

    /// Dropping an async store is a clean shutdown: the writer drains
    /// and flushes everything enqueued, so a reopened backend sees it.
    #[test]
    fn drop_drains_and_flushes_the_queue() {
        let dir;
        let e;
        {
            let mut s = fresh_async(FlushPolicy::flush_every(512, 1000), 64, "wal-async-drop");
            dir = s.backend().dir().to_path_buf();
            e = s.world_mut().spawn_at(Vec2::ZERO);
            for i in 0..30 {
                s.world_mut().set(e, "hp", Value::Float(i as f32)).unwrap();
            }
            s.commit().unwrap();
            assert!(s.last_durable() <= s.last_enqueued());
        } // drop: disconnect, writer flushes the tail, join
        let b = Backend::open(dir).unwrap();
        let log = b.read_log().unwrap();
        let snaps: Vec<(u64, Vec<u8>)> = b
            .snapshot_seqs()
            .unwrap()
            .into_iter()
            .map(|seq| (seq, b.read_snapshot(seq).unwrap()))
            .collect();
        let (world, _, _) = recover_from_parts(&snaps, &log).unwrap();
        assert_eq!(world.get_f32(e, "hp"), Some(29.0));
    }

    /// Async checkpoints are durably synchronous: snapshot + mark are
    /// on disk when the call returns, and replay truncates at the mark.
    #[test]
    fn async_checkpoint_is_durable_and_truncates_replay() {
        let mut s = fresh_async(FlushPolicy::flush_every(512, 1000), 8, "wal-async-cp");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        for i in 0..40 {
            s.world_mut().set(e, "hp", Value::Float(i as f32)).unwrap();
            s.commit().unwrap();
        }
        s.checkpoint().unwrap();
        assert_eq!(s.unacked(), 0, "checkpoint waits for its own flush");
        s.world_mut().set(e, "hp", Value::Float(777.0)).unwrap();
        s.commit().unwrap();
        s.wait_durable(s.last_enqueued()).unwrap();
        let (before, after) = s.compact_log().unwrap();
        assert!(after < before, "pre-checkpoint frames compact away");
        let (recovered, replayed) = s.crash_and_recover().unwrap();
        assert_eq!(replayed, 1, "only the post-checkpoint tail replays");
        assert_eq!(recovered.world().get_f32(e, "hp"), Some(777.0));
    }

    /// The async path must produce byte-identical WAL frames to the
    /// sync path for the same mutation sequence — recovery is the same
    /// algorithm over the same bytes.
    #[test]
    fn async_log_bytes_match_sync_log_bytes() {
        let run = |mut s: WalStore| -> Vec<u8> {
            let e = s.world_mut().spawn_at(Vec2::ZERO);
            s.commit().unwrap();
            for i in 0..10 {
                s.world_mut().set(e, "hp", Value::Float(i as f32)).unwrap();
                if i % 3 == 0 {
                    let t = s.world().tick();
                    s.world_mut().advance_tick_to(t + 1);
                }
                s.commit().unwrap();
            }
            s.wait_durable(s.last_enqueued()).unwrap();
            let log = s.backend().read_log().unwrap();
            log
        };
        let sync_log = run(fresh(1, "wal-bytes-sync"));
        let async_log = run(fresh_async(
            FlushPolicy::flush_every(4, 2),
            8,
            "wal-bytes-async",
        ));
        assert_eq!(sync_log, async_log, "frame encoding is mode-invariant");
    }

    #[test]
    fn durability_watermark_trait_reports_drained() {
        let mut s = fresh_async(FlushPolicy::flush_every(512, 1000), 8, "wal-async-trait");
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.commit().unwrap();
        s.wait_durable(s.last_enqueued()).unwrap();
        assert!(DurabilityWatermark::is_drained(&s));
        s.world_mut().set(e, "hp", Value::Float(1.0)).unwrap();
        s.commit().unwrap();
        // may or may not have flushed yet; enqueued is authoritative
        assert_eq!(s.enqueued_seq(), 2);
        s.wait_durable(CommitSeq(2)).unwrap();
        assert!(s.is_drained());
        assert_eq!(s.durable_seq(), 2);
    }

    /// `wait_durable` past `last_enqueued` clamps instead of hanging.
    #[test]
    fn wait_durable_clamps_to_enqueued() {
        let mut s = fresh_async(FlushPolicy::flush_every(512, 1000), 8, "wal-async-clamp");
        s.wait_durable(CommitSeq(u64::MAX)).unwrap();
        let e = s.world_mut().spawn_at(Vec2::ZERO);
        s.commit().unwrap();
        s.wait_durable(CommitSeq(u64::MAX)).unwrap();
        assert_eq!(s.last_durable(), CommitSeq(1));
        let _ = e;
    }
}
