//! Deterministic crash-point sweep: prove recovery exact at **every**
//! durable-write byte offset.
//!
//! The paper prices checkpoint policies by how much a crash loses;
//! that accounting is only honest if recovery actually hands back the
//! database it claims to. This module is the proof harness: a seeded
//! scripted workload runs against a [`WalStore`] — synchronous logging
//! (every record durable the moment its call returns) or, with
//! [`SweepConfig::async_writer`], the background writer pipeline with
//! the driver ack-tracking each commit via [`WalStore::wait_durable`] —
//! cloning the live in-memory world after every durable write: the
//! *never-crashed oracle*. The sweep then simulates a crash at every byte offset of
//! the durable log, under three fault models ([`FaultKind`]):
//!
//! * **Torn** — the append tears mid-record at the offset.
//! * **Bit flip** — the record containing the offset lands whole but
//!   with one bit inverted (half-written-sector garbage).
//! * **Duplicated tail** — the final append lands twice (an
//!   at-least-once retry), checksum-valid both times.
//!
//! For each crash point it recovers via the production algorithm
//! ([`recover_from_parts`], the same code [`WalStore::crash_and_recover`]
//! runs) and asserts the recovered world is **bit-identical** to the
//! oracle at that point: full row dump, tick counter, the whole catalog,
//! every secondary-index probe, every standing view's row set, and
//! spatial queries. Because the workload exercises index and view
//! lifecycle mid-stream, the sweep simultaneously proves the catalog
//! records compose with checkpoints at every possible interleaving.
//!
//! Snapshot durability follows write ordering: a checkpoint's snapshot
//! renames into place before its mark is appended, so a snapshot is
//! durable at crash offset `o` iff `o` is at or past the first byte of
//! its mark record — including the window where the snapshot exists but
//! its mark was torn away, which is exactly the window the
//! mark-anchored replay rule ([`crate::wal::replay_after_checkpoint`])
//! protects.

use gamedb_content::{CmpOp, Value, ValueType};
use gamedb_core::{AggFn, IndexKind, JoinOn, PlanNode, Query, ViewId, ViewPlan, World};
use gamedb_spatial::Vec2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::backend::{temp_dir, Backend, FaultKind};
use crate::wal::{decode_log, WalRecord};
use crate::walstore::{recover_from_parts, FlushPolicy, StoreError, WalStore};

/// Sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Workload seed — identical seeds produce identical logs, oracles,
    /// and verdicts.
    pub seed: u64,
    /// Scripted workload length in ticks.
    pub ticks: u64,
    /// Test every `stride`-th byte offset (1 = every offset — the
    /// acceptance setting; CI may bound larger sweeps).
    pub stride: usize,
    /// Run the workload through the **background WAL writer**
    /// ([`WalStore::new_async`]) instead of synchronous logging. The
    /// driver ack-tracks each commit ([`WalStore::wait_durable`] of
    /// [`WalStore::last_enqueued`]) before capturing its oracle state,
    /// so durable boundaries stay exact — the async pipeline changes
    /// *when* bytes become durable, never *which* bytes.
    pub async_writer: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed: 0xE9,
            ticks: 50,
            stride: 1,
            async_writer: false,
        }
    }
}

/// What a completed sweep covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepReport {
    /// Durable log size swept.
    pub log_bytes: usize,
    /// Records in the never-crashed log.
    pub records: usize,
    /// Checkpoints the workload wrote (sweeping across their marks).
    pub checkpoints: usize,
    /// Torn-write crash points tested.
    pub torn_tested: usize,
    /// Bit-flip crash points tested.
    pub bitflip_tested: usize,
    /// Duplicated-tail crash points tested.
    pub duplicated_tested: usize,
}

/// The scripted workload driver: a [`WalStore`] plus the oracle trace —
/// `(durable log bytes, live world clone)` captured after every durable
/// commit. Mutations go through `world_mut()` and are group-committed
/// — some one op per frame, some as multi-op batch frames — so the
/// sweep exercises both framings of the change pipeline.
struct Driver {
    store: WalStore,
    oracle: Vec<(u64, World)>,
    views: Vec<ViewId>,
    rng: StdRng,
}

const TEAMS: [&str; 3] = ["red", "blue", "green"];

fn seed_world() -> World {
    let mut w = World::new();
    w.define_component("hp", ValueType::Float).unwrap();
    w.define_component("gold", ValueType::Int).unwrap();
    w.define_component("team", ValueType::Str).unwrap();
    w
}

impl Driver {
    fn new(seed: u64, label: &str, async_writer: bool) -> Result<Driver, StoreError> {
        let backend = Backend::open(temp_dir(label)).unwrap();
        let initial = seed_world();
        // byte 0 of the log: the store exists, no record survives — a
        // crash before the base mark recovers to the initial world
        let oracle = vec![(0, initial.clone())];
        let store = if async_writer {
            WalStore::new_async(initial, backend, FlushPolicy::flush_every(1, 1000), 32)?
        } else {
            WalStore::new(initial, backend, 1)?
        };
        let mut d = Driver {
            store,
            oracle,
            views: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        };
        d.snap();
        Ok(d)
    }

    /// Commit the pending change-stream segment (one WAL frame) and
    /// capture the oracle at the new durable boundary. In async-writer
    /// mode the driver ack-tracks first — `wait_durable` of everything
    /// enqueued — so the capture happens at an exact durable boundary
    /// (and writer-side faults surface here, like production callers
    /// see them).
    fn commit(&mut self) -> Result<(), StoreError> {
        self.store.commit()?;
        if self.store.is_async() {
            self.store.wait_durable(self.store.last_enqueued())?;
        }
        self.snap();
        Ok(())
    }

    /// Capture the oracle state at the current durable log length. Only
    /// the first capture per length counts: once a live fault freezes
    /// the log, later (lost) mutations must not overwrite the state the
    /// durable prefix corresponds to. The clone folds its pending view
    /// deltas, mirroring the refresh recovery performs before handing
    /// the world back.
    fn snap(&mut self) {
        let len = self.store.backend().log_len().expect("log readable");
        if self.oracle.last().is_none_or(|(l, _)| *l < len) {
            let mut world = self.store.world().clone();
            world.refresh_views();
            self.oracle.push((len, world));
        }
    }

    fn live_ids(&self) -> Vec<gamedb_core::EntityId> {
        self.store.world().entity_vec()
    }

    fn view_query(&mut self) -> Query {
        match self.rng.gen_range(0..4u32) {
            0 => Query::select().filter(
                "hp",
                CmpOp::Lt,
                Value::Float(self.rng.gen_range(10.0..90.0f32)),
            ),
            1 => Query::select().filter(
                "team",
                CmpOp::Eq,
                Value::Str(TEAMS[self.rng.gen_range(0..TEAMS.len())].into()),
            ),
            2 => Query::select().within(
                Vec2::new(
                    self.rng.gen_range(-30.0..30.0f32),
                    self.rng.gen_range(-30.0..30.0f32),
                ),
                self.rng.gen_range(5.0..40.0f32),
            ),
            _ => Query::select().filter(
                "gold",
                CmpOp::Ge,
                Value::Int(self.rng.gen_range(0..80i64)),
            ),
        }
    }

    /// One random mutation against `world_mut()` — the ordinary `World`
    /// write API; the durability tap captures it. Committing is the
    /// caller's business (some steps batch several mutations per frame).
    fn step(&mut self) {
        let ids = self.live_ids();
        let roll = self.rng.gen_range(0..100u32);
        match roll {
            0..=34 => {
                if let Some(&e) = ids.get(self.rng.gen_range(0..ids.len().max(1))) {
                    let hp = self.rng.gen_range(0.0..100.0f32);
                    self.store
                        .world_mut()
                        .set(e, "hp", Value::Float(hp))
                        .expect("live entity");
                }
            }
            35..=44 => {
                if let Some(&e) = ids.get(self.rng.gen_range(0..ids.len().max(1))) {
                    let gold = self.rng.gen_range(-20..100i64);
                    self.store
                        .world_mut()
                        .set(e, "gold", Value::Int(gold))
                        .expect("live entity");
                }
            }
            45..=51 => {
                if let Some(&e) = ids.get(self.rng.gen_range(0..ids.len().max(1))) {
                    let team = TEAMS[self.rng.gen_range(0..TEAMS.len())];
                    self.store
                        .world_mut()
                        .set(e, "team", Value::Str(team.into()))
                        .expect("live entity");
                }
            }
            52..=61 => {
                if let Some(&e) = ids.get(self.rng.gen_range(0..ids.len().max(1))) {
                    let p = Vec2::new(
                        self.rng.gen_range(-40.0..40.0f32),
                        self.rng.gen_range(-40.0..40.0f32),
                    );
                    self.store.world_mut().set_pos(e, p).expect("live entity");
                }
            }
            62..=71 => {
                let p = Vec2::new(
                    self.rng.gen_range(-40.0..40.0f32),
                    self.rng.gen_range(-40.0..40.0f32),
                );
                self.store.world_mut().spawn_at(p);
            }
            72..=77 => {
                if ids.len() > 3 {
                    let e = ids[self.rng.gen_range(0..ids.len())];
                    self.store.world_mut().despawn(e);
                }
            }
            78..=81 => {
                if let Some(&e) = ids.get(self.rng.gen_range(0..ids.len().max(1))) {
                    if self.store.world().get(e, "hp").is_some() {
                        self.store
                            .world_mut()
                            .remove_component(e, "hp")
                            .expect("live entity");
                    }
                }
            }
            82..=84 => {
                let (comp, kind) = [
                    ("hp", IndexKind::Sorted),
                    ("gold", IndexKind::Sorted),
                    ("team", IndexKind::Hash),
                ][self.rng.gen_range(0..3usize)];
                if self.store.world().index_on(comp).is_none() {
                    self.store
                        .world_mut()
                        .create_index(comp, kind)
                        .expect("component exists");
                }
            }
            85 => {
                let comp = ["hp", "gold", "team"][self.rng.gen_range(0..3usize)];
                if self.store.world().index_on(comp).is_some() {
                    self.store.world_mut().drop_index(comp);
                }
            }
            86..=91 => {
                if self.views.len() < 6 {
                    let q = self.view_query();
                    let v = self.store.world_mut().register_view(q);
                    self.views.push(v);
                }
            }
            92..=94 => {
                if !self.views.is_empty() {
                    let v = self.views.swap_remove(self.rng.gen_range(0..self.views.len()));
                    self.store.world_mut().drop_view(v);
                }
            }
            _ => {
                if !self.views.is_empty() {
                    let v = self.views[self.rng.gen_range(0..self.views.len())];
                    let c = Vec2::new(
                        self.rng.gen_range(-30.0..30.0f32),
                        self.rng.gen_range(-30.0..30.0f32),
                    );
                    let r = self.rng.gen_range(5.0..40.0f32);
                    self.store.world_mut().retarget_view(v, c, r);
                }
            }
        }
    }

    /// Run the scripted workload: a deterministic setup (index + views
    /// registered up front so every crash point has derived state to
    /// lose), then `ticks` rounds of random operations, a tick advance
    /// each round, and a checkpoint every 12th round. Half the rounds
    /// commit per op (single-op frames); the other half batch the whole
    /// round into one multi-op frame — both WAL framings get swept.
    fn run(&mut self, ticks: u64) -> Result<(), StoreError> {
        for i in 0..8 {
            // spawn + three sets commit as one multi-op batch frame
            let p = Vec2::new(i as f32 * 7.0 - 28.0, (i % 3) as f32 * 9.0);
            let w = self.store.world_mut();
            let e = w.spawn_at(p);
            w.set(e, "hp", Value::Float(50.0 + i as f32))?;
            w.set(e, "gold", Value::Int(10 * i as i64))?;
            w.set(e, "team", Value::Str(TEAMS[i as usize % 3].into()))?;
            self.commit()?;
        }
        self.store.world_mut().create_index("hp", IndexKind::Sorted)?;
        self.commit()?;
        let wounded = self
            .store
            .world_mut()
            .register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(55.0)));
        self.commit()?;
        let bubble = self
            .store
            .world_mut()
            .register_view(Query::select().within(Vec2::ZERO, 20.0));
        self.commit()?;
        self.views.push(wounded);
        self.views.push(bubble);
        // operator-tree views: a team equi-join and a per-team gold
        // total — joins and group aggregates must survive every crash
        // point too. They stay out of `self.views` so the random view
        // churn never drops them mid-sweep. (Sum over an Int column
        // keeps the fold exact in f64, so bit-identity is meaningful.)
        self.store.world_mut().register_view_plan(ViewPlan::join(
            PlanNode::scan(Query::select().filter("hp", CmpOp::Ge, Value::Float(0.0))),
            PlanNode::scan(Query::select()),
            JoinOn::Eq {
                left: "team".into(),
                right: "team".into(),
            },
        ))?;
        self.commit()?;
        let wealth_plan = Query::select()
            .into_grouped_plan("team", AggFn::Sum("gold".into()))
            .expect("valid plan");
        self.store.world_mut().register_view_plan(wealth_plan)?;
        self.commit()?;

        for t in 0..ticks {
            let ops = 1 + self.rng.gen_range(0..3u32);
            let batch_round = self.rng.gen_range(0..2u32) == 0;
            for _ in 0..ops {
                self.step();
                if !batch_round {
                    self.commit()?;
                }
            }
            let next = self.store.world().tick() + 1;
            self.store.world_mut().advance_tick_to(next);
            self.commit()?;
            if (t + 1) % 12 == 0 {
                self.store.checkpoint()?;
                self.snap();
            }
        }
        Ok(())
    }

    fn oracle_at(&self, log_bytes: u64) -> Option<&World> {
        self.oracle
            .iter()
            .find(|(l, _)| *l == log_bytes)
            .map(|(_, w)| w)
    }
}

/// Byte ranges `[start, end)` of each framed record in an intact log.
fn frame_bounds(log: &[u8]) -> Vec<(usize, usize)> {
    let mut bounds = Vec::new();
    let mut pos = 0usize;
    while log.len() - pos >= 8 {
        let len = u32::from_le_bytes(log[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let end = pos + 8 + len;
        if end > log.len() {
            break;
        }
        bounds.push((pos, end));
        pos = end;
    }
    bounds
}

/// Assert two worlds are the same database: rows, tick, catalog, every
/// index probe, every standing view's row set, and spatial queries.
/// Returns a description of the first divergence.
pub fn assert_equivalent(recovered: &World, oracle: &World) -> Result<(), String> {
    if recovered.rows() != oracle.rows() {
        return Err("full row dumps differ".into());
    }
    if recovered.tick() != oracle.tick() {
        return Err(format!(
            "tick diverged: recovered {} vs oracle {}",
            recovered.tick(),
            oracle.tick()
        ));
    }
    let rcat = recovered.export_catalog();
    let ocat = oracle.export_catalog();
    if rcat != ocat {
        return Err(format!("catalogs differ: {rcat:?} vs {ocat:?}"));
    }
    // every index answers probes identically on both sides, and probes
    // agree with the forced-scan oracle on the recovered world
    for (component, _) in &rcat.indexes {
        let probes: Vec<(CmpOp, Value)> = match oracle.component_type(component) {
            Some(ValueType::Float) => [0.0f32, 20.0, 40.0, 55.0, 75.0, 99.0]
                .iter()
                .flat_map(|&v| {
                    [CmpOp::Eq, CmpOp::Lt, CmpOp::Ge]
                        .into_iter()
                        .map(move |op| (op, Value::Float(v)))
                })
                .collect(),
            Some(ValueType::Int) => [-5i64, 0, 30, 70]
                .iter()
                .flat_map(|&v| {
                    [CmpOp::Eq, CmpOp::Lt, CmpOp::Ge]
                        .into_iter()
                        .map(move |op| (op, Value::Int(v)))
                })
                .collect(),
            _ => TEAMS.iter().map(|t| (CmpOp::Eq, Value::Str((*t).into()))).collect(),
        };
        for (op, value) in probes {
            if !recovered.index_supports(component, op) {
                continue;
            }
            let mut got = Vec::new();
            let mut want = Vec::new();
            recovered.index_probe(component, op, &value, &mut got);
            oracle.index_probe(component, op, &value, &mut want);
            if got != want {
                return Err(format!(
                    "index probe {component} {op:?} {value:?} differs: {got:?} vs {want:?}"
                ));
            }
            let scan = Query::select()
                .filter(component.clone(), op, value.clone())
                .run_scan(recovered);
            if got != scan {
                return Err(format!(
                    "index probe {component} {op:?} {value:?} disagrees with scan"
                ));
            }
        }
    }
    // every standing view: same rows, and rows == the scan oracle
    for (slot, query) in &ocat.views {
        let rid = recovered
            .view_id_at(*slot)
            .ok_or_else(|| format!("view slot {slot} missing after recovery"))?;
        let oid = oracle.view_id_at(*slot).expect("oracle catalog slot");
        if recovered.view_rows(rid) != oracle.view_rows(oid) {
            return Err(format!("view slot {slot} rows differ ({query:?})"));
        }
        if recovered.view_rows(rid) != query.run_scan(recovered).as_slice() {
            return Err(format!("view slot {slot} diverges from its scan oracle"));
        }
    }
    // every operator-tree view: identical maintained output on both
    // sides, and the output equals a forced recompute of its plan
    for (slot, plan) in &ocat.plan_views {
        let rid = recovered
            .view_id_at(*slot)
            .ok_or_else(|| format!("plan view slot {slot} missing after recovery"))?;
        let oid = oracle.view_id_at(*slot).expect("oracle catalog slot");
        if recovered.view_output(rid) != oracle.view_output(oid) {
            return Err(format!("plan view slot {slot} output differs"));
        }
        let forced = plan
            .evaluate(recovered)
            .map_err(|e| format!("plan view slot {slot} recompute failed: {e}"))?;
        if recovered.view_output(rid) != forced {
            return Err(format!(
                "plan view slot {slot} diverges from forced recompute"
            ));
        }
    }
    // spatial index sanity
    for (center, radius) in [(Vec2::ZERO, 25.0f32), (Vec2::new(15.0, -10.0), 12.0)] {
        let mut got = Vec::new();
        let mut want = Vec::new();
        recovered.within(center, radius, &mut got);
        oracle.within(center, radius, &mut want);
        if got != want {
            return Err(format!("spatial query at {center:?} r={radius} differs"));
        }
    }
    Ok(())
}

/// The crash-point sweep. Runs the scripted workload once, then for
/// every byte offset of the durable log simulates torn, bit-flip, and
/// (at record boundaries) duplicated-tail crashes, recovers each, and
/// holds the result to the never-crashed oracle. Errors name the first
/// offending `(fault, offset)`.
pub fn run_sweep(cfg: SweepConfig) -> Result<SweepReport, String> {
    let label = if cfg.async_writer {
        "crash-sweep-async"
    } else {
        "crash-sweep"
    };
    let mut driver =
        Driver::new(cfg.seed, label, cfg.async_writer).map_err(|e| e.to_string())?;
    driver.run(cfg.ticks).map_err(|e| e.to_string())?;

    let log = driver
        .store
        .backend()
        .read_log()
        .map_err(|e| e.to_string())?;
    let bounds = frame_bounds(&log);
    let (records, consumed) = decode_log(&log);
    if consumed != log.len() || records.len() != bounds.len() {
        return Err("never-crashed log must decode completely".into());
    }

    // durable snapshots, each tagged with the byte where its mark record
    // starts (the snapshot renames into place before that byte is
    // attempted, so it is durable from there on)
    let mut snapshots: Vec<(u64, Vec<u8>, usize)> = Vec::new();
    for (i, r) in records.iter().enumerate() {
        if let WalRecord::CheckpointMark { seq } = r {
            let data = driver
                .store
                .backend()
                .read_snapshot(*seq)
                .map_err(|e| e.to_string())?;
            snapshots.push((*seq, data, bounds[i].0));
        }
    }
    let checkpoints = snapshots.len().saturating_sub(1);

    let stride = cfg.stride.max(1);
    let durable_at = |o: usize| -> Vec<(u64, &[u8])> {
        snapshots
            .iter()
            .filter(|(_, _, mark_start)| o >= *mark_start)
            .map(|(seq, data, _)| (*seq, data.as_slice()))
            .collect()
    };
    let check = |fault: &str, o: usize, faulted: &[u8], survivors: usize| -> Result<(), String> {
        let parts = durable_at(o);
        let (world, _, _) = recover_from_parts(&parts, faulted)
            .map_err(|e| format!("{fault} @ {o}: recovery failed: {e}"))?;
        let boundary = if survivors == 0 { 0 } else { bounds[survivors - 1].1 as u64 };
        let oracle = driver
            .oracle_at(boundary)
            .ok_or_else(|| format!("{fault} @ {o}: no oracle at byte {boundary}"))?;
        assert_equivalent(&world, oracle).map_err(|e| format!("{fault} @ {o}: {e}"))
    };

    // torn writes: the log cuts at every byte offset, mid-record or not
    let mut torn_tested = 0;
    for o in (0..=log.len()).step_by(stride) {
        let survivors = bounds.iter().take_while(|(_, end)| *end <= o).count();
        check("torn", o, &log[..o], survivors)?;
        torn_tested += 1;
    }

    // bit flips: the record containing the byte lands whole but corrupt,
    // nothing after it lands; every bit position gets its turn over the
    // sweep ((offset % 8) rotates through the byte)
    let mut bitflip_tested = 0;
    for o in (0..log.len()).step_by(stride) {
        let k = bounds
            .iter()
            .position(|(start, end)| o >= *start && o < *end)
            .expect("every byte belongs to a record");
        let mut faulted = log[..bounds[k].1].to_vec();
        faulted[o] ^= 1 << (o % 8);
        check("bit-flip", o, &faulted, k)?;
        bitflip_tested += 1;
    }

    // duplicated tails: every record as the victim of an append retry
    let mut duplicated_tested = 0;
    for (i, (start, end)) in bounds.iter().enumerate() {
        let mut faulted = log[..*end].to_vec();
        faulted.extend_from_slice(&log[*start..*end]);
        check("duplicated-tail", *start, &faulted, i + 1)?;
        duplicated_tested += 1;
    }

    Ok(SweepReport {
        log_bytes: log.len(),
        records: records.len(),
        checkpoints,
        torn_tested,
        bitflip_tested,
        duplicated_tested,
    })
}

/// End-to-end fault injection through the live [`Backend`]: re-run the
/// scripted workload with a torn-write crash scheduled at `offset`,
/// then recover through [`WalStore::crash_and_recover`] and hold the
/// result to the oracle. Slower than [`run_sweep`] (one full workload
/// per offset) but exercises the production wiring, durable snapshot
/// ordering included.
pub fn run_live_torn(seed: u64, ticks: u64, offset: u64) -> Result<(), String> {
    run_live_torn_impl(seed, ticks, offset, false)
}

/// [`run_live_torn`] through the **background writer**: the fault fires
/// on the writer thread mid-flush, the writer freezes the durable
/// watermark and dies, the next driver commit/wait surfaces the failure
/// (the crash, from the workload's point of view), and recovery through
/// the production `crash_and_recover` must still match the oracle at
/// the durable prefix.
pub fn run_live_torn_async(seed: u64, ticks: u64, offset: u64) -> Result<(), String> {
    run_live_torn_impl(seed, ticks, offset, true)
}

fn run_live_torn_impl(
    seed: u64,
    ticks: u64,
    offset: u64,
    async_writer: bool,
) -> Result<(), String> {
    let label = if async_writer {
        "crash-live-async"
    } else {
        "crash-live"
    };
    let mut driver = Driver::new(seed, label, async_writer).map_err(|e| e.to_string())?;
    {
        // schedule on the live backend before the workload starts
        let mut backend = driver.store.backend_mut();
        backend.schedule_log_fault(offset, FaultKind::Torn);
    }
    if let Err(e) = driver.run(ticks) {
        // an async writer dies at the fired fault and surfaces a Writer
        // error on the next commit/wait — that IS the simulated crash;
        // any other error is a real harness failure
        if !matches!(e, StoreError::Writer(_)) {
            return Err(e.to_string());
        }
    }
    let (store, _) = driver
        .store
        .crash_and_recover()
        .map_err(|e| e.to_string())?;
    let log = store.backend().read_log().map_err(|e| e.to_string())?;
    let (_, consumed) = decode_log(&log);
    let oracle = driver
        .oracle
        .iter()
        .find(|(l, _)| *l == consumed as u64)
        .map(|(_, w)| w)
        .ok_or_else(|| format!("live torn @ {offset}: no oracle at byte {consumed}"))?;
    assert_equivalent(store.world(), oracle).map_err(|e| format!("live torn @ {offset}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ISSUE-3 acceptance: a seeded 50-tick scripted workload, crashed
    /// at **every** durable-write byte offset under torn, bit-flip, and
    /// duplicated-tail faults, recovers to a world bit-identical to the
    /// never-crashed oracle — rows, tick, catalog, every index probe,
    /// every standing view. The final torn offset equals the full log,
    /// pinning the `wal` policy's zero-loss claim.
    #[test]
    fn crash_sweep_every_offset_recovers_exactly() {
        let report = run_sweep(SweepConfig::default()).unwrap();
        assert_eq!(report.torn_tested, report.log_bytes + 1);
        assert_eq!(report.bitflip_tested, report.log_bytes);
        assert_eq!(report.duplicated_tested, report.records);
        assert!(
            report.checkpoints >= 2,
            "the sweep must cross checkpoint marks: {report:?}"
        );
        assert!(
            report.records > 100,
            "workload too small to mean anything: {report:?}"
        );
    }

    /// A different seed reshuffles the whole script; the sweep must
    /// still hold at every offset (pins that the harness is not tuned
    /// to one lucky history).
    #[test]
    fn crash_sweep_holds_for_a_second_seed() {
        let report = run_sweep(SweepConfig {
            seed: 0x5EED,
            ticks: 30,
            ..SweepConfig::default()
        })
        .unwrap();
        assert_eq!(report.torn_tested, report.log_bytes + 1);
    }

    /// Identical seeds produce identical logs and identical sweep
    /// reports — the determinism the whole harness stands on.
    #[test]
    fn sweep_is_deterministic_per_seed() {
        let cfg = SweepConfig {
            seed: 7,
            ticks: 10,
            stride: 7,
            ..SweepConfig::default()
        };
        assert_eq!(run_sweep(cfg).unwrap(), run_sweep(cfg).unwrap());
    }

    /// ISSUE-6 acceptance: the full seeded 50-tick sweep with the
    /// **background writer** draining the durability tap — every byte
    /// offset, all three fault models, recovery bit-identical to the
    /// never-crashed oracle. The report must equal the sync-mode report
    /// exactly: the async pipeline changes *when* bytes become durable,
    /// never *which* bytes, so both modes sweep the same log.
    #[test]
    fn crash_sweep_async_writer_every_offset_recovers_exactly() {
        let sync_report = run_sweep(SweepConfig::default()).unwrap();
        let async_report = run_sweep(SweepConfig {
            async_writer: true,
            ..SweepConfig::default()
        })
        .unwrap();
        assert_eq!(
            async_report, sync_report,
            "async writer must produce the identical durable log"
        );
        assert_eq!(async_report.torn_tested, async_report.log_bytes + 1);
        assert!(async_report.checkpoints >= 2);
    }

    /// Live fault injection with the fault firing **on the writer
    /// thread**: the workload sees the failure on its next ack, and
    /// production recovery still matches the oracle at the durable
    /// prefix.
    #[test]
    fn live_torn_injection_async_matches_oracle() {
        for offset in [0u64, 5, 40, 173, 512, 1201] {
            run_live_torn_async(11, 12, offset).unwrap();
        }
    }

    /// Live injection through the Backend's scheduled-fault path: torn
    /// crashes at a spread of offsets (including byte 0 and inside the
    /// base mark) recover through the production `crash_and_recover`.
    #[test]
    fn live_torn_injection_matches_oracle() {
        for offset in [0u64, 5, 40, 173, 512, 1201] {
            run_live_torn(11, 12, offset).unwrap();
        }
    }
}
