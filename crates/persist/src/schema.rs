//! Schema evolution: live migrations versus the blob strategy.
//!
//! "These new features often require schema changes in the world
//! database. Schema migrations on a live system can be very painful …
//! They often choose to write data as unstructured 'blobs' into a single
//! attribute, so that they can preserve their old schemas." This module
//! implements both sides of that trade-off so experiment E10 can price
//! it: [`StructuredStore`] migrates by rewriting rows (slow migration,
//! fast queries); [`BlobStore`] versions its schema and upgrades rows
//! lazily on read (instant migration, slow queries, write amplification).

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

use bytes::{Bytes, BytesMut};
use gamedb_content::{Value, ValueType};
use gamedb_core::{EntityId, World};

use crate::snapshot::{get_value, put_value, SnapshotError};

/// A schema-changing operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Migration {
    /// Add a column with a default back-filled into existing rows.
    AddColumn {
        name: String,
        ty: ValueType,
        default: Value,
    },
    /// Drop a column.
    DropColumn { name: String },
    /// Rename a column.
    RenameColumn { from: String, to: String },
    /// Widen an int column to float (the common "we need fractional
    /// stats now" change).
    WidenIntToFloat { name: String },
}

/// Migration failures.
#[derive(Debug, Clone, PartialEq)]
pub enum MigrationError {
    UnknownColumn(String),
    DuplicateColumn(String),
    WrongType { column: String, expected: &'static str },
    Codec(String),
}

impl fmt::Display for MigrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            MigrationError::DuplicateColumn(c) => write!(f, "column {c:?} already exists"),
            MigrationError::WrongType { column, expected } => {
                write!(f, "column {column:?} is not {expected}")
            }
            MigrationError::Codec(m) => write!(f, "blob codec: {m}"),
        }
    }
}

impl std::error::Error for MigrationError {}

/// Cost report for one migration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MigrationStats {
    /// Rows physically rewritten.
    pub rows_rewritten: usize,
    /// Wall time.
    pub micros: u128,
}

/// One version of a schema: field name, type, default.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchemaVersion {
    pub fields: Vec<(String, ValueType, Value)>,
}

impl SchemaVersion {
    fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|(n, _, _)| n == name)
    }

    /// Apply a migration, producing the next version.
    pub fn evolve(&self, m: &Migration) -> Result<SchemaVersion, MigrationError> {
        let mut next = self.clone();
        match m {
            Migration::AddColumn { name, ty, default } => {
                if next.index_of(name).is_some() {
                    return Err(MigrationError::DuplicateColumn(name.clone()));
                }
                next.fields.push((name.clone(), *ty, default.clone()));
            }
            Migration::DropColumn { name } => {
                let i = next
                    .index_of(name)
                    .ok_or_else(|| MigrationError::UnknownColumn(name.clone()))?;
                next.fields.remove(i);
            }
            Migration::RenameColumn { from, to } => {
                if next.index_of(to).is_some() {
                    return Err(MigrationError::DuplicateColumn(to.clone()));
                }
                let i = next
                    .index_of(from)
                    .ok_or_else(|| MigrationError::UnknownColumn(from.clone()))?;
                next.fields[i].0 = to.clone();
            }
            Migration::WidenIntToFloat { name } => {
                let i = next
                    .index_of(name)
                    .ok_or_else(|| MigrationError::UnknownColumn(name.clone()))?;
                if next.fields[i].1 != ValueType::Int {
                    return Err(MigrationError::WrongType {
                        column: name.clone(),
                        expected: "int",
                    });
                }
                next.fields[i].1 = ValueType::Float;
                if let Value::Int(d) = next.fields[i].2 {
                    next.fields[i].2 = Value::Float(d as f32);
                }
            }
        }
        Ok(next)
    }
}

/// Upgrade one decoded row across a migration.
fn upgrade_row(row: &mut Vec<(String, Value)>, m: &Migration) {
    match m {
        Migration::AddColumn { name, default, .. } => {
            if !row.iter().any(|(n, _)| n == name) {
                row.push((name.clone(), default.clone()));
            }
        }
        Migration::DropColumn { name } => row.retain(|(n, _)| n != name),
        Migration::RenameColumn { from, to } => {
            for (n, _) in row.iter_mut() {
                if n == from {
                    *n = to.clone();
                }
            }
        }
        Migration::WidenIntToFloat { name } => {
            for (n, v) in row.iter_mut() {
                if n == name {
                    if let Value::Int(i) = v {
                        *v = Value::Float(*i as f32);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Structured store
// ---------------------------------------------------------------------

/// Rows live in a [`World`]; migrations rewrite every row.
pub struct StructuredStore {
    pub world: World,
}

impl StructuredStore {
    pub fn new(world: World) -> Self {
        StructuredStore { world }
    }

    /// Apply a migration by physically rewriting the affected rows (the
    /// painful path the paper describes).
    pub fn migrate(&mut self, m: &Migration) -> Result<MigrationStats, MigrationError> {
        let start = Instant::now();
        let mut rows = 0usize;
        match m {
            Migration::AddColumn { name, ty, default } => {
                self.world
                    .define_component(name, *ty)
                    .map_err(|_| MigrationError::DuplicateColumn(name.clone()))?;
                let ids: Vec<EntityId> = self.world.entities().collect();
                for id in ids {
                    self.world
                        .set(id, name, default.clone())
                        .expect("freshly defined column accepts its default");
                    rows += 1;
                }
            }
            Migration::DropColumn { name } => {
                if self.world.component_type(name).is_none() {
                    return Err(MigrationError::UnknownColumn(name.clone()));
                }
                // core worlds have no column drop: rebuild (the realistic
                // copy migration)
                rows = self.rebuild(|row| row.retain(|(n, _)| n != name))?;
            }
            Migration::RenameColumn { from, to } => {
                if self.world.component_type(from).is_none() {
                    return Err(MigrationError::UnknownColumn(from.clone()));
                }
                if self.world.component_type(to).is_some() {
                    return Err(MigrationError::DuplicateColumn(to.clone()));
                }
                let from = from.clone();
                let to = to.clone();
                rows = self.rebuild(move |row| {
                    for (n, _) in row.iter_mut() {
                        if *n == from {
                            *n = to.clone();
                        }
                    }
                })?;
            }
            Migration::WidenIntToFloat { name } => {
                match self.world.component_type(name) {
                    None => return Err(MigrationError::UnknownColumn(name.clone())),
                    Some(ValueType::Int) => {}
                    Some(_) => {
                        return Err(MigrationError::WrongType {
                            column: name.clone(),
                            expected: "int",
                        })
                    }
                }
                let name = name.clone();
                rows = self.rebuild(move |row| {
                    for (n, v) in row.iter_mut() {
                        if *n == name {
                            if let Value::Int(i) = v {
                                *v = Value::Float(*i as f32);
                            }
                        }
                    }
                })?;
            }
        }
        Ok(MigrationStats {
            rows_rewritten: rows,
            micros: start.elapsed().as_micros(),
        })
    }

    /// Rebuild the world row by row with a transformation (copy
    /// migration). Returns rows copied.
    fn rebuild(
        &mut self,
        transform: impl Fn(&mut Vec<(String, Value)>),
    ) -> Result<usize, MigrationError> {
        let mut next = World::new();
        // Gather all rows once (slot order) and group them per entity —
        // a single pass, not a dump per entity.
        let mut per_entity: Vec<(EntityId, Vec<(String, Value)>)> = Vec::new();
        for (id, comp, value) in self.world.rows() {
            match per_entity.last_mut() {
                Some((last, row)) if *last == id => row.push((comp, value)),
                _ => per_entity.push((id, vec![(comp, value)])),
            }
        }
        let mut count = 0usize;
        for (id, mut row) in per_entity {
            transform(&mut row);
            next.restore_entity(id)
                .map_err(|e| MigrationError::Codec(e.to_string()))?;
            for (name, value) in row {
                if name == gamedb_core::POS {
                    if let Value::Vec2(x, y) = value {
                        next.set_pos(id, gamedb_spatial::Vec2::new(x, y))
                            .map_err(|e| MigrationError::Codec(e.to_string()))?;
                    }
                    continue;
                }
                if next.component_type(&name).is_none() {
                    next.define_component(&name, value.value_type())
                        .map_err(|e| MigrationError::Codec(e.to_string()))?;
                }
                next.set(id, &name, value)
                    .map_err(|e| MigrationError::Codec(e.to_string()))?;
                count += 1;
            }
        }
        self.world = next;
        Ok(count)
    }

    /// Sum a numeric column (the query benchmarked in E10).
    pub fn sum_column(&self, name: &str) -> f64 {
        self.world
            .entities()
            .filter_map(|id| self.world.get_number(id, name))
            .sum()
    }
}

// ---------------------------------------------------------------------
// Blob store
// ---------------------------------------------------------------------

/// Rows are opaque version-tagged byte blobs in a single attribute.
pub struct BlobStore {
    versions: Vec<SchemaVersion>,
    migrations: Vec<Migration>,
    rows: HashMap<u64, (u32, Bytes)>,
    /// Bytes written over the store's lifetime (write amplification
    /// metric).
    pub bytes_written: u64,
}

impl BlobStore {
    /// Create with an initial schema.
    pub fn new(initial: SchemaVersion) -> Self {
        BlobStore {
            versions: vec![initial],
            migrations: Vec::new(),
            rows: HashMap::new(),
            bytes_written: 0,
        }
    }

    /// Latest schema version number.
    pub fn latest_version(&self) -> u32 {
        (self.versions.len() - 1) as u32
    }

    /// The latest schema.
    pub fn schema(&self) -> &SchemaVersion {
        self.versions.last().expect("at least the initial version")
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the store has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn encode_row(
        schema: &SchemaVersion,
        row: &[(String, Value)],
    ) -> Result<Bytes, MigrationError> {
        let mut buf = BytesMut::new();
        for (name, ty, default) in &schema.fields {
            let value = row
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| default.clone());
            if value.value_type() != *ty {
                return Err(MigrationError::Codec(format!(
                    "field {name} expects {ty}, got {}",
                    value.value_type()
                )));
            }
            put_value(&mut buf, &value);
        }
        Ok(buf.freeze())
    }

    fn decode_row(
        schema: &SchemaVersion,
        mut data: Bytes,
    ) -> Result<Vec<(String, Value)>, SnapshotError> {
        let mut row = Vec::with_capacity(schema.fields.len());
        for (name, ty, _) in &schema.fields {
            let v = get_value(&mut data, *ty)?;
            row.push((name.clone(), v));
        }
        Ok(row)
    }

    /// Write a row (encoded under the latest schema).
    pub fn put(&mut self, id: u64, row: &[(String, Value)]) -> Result<(), MigrationError> {
        let data = Self::encode_row(self.schema(), row)?;
        self.bytes_written += data.len() as u64;
        self.rows.insert(id, (self.latest_version(), data));
        Ok(())
    }

    /// Read a row, lazily upgrading it across any migrations since it was
    /// written. The stored blob is untouched (reads stay cheap to write,
    /// expensive to serve — the blob trade).
    pub fn get(&self, id: u64) -> Result<Option<Vec<(String, Value)>>, MigrationError> {
        let Some((version, data)) = self.rows.get(&id) else {
            return Ok(None);
        };
        let schema = &self.versions[*version as usize];
        let mut row = Self::decode_row(schema, data.clone())
            .map_err(|e| MigrationError::Codec(e.to_string()))?;
        for m in &self.migrations[*version as usize..] {
            upgrade_row(&mut row, m);
        }
        Ok(Some(row))
    }

    /// Migrate the schema: push a version, record the migration — O(1),
    /// no row is touched.
    pub fn migrate(&mut self, m: Migration) -> Result<MigrationStats, MigrationError> {
        let start = Instant::now();
        let next = self.schema().evolve(&m)?;
        self.versions.push(next);
        self.migrations.push(m);
        Ok(MigrationStats {
            rows_rewritten: 0,
            micros: start.elapsed().as_micros(),
        })
    }

    /// Compact: rewrite every row under the latest schema (what a studio
    /// runs during maintenance windows).
    pub fn compact(&mut self) -> Result<MigrationStats, MigrationError> {
        let start = Instant::now();
        let ids: Vec<u64> = self.rows.keys().copied().collect();
        let mut rewritten = 0usize;
        for id in ids {
            if let Some(row) = self.get(id)? {
                self.put(id, &row)?;
                rewritten += 1;
            }
        }
        Ok(MigrationStats {
            rows_rewritten: rewritten,
            micros: start.elapsed().as_micros(),
        })
    }

    /// Sum a numeric field across all rows (decodes every blob — the slow
    /// query path E10 measures).
    pub fn sum_column(&self, name: &str) -> Result<f64, MigrationError> {
        let mut sum = 0.0;
        let ids: Vec<u64> = self.rows.keys().copied().collect();
        for id in ids {
            if let Some(row) = self.get(id)? {
                if let Some((_, v)) = row.iter().find(|(n, _)| n == name) {
                    if let Some(n) = v.as_number() {
                        sum += n;
                    }
                }
            }
        }
        Ok(sum)
    }

    /// Fraction of rows stored under old schema versions.
    pub fn stale_fraction(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let latest = self.latest_version();
        let stale = self
            .rows
            .values()
            .filter(|(v, _)| *v != latest)
            .count();
        stale as f64 / self.rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamedb_spatial::Vec2;

    fn base_schema() -> SchemaVersion {
        SchemaVersion {
            fields: vec![
                ("hp".into(), ValueType::Float, Value::Float(100.0)),
                ("gold".into(), ValueType::Int, Value::Int(0)),
                ("name".into(), ValueType::Str, Value::Str(String::new())),
            ],
        }
    }

    fn filled_blob(n: u64) -> BlobStore {
        let mut s = BlobStore::new(base_schema());
        for i in 0..n {
            s.put(
                i,
                &[
                    ("hp".into(), Value::Float(i as f32)),
                    ("gold".into(), Value::Int(i as i64)),
                    ("name".into(), Value::Str(format!("p{i}"))),
                ],
            )
            .unwrap();
        }
        s
    }

    fn filled_structured(n: usize) -> StructuredStore {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("gold", ValueType::Int).unwrap();
        w.define_component("name", ValueType::Str).unwrap();
        for i in 0..n {
            let e = w.spawn_at(Vec2::new(i as f32, 0.0));
            w.set_f32(e, "hp", i as f32).unwrap();
            w.set(e, "gold", Value::Int(i as i64)).unwrap();
            w.set(e, "name", Value::Str(format!("p{i}"))).unwrap();
        }
        StructuredStore::new(w)
    }

    #[test]
    fn schema_evolution_rules() {
        let v0 = base_schema();
        let v1 = v0
            .evolve(&Migration::AddColumn {
                name: "mana".into(),
                ty: ValueType::Float,
                default: Value::Float(50.0),
            })
            .unwrap();
        assert_eq!(v1.fields.len(), 4);
        assert!(matches!(
            v1.evolve(&Migration::AddColumn {
                name: "mana".into(),
                ty: ValueType::Float,
                default: Value::Float(0.0)
            }),
            Err(MigrationError::DuplicateColumn(_))
        ));
        assert!(matches!(
            v0.evolve(&Migration::DropColumn { name: "ghost".into() }),
            Err(MigrationError::UnknownColumn(_))
        ));
        assert!(matches!(
            v0.evolve(&Migration::WidenIntToFloat { name: "hp".into() }),
            Err(MigrationError::WrongType { .. })
        ));
        let v2 = v1
            .evolve(&Migration::RenameColumn {
                from: "gold".into(),
                to: "coins".into(),
            })
            .unwrap();
        assert!(v2.index_of("coins").is_some());
        assert!(v2.index_of("gold").is_none());
    }

    #[test]
    fn blob_migration_is_instant_and_lazy() {
        let mut s = filled_blob(100);
        let stats = s
            .migrate(Migration::AddColumn {
                name: "mana".into(),
                ty: ValueType::Float,
                default: Value::Float(50.0),
            })
            .unwrap();
        assert_eq!(stats.rows_rewritten, 0, "blob migration touches no rows");
        assert_eq!(s.stale_fraction(), 1.0);
        // reads upgrade on the fly
        let row = s.get(7).unwrap().unwrap();
        assert!(row.contains(&("mana".to_string(), Value::Float(50.0))));
        assert!(row.contains(&("hp".to_string(), Value::Float(7.0))));
    }

    #[test]
    fn blob_chained_migrations_upgrade_reads() {
        let mut s = filled_blob(10);
        s.migrate(Migration::WidenIntToFloat {
            name: "gold".into(),
        })
        .unwrap();
        s.migrate(Migration::RenameColumn {
            from: "gold".into(),
            to: "coins".into(),
        })
        .unwrap();
        s.migrate(Migration::DropColumn {
            name: "name".into(),
        })
        .unwrap();
        let row = s.get(3).unwrap().unwrap();
        assert!(row.contains(&("coins".to_string(), Value::Float(3.0))));
        assert!(!row.iter().any(|(n, _)| n == "name" || n == "gold"));
        // new writes use the latest schema directly
        s.put(99, &[("hp".into(), Value::Float(1.0)), ("coins".into(), Value::Float(9.0))])
            .unwrap();
        let row = s.get(99).unwrap().unwrap();
        assert!(row.contains(&("coins".to_string(), Value::Float(9.0))));
    }

    #[test]
    fn blob_compaction_rewrites_rows() {
        let mut s = filled_blob(20);
        s.migrate(Migration::AddColumn {
            name: "mana".into(),
            ty: ValueType::Float,
            default: Value::Float(1.0),
        })
        .unwrap();
        assert_eq!(s.stale_fraction(), 1.0);
        let stats = s.compact().unwrap();
        assert_eq!(stats.rows_rewritten, 20);
        assert_eq!(s.stale_fraction(), 0.0);
    }

    #[test]
    fn structured_add_column_backfills() {
        let mut s = filled_structured(50);
        let stats = s
            .migrate(&Migration::AddColumn {
                name: "mana".into(),
                ty: ValueType::Float,
                default: Value::Float(10.0),
            })
            .unwrap();
        assert_eq!(stats.rows_rewritten, 50, "every row backfilled");
        assert_eq!(s.sum_column("mana"), 500.0);
    }

    #[test]
    fn structured_rename_and_drop() {
        let mut s = filled_structured(20);
        s.migrate(&Migration::RenameColumn {
            from: "gold".into(),
            to: "coins".into(),
        })
        .unwrap();
        assert!(s.world.component_type("gold").is_none());
        assert_eq!(s.sum_column("coins"), (0..20).sum::<i64>() as f64);

        s.migrate(&Migration::DropColumn {
            name: "name".into(),
        })
        .unwrap();
        assert!(s.world.component_type("name").is_none());
        // entity ids survive the rebuild
        assert_eq!(s.world.len(), 20);
    }

    #[test]
    fn structured_widen_preserves_values() {
        let mut s = filled_structured(10);
        s.migrate(&Migration::WidenIntToFloat {
            name: "gold".into(),
        })
        .unwrap();
        assert_eq!(s.world.component_type("gold"), Some(ValueType::Float));
        assert_eq!(s.sum_column("gold"), 45.0);
    }

    #[test]
    fn both_stores_agree_on_query_results() {
        let mut blob = filled_blob(30);
        let mut structured = filled_structured(30);
        let m = Migration::AddColumn {
            name: "mana".into(),
            ty: ValueType::Float,
            default: Value::Float(2.0),
        };
        blob.migrate(m.clone()).unwrap();
        structured.migrate(&m).unwrap();
        assert_eq!(
            blob.sum_column("mana").unwrap(),
            structured.sum_column("mana")
        );
        assert_eq!(blob.sum_column("hp").unwrap(), structured.sum_column("hp"));
    }

    #[test]
    fn blob_write_amplification_tracked() {
        let mut s = filled_blob(10);
        let before = s.bytes_written;
        s.compact().unwrap();
        assert!(s.bytes_written > before);
    }
}
