//! Binary world snapshots.
//!
//! A snapshot is the unit the in-memory layer periodically writes to the
//! durable backend — the paper's "only writes to the database
//! periodically". The format is length-prefixed and checksummed so a torn
//! write (crash mid-checkpoint) is detected rather than half-loaded.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gamedb_content::{CmpOp, Value, ValueType};
use gamedb_core::{
    AggFn, EntityId, IndexKind, JoinOn, PlanNode, Pred, Query, ViewPlan, World, WorldCatalog,
};
use gamedb_spatial::Vec2;
use std::fmt;

/// Format magic + version. v2 appended the catalog (secondary indexes,
/// standing views, lineage) to the row image — recovery that restores
/// facts without the definitions deriving from them is not recovery.
/// v3 writes the schema section in **interned id order** instead of
/// name order: decoding defines columns in listed order, so the
/// recovered world's [`gamedb_core::ComponentId`] table matches the
/// snapshotted world's exactly and interned WAL-tail records decode to
/// the same columns they were recorded against. v4 appends the
/// operator-tree (plan) views of the differential view engine to the
/// catalog section, so joins and group aggregates survive recovery at
/// their exact slots. v3 and v2 snapshots still decode — their catalogs
/// simply carry no plan views.
const MAGIC: u32 = 0x6744_4204; // "gDB" v4
const MAGIC_V3: u32 = 0x6744_4203;
const MAGIC_V2: u32 = 0x6744_4202;

/// Errors decoding a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    BadMagic(u32),
    Truncated,
    ChecksumMismatch { expected: u32, got: u32 },
    BadTypeTag(u8),
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::ChecksumMismatch { expected, got } => {
                write!(f, "checksum mismatch: expected {expected:#x}, got {got:#x}")
            }
            SnapshotError::BadTypeTag(t) => write!(f, "unknown type tag {t}"),
            SnapshotError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a over the payload — cheap, deterministic corruption detection.
pub fn checksum(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    h
}

fn type_tag(ty: ValueType) -> u8 {
    match ty {
        ValueType::Float => 0,
        ValueType::Int => 1,
        ValueType::Bool => 2,
        ValueType::Str => 3,
        ValueType::Vec2 => 4,
    }
}

fn tag_type(tag: u8) -> Result<ValueType, SnapshotError> {
    Ok(match tag {
        0 => ValueType::Float,
        1 => ValueType::Int,
        2 => ValueType::Bool,
        3 => ValueType::Str,
        4 => ValueType::Vec2,
        t => return Err(SnapshotError::BadTypeTag(t)),
    })
}

/// Public wrapper over the private type tag (delta encoding shares it).
pub(crate) fn type_tag_pub(ty: ValueType) -> u8 {
    type_tag(ty)
}

/// Public wrapper over the private tag decoder.
pub(crate) fn tag_type_pub(tag: u8) -> Result<ValueType, SnapshotError> {
    tag_type(tag)
}

pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

pub(crate) fn get_str(buf: &mut Bytes) -> Result<String, SnapshotError> {
    if buf.remaining() < 4 {
        return Err(SnapshotError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(SnapshotError::Truncated);
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec())
        .map_err(|_| SnapshotError::Corrupt("non-utf8 string".into()))
}

/// Encode one value (type known from the schema).
pub(crate) fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Float(x) => buf.put_f32_le(*x),
        Value::Int(x) => buf.put_i64_le(*x),
        Value::Bool(b) => buf.put_u8(*b as u8),
        Value::Str(s) => put_str(buf, s),
        Value::Vec2(x, y) => {
            buf.put_f32_le(*x);
            buf.put_f32_le(*y);
        }
    }
}

/// Decode one value of a known type.
pub(crate) fn get_value(buf: &mut Bytes, ty: ValueType) -> Result<Value, SnapshotError> {
    macro_rules! need {
        ($n:expr) => {
            if buf.remaining() < $n {
                return Err(SnapshotError::Truncated);
            }
        };
    }
    Ok(match ty {
        ValueType::Float => {
            need!(4);
            Value::Float(buf.get_f32_le())
        }
        ValueType::Int => {
            need!(8);
            Value::Int(buf.get_i64_le())
        }
        ValueType::Bool => {
            need!(1);
            Value::Bool(buf.get_u8() != 0)
        }
        ValueType::Str => Value::Str(get_str(buf)?),
        ValueType::Vec2 => {
            need!(8);
            let x = buf.get_f32_le();
            let y = buf.get_f32_le();
            Value::Vec2(x, y)
        }
    })
}

fn op_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn tag_op(tag: u8) -> Result<CmpOp, SnapshotError> {
    Ok(match tag {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        t => return Err(SnapshotError::Corrupt(format!("unknown op tag {t}"))),
    })
}

pub(crate) fn kind_tag(kind: IndexKind) -> u8 {
    match kind {
        IndexKind::Hash => 0,
        IndexKind::Sorted => 1,
    }
}

pub(crate) fn tag_kind(tag: u8) -> Result<IndexKind, SnapshotError> {
    Ok(match tag {
        0 => IndexKind::Hash,
        1 => IndexKind::Sorted,
        t => return Err(SnapshotError::Corrupt(format!("unknown index kind {t}"))),
    })
}

/// Encode a standing query: predicates, spatial restriction, exclusion.
/// Shared by the snapshot catalog section and the WAL's `RegisterView`
/// record so both sides of recovery agree on the definition.
pub(crate) fn put_query(buf: &mut BytesMut, q: &Query) {
    buf.put_u32_le(q.predicates().len() as u32);
    for p in q.predicates() {
        put_str(buf, &p.component);
        buf.put_u8(op_tag(p.op));
        buf.put_u8(type_tag(p.value.value_type()));
        put_value(buf, &p.value);
    }
    match q.spatial() {
        Some((c, r)) => {
            buf.put_u8(1);
            buf.put_f32_le(c.x);
            buf.put_f32_le(c.y);
            buf.put_f32_le(r);
        }
        None => buf.put_u8(0),
    }
    match q.excluded() {
        Some(e) => {
            buf.put_u8(1);
            buf.put_u64_le(e.to_bits());
        }
        None => buf.put_u8(0),
    }
}

/// Inverse of [`put_query`].
pub(crate) fn get_query(buf: &mut Bytes) -> Result<Query, SnapshotError> {
    macro_rules! need {
        ($n:expr) => {
            if buf.remaining() < $n {
                return Err(SnapshotError::Truncated);
            }
        };
    }
    need!(4);
    let n_preds = buf.get_u32_le() as usize;
    let mut q = Query::select();
    for _ in 0..n_preds {
        let component = get_str(buf)?;
        need!(2);
        let op = tag_op(buf.get_u8())?;
        let ty = tag_type(buf.get_u8())?;
        let value = get_value(buf, ty)?;
        q = q.filter(component, op, value);
    }
    need!(1);
    if buf.get_u8() != 0 {
        need!(12);
        let x = buf.get_f32_le();
        let y = buf.get_f32_le();
        let r = buf.get_f32_le();
        q = q.within(Vec2::new(x, y), r);
    }
    need!(1);
    if buf.get_u8() != 0 {
        need!(8);
        q = q.excluding(EntityId::from_bits(buf.get_u64_le()));
    }
    Ok(q)
}

fn agg_tag(f: &AggFn) -> (u8, Option<&str>) {
    match f {
        AggFn::Count => (0, None),
        AggFn::Sum(c) => (1, Some(c)),
        AggFn::Min(c) => (2, Some(c)),
        AggFn::Max(c) => (3, Some(c)),
        AggFn::Avg(c) => (4, Some(c)),
        AggFn::ArgMin(c) => (5, Some(c)),
        AggFn::ArgMax(c) => (6, Some(c)),
    }
}

fn tag_agg(tag: u8, column: Option<String>) -> Result<AggFn, SnapshotError> {
    let col = || column.ok_or_else(|| SnapshotError::Corrupt("aggregate without column".into()));
    Ok(match tag {
        0 => AggFn::Count,
        1 => AggFn::Sum(col()?),
        2 => AggFn::Min(col()?),
        3 => AggFn::Max(col()?),
        4 => AggFn::Avg(col()?),
        5 => AggFn::ArgMin(col()?),
        6 => AggFn::ArgMax(col()?),
        t => return Err(SnapshotError::Corrupt(format!("unknown aggregate tag {t}"))),
    })
}

fn put_node(buf: &mut BytesMut, node: &PlanNode) {
    match node {
        PlanNode::Scan { query, only } => {
            buf.put_u8(0);
            put_query(buf, query);
            match only {
                Some(e) => {
                    buf.put_u8(1);
                    buf.put_u64_le(e.to_bits());
                }
                None => buf.put_u8(0),
            }
        }
        PlanNode::Filter { input, pred } => {
            buf.put_u8(1);
            put_node(buf, input);
            put_str(buf, &pred.component);
            buf.put_u8(op_tag(pred.op));
            buf.put_u8(type_tag(pred.value.value_type()));
            put_value(buf, &pred.value);
        }
        PlanNode::Project { input, columns } => {
            buf.put_u8(2);
            put_node(buf, input);
            buf.put_u32_le(columns.len() as u32);
            for c in columns {
                put_str(buf, c);
            }
        }
        PlanNode::Join { left, right, on } => {
            buf.put_u8(3);
            put_node(buf, left);
            put_node(buf, right);
            match on {
                JoinOn::Eq { left, right } => {
                    buf.put_u8(0);
                    put_str(buf, left);
                    put_str(buf, right);
                }
                JoinOn::Within { radius } => {
                    buf.put_u8(1);
                    buf.put_f32_le(*radius);
                }
            }
        }
        PlanNode::GroupAggregate {
            input,
            group_by,
            agg,
        } => {
            buf.put_u8(4);
            put_node(buf, input);
            match group_by {
                Some(g) => {
                    buf.put_u8(1);
                    put_str(buf, g);
                }
                None => buf.put_u8(0),
            }
            let (tag, col) = agg_tag(agg);
            buf.put_u8(tag);
            if let Some(c) = col {
                put_str(buf, c);
            }
        }
    }
}

fn get_node(buf: &mut Bytes, depth: usize) -> Result<PlanNode, SnapshotError> {
    macro_rules! need {
        ($n:expr) => {
            if buf.remaining() < $n {
                return Err(SnapshotError::Truncated);
            }
        };
    }
    // Parsed from disk: a corrupt length must not recurse unboundedly.
    if depth >= gamedb_core::dvm::MAX_PLAN_DEPTH {
        return Err(SnapshotError::Corrupt("plan exceeds depth bound".into()));
    }
    need!(1);
    Ok(match buf.get_u8() {
        0 => {
            let query = get_query(buf)?;
            need!(1);
            let only = if buf.get_u8() != 0 {
                need!(8);
                Some(EntityId::from_bits(buf.get_u64_le()))
            } else {
                None
            };
            PlanNode::Scan { query, only }
        }
        1 => {
            let input = Box::new(get_node(buf, depth + 1)?);
            let component = get_str(buf)?;
            need!(2);
            let op = tag_op(buf.get_u8())?;
            let ty = tag_type(buf.get_u8())?;
            let value = get_value(buf, ty)?;
            PlanNode::Filter {
                input,
                pred: Pred::new(component, op, value),
            }
        }
        2 => {
            let input = Box::new(get_node(buf, depth + 1)?);
            need!(4);
            let n = buf.get_u32_le() as usize;
            let mut columns = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                columns.push(get_str(buf)?);
            }
            PlanNode::Project { input, columns }
        }
        3 => {
            let left = Box::new(get_node(buf, depth + 1)?);
            let right = Box::new(get_node(buf, depth + 1)?);
            need!(1);
            let on = match buf.get_u8() {
                0 => JoinOn::Eq {
                    left: get_str(buf)?,
                    right: get_str(buf)?,
                },
                1 => {
                    need!(4);
                    JoinOn::Within {
                        radius: buf.get_f32_le(),
                    }
                }
                t => return Err(SnapshotError::Corrupt(format!("unknown join tag {t}"))),
            };
            PlanNode::Join { left, right, on }
        }
        4 => {
            let input = Box::new(get_node(buf, depth + 1)?);
            need!(1);
            let group_by = if buf.get_u8() != 0 {
                Some(get_str(buf)?)
            } else {
                None
            };
            need!(1);
            let tag = buf.get_u8();
            let column = if tag != 0 { Some(get_str(buf)?) } else { None };
            PlanNode::GroupAggregate {
                input,
                group_by,
                agg: tag_agg(tag, column)?,
            }
        }
        t => return Err(SnapshotError::Corrupt(format!("unknown plan node tag {t}"))),
    })
}

/// Encode an operator-tree view plan. Shared by the snapshot catalog
/// section and the WAL's `RegisterPlanView` record.
pub(crate) fn put_plan(buf: &mut BytesMut, plan: &ViewPlan) {
    put_node(buf, &plan.root);
}

/// Inverse of [`put_plan`]. Structural validity (operator nesting,
/// column visibility) is re-checked by the core when the plan is
/// re-registered, so corruption surfaces as a registration error, not
/// undefined view state.
pub(crate) fn get_plan(buf: &mut Bytes) -> Result<ViewPlan, SnapshotError> {
    Ok(ViewPlan::new(get_node(buf, 0)?))
}

/// Encode a world catalog (without lineage/tick, which the snapshot
/// header already carries). Shared with the delta format, which
/// carries the catalog wholesale per checkpoint — definitions are tiny
/// next to rows, and "diffing" them would buy complexity, not bytes.
/// `with_plans` gates the trailing plan-view section (absent from the
/// pre-v4 layouts `compat` still writes).
pub(crate) fn put_catalog(buf: &mut BytesMut, cat: &WorldCatalog, with_plans: bool) {
    buf.put_u32_le(cat.indexes.len() as u32);
    for (component, kind) in &cat.indexes {
        put_str(buf, component);
        buf.put_u8(kind_tag(*kind));
    }
    buf.put_u32_le(cat.view_slots);
    buf.put_u32_le(cat.views.len() as u32);
    for (slot, query) in &cat.views {
        buf.put_u32_le(*slot);
        put_query(buf, query);
    }
    if with_plans {
        buf.put_u32_le(cat.plan_views.len() as u32);
        for (slot, plan) in &cat.plan_views {
            buf.put_u32_le(*slot);
            put_plan(buf, plan);
        }
    }
}

pub(crate) fn get_catalog(
    buf: &mut Bytes,
    lineage: u64,
    tick: u64,
    with_plans: bool,
) -> Result<WorldCatalog, SnapshotError> {
    macro_rules! need {
        ($n:expr) => {
            if buf.remaining() < $n {
                return Err(SnapshotError::Truncated);
            }
        };
    }
    need!(4);
    let n_indexes = buf.get_u32_le() as usize;
    let mut indexes = Vec::with_capacity(n_indexes);
    for _ in 0..n_indexes {
        let name = get_str(buf)?;
        need!(1);
        indexes.push((name, tag_kind(buf.get_u8())?));
    }
    need!(8);
    let view_slots = buf.get_u32_le();
    let n_views = buf.get_u32_le() as usize;
    let mut views = Vec::with_capacity(n_views);
    for _ in 0..n_views {
        need!(4);
        let slot = buf.get_u32_le();
        views.push((slot, get_query(buf)?));
    }
    let mut plan_views = Vec::new();
    if with_plans {
        need!(4);
        let n_plans = buf.get_u32_le() as usize;
        for _ in 0..n_plans {
            need!(4);
            let slot = buf.get_u32_le();
            plan_views.push((slot, get_plan(buf)?));
        }
    }
    Ok(WorldCatalog {
        lineage,
        tick,
        indexes,
        view_slots,
        views,
        plan_views,
    })
}

/// Serialize a world: header, schema, entities, rows, checksum.
///
/// The schema section lists components in **interned id order** (`pos`
/// first, then definition order) — this *is* the durable interner
/// table: decode re-interns in listed order, so every id the snapshot
/// lineage ever recorded (WAL tails, replication segments) resolves
/// identically after recovery.
pub fn encode(world: &World) -> Bytes {
    let mut body = BytesMut::new();
    // schema, in id order (see above)
    let schema: Vec<(String, ValueType)> = world
        .schema_by_id()
        .map(|(_, n, t)| (n.to_string(), t))
        .collect();
    body.put_u32_le(schema.len() as u32);
    for (name, ty) in &schema {
        put_str(&mut body, name);
        body.put_u8(type_tag(*ty));
    }
    // entities
    let entities: Vec<EntityId> = world.entities().collect();
    body.put_u32_le(entities.len() as u32);
    for e in &entities {
        body.put_u64_le(e.to_bits());
    }
    // rows: per entity, count + (schema index, value)
    for &e in &entities {
        let rows: Vec<(usize, Value)> = schema
            .iter()
            .enumerate()
            .filter_map(|(i, (name, _))| world.get(e, name).map(|v| (i, v)))
            .collect();
        body.put_u32_le(rows.len() as u32);
        for (i, v) in rows {
            body.put_u32_le(i as u32);
            put_value(&mut body, &v);
        }
    }
    // catalog: index definitions + standing views (both kinds)
    put_catalog(&mut body, &world.export_catalog(), true);
    // frame: magic, tick, lineage, len, body, checksum
    let mut out = BytesMut::with_capacity(body.len() + 28);
    out.put_u32_le(MAGIC);
    out.put_u64_le(world.tick());
    out.put_u64_le(world.lineage());
    out.put_u32_le(body.len() as u32);
    let cksum = checksum(&body);
    out.put_slice(&body);
    out.put_u32_le(cksum);
    out.freeze()
}

/// Deserialize a world — rows *and* catalog: secondary indexes are
/// rebuilt (backfilled), standing views re-materialize at their original
/// slots with empty changelogs, and the lineage and tick counter are
/// restored into the world (the returned tick equals `world.tick()`).
pub fn decode(data: &[u8]) -> Result<(World, u64), SnapshotError> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < 24 {
        return Err(SnapshotError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC && magic != MAGIC_V3 && magic != MAGIC_V2 {
        return Err(SnapshotError::BadMagic(magic));
    }
    let tick = buf.get_u64_le();
    let lineage = buf.get_u64_le();
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len + 4 {
        return Err(SnapshotError::Truncated);
    }
    let body = buf.copy_to_bytes(len);
    let expected = buf.get_u32_le();
    let got = checksum(&body);
    if expected != got {
        return Err(SnapshotError::ChecksumMismatch { expected, got });
    }

    let mut buf = body;
    let mut world = World::new();
    // schema
    if buf.remaining() < 4 {
        return Err(SnapshotError::Truncated);
    }
    let n_schema = buf.get_u32_le() as usize;
    let mut schema = Vec::with_capacity(n_schema);
    for _ in 0..n_schema {
        let name = get_str(&mut buf)?;
        if buf.remaining() < 1 {
            return Err(SnapshotError::Truncated);
        }
        let ty = tag_type(buf.get_u8())?;
        if name != gamedb_core::POS {
            world
                .define_component(&name, ty)
                .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        }
        schema.push((name, ty));
    }
    // entities
    if buf.remaining() < 4 {
        return Err(SnapshotError::Truncated);
    }
    let n_entities = buf.get_u32_le() as usize;
    let mut entities = Vec::with_capacity(n_entities);
    for _ in 0..n_entities {
        if buf.remaining() < 8 {
            return Err(SnapshotError::Truncated);
        }
        let id = EntityId::from_bits(buf.get_u64_le());
        world
            .restore_entity(id)
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        entities.push(id);
    }
    // rows
    for &e in &entities {
        if buf.remaining() < 4 {
            return Err(SnapshotError::Truncated);
        }
        let n_rows = buf.get_u32_le() as usize;
        for _ in 0..n_rows {
            if buf.remaining() < 4 {
                return Err(SnapshotError::Truncated);
            }
            let idx = buf.get_u32_le() as usize;
            let (name, ty) = schema
                .get(idx)
                .ok_or_else(|| SnapshotError::Corrupt(format!("schema index {idx}")))?;
            let value = get_value(&mut buf, *ty)?;
            world
                .set(e, name, value)
                .map_err(|err| SnapshotError::Corrupt(err.to_string()))?;
        }
    }
    // catalog: rebuild indexes and views over the restored rows, adopt
    // the recorded lineage and tick
    let catalog = get_catalog(&mut buf, lineage, tick, magic == MAGIC)?;
    world
        .import_catalog(&catalog)
        .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    Ok((world, tick))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamedb_spatial::Vec2;

    fn sample_world() -> World {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("name", ValueType::Str).unwrap();
        w.define_component("gold", ValueType::Int).unwrap();
        w.define_component("alive", ValueType::Bool).unwrap();
        for i in 0..20 {
            let e = w.spawn_at(Vec2::new(i as f32, -(i as f32)));
            w.set_f32(e, "hp", 10.0 * i as f32).unwrap();
            w.set(e, "name", Value::Str(format!("npc-{i}"))).unwrap();
            w.set(e, "gold", Value::Int(i as i64 * 7)).unwrap();
            w.set(e, "alive", Value::Bool(i % 2 == 0)).unwrap();
        }
        // holes in the id space exercise generation restore
        let victims: Vec<EntityId> = w.entities().skip(3).step_by(5).collect();
        for v in victims {
            w.despawn(v);
        }
        w
    }

    #[test]
    fn roundtrip_preserves_rows_and_ids() {
        let w = sample_world();
        let bytes = encode(&w);
        let (w2, _) = decode(&bytes).unwrap();
        assert_eq!(w.rows(), w2.rows());
        assert_eq!(w.len(), w2.len());
        let ids1: Vec<EntityId> = w.entities().collect();
        let ids2: Vec<EntityId> = w2.entities().collect();
        assert_eq!(ids1, ids2, "ids (with generations) must survive");
    }

    #[test]
    fn roundtrip_preserves_spatial_index() {
        let w = sample_world();
        let (w2, _) = decode(&encode(&w)).unwrap();
        let mut out1 = vec![];
        let mut out2 = vec![];
        w.within(Vec2::new(5.0, -5.0), 3.0, &mut out1);
        w2.within(Vec2::new(5.0, -5.0), 3.0, &mut out2);
        assert_eq!(out1, out2);
    }

    #[test]
    fn tick_counter_roundtrips() {
        let w = sample_world();
        let bytes = encode(&w);
        let (_, tick) = decode(&bytes).unwrap();
        assert_eq!(tick, w.tick());
    }

    #[test]
    fn truncation_detected() {
        let w = sample_world();
        let bytes = encode(&w);
        for cut in [0, 3, 15, bytes.len() / 2, bytes.len() - 1] {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::ChecksumMismatch { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn corruption_detected() {
        let w = sample_world();
        let mut bytes = encode(&w).to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err, SnapshotError::ChecksumMismatch { .. }));
    }

    #[test]
    fn bad_magic_detected() {
        let w = sample_world();
        let mut bytes = encode(&w).to_vec();
        bytes[0] ^= 0x55;
        assert!(matches!(
            decode(&bytes).unwrap_err(),
            SnapshotError::BadMagic(_)
        ));
    }

    #[test]
    fn empty_world_roundtrips() {
        let w = World::new();
        let (w2, _) = decode(&encode(&w)).unwrap();
        assert!(w2.is_empty());
    }

    #[test]
    fn catalog_roundtrips_indexes_views_lineage_and_tick() {
        use gamedb_content::CmpOp;
        let mut w = sample_world();
        w.create_index("hp", IndexKind::Sorted).unwrap();
        w.create_index("name", IndexKind::Hash).unwrap();
        let dropped = w.register_view(Query::select());
        let wounded =
            w.register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(100.0)));
        let first = w.entities().next().unwrap();
        let near = w.register_view(
            Query::select()
                .within(Vec2::new(5.0, -5.0), 8.0)
                .excluding(first),
        );
        w.drop_view(dropped);
        w.refresh_views();

        let (w2, _) = decode(&encode(&w)).unwrap();
        assert_eq!(w2.lineage(), w.lineage());
        assert_eq!(w2.tick(), w.tick());
        assert_eq!(
            w2.indexed_components().collect::<Vec<_>>(),
            w.indexed_components().collect::<Vec<_>>()
        );
        // pre-encode handles resolve against the decoded world
        for v in [wounded, near] {
            assert!(w2.has_view(v));
            assert_eq!(w2.view_rows(v), w.view_rows(v));
            assert_eq!(w2.view_query(v), w.view_query(v));
            assert!(w2.view_changelog(v).is_empty(), "changelogs re-anchor");
        }
        assert!(!w2.has_view(dropped), "burned slots stay burned");
        assert_eq!(w2.export_catalog(), w.export_catalog());
        // probe equivalence on the rebuilt index
        let q = Query::select().filter("hp", CmpOp::Ge, Value::Float(50.0));
        assert_eq!(q.run(&w2), q.run_scan(&w2));
        assert_eq!(q.run(&w2), q.run(&w));
    }

    #[test]
    fn decoded_views_stay_live_under_new_writes() {
        use gamedb_content::CmpOp;
        let mut w = sample_world();
        let v = w.register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(25.0)));
        let (mut w2, _) = decode(&encode(&w)).unwrap();
        let e = w2.entities().next().unwrap();
        w2.set_f32(e, "hp", 1.0).unwrap();
        w2.refresh_views();
        assert!(w2.view_contains(v, e), "restored view tracks new writes");
        assert_eq!(
            w2.view_rows(v).to_vec(),
            w2.view_query(v).run_scan(&w2),
            "restored view agrees with the scan oracle"
        );
    }

    #[test]
    fn plan_views_roundtrip_and_stay_live() {
        use gamedb_content::CmpOp;
        let mut w = sample_world();
        w.define_component("team", ValueType::Int).unwrap();
        for (i, e) in w.entities().collect::<Vec<_>>().into_iter().enumerate() {
            w.set(e, "team", Value::Int((i % 3) as i64)).unwrap();
        }
        let join = w
            .register_view_plan(ViewPlan::join(
                PlanNode::scan(Query::select().filter("alive", CmpOp::Eq, Value::Bool(true))),
                PlanNode::scan(Query::select()),
                JoinOn::Eq {
                    left: "team".into(),
                    right: "team".into(),
                },
            ))
            .unwrap();
        let wealth = w
            .register_view_plan(
                Query::select()
                    .into_grouped_plan("team", AggFn::Sum("gold".into()))
                    .unwrap(),
            )
            .unwrap();

        let (mut w2, _) = decode(&encode(&w)).unwrap();
        assert_eq!(w2.view_plan(join), w.view_plan(join));
        assert_eq!(w2.view_pairs(join), w.view_pairs(join));
        assert_eq!(w2.view_groups(wealth), w.view_groups(wealth));
        assert_eq!(w2.export_catalog(), w.export_catalog());

        // restored operator trees keep maintaining incrementally
        let e = w2.entities().next().unwrap();
        w2.set(e, "gold", Value::Int(10_000)).unwrap();
        w2.refresh_views();
        assert_eq!(
            w2.view_output(wealth),
            w2.view_plan(wealth).unwrap().evaluate(&w2).unwrap(),
            "restored group view agrees with forced recompute"
        );
        assert_eq!(
            w2.view_output(join),
            w2.view_plan(join).unwrap().evaluate(&w2).unwrap(),
            "restored join view agrees with forced recompute"
        );
    }

    #[test]
    fn legacy_v3_snapshots_still_decode() {
        use gamedb_content::CmpOp;
        let mut w = sample_world();
        let v = w.register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(100.0)));
        w.refresh_views();
        // rebuild the v4 frame under the v3 magic: identical body layout
        // minus the trailing plan-view section (the empty u32 count)
        let v4 = encode(&w);
        let len = u32::from_le_bytes(v4[20..24].try_into().unwrap()) as usize;
        let body = &v4[24..24 + len - 4];
        let mut legacy = BytesMut::with_capacity(body.len() + 28);
        legacy.put_u32_le(MAGIC_V3);
        legacy.extend_from_slice(&v4[4..20]); // tick + lineage
        legacy.put_u32_le(body.len() as u32);
        legacy.extend_from_slice(body);
        legacy.put_u32_le(checksum(body));
        let (w2, tick) = decode(&legacy).unwrap();
        assert_eq!(tick, w.tick());
        assert_eq!(w2.rows(), w.rows());
        assert_eq!(w2.view_rows(v), w.view_rows(v));
    }

    #[test]
    fn restored_ids_stay_valid_for_new_spawns() {
        let w = sample_world();
        let (mut w2, _) = decode(&encode(&w)).unwrap();
        // spawning after recovery must not collide with restored ids
        let fresh = w2.spawn_at(Vec2::ZERO);
        assert!(w2.is_live(fresh));
        assert_eq!(w2.len(), w.len() + 1);
    }
}
