//! Checkpoint policies and the write-behind game store.
//!
//! "Most games have an in-memory database layer that processes all
//! actions, and only writes to the database periodically. In some games,
//! these checkpoints can be as far as 10 minutes apart. … games need ways
//! to checkpoint intelligently, writing to the database when important
//! events are completed, and not just at regular intervals."
//!
//! [`GameStore`] is that in-memory layer; [`CheckpointPolicy`] chooses
//! when a snapshot goes to the durable backend: on a fixed period, when
//! accumulated event importance crosses a threshold (the "intelligent"
//! policy), or a hybrid of both.

use bytes::Bytes;
use gamedb_core::World;

use crate::backend::{Backend, BackendError};
use crate::delta::{self, RowHashes};
use crate::snapshot;

/// A game event's persistence importance, as scored by the game: routine
/// movement ~0, boss kills and rare loot high.
pub type Importance = f64;

/// When to write a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckpointPolicy {
    /// Every `period` seconds of game time.
    Periodic { period: f64 },
    /// When accumulated importance since the last checkpoint reaches
    /// `threshold` — important events flush promptly, quiet periods
    /// write nothing.
    EventDriven { threshold: Importance },
    /// Event-driven with a periodic backstop: checkpoint when either
    /// condition fires.
    Hybrid { period: f64, threshold: Importance },
}

/// Full snapshots every time, or a delta chain with periodic full
/// snapshots (the incremental mode every large MMO ends up with).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotMode {
    /// Every checkpoint is a complete world snapshot.
    Full,
    /// Deltas between full snapshots; every `full_every`-th checkpoint is
    /// full and prunes the delta chain behind it.
    Incremental { full_every: u64 },
}

impl SnapshotMode {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            SnapshotMode::Full => "full".into(),
            SnapshotMode::Incremental { full_every } => format!("incr(full every {full_every})"),
        }
    }
}

impl CheckpointPolicy {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            CheckpointPolicy::Periodic { period } => format!("periodic({period}s)"),
            CheckpointPolicy::EventDriven { threshold } => format!("event({threshold})"),
            CheckpointPolicy::Hybrid { period, threshold } => {
                format!("hybrid({period}s,{threshold})")
            }
        }
    }
}

/// Statistics from a store's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StoreStats {
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Bytes shipped to the backend.
    pub bytes_written: u64,
    /// Events observed.
    pub events: u64,
    /// Total importance observed.
    pub importance_observed: f64,
}

/// The in-memory database layer with write-behind checkpointing.
pub struct GameStore {
    /// The live world (all reads and writes hit memory).
    pub world: World,
    backend: Backend,
    policy: CheckpointPolicy,
    mode: SnapshotMode,
    /// row-hash baseline from the last checkpoint (incremental mode)
    hashes: RowHashes,
    /// game-time seconds
    now: f64,
    last_checkpoint_at: f64,
    importance_since_cp: Importance,
    next_seq: u64,
    /// stats
    pub stats: StoreStats,
}

impl GameStore {
    /// Wrap a world with a backend and a policy. Writes an initial
    /// checkpoint so recovery always has a base.
    pub fn new(
        world: World,
        backend: Backend,
        policy: CheckpointPolicy,
    ) -> Result<Self, BackendError> {
        Self::with_mode(world, backend, policy, SnapshotMode::Full)
    }

    /// Wrap a world, choosing full or incremental checkpoints.
    pub fn with_mode(
        world: World,
        mut backend: Backend,
        policy: CheckpointPolicy,
        mode: SnapshotMode,
    ) -> Result<Self, BackendError> {
        let data = snapshot::encode(&world);
        backend.put_snapshot(0, data);
        backend.flush()?;
        let hashes = match mode {
            SnapshotMode::Full => RowHashes::new(),
            SnapshotMode::Incremental { .. } => delta::row_hashes(&world),
        };
        Ok(GameStore {
            world,
            backend,
            policy,
            mode,
            hashes,
            now: 0.0,
            last_checkpoint_at: 0.0,
            importance_since_cp: 0.0,
            next_seq: 1,
            stats: StoreStats::default(),
        })
    }

    /// The snapshot mode in force.
    pub fn mode(&self) -> SnapshotMode {
        self.mode
    }

    /// Current game time (seconds).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Game time of the last durable checkpoint.
    pub fn last_checkpoint_at(&self) -> f64 {
        self.last_checkpoint_at
    }

    /// The policy in force.
    pub fn policy(&self) -> CheckpointPolicy {
        self.policy
    }

    /// Backend access (benchmarks read write volumes).
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Advance game time and report an event of the given importance;
    /// checkpoints when the policy says so. Returns `true` if a
    /// checkpoint was written.
    pub fn observe(&mut self, dt: f64, importance: Importance) -> Result<bool, BackendError> {
        self.now += dt;
        self.stats.events += 1;
        self.stats.importance_observed += importance;
        self.importance_since_cp += importance;
        let fire = match self.policy {
            CheckpointPolicy::Periodic { period } => {
                self.now - self.last_checkpoint_at >= period
            }
            CheckpointPolicy::EventDriven { threshold } => {
                self.importance_since_cp >= threshold
            }
            CheckpointPolicy::Hybrid { period, threshold } => {
                self.now - self.last_checkpoint_at >= period
                    || self.importance_since_cp >= threshold
            }
        };
        if fire {
            self.checkpoint()?;
        }
        Ok(fire)
    }

    /// Force a checkpoint now (server shutdown path). In incremental
    /// mode, writes a delta unless this sequence is due a full snapshot
    /// (which also prunes the delta chain it subsumes).
    pub fn checkpoint(&mut self) -> Result<(), BackendError> {
        let full_due = match self.mode {
            SnapshotMode::Full => true,
            SnapshotMode::Incremental { full_every } => {
                self.next_seq.is_multiple_of(full_every.max(1))
            }
        };
        let len = if full_due {
            let data: Bytes = snapshot::encode(&self.world);
            let len = data.len() as u64;
            self.backend.put_snapshot(self.next_seq, data);
            self.backend.flush()?;
            self.backend.prune_deltas_upto(self.next_seq)?;
            if matches!(self.mode, SnapshotMode::Incremental { .. }) {
                self.hashes = delta::row_hashes(&self.world);
            }
            len
        } else {
            let (data, fresh) = delta::encode_delta(&self.world, &self.hashes);
            let len = data.len() as u64;
            self.backend.put_delta(self.next_seq, data);
            self.backend.flush()?;
            self.hashes = fresh;
            len
        };
        self.next_seq += 1;
        self.last_checkpoint_at = self.now;
        self.importance_since_cp = 0.0;
        self.stats.checkpoints += 1;
        self.stats.bytes_written += len;
        Ok(())
    }

    /// Simulate a server crash followed by recovery from the backend.
    /// The world rolls back to the latest durable checkpoint — rows *and*
    /// catalog: secondary indexes rebuild, standing views re-materialize
    /// at their original slots (pre-crash view handles keep resolving),
    /// and the lineage and tick counter are restored. Returns the
    /// recovered store.
    pub fn crash_and_recover(mut self) -> Result<(GameStore, RecoveryReport), BackendError> {
        self.backend.crash();
        let (seq, data) = self.backend.latest_snapshot()?;
        let (mut world, _tick) = snapshot::decode(&data)
            .map_err(|e| BackendError::Io(std::io::Error::other(e.to_string())))?;
        // incremental mode: replay the delta chain after the snapshot
        let mut recovered_seq = seq;
        for dseq in self.backend.delta_seqs()? {
            if dseq > seq {
                let ddata = self.backend.read_delta(dseq)?;
                delta::apply_delta(&mut world, &ddata)
                    .map_err(|e| BackendError::Io(std::io::Error::other(e.to_string())))?;
                recovered_seq = dseq;
            }
        }
        // delta replay flowed through the restored views' delta stream:
        // fold it, then re-anchor changelogs at the recovery point so
        // subscribers are not handed pre-crash churn a second time
        world.refresh_views();
        world.reset_view_changelogs();
        let report = RecoveryReport {
            recovered_seq,
            lost_game_seconds: self.now - self.last_checkpoint_at,
            lost_importance: self.importance_since_cp,
        };
        let hashes = match self.mode {
            SnapshotMode::Full => RowHashes::new(),
            SnapshotMode::Incremental { .. } => delta::row_hashes(&world),
        };
        let store = GameStore {
            world,
            backend: self.backend,
            policy: self.policy,
            mode: self.mode,
            hashes,
            now: self.last_checkpoint_at,
            last_checkpoint_at: self.last_checkpoint_at,
            importance_since_cp: 0.0,
            next_seq: self.next_seq,
            stats: self.stats,
        };
        Ok((store, report))
    }
}

/// What a crash cost the players.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryReport {
    /// Snapshot sequence recovered from.
    pub recovered_seq: u64,
    /// Game seconds of progress rolled back.
    pub lost_game_seconds: f64,
    /// Importance (boss kills, rare loot…) rolled back — what the paper
    /// means by "repeat a difficult fight or lose a particularly
    /// desirable reward".
    pub lost_importance: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::temp_dir;
    use gamedb_content::ValueType;
    use gamedb_spatial::Vec2;

    fn store(policy: CheckpointPolicy, label: &str) -> GameStore {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let e = w.spawn_at(Vec2::ZERO);
        w.set_f32(e, "hp", 100.0).unwrap();
        let backend = Backend::open(temp_dir(label)).unwrap();
        GameStore::new(w, backend, policy).unwrap()
    }

    #[test]
    fn periodic_checkpoints_fire_on_schedule() {
        let mut s = store(CheckpointPolicy::Periodic { period: 10.0 }, "cp1");
        assert!(!s.observe(4.0, 0.0).unwrap());
        assert!(!s.observe(4.0, 100.0).unwrap(), "importance ignored");
        assert!(s.observe(4.0, 0.0).unwrap(), "12s elapsed >= 10s");
        assert_eq!(s.stats.checkpoints, 1);
        assert!(!s.observe(9.0, 0.0).unwrap());
        assert!(s.observe(1.5, 0.0).unwrap());
    }

    #[test]
    fn event_driven_fires_on_importance() {
        let mut s = store(CheckpointPolicy::EventDriven { threshold: 10.0 }, "cp2");
        assert!(!s.observe(1000.0, 1.0).unwrap(), "time ignored");
        assert!(!s.observe(1.0, 5.0).unwrap());
        assert!(s.observe(1.0, 4.0).unwrap(), "accumulated 10");
        // importance resets after checkpoint
        assert!(!s.observe(1.0, 9.9).unwrap());
        assert!(s.observe(1.0, 50.0).unwrap(), "boss kill flushes at once");
    }

    #[test]
    fn hybrid_fires_on_either() {
        let mut s = store(
            CheckpointPolicy::Hybrid {
                period: 10.0,
                threshold: 5.0,
            },
            "cp3",
        );
        assert!(s.observe(1.0, 6.0).unwrap(), "importance path");
        assert!(s.observe(11.0, 0.0).unwrap(), "period path");
    }

    #[test]
    fn crash_rolls_back_to_checkpoint() {
        let mut s = store(CheckpointPolicy::Periodic { period: 5.0 }, "cp4");
        let e = s.world.entities().next().unwrap();
        s.world.set_f32(e, "hp", 50.0).unwrap();
        s.observe(6.0, 1.0).unwrap(); // fires: hp=50 durable
        s.world.set_f32(e, "hp", 7.0).unwrap();
        s.observe(2.0, 3.0).unwrap(); // no checkpoint
        let (recovered, report) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world.get_f32(e, "hp"), Some(50.0));
        assert!((report.lost_game_seconds - 2.0).abs() < 1e-9);
        assert!((report.lost_importance - 3.0).abs() < 1e-9);
    }

    #[test]
    fn recovery_without_any_checkpoint_uses_initial() {
        let s = store(CheckpointPolicy::Periodic { period: 1e9 }, "cp5");
        let e = s.world.entities().next().unwrap();
        let (recovered, report) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world.get_f32(e, "hp"), Some(100.0));
        assert_eq!(report.recovered_seq, 0);
    }

    #[test]
    fn event_driven_loses_less_importance_than_periodic() {
        // identical event streams; crash at the end; compare lost
        // importance — the E9 claim in miniature
        let run = |policy, label: &str| {
            let mut s = store(policy, label);
            // routine play with one huge event in the middle
            for i in 0..50 {
                let imp = if i == 25 { 100.0 } else { 0.1 };
                s.observe(1.0, imp).unwrap();
            }
            let (_, report) = s.crash_and_recover().unwrap();
            report.lost_importance
        };
        let periodic = run(CheckpointPolicy::Periodic { period: 60.0 }, "cp6a");
        let event = run(CheckpointPolicy::EventDriven { threshold: 50.0 }, "cp6b");
        assert!(
            event < periodic,
            "event-driven {event} must lose less than periodic {periodic}"
        );
        // the big event itself is never lost by the event policy
        assert!(event < 100.0);
    }

    #[test]
    fn incremental_recovery_replays_delta_chain() {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let ids: Vec<_> = (0..20)
            .map(|i| {
                let e = w.spawn_at(Vec2::new(i as f32, 0.0));
                w.set_f32(e, "hp", 100.0).unwrap();
                e
            })
            .collect();
        let backend = Backend::open(temp_dir("cp-incr")).unwrap();
        let mut s = GameStore::with_mode(
            w,
            backend,
            CheckpointPolicy::Periodic { period: 1.0 },
            SnapshotMode::Incremental { full_every: 100 },
        )
        .unwrap();
        // three checkpoints, all deltas (full_every=100)
        for (round, &id) in ids.iter().enumerate().take(3) {
            s.world.set_f32(id, "hp", round as f32).unwrap();
            s.observe(1.5, 0.0).unwrap();
        }
        assert_eq!(s.backend().delta_seqs().unwrap().len(), 3);
        // mutate after the last checkpoint: this part is lost
        s.world.set_f32(ids[10], "hp", 1.0).unwrap();
        let (recovered, report) = s.crash_and_recover().unwrap();
        assert_eq!(report.recovered_seq, 3);
        assert_eq!(recovered.world.get_f32(ids[0], "hp"), Some(0.0));
        assert_eq!(recovered.world.get_f32(ids[1], "hp"), Some(1.0));
        assert_eq!(recovered.world.get_f32(ids[2], "hp"), Some(2.0));
        assert_eq!(recovered.world.get_f32(ids[10], "hp"), Some(100.0), "lost");
    }

    #[test]
    fn full_checkpoint_prunes_delta_chain() {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let e = w.spawn_at(Vec2::ZERO);
        w.set_f32(e, "hp", 10.0).unwrap();
        let backend = Backend::open(temp_dir("cp-prune")).unwrap();
        let mut s = GameStore::with_mode(
            w,
            backend,
            CheckpointPolicy::Periodic { period: 1.0 },
            SnapshotMode::Incremental { full_every: 3 },
        )
        .unwrap();
        // seq 1, 2 are deltas; seq 3 is full and prunes them
        for i in 0..3 {
            s.world.set_f32(e, "hp", i as f32).unwrap();
            s.observe(1.5, 0.0).unwrap();
        }
        assert!(s.backend().delta_seqs().unwrap().is_empty());
        assert_eq!(s.backend().snapshot_seqs().unwrap(), vec![0, 3]);
        let (recovered, report) = s.crash_and_recover().unwrap();
        assert_eq!(report.recovered_seq, 3);
        assert_eq!(recovered.world.get_f32(e, "hp"), Some(2.0));
    }

    #[test]
    fn incremental_writes_far_fewer_bytes_on_low_churn() {
        // 500 entities, one changes per checkpoint: deltas should be tiny
        let build = || {
            let mut w = World::new();
            w.define_component("hp", ValueType::Float).unwrap();
            let ids: Vec<_> = (0..500)
                .map(|i| {
                    let e = w.spawn_at(Vec2::new(i as f32, 0.0));
                    w.set_f32(e, "hp", 100.0).unwrap();
                    e
                })
                .collect();
            (w, ids)
        };
        let run = |mode, label: &str| {
            let (w, ids) = build();
            let backend = Backend::open(temp_dir(label)).unwrap();
            let mut s = GameStore::with_mode(
                w,
                backend,
                CheckpointPolicy::Periodic { period: 1.0 },
                mode,
            )
            .unwrap();
            for &id in ids.iter().take(10) {
                s.world.set_f32(id, "hp", 1.0).unwrap();
                s.observe(1.5, 0.0).unwrap();
            }
            s.stats.bytes_written
        };
        let full = run(SnapshotMode::Full, "cp-bytes-full");
        let incr = run(SnapshotMode::Incremental { full_every: 1000 }, "cp-bytes-incr");
        assert!(
            incr * 10 < full,
            "incremental {incr} bytes vs full {full} bytes"
        );
    }

    #[test]
    fn recovery_restores_catalog_through_delta_chain() {
        use gamedb_content::{CmpOp, Value};
        use gamedb_core::{IndexKind, Query};
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let ids: Vec<_> = (0..10)
            .map(|i| {
                let e = w.spawn_at(Vec2::new(i as f32, 0.0));
                w.set_f32(e, "hp", 100.0).unwrap();
                e
            })
            .collect();
        w.create_index("hp", IndexKind::Sorted).unwrap();
        let wounded =
            w.register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(50.0)));
        let backend = Backend::open(temp_dir("cp-catalog")).unwrap();
        let mut s = GameStore::with_mode(
            w,
            backend,
            CheckpointPolicy::Periodic { period: 1.0 },
            SnapshotMode::Incremental { full_every: 100 },
        )
        .unwrap();
        // two delta checkpoints; the second leaves ids[1] wounded
        s.world.set_f32(ids[0], "hp", 80.0).unwrap();
        s.observe(1.5, 0.0).unwrap();
        s.world.set_f32(ids[1], "hp", 10.0).unwrap();
        s.observe(1.5, 0.0).unwrap();
        // post-checkpoint damage is lost in the crash
        s.world.set_f32(ids[2], "hp", 5.0).unwrap();

        let (recovered, report) = s.crash_and_recover().unwrap();
        assert_eq!(report.recovered_seq, 2);
        let w = &recovered.world;
        assert_eq!(
            w.indexed_components().collect::<Vec<_>>(),
            vec![("hp", IndexKind::Sorted)]
        );
        // the pre-crash handle reads the recovered view; delta-chain
        // replay flowed through view maintenance
        assert!(w.has_view(wounded));
        assert_eq!(w.view_rows(wounded), &[ids[1]]);
        assert!(
            w.view_changelog(wounded).is_empty(),
            "changelogs re-anchor at the recovery point"
        );
        let q = Query::select().filter("hp", CmpOp::Lt, Value::Float(90.0));
        assert_eq!(q.run(w), q.run_scan(w), "rebuilt index answers exactly");
    }

    #[test]
    fn catalog_changes_after_base_snapshot_survive_delta_recovery() {
        use gamedb_content::{CmpOp, Value};
        use gamedb_core::{IndexKind, Query};
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let e = w.spawn_at(Vec2::ZERO);
        w.set_f32(e, "hp", 5.0).unwrap();
        // this index exists at the base snapshot, then is dropped later
        w.create_index("hp", IndexKind::Hash).unwrap();
        let doomed = w.register_view(Query::select());
        let backend = Backend::open(temp_dir("cp-catalog-delta")).unwrap();
        let mut s = GameStore::with_mode(
            w,
            backend,
            CheckpointPolicy::Periodic { period: 1.0 },
            SnapshotMode::Incremental { full_every: 100 },
        )
        .unwrap();
        // catalog churn strictly after the base snapshot, before a
        // durable *delta* checkpoint: drop the old derived state,
        // register new, advance the tick
        s.world.drop_index("hp");
        s.world.drop_view(doomed);
        s.world.create_index("hp", IndexKind::Sorted).unwrap();
        let wounded = s
            .world
            .register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(50.0)));
        s.world.advance_tick_to(9);
        s.observe(1.5, 0.0).unwrap(); // delta checkpoint seq 1

        let (recovered, report) = s.crash_and_recover().unwrap();
        assert_eq!(report.recovered_seq, 1);
        let w = &recovered.world;
        assert_eq!(w.tick(), 9, "tick advances past the base snapshot");
        assert_eq!(
            w.indexed_components().collect::<Vec<_>>(),
            vec![("hp", IndexKind::Sorted)],
            "post-snapshot index lifecycle recovers from the delta"
        );
        assert!(!w.has_view(doomed), "view dropped after the base stays dropped");
        assert!(w.has_view(wounded), "view registered after the base survives");
        assert_eq!(w.view_rows(wounded), &[e]);
    }

    #[test]
    fn recovery_restores_tick_counter() {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.advance_tick_to(42);
        let backend = Backend::open(temp_dir("cp-tick")).unwrap();
        let mut s =
            GameStore::new(w, backend, CheckpointPolicy::Periodic { period: 5.0 }).unwrap();
        s.world.advance_tick_to(45);
        s.observe(6.0, 0.0).unwrap(); // checkpoint at tick 45
        s.world.advance_tick_to(50); // lost in the crash
        let (recovered, _) = s.crash_and_recover().unwrap();
        assert_eq!(recovered.world.tick(), 45, "tick rolls back to the checkpoint");
    }

    #[test]
    fn stats_accumulate() {
        let mut s = store(CheckpointPolicy::Periodic { period: 2.0 }, "cp7");
        for _ in 0..10 {
            s.observe(1.0, 0.5).unwrap();
        }
        assert_eq!(s.stats.events, 10);
        assert!((s.stats.importance_observed - 5.0).abs() < 1e-9);
        assert!(s.stats.checkpoints >= 4);
        assert!(s.stats.bytes_written > 0);
    }
}
