//! Write-ahead logging of world mutations between checkpoints.
//!
//! Snapshot-only persistence (the paper's periodic checkpoints) loses
//! everything since the last snapshot. A WAL closes that gap: each world
//! mutation appends a small redo record; recovery loads the last snapshot
//! and replays the log tail. The cost is a durable write per mutation
//! batch instead of per checkpoint — exactly the trade the experiment
//! suite prices against checkpoint policies (E9's `wal` row).
//!
//! Records are length-prefixed and checksummed; a torn tail (crash mid-
//! append) is detected and cleanly ignored, so recovery is always to a
//! record boundary.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gamedb_content::{Value, ValueType};
use gamedb_core::{
    Change, ChangeOp, ComponentId, CoreError, EntityId, IndexKind, Query, ViewPlan, World,
};
use gamedb_spatial::Vec2;

use crate::snapshot::{
    checksum, get_plan, get_query, get_str, get_value, kind_tag, put_plan, put_query, put_str,
    put_value, tag_kind, tag_type_pub, type_tag_pub, SnapshotError,
};

/// How a WAL record names a component: by interned id (the current
/// framing — a 1-byte varint for the first 128 columns) or by name (the
/// pre-interning framing, kept decodable so old logs replay
/// bit-identically). Encoding preserves the form, so re-framing a
/// legacy log (compaction) never silently upgrades records whose
/// interner table is not durable.
#[derive(Debug, Clone, PartialEq)]
pub enum CompRef {
    /// Interned column id; resolved against the recovering world's
    /// interner (snapshot table + preceding [`WalRecord::Define`]s).
    Id(ComponentId),
    /// Legacy string-named record.
    Name(String),
}

impl From<&str> for CompRef {
    fn from(s: &str) -> Self {
        CompRef::Name(s.to_string())
    }
}

impl From<String> for CompRef {
    fn from(s: String) -> Self {
        CompRef::Name(s)
    }
}

impl From<ComponentId> for CompRef {
    fn from(id: ComponentId) -> Self {
        CompRef::Id(id)
    }
}

impl CompRef {
    /// Resolve to a component name against `world`. Legacy refs carry
    /// the name; interned refs require the world's table to know the id
    /// (a `Define` record or the snapshot schema always precedes use).
    fn resolve<'a>(&'a self, world: &'a World) -> Result<&'a str, CoreError> {
        match self {
            CompRef::Name(n) => Ok(n.as_str()),
            CompRef::Id(id) => world
                .component_name(*id)
                .ok_or_else(|| CoreError::UnknownComponent(format!("{id}"))),
        }
    }
}

/// LEB128 varint for component ids: 1 byte for the first 128 columns.
pub(crate) fn put_varint(buf: &mut BytesMut, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

pub(crate) fn get_varint(buf: &mut Bytes) -> Result<u32, SnapshotError> {
    let mut v: u32 = 0;
    for shift in (0..35).step_by(7) {
        if buf.remaining() < 1 {
            return Err(SnapshotError::Truncated);
        }
        let byte = buf.get_u8();
        v |= ((byte & 0x7f) as u32) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(SnapshotError::Corrupt("varint overruns u32".into()))
}

/// Encoded length of a varint (wire-size accounting).
pub fn varint_len(v: u32) -> usize {
    match v {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

/// One redo record.
///
/// Beyond row mutations, the log carries **catalog records**: index and
/// standing-view lifecycle operations performed since the last
/// checkpoint. Without them, a recovered world would come back with its
/// rows but without its access paths and subscriptions — a different
/// database wearing the same data.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Set a component (also used for position updates).
    Set {
        entity: EntityId,
        component: CompRef,
        value: Value,
    },
    /// Spawn an entity at a position with a specific id.
    Spawn { entity: EntityId, x: f32, y: f32 },
    /// Despawn an entity.
    Despawn { entity: EntityId },
    /// Marks a completed checkpoint: records before this point are
    /// superseded by snapshot `seq`.
    CheckpointMark { seq: u64 },
    /// Remove a component from an entity.
    RemoveComponent { entity: EntityId, component: CompRef },
    /// Define a component column at an exact interned id — the durable
    /// half of the interner for components defined after the last
    /// snapshot (the snapshot schema, written in id order, carries the
    /// rest). Always precedes the first interned record naming the id.
    Define {
        component: ComponentId,
        name: String,
        ty: ValueType,
    },
    /// Create a secondary index on a component.
    CreateIndex { component: CompRef, kind: IndexKind },
    /// Drop the secondary index on a component.
    DropIndex { component: CompRef },
    /// Register a standing view at an exact slot. Replay re-materializes
    /// it from post-replay row state; the slot is recorded so pre-crash
    /// [`gamedb_core::ViewId`] handles keep resolving after recovery.
    RegisterView { slot: u32, query: Query },
    /// Register an operator-tree (differential) view at a slot.
    RegisterPlanView { slot: u32, plan: ViewPlan },
    /// Drop the standing view at a slot (either kind).
    DropView { slot: u32 },
    /// Move a spatial view's disk (interest bubbles following a focus).
    RetargetView { slot: u32, x: f32, y: f32, radius: f32 },
    /// Advance the tick counter to an absolute value, so recovered
    /// worlds agree with the oracle on *when* they are — threshold
    /// watchers and per-tick changelogs key off this.
    TickTo { tick: u64 },
    /// Bring an entity to life with an exact id and **no** position (the
    /// redo of `World::spawn`; positioned spawns arrive as a `Restore`
    /// followed by a `Set` of `pos`, which is how the change stream
    /// records them).
    Restore { entity: EntityId },
    /// One group-committed batch: every op of one change-stream segment
    /// in one frame. The frame checksum covers the whole batch, so a
    /// torn or corrupt batch loses *all* of its ops — batch commits are
    /// atomic at the durability layer.
    Batch { ops: Vec<WalRecord> },
}

const TAG_SET: u8 = 1;
const TAG_SPAWN: u8 = 2;
const TAG_DESPAWN: u8 = 3;
const TAG_MARK: u8 = 4;
const TAG_REMOVE: u8 = 5;
const TAG_CREATE_INDEX: u8 = 6;
const TAG_DROP_INDEX: u8 = 7;
const TAG_REGISTER_VIEW: u8 = 8;
const TAG_DROP_VIEW: u8 = 9;
const TAG_RETARGET_VIEW: u8 = 10;
const TAG_TICK: u8 = 11;
const TAG_BATCH: u8 = 12;
const TAG_RESTORE: u8 = 13;
// interned framing (ISSUE-5): component ids as varints instead of
// length-prefixed names; tags 1/5/6/7 remain decodable for old logs
const TAG_DEFINE: u8 = 14;
const TAG_SET_ID: u8 = 15;
const TAG_REMOVE_ID: u8 = 16;
const TAG_CREATE_INDEX_ID: u8 = 17;
const TAG_DROP_INDEX_ID: u8 = 18;
const TAG_REGISTER_PLAN_VIEW: u8 = 19;

// value-type tags reuse the snapshot module's ordering
fn value_tag(v: &Value) -> u8 {
    match v {
        Value::Float(_) => 0,
        Value::Int(_) => 1,
        Value::Bool(_) => 2,
        Value::Str(_) => 3,
        Value::Vec2(..) => 4,
    }
}

fn tag_value_type(tag: u8) -> Result<gamedb_content::ValueType, SnapshotError> {
    use gamedb_content::ValueType::*;
    Ok(match tag {
        0 => Float,
        1 => Int,
        2 => Bool,
        3 => Str,
        4 => Vec2,
        t => return Err(SnapshotError::BadTypeTag(t)),
    })
}

impl WalRecord {
    /// Encode as a framed record: `len | payload | checksum(payload)`.
    pub fn encode(&self) -> Bytes {
        let mut payload = BytesMut::new();
        self.put_payload(&mut payload);
        let mut framed = BytesMut::with_capacity(payload.len() + 8);
        framed.put_u32_le(payload.len() as u32);
        let sum = checksum(&payload);
        framed.put_slice(&payload);
        framed.put_u32_le(sum);
        framed.freeze()
    }

    /// The record's payload bytes, unframed (batch members nest these).
    fn put_payload(&self, payload: &mut BytesMut) {
        match self {
            WalRecord::Set {
                entity,
                component,
                value,
            } => match component {
                CompRef::Id(id) => {
                    payload.put_u8(TAG_SET_ID);
                    payload.put_u64_le(entity.to_bits());
                    put_varint(payload, id.as_u32());
                    payload.put_u8(value_tag(value));
                    put_value(payload, value);
                }
                CompRef::Name(name) => {
                    payload.put_u8(TAG_SET);
                    payload.put_u64_le(entity.to_bits());
                    payload.put_u32_le(name.len() as u32);
                    payload.put_slice(name.as_bytes());
                    payload.put_u8(value_tag(value));
                    put_value(payload, value);
                }
            },
            WalRecord::Define {
                component,
                name,
                ty,
            } => {
                payload.put_u8(TAG_DEFINE);
                put_varint(payload, component.as_u32());
                put_str(payload, name);
                payload.put_u8(type_tag_pub(*ty));
            }
            WalRecord::Spawn { entity, x, y } => {
                payload.put_u8(TAG_SPAWN);
                payload.put_u64_le(entity.to_bits());
                payload.put_f32_le(*x);
                payload.put_f32_le(*y);
            }
            WalRecord::Despawn { entity } => {
                payload.put_u8(TAG_DESPAWN);
                payload.put_u64_le(entity.to_bits());
            }
            WalRecord::CheckpointMark { seq } => {
                payload.put_u8(TAG_MARK);
                payload.put_u64_le(*seq);
            }
            WalRecord::RemoveComponent { entity, component } => match component {
                CompRef::Id(id) => {
                    payload.put_u8(TAG_REMOVE_ID);
                    payload.put_u64_le(entity.to_bits());
                    put_varint(payload, id.as_u32());
                }
                CompRef::Name(name) => {
                    payload.put_u8(TAG_REMOVE);
                    payload.put_u64_le(entity.to_bits());
                    put_str(payload, name);
                }
            },
            WalRecord::CreateIndex { component, kind } => match component {
                CompRef::Id(id) => {
                    payload.put_u8(TAG_CREATE_INDEX_ID);
                    payload.put_u8(kind_tag(*kind));
                    put_varint(payload, id.as_u32());
                }
                CompRef::Name(name) => {
                    payload.put_u8(TAG_CREATE_INDEX);
                    payload.put_u8(kind_tag(*kind));
                    put_str(payload, name);
                }
            },
            WalRecord::DropIndex { component } => match component {
                CompRef::Id(id) => {
                    payload.put_u8(TAG_DROP_INDEX_ID);
                    put_varint(payload, id.as_u32());
                }
                CompRef::Name(name) => {
                    payload.put_u8(TAG_DROP_INDEX);
                    put_str(payload, name);
                }
            },
            WalRecord::RegisterView { slot, query } => {
                payload.put_u8(TAG_REGISTER_VIEW);
                payload.put_u32_le(*slot);
                put_query(payload, query);
            }
            WalRecord::RegisterPlanView { slot, plan } => {
                payload.put_u8(TAG_REGISTER_PLAN_VIEW);
                payload.put_u32_le(*slot);
                put_plan(payload, plan);
            }
            WalRecord::DropView { slot } => {
                payload.put_u8(TAG_DROP_VIEW);
                payload.put_u32_le(*slot);
            }
            WalRecord::RetargetView { slot, x, y, radius } => {
                payload.put_u8(TAG_RETARGET_VIEW);
                payload.put_u32_le(*slot);
                payload.put_f32_le(*x);
                payload.put_f32_le(*y);
                payload.put_f32_le(*radius);
            }
            WalRecord::TickTo { tick } => {
                payload.put_u8(TAG_TICK);
                payload.put_u64_le(*tick);
            }
            WalRecord::Restore { entity } => {
                payload.put_u8(TAG_RESTORE);
                payload.put_u64_le(entity.to_bits());
            }
            WalRecord::Batch { ops } => {
                payload.put_u8(TAG_BATCH);
                payload.put_u32_le(ops.len() as u32);
                for op in ops {
                    let mut inner = BytesMut::new();
                    op.put_payload(&mut inner);
                    payload.put_u32_le(inner.len() as u32);
                    payload.put_slice(&inner);
                }
            }
        }
    }

    fn decode_payload(mut p: Bytes) -> Result<WalRecord, SnapshotError> {
        if p.remaining() < 1 {
            return Err(SnapshotError::Truncated);
        }
        let tag = p.get_u8();
        macro_rules! need {
            ($n:expr) => {
                if p.remaining() < $n {
                    return Err(SnapshotError::Truncated);
                }
            };
        }
        Ok(match tag {
            TAG_SET => {
                need!(8 + 4);
                let entity = EntityId::from_bits(p.get_u64_le());
                let len = p.get_u32_le() as usize;
                need!(len + 1);
                let name_bytes = p.copy_to_bytes(len);
                let component = String::from_utf8(name_bytes.to_vec())
                    .map_err(|_| SnapshotError::Corrupt("non-utf8 component".into()))?;
                let vt = tag_value_type(p.get_u8())?;
                let value = get_value(&mut p, vt)?;
                WalRecord::Set {
                    entity,
                    component: CompRef::Name(component),
                    value,
                }
            }
            TAG_SET_ID => {
                need!(8);
                let entity = EntityId::from_bits(p.get_u64_le());
                let component = ComponentId::from_u32(get_varint(&mut p)?);
                need!(1);
                let vt = tag_value_type(p.get_u8())?;
                let value = get_value(&mut p, vt)?;
                WalRecord::Set {
                    entity,
                    component: CompRef::Id(component),
                    value,
                }
            }
            TAG_DEFINE => {
                let component = ComponentId::from_u32(get_varint(&mut p)?);
                let name = get_str(&mut p)?;
                need!(1);
                let ty = tag_type_pub(p.get_u8())?;
                WalRecord::Define {
                    component,
                    name,
                    ty,
                }
            }
            TAG_SPAWN => {
                need!(16);
                let entity = EntityId::from_bits(p.get_u64_le());
                let x = p.get_f32_le();
                let y = p.get_f32_le();
                WalRecord::Spawn { entity, x, y }
            }
            TAG_DESPAWN => {
                need!(8);
                WalRecord::Despawn {
                    entity: EntityId::from_bits(p.get_u64_le()),
                }
            }
            TAG_MARK => {
                need!(8);
                WalRecord::CheckpointMark {
                    seq: p.get_u64_le(),
                }
            }
            TAG_REMOVE => {
                need!(8);
                let entity = EntityId::from_bits(p.get_u64_le());
                WalRecord::RemoveComponent {
                    entity,
                    component: CompRef::Name(get_str(&mut p)?),
                }
            }
            TAG_REMOVE_ID => {
                need!(8);
                let entity = EntityId::from_bits(p.get_u64_le());
                WalRecord::RemoveComponent {
                    entity,
                    component: CompRef::Id(ComponentId::from_u32(get_varint(&mut p)?)),
                }
            }
            TAG_CREATE_INDEX => {
                need!(1);
                let kind = tag_kind(p.get_u8())?;
                WalRecord::CreateIndex {
                    component: CompRef::Name(get_str(&mut p)?),
                    kind,
                }
            }
            TAG_CREATE_INDEX_ID => {
                need!(1);
                let kind = tag_kind(p.get_u8())?;
                WalRecord::CreateIndex {
                    component: CompRef::Id(ComponentId::from_u32(get_varint(&mut p)?)),
                    kind,
                }
            }
            TAG_DROP_INDEX => WalRecord::DropIndex {
                component: CompRef::Name(get_str(&mut p)?),
            },
            TAG_DROP_INDEX_ID => WalRecord::DropIndex {
                component: CompRef::Id(ComponentId::from_u32(get_varint(&mut p)?)),
            },
            TAG_REGISTER_VIEW => {
                need!(4);
                let slot = p.get_u32_le();
                WalRecord::RegisterView {
                    slot,
                    query: get_query(&mut p)?,
                }
            }
            TAG_REGISTER_PLAN_VIEW => {
                need!(4);
                let slot = p.get_u32_le();
                WalRecord::RegisterPlanView {
                    slot,
                    plan: get_plan(&mut p)?,
                }
            }
            TAG_DROP_VIEW => {
                need!(4);
                WalRecord::DropView {
                    slot: p.get_u32_le(),
                }
            }
            TAG_RETARGET_VIEW => {
                need!(16);
                let slot = p.get_u32_le();
                let x = p.get_f32_le();
                let y = p.get_f32_le();
                let radius = p.get_f32_le();
                WalRecord::RetargetView { slot, x, y, radius }
            }
            TAG_TICK => {
                need!(8);
                WalRecord::TickTo {
                    tick: p.get_u64_le(),
                }
            }
            TAG_RESTORE => {
                need!(8);
                WalRecord::Restore {
                    entity: EntityId::from_bits(p.get_u64_le()),
                }
            }
            TAG_BATCH => {
                need!(4);
                let count = p.get_u32_le() as usize;
                let mut ops = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    need!(4);
                    let len = p.get_u32_le() as usize;
                    need!(len);
                    let inner = p.copy_to_bytes(len);
                    ops.push(WalRecord::decode_payload(inner)?);
                }
                WalRecord::Batch { ops }
            }
            t => return Err(SnapshotError::Corrupt(format!("unknown wal tag {t}"))),
        })
    }

    /// Apply a redo record to a world. **Redo is idempotent**: applying
    /// a record whose effect is already present (a spawn of a live
    /// entity with the exact same id, a duplicate index/view creation
    /// with an identical definition, a stale despawn) is a clean no-op.
    /// An at-least-once log append — the checksum-valid duplicated tail
    /// a retried write leaves behind — therefore recovers to the same
    /// world as an exactly-once log. Genuine conflicts (same slot,
    /// different definition) still error.
    pub fn apply(&self, world: &mut World) -> Result<(), CoreError> {
        match self {
            WalRecord::Set {
                entity,
                component,
                value,
            } => {
                // legacy string-named records auto-define missing
                // columns (pre-interning logs carried no Define
                // records); interned records resolve against the table
                // the snapshot + preceding Defines restored
                if let CompRef::Name(name) = component {
                    if world.component_type(name).is_none() && name != gamedb_core::POS {
                        world.define_component(name, value.value_type())?;
                    }
                }
                let name = component.resolve(world)?.to_string();
                world.set(*entity, &name, value.clone())
            }
            WalRecord::Define {
                component,
                name,
                ty,
            } => world.ensure_component_at(*component, name, *ty).map(|_| ()),
            WalRecord::Spawn { entity, x, y } => {
                if !world.is_live(*entity) {
                    world.restore_entity(*entity)?;
                }
                world.set_pos(*entity, Vec2::new(*x, *y))
            }
            WalRecord::Despawn { entity } => {
                world.despawn(*entity);
                Ok(())
            }
            WalRecord::CheckpointMark { .. } => Ok(()),
            WalRecord::RemoveComponent { entity, component } => {
                // a column the replay never (re)defined holds nothing to
                // remove; a stale entity id means the despawn already won
                let Ok(name) = component.resolve(world) else {
                    return Ok(());
                };
                if world.component_type(name).is_none() || !world.is_live(*entity) {
                    return Ok(());
                }
                let name = name.to_string();
                world.remove_component(*entity, &name).map(|_| ())
            }
            WalRecord::CreateIndex { component, kind } => {
                let name = component.resolve(world)?.to_string();
                world.ensure_index(&name, *kind).map(|_| ())
            }
            WalRecord::DropIndex { component } => {
                if let Ok(name) = component.resolve(world) {
                    let name = name.to_string();
                    world.drop_index(&name);
                }
                Ok(())
            }
            WalRecord::RegisterView { slot, query } => {
                world.import_view_at_slot(*slot, query.clone()).map(|_| ())
            }
            WalRecord::RegisterPlanView { slot, plan } => world
                .import_plan_view_at_slot(*slot, plan.clone())
                .map(|_| ()),
            WalRecord::DropView { slot } => {
                world.drop_view_slot(*slot);
                Ok(())
            }
            WalRecord::RetargetView { slot, x, y, radius } => {
                world.retarget_view_slot(*slot, Vec2::new(*x, *y), *radius);
                Ok(())
            }
            WalRecord::TickTo { tick } => {
                world.advance_tick_to(*tick);
                Ok(())
            }
            WalRecord::Restore { entity } => {
                if !world.is_live(*entity) {
                    world.restore_entity(*entity)?;
                }
                Ok(())
            }
            WalRecord::Batch { ops } => {
                for op in ops {
                    op.apply(world)?;
                }
                Ok(())
            }
        }
    }

    /// The redo record for one change-stream record — how the
    /// durability tap turns a pending segment into WAL ops. Only the
    /// redo image is kept (`new` values); the stream's `old` values
    /// exist for other consumers.
    pub fn from_change(change: &Change) -> WalRecord {
        match &change.op {
            ChangeOp::Set {
                id,
                component,
                new,
                ..
            } => WalRecord::Set {
                entity: *id,
                component: CompRef::Id(*component),
                value: new.clone(),
            },
            ChangeOp::Removed { id, component, .. } => WalRecord::RemoveComponent {
                entity: *id,
                component: CompRef::Id(*component),
            },
            ChangeOp::Spawned { id } => WalRecord::Restore { entity: *id },
            // the WAL needs only the redo image: the row the stream
            // carries exists for other consumers (wealth fold, deltas)
            ChangeOp::Despawned { id, .. } => WalRecord::Despawn { entity: *id },
            ChangeOp::ComponentDefined {
                component,
                name,
                ty,
            } => WalRecord::Define {
                component: *component,
                name: name.clone(),
                ty: *ty,
            },
            ChangeOp::CreateIndex { component, kind } => WalRecord::CreateIndex {
                component: CompRef::Id(*component),
                kind: *kind,
            },
            ChangeOp::DropIndex { component } => WalRecord::DropIndex {
                component: CompRef::Id(*component),
            },
            ChangeOp::RegisterView { slot, query } => WalRecord::RegisterView {
                slot: *slot,
                query: query.clone(),
            },
            ChangeOp::RegisterPlanView { slot, plan } => WalRecord::RegisterPlanView {
                slot: *slot,
                plan: plan.clone(),
            },
            ChangeOp::DropView { slot } => WalRecord::DropView { slot: *slot },
            ChangeOp::RetargetView { slot, x, y, radius } => WalRecord::RetargetView {
                slot: *slot,
                x: *x,
                y: *y,
                radius: *radius,
            },
            ChangeOp::TickTo { tick } => WalRecord::TickTo { tick: *tick },
        }
    }
}

/// Decode a log buffer into records, stopping cleanly at a torn tail.
///
/// Returns the records and the number of bytes of valid log consumed.
pub fn decode_log(data: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while data.len() - pos >= 8 {
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if data.len() - pos < 4 + len + 4 {
            break; // torn frame
        }
        let payload = &data[pos + 4..pos + 4 + len];
        let stored =
            u32::from_le_bytes(data[pos + 4 + len..pos + 8 + len].try_into().expect("4 bytes"));
        if checksum(payload) != stored {
            break; // corrupt tail
        }
        match WalRecord::decode_payload(Bytes::copy_from_slice(payload)) {
            Ok(r) => records.push(r),
            Err(_) => break,
        }
        pos += 8 + len;
    }
    (records, pos)
}

/// Replay a log tail onto a recovered snapshot world: only records after
/// the last `CheckpointMark { seq }` matching `snapshot_seq` are applied
/// (earlier records are already reflected in the snapshot).
///
/// **No matching mark ⇒ nothing replays.** Log appends are ordered, so a
/// record written after snapshot `seq` can only exist in the durable log
/// if the mark for `seq` made it there first; a missing mark means the
/// crash tore the log at (or before) the mark itself, and every
/// surviving record predates the snapshot. Replaying the whole log in
/// that situation — the previous behavior — re-applies history the
/// snapshot already contains, resurrecting despawned generations and
/// un-dropping views. The crash-point sweep in [`crate::crashpoint`]
/// exercises exactly this window.
///
/// Returns the number of records applied.
pub fn replay_after_checkpoint(
    world: &mut World,
    records: &[WalRecord],
    snapshot_seq: u64,
) -> Result<usize, CoreError> {
    // find the last mark for this snapshot
    let Some(start) = records
        .iter()
        .rposition(|r| matches!(r, WalRecord::CheckpointMark { seq } if *seq == snapshot_seq))
        .map(|i| i + 1)
    else {
        return Ok(0);
    };
    let mut applied = 0;
    for r in &records[start..] {
        r.apply(world)?;
        applied += 1;
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamedb_content::ValueType;

    fn sample_records() -> Vec<WalRecord> {
        use gamedb_content::CmpOp;
        let e = EntityId::from_bits(5 | (2u64 << 32));
        vec![
            WalRecord::Spawn {
                entity: e,
                x: 1.5,
                y: -2.0,
            },
            WalRecord::Set {
                entity: e,
                component: "hp".into(),
                value: Value::Float(77.5),
            },
            WalRecord::Set {
                entity: e,
                component: "name".into(),
                value: Value::Str("grünbart".into()),
            },
            WalRecord::CreateIndex {
                component: "hp".into(),
                kind: IndexKind::Sorted,
            },
            WalRecord::RegisterView {
                slot: 0,
                query: Query::select()
                    .filter("hp", CmpOp::Lt, Value::Float(50.0))
                    .within(Vec2::new(1.0, 2.0), 9.5)
                    .excluding(e),
            },
            WalRecord::RetargetView {
                slot: 0,
                x: -3.0,
                y: 4.0,
                radius: 2.5,
            },
            WalRecord::TickTo { tick: 17 },
            WalRecord::RemoveComponent {
                entity: e,
                component: "name".into(),
            },
            WalRecord::DropView { slot: 0 },
            WalRecord::DropIndex {
                component: "hp".into(),
            },
            WalRecord::CheckpointMark { seq: 3 },
            WalRecord::Despawn { entity: e },
            // the batch framing group commit writes: one frame, many ops
            WalRecord::Batch {
                ops: vec![
                    WalRecord::Restore { entity: e },
                    WalRecord::Set {
                        entity: e,
                        component: "hp".into(),
                        value: Value::Float(12.25),
                    },
                    WalRecord::Set {
                        entity: e,
                        component: "pos".into(),
                        value: Value::Vec2(4.0, -8.0),
                    },
                    WalRecord::TickTo { tick: 18 },
                ],
            },
            WalRecord::Restore { entity: e },
        ]
    }

    #[test]
    fn records_roundtrip() {
        let mut log = Vec::new();
        for r in sample_records() {
            log.extend_from_slice(&r.encode());
        }
        let (decoded, consumed) = decode_log(&log);
        assert_eq!(decoded, sample_records());
        assert_eq!(consumed, log.len());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let mut log = Vec::new();
        for r in sample_records() {
            log.extend_from_slice(&r.encode());
        }
        let full = decode_log(&log).0.len();
        // cut mid-record: every cut decodes a prefix, never errors
        for cut in [log.len() - 1, log.len() - 5, log.len() / 2, 3, 0] {
            let (records, consumed) = decode_log(&log[..cut]);
            assert!(records.len() <= full);
            assert!(consumed <= cut);
        }
    }

    #[test]
    fn corrupt_record_stops_decode() {
        let mut log = Vec::new();
        for r in sample_records() {
            log.extend_from_slice(&r.encode());
        }
        // flip a byte in the middle of the second record's payload
        let first_len = sample_records()[0].encode().len();
        log[first_len + 6] ^= 0xFF;
        let (records, _) = decode_log(&log);
        assert_eq!(records.len(), 1, "decode stops at the corrupt record");
    }

    #[test]
    fn apply_redo_records() {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let e = EntityId::from_bits(0);
        WalRecord::Spawn {
            entity: e,
            x: 3.0,
            y: 4.0,
        }
        .apply(&mut w)
        .unwrap();
        WalRecord::Set {
            entity: e,
            component: "hp".into(),
            value: Value::Float(10.0),
        }
        .apply(&mut w)
        .unwrap();
        assert_eq!(w.pos(e), Some(Vec2::new(3.0, 4.0)));
        assert_eq!(w.get_f32(e, "hp"), Some(10.0));
        WalRecord::Despawn { entity: e }.apply(&mut w).unwrap();
        assert!(!w.is_live(e));
    }

    #[test]
    fn apply_defines_missing_components() {
        let mut w = World::new();
        let e = EntityId::from_bits(0);
        WalRecord::Spawn {
            entity: e,
            x: 0.0,
            y: 0.0,
        }
        .apply(&mut w)
        .unwrap();
        WalRecord::Set {
            entity: e,
            component: "brand_new".into(),
            value: Value::Int(9),
        }
        .apply(&mut w)
        .unwrap();
        assert_eq!(w.get_i64(e, "brand_new"), Some(9));
    }

    #[test]
    fn replay_skips_records_before_checkpoint_mark() {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let e = w.spawn_at(Vec2::ZERO);
        w.set_f32(e, "hp", 50.0).unwrap(); // state as of snapshot 3

        let records = vec![
            // pre-checkpoint history that must NOT replay
            WalRecord::Set {
                entity: e,
                component: "hp".into(),
                value: Value::Float(1.0),
            },
            WalRecord::CheckpointMark { seq: 3 },
            // the tail to redo
            WalRecord::Set {
                entity: e,
                component: "hp".into(),
                value: Value::Float(42.0),
            },
        ];
        let applied = replay_after_checkpoint(&mut w, &records, 3).unwrap();
        assert_eq!(applied, 1);
        assert_eq!(w.get_f32(e, "hp"), Some(42.0));
    }

    #[test]
    fn replay_without_matching_mark_applies_nothing() {
        // a durable snapshot whose mark was torn out of the log: every
        // surviving record predates the snapshot, so replaying them
        // would re-apply history the snapshot already contains
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let e = w.spawn_at(Vec2::ZERO);
        w.set_f32(e, "hp", 50.0).unwrap(); // state as of snapshot 2
        let records = vec![
            WalRecord::Set {
                entity: e,
                component: "hp".into(),
                value: Value::Float(1.0),
            },
            WalRecord::CheckpointMark { seq: 1 },
            WalRecord::Set {
                entity: e,
                component: "hp".into(),
                value: Value::Float(2.0),
            },
        ];
        let applied = replay_after_checkpoint(&mut w, &records, 2).unwrap();
        assert_eq!(applied, 0, "no mark for seq 2: nothing may replay");
        assert_eq!(w.get_f32(e, "hp"), Some(50.0));
    }

    #[test]
    fn catalog_records_apply_and_maintain_derived_state() {
        use gamedb_content::CmpOp;
        let mut w = World::new();
        let e = EntityId::from_bits(0);
        let records = vec![
            WalRecord::Spawn {
                entity: e,
                x: 0.0,
                y: 0.0,
            },
            WalRecord::Set {
                entity: e,
                component: "hp".into(),
                value: Value::Float(5.0),
            },
            WalRecord::CreateIndex {
                component: "hp".into(),
                kind: IndexKind::Sorted,
            },
            WalRecord::RegisterView {
                slot: 0,
                query: Query::select().filter("hp", CmpOp::Lt, Value::Float(10.0)),
            },
            WalRecord::TickTo { tick: 4 },
        ];
        for r in &records {
            r.apply(&mut w).unwrap();
        }
        assert_eq!(w.tick(), 4);
        let v = w.view_id_at(0).unwrap();
        assert_eq!(w.view_rows(v), &[e]);
        let mut out = vec![];
        assert!(w.index_probe("hp", CmpOp::Lt, &Value::Float(10.0), &mut out));
        assert_eq!(out, vec![e]);
        // the restored view keeps tracking post-replay writes
        WalRecord::Set {
            entity: e,
            component: "hp".into(),
            value: Value::Float(50.0),
        }
        .apply(&mut w)
        .unwrap();
        w.refresh_views();
        assert!(w.view_rows(v).is_empty());
    }

    /// Satellite: a checksum-valid **duplicated tail** — what an
    /// at-least-once append retry leaves behind — must recover to the
    /// same world as the exactly-once log, for every record type.
    #[test]
    fn duplicated_tail_replays_idempotently() {
        let records = sample_records();
        for dup in 0..records.len() {
            // exactly-once replay of the prefix ending at `dup`
            let mut once = World::new();
            for r in &records[..=dup] {
                r.apply(&mut once).unwrap();
            }
            once.refresh_views();
            // at-least-once: the tail record is appended twice
            let mut twice = World::new();
            for r in &records[..=dup] {
                r.apply(&mut twice).unwrap();
            }
            records[dup]
                .apply(&mut twice)
                .unwrap_or_else(|err| panic!("duplicate of {:?} must be tolerated: {err}", records[dup]));
            twice.refresh_views();
            assert_eq!(once.rows(), twice.rows(), "tail: {:?}", records[dup]);
            assert_eq!(once.tick(), twice.tick());
            assert_eq!(
                once.export_catalog().indexes,
                twice.export_catalog().indexes
            );
            assert_eq!(once.export_catalog().views, twice.export_catalog().views);
        }
    }

    /// Satellite: a **bit flip inside any record** fails that record's
    /// checksum, so decode keeps exactly the preceding records — the
    /// corrupted one and everything after it never reach the world.
    #[test]
    fn mid_record_bit_flip_truncates_to_preceding_records() {
        let records = sample_records();
        let mut log = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            log.extend_from_slice(&r.encode());
            boundaries.push(log.len());
        }
        for (k, window) in boundaries.windows(2).enumerate() {
            let (start, end) = (window[0], window[1]);
            // flip one bit at every byte of record k: frame length,
            // payload, and trailing checksum alike
            for pos in start..end {
                for bit in [0u8, 3, 7] {
                    let mut bad = log.clone();
                    bad[pos] ^= 1 << bit;
                    let (decoded, consumed) = decode_log(&bad);
                    assert!(
                        decoded.len() <= k,
                        "flip at {pos} bit {bit}: record {k} or later survived corruption"
                    );
                    assert!(consumed <= start + (end - start));
                    // the surviving prefix is exactly the untouched records
                    if decoded.len() == k {
                        assert_eq!(decoded, records[..k].to_vec());
                    }
                }
            }
        }
    }
}
