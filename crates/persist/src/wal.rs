//! Write-ahead logging of world mutations between checkpoints.
//!
//! Snapshot-only persistence (the paper's periodic checkpoints) loses
//! everything since the last snapshot. A WAL closes that gap: each world
//! mutation appends a small redo record; recovery loads the last snapshot
//! and replays the log tail. The cost is a durable write per mutation
//! batch instead of per checkpoint — exactly the trade the experiment
//! suite prices against checkpoint policies (E9's `wal` row).
//!
//! Records are length-prefixed and checksummed; a torn tail (crash mid-
//! append) is detected and cleanly ignored, so recovery is always to a
//! record boundary.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gamedb_content::Value;
use gamedb_core::{CoreError, EntityId, World};
use gamedb_spatial::Vec2;

use crate::snapshot::{checksum, get_value, put_value, SnapshotError};

/// One redo record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Set a component (also used for position updates).
    Set {
        entity: EntityId,
        component: String,
        value: Value,
    },
    /// Spawn an entity at a position with a specific id.
    Spawn { entity: EntityId, x: f32, y: f32 },
    /// Despawn an entity.
    Despawn { entity: EntityId },
    /// Marks a completed checkpoint: records before this point are
    /// superseded by snapshot `seq`.
    CheckpointMark { seq: u64 },
}

const TAG_SET: u8 = 1;
const TAG_SPAWN: u8 = 2;
const TAG_DESPAWN: u8 = 3;
const TAG_MARK: u8 = 4;

// value-type tags reuse the snapshot module's ordering
fn value_tag(v: &Value) -> u8 {
    match v {
        Value::Float(_) => 0,
        Value::Int(_) => 1,
        Value::Bool(_) => 2,
        Value::Str(_) => 3,
        Value::Vec2(..) => 4,
    }
}

fn tag_value_type(tag: u8) -> Result<gamedb_content::ValueType, SnapshotError> {
    use gamedb_content::ValueType::*;
    Ok(match tag {
        0 => Float,
        1 => Int,
        2 => Bool,
        3 => Str,
        4 => Vec2,
        t => return Err(SnapshotError::BadTypeTag(t)),
    })
}

impl WalRecord {
    /// Encode as a framed record: `len | payload | checksum(payload)`.
    pub fn encode(&self) -> Bytes {
        let mut payload = BytesMut::new();
        match self {
            WalRecord::Set {
                entity,
                component,
                value,
            } => {
                payload.put_u8(TAG_SET);
                payload.put_u64_le(entity.to_bits());
                payload.put_u32_le(component.len() as u32);
                payload.put_slice(component.as_bytes());
                payload.put_u8(value_tag(value));
                put_value(&mut payload, value);
            }
            WalRecord::Spawn { entity, x, y } => {
                payload.put_u8(TAG_SPAWN);
                payload.put_u64_le(entity.to_bits());
                payload.put_f32_le(*x);
                payload.put_f32_le(*y);
            }
            WalRecord::Despawn { entity } => {
                payload.put_u8(TAG_DESPAWN);
                payload.put_u64_le(entity.to_bits());
            }
            WalRecord::CheckpointMark { seq } => {
                payload.put_u8(TAG_MARK);
                payload.put_u64_le(*seq);
            }
        }
        let mut framed = BytesMut::with_capacity(payload.len() + 8);
        framed.put_u32_le(payload.len() as u32);
        let sum = checksum(&payload);
        framed.put_slice(&payload);
        framed.put_u32_le(sum);
        framed.freeze()
    }

    fn decode_payload(mut p: Bytes) -> Result<WalRecord, SnapshotError> {
        if p.remaining() < 1 {
            return Err(SnapshotError::Truncated);
        }
        let tag = p.get_u8();
        macro_rules! need {
            ($n:expr) => {
                if p.remaining() < $n {
                    return Err(SnapshotError::Truncated);
                }
            };
        }
        Ok(match tag {
            TAG_SET => {
                need!(8 + 4);
                let entity = EntityId::from_bits(p.get_u64_le());
                let len = p.get_u32_le() as usize;
                need!(len + 1);
                let name_bytes = p.copy_to_bytes(len);
                let component = String::from_utf8(name_bytes.to_vec())
                    .map_err(|_| SnapshotError::Corrupt("non-utf8 component".into()))?;
                let vt = tag_value_type(p.get_u8())?;
                let value = get_value(&mut p, vt)?;
                WalRecord::Set {
                    entity,
                    component,
                    value,
                }
            }
            TAG_SPAWN => {
                need!(16);
                let entity = EntityId::from_bits(p.get_u64_le());
                let x = p.get_f32_le();
                let y = p.get_f32_le();
                WalRecord::Spawn { entity, x, y }
            }
            TAG_DESPAWN => {
                need!(8);
                WalRecord::Despawn {
                    entity: EntityId::from_bits(p.get_u64_le()),
                }
            }
            TAG_MARK => {
                need!(8);
                WalRecord::CheckpointMark {
                    seq: p.get_u64_le(),
                }
            }
            t => return Err(SnapshotError::Corrupt(format!("unknown wal tag {t}"))),
        })
    }

    /// Apply a redo record to a world. Replay is idempotent-friendly:
    /// spawning an entity that exists or despawning one that does not is
    /// a clean error callers may choose to tolerate.
    pub fn apply(&self, world: &mut World) -> Result<(), CoreError> {
        match self {
            WalRecord::Set {
                entity,
                component,
                value,
            } => {
                if world.component_type(component).is_none() && component != gamedb_core::POS {
                    world.define_component(component, value.value_type())?;
                }
                world.set(*entity, component, value.clone())
            }
            WalRecord::Spawn { entity, x, y } => {
                world.restore_entity(*entity)?;
                world.set_pos(*entity, Vec2::new(*x, *y))
            }
            WalRecord::Despawn { entity } => {
                world.despawn(*entity);
                Ok(())
            }
            WalRecord::CheckpointMark { .. } => Ok(()),
        }
    }
}

/// Decode a log buffer into records, stopping cleanly at a torn tail.
///
/// Returns the records and the number of bytes of valid log consumed.
pub fn decode_log(data: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while data.len() - pos >= 8 {
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if data.len() - pos < 4 + len + 4 {
            break; // torn frame
        }
        let payload = &data[pos + 4..pos + 4 + len];
        let stored =
            u32::from_le_bytes(data[pos + 4 + len..pos + 8 + len].try_into().expect("4 bytes"));
        if checksum(payload) != stored {
            break; // corrupt tail
        }
        match WalRecord::decode_payload(Bytes::copy_from_slice(payload)) {
            Ok(r) => records.push(r),
            Err(_) => break,
        }
        pos += 8 + len;
    }
    (records, pos)
}

/// Replay a log tail onto a recovered snapshot world: only records after
/// the last `CheckpointMark { seq }` matching `snapshot_seq` are applied
/// (earlier records are already reflected in the snapshot).
///
/// Returns the number of records applied.
pub fn replay_after_checkpoint(
    world: &mut World,
    records: &[WalRecord],
    snapshot_seq: u64,
) -> Result<usize, CoreError> {
    // find the last mark for this snapshot
    let start = records
        .iter()
        .rposition(|r| matches!(r, WalRecord::CheckpointMark { seq } if *seq == snapshot_seq))
        .map(|i| i + 1)
        .unwrap_or(0);
    let mut applied = 0;
    for r in &records[start..] {
        r.apply(world)?;
        applied += 1;
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamedb_content::ValueType;

    fn sample_records() -> Vec<WalRecord> {
        let e = EntityId::from_bits(5 | (2u64 << 32));
        vec![
            WalRecord::Spawn {
                entity: e,
                x: 1.5,
                y: -2.0,
            },
            WalRecord::Set {
                entity: e,
                component: "hp".into(),
                value: Value::Float(77.5),
            },
            WalRecord::Set {
                entity: e,
                component: "name".into(),
                value: Value::Str("grünbart".into()),
            },
            WalRecord::CheckpointMark { seq: 3 },
            WalRecord::Despawn { entity: e },
        ]
    }

    #[test]
    fn records_roundtrip() {
        let mut log = Vec::new();
        for r in sample_records() {
            log.extend_from_slice(&r.encode());
        }
        let (decoded, consumed) = decode_log(&log);
        assert_eq!(decoded, sample_records());
        assert_eq!(consumed, log.len());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let mut log = Vec::new();
        for r in sample_records() {
            log.extend_from_slice(&r.encode());
        }
        let full = decode_log(&log).0.len();
        // cut mid-record: every cut decodes a prefix, never errors
        for cut in [log.len() - 1, log.len() - 5, log.len() / 2, 3, 0] {
            let (records, consumed) = decode_log(&log[..cut]);
            assert!(records.len() <= full);
            assert!(consumed <= cut);
        }
    }

    #[test]
    fn corrupt_record_stops_decode() {
        let mut log = Vec::new();
        for r in sample_records() {
            log.extend_from_slice(&r.encode());
        }
        // flip a byte in the middle of the second record's payload
        let first_len = sample_records()[0].encode().len();
        log[first_len + 6] ^= 0xFF;
        let (records, _) = decode_log(&log);
        assert_eq!(records.len(), 1, "decode stops at the corrupt record");
    }

    #[test]
    fn apply_redo_records() {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let e = EntityId::from_bits(0);
        WalRecord::Spawn {
            entity: e,
            x: 3.0,
            y: 4.0,
        }
        .apply(&mut w)
        .unwrap();
        WalRecord::Set {
            entity: e,
            component: "hp".into(),
            value: Value::Float(10.0),
        }
        .apply(&mut w)
        .unwrap();
        assert_eq!(w.pos(e), Some(Vec2::new(3.0, 4.0)));
        assert_eq!(w.get_f32(e, "hp"), Some(10.0));
        WalRecord::Despawn { entity: e }.apply(&mut w).unwrap();
        assert!(!w.is_live(e));
    }

    #[test]
    fn apply_defines_missing_components() {
        let mut w = World::new();
        let e = EntityId::from_bits(0);
        WalRecord::Spawn {
            entity: e,
            x: 0.0,
            y: 0.0,
        }
        .apply(&mut w)
        .unwrap();
        WalRecord::Set {
            entity: e,
            component: "brand_new".into(),
            value: Value::Int(9),
        }
        .apply(&mut w)
        .unwrap();
        assert_eq!(w.get_i64(e, "brand_new"), Some(9));
    }

    #[test]
    fn replay_skips_records_before_checkpoint_mark() {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let e = w.spawn_at(Vec2::ZERO);
        w.set_f32(e, "hp", 50.0).unwrap(); // state as of snapshot 3

        let records = vec![
            // pre-checkpoint history that must NOT replay
            WalRecord::Set {
                entity: e,
                component: "hp".into(),
                value: Value::Float(1.0),
            },
            WalRecord::CheckpointMark { seq: 3 },
            // the tail to redo
            WalRecord::Set {
                entity: e,
                component: "hp".into(),
                value: Value::Float(42.0),
            },
        ];
        let applied = replay_after_checkpoint(&mut w, &records, 3).unwrap();
        assert_eq!(applied, 1);
        assert_eq!(w.get_f32(e, "hp"), Some(42.0));
    }

    #[test]
    fn replay_without_mark_applies_everything() {
        let mut w = World::new();
        let e = EntityId::from_bits(0);
        let records = vec![
            WalRecord::Spawn {
                entity: e,
                x: 0.0,
                y: 0.0,
            },
            WalRecord::Set {
                entity: e,
                component: "hp".into(),
                value: Value::Float(5.0),
            },
        ];
        let applied = replay_after_checkpoint(&mut w, &records, 0).unwrap();
        assert_eq!(applied, 2);
        assert_eq!(w.get_f32(e, "hp"), Some(5.0));
    }
}
