//! Property tests for incremental checkpoints: under any random sequence
//! of world mutations (set / spawn / despawn / clear), a chain of deltas
//! applied over the base world reproduces the live world exactly, and
//! snapshot-then-delta recovery equals direct recovery.

use gamedb_content::{Value, ValueType};
use gamedb_core::{EntityId, World};
use gamedb_persist::{apply_delta, encode_delta, row_hashes};
use gamedb_spatial::Vec2;
use proptest::prelude::*;

/// One random world mutation.
#[derive(Debug, Clone)]
enum Op {
    SetHp(usize, f32),
    SetGold(usize, i64),
    Move(usize, f32, f32),
    Despawn(usize),
    Spawn(f32, f32),
    ClearGold(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..32usize, 0.0f32..200.0).prop_map(|(i, v)| Op::SetHp(i, v)),
        (0..32usize, -50i64..500).prop_map(|(i, v)| Op::SetGold(i, v)),
        (0..32usize, -40.0f32..40.0, -40.0f32..40.0).prop_map(|(i, x, y)| Op::Move(i, x, y)),
        (0..32usize).prop_map(Op::Despawn),
        (-40.0f32..40.0, -40.0f32..40.0).prop_map(|(x, y)| Op::Spawn(x, y)),
        (0..32usize).prop_map(Op::ClearGold),
    ]
}

fn base_world() -> (World, Vec<EntityId>) {
    let mut w = World::new();
    w.define_component("hp", ValueType::Float).unwrap();
    w.define_component("gold", ValueType::Int).unwrap();
    let ids: Vec<EntityId> = (0..16)
        .map(|i| {
            let e = w.spawn_at(Vec2::new(i as f32 * 3.0, 0.0));
            w.set_f32(e, "hp", 100.0).unwrap();
            w.set(e, "gold", Value::Int(10)).unwrap();
            e
        })
        .collect();
    (w, ids)
}

fn apply_op(world: &mut World, live: &mut Vec<EntityId>, op: &Op) {
    match *op {
        Op::SetHp(i, v) => {
            if let Some(&e) = live.get(i % live.len().max(1)) {
                if world.is_live(e) {
                    world.set_f32(e, "hp", v).unwrap();
                }
            }
        }
        Op::SetGold(i, v) => {
            if let Some(&e) = live.get(i % live.len().max(1)) {
                if world.is_live(e) {
                    world.set(e, "gold", Value::Int(v)).unwrap();
                }
            }
        }
        Op::Move(i, x, y) => {
            if let Some(&e) = live.get(i % live.len().max(1)) {
                if world.is_live(e) {
                    world.set_pos(e, Vec2::new(x, y)).unwrap();
                }
            }
        }
        Op::Despawn(i) => {
            if live.len() > 2 {
                let e = live.remove(i % live.len());
                world.despawn(e);
            }
        }
        Op::Spawn(x, y) => {
            let e = world.spawn_at(Vec2::new(x, y));
            world.set_f32(e, "hp", 50.0).unwrap();
            live.push(e);
        }
        Op::ClearGold(i) => {
            if let Some(&e) = live.get(i % live.len().max(1)) {
                if world.is_live(e) && world.get(e, "gold").is_some() {
                    world.remove_component(e, "gold").unwrap();
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A chain of deltas (one per mutation burst) replayed over the base
    /// world reproduces the final world bit-for-bit.
    #[test]
    fn delta_chain_reproduces_any_history(
        bursts in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..12), 1..8),
    ) {
        let (mut world, mut live) = base_world();
        let mut recovered = world.clone();
        let mut hashes = row_hashes(&world);
        for burst in &bursts {
            for op in burst {
                apply_op(&mut world, &mut live, op);
            }
            let (delta, fresh) = encode_delta(&world, &hashes);
            hashes = fresh;
            apply_delta(&mut recovered, &delta).unwrap();
            prop_assert_eq!(recovered.rows(), world.rows());
        }
        // live sets agree too (rows() covers values; check identity)
        let a: Vec<EntityId> = world.entities().collect();
        let b: Vec<EntityId> = recovered.entities().collect();
        prop_assert_eq!(a, b);
    }

    /// An empty mutation burst yields a delta that changes nothing and is
    /// small (bounded by the schema header plus the constant catalog
    /// trailer — this world has no indexes or views, so the catalog is
    /// its fixed-size empty encoding).
    #[test]
    fn idle_deltas_are_tiny_and_inert(
        warmup in proptest::collection::vec(op_strategy(), 0..20),
    ) {
        let (mut world, mut live) = base_world();
        for op in &warmup {
            apply_op(&mut world, &mut live, op);
        }
        let hashes = row_hashes(&world);
        let (delta, fresh) = encode_delta(&world, &hashes);
        prop_assert_eq!(&hashes, &fresh);
        prop_assert!(delta.len() < 96, "idle delta was {} bytes", delta.len());
        let mut copy = world.clone();
        apply_delta(&mut copy, &delta).unwrap();
        prop_assert_eq!(copy.rows(), world.rows());
    }
}
