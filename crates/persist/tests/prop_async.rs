//! Property test for the async durability pipeline: under random
//! torn / bit-flip / duplicated-tail log faults at random byte offsets,
//! random group-commit policies, random queue bounds, and writer kills
//! (crashing without waiting), recovery always contains every commit at
//! or below the acked durable watermark (`last_durable()`) — and never
//! a partial batch frame.

use gamedb_content::{Value, ValueType};
use gamedb_core::World;
use gamedb_persist::{temp_dir, Backend, FaultKind, FlushPolicy, WalStore};
use gamedb_spatial::Vec2;
use proptest::prelude::*;

fn async_store(policy: FlushPolicy, queue: usize) -> WalStore {
    let mut w = World::new();
    w.define_component("hp", ValueType::Float).unwrap();
    w.define_component("gold", ValueType::Int).unwrap();
    let backend = Backend::open(temp_dir("prop-async")).unwrap();
    WalStore::new_async(w, backend, policy, queue).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The ack contract, adversarially: whatever the fault, the policy,
    /// the queue bound, and whether the workload waited before dying,
    /// the recovered world is an exact prefix of the commit history
    /// that covers everything at or below the durable watermark, with
    /// each commit's 3-op batch frame recovered atomically (all three
    /// ops or none).
    #[test]
    fn acked_seq_is_durable_under_faults(
        offset in 0u64..2500,
        kind in 0u8..3,
        every_ops in 1usize..16,
        delay_ticks in 1u64..4,
        queue in 1usize..8,
        commits in 5usize..40,
        wait_before_crash in any::<bool>(),
    ) {
        let mut s = async_store(FlushPolicy::flush_every(every_ops, delay_ticks), queue);
        let fault = match kind {
            0 => FaultKind::Torn,
            1 => FaultKind::BitFlip { bit: (offset % 8) as u8 },
            _ => FaultKind::DuplicatedTail,
        };
        s.backend_mut().schedule_log_fault(offset, fault);
        // commit k (1-based) = one 3-op batch frame: spawn entity k,
        // hp = k, gold = k — so the recovered entity set reads back as
        // the set of recovered commits
        let mut ids = Vec::new();
        for k in 1..=commits {
            let w = s.world_mut();
            let e = w.spawn_at(Vec2::new(k as f32, 0.0));
            w.set(e, "hp", Value::Float(k as f32)).unwrap();
            w.set(e, "gold", Value::Int(k as i64)).unwrap();
            ids.push(e);
            if s.commit().is_err() {
                // the writer died at the fired fault; from the
                // workload's view this is the crash
                break;
            }
        }
        if wait_before_crash {
            // Err once the fault has fired — the watermark still only
            // claims what flushed cleanly
            let _ = s.wait_durable(s.last_enqueued());
        }
        let acked = s.last_durable().as_u64();
        let enqueued = s.last_enqueued().as_u64();
        prop_assert!(acked <= enqueued, "watermark {acked} past enqueued {enqueued}");

        let (recovered, _) = s.crash_and_recover().unwrap();
        let w = recovered.world();
        let n = ids.iter().take_while(|&&e| w.is_live(e)).count();
        for (i, &e) in ids.iter().enumerate() {
            let k = i + 1;
            if k <= n {
                // batch atomicity: a recovered commit has all three ops
                prop_assert_eq!(w.get_f32(e, "hp"), Some(k as f32),
                    "commit {} recovered with a partial batch frame", k);
                prop_assert_eq!(w.get(e, "gold"), Some(Value::Int(k as i64)),
                    "commit {} recovered with a partial batch frame", k);
            } else {
                prop_assert!(!w.is_live(e),
                    "recovery must be a prefix: commit {} missing but commit {} present",
                    n + 1, k);
            }
        }
        // the headline: every acked commit is in the recovered prefix
        prop_assert!(
            n as u64 >= acked,
            "watermark acked {acked} commits but only {n} recovered"
        );
        // and a clean waited shutdown with no fired fault loses nothing
        if wait_before_crash && acked == enqueued {
            prop_assert_eq!(n as u64, enqueued, "drained store must lose zero commits");
        }
    }
}
