//! Property tests for the metrics registry — the algebra the cluster
//! report relies on:
//! * **deltas are additive**: for any interleaving of updates with two
//!   snapshot points, `base + (later − base) = later` for counters and
//!   histograms (so stitching interval deltas back together loses
//!   nothing);
//! * **merge is commutative and associative** across per-thread
//!   registries, so folding N nodes' snapshots into a cluster view is
//!   order-independent;
//! * concurrent updates from many threads are all accounted (nothing
//!   lost to the lock-free hot path).

use gamedb_metrics::{MetricValue, MetricsRegistry, Snapshot};
use proptest::prelude::*;

/// One randomized metric update.
#[derive(Debug, Clone)]
enum Update {
    Count(u8, u32),
    GaugeSet(u8, i32),
    GaugeAdd(u8, i16),
    Observe(u8, u32),
}

fn update_strategy() -> impl Strategy<Value = Update> {
    prop_oneof![
        (0u8..4, 0u32..1000).prop_map(|(k, n)| Update::Count(k, n)),
        (0u8..4, -500i32..500).prop_map(|(k, v)| Update::GaugeSet(k, v)),
        (0u8..4, -50i16..50).prop_map(|(k, d)| Update::GaugeAdd(k, d)),
        (0u8..4, 0u32..100_000).prop_map(|(k, v)| Update::Observe(k, v)),
    ]
}

fn apply(reg: &MetricsRegistry, u: &Update) {
    match u {
        Update::Count(k, n) => reg.counter(&format!("c{k}")).add(*n as u64),
        Update::GaugeSet(k, v) => reg.gauge(&format!("g{k}")).set(*v as i64),
        Update::GaugeAdd(k, d) => reg.gauge(&format!("g{k}")).add(*d as i64),
        Update::Observe(k, v) => reg
            .histogram(&format!("h{k}"), &[10, 100, 1000, 10_000])
            .observe(*v as u64),
    }
}

/// base + (later − base) must reproduce later exactly for counters and
/// histograms; gauges report the later level by definition.
fn assert_delta_additive(base: &Snapshot, later: &Snapshot) {
    let delta = later.delta(base);
    for (name, v) in later.iter() {
        match v {
            MetricValue::Counter(c) => {
                assert_eq!(base.counter(name) + delta.counter(name), *c, "counter {name}");
            }
            MetricValue::Gauge(g) => {
                assert_eq!(delta.gauge(name), *g, "gauge {name} keeps the later level");
            }
            MetricValue::Histogram(h) => {
                let d = delta.histogram(name).expect("delta has the histogram");
                let rebuilt = match base.histogram(name) {
                    Some(b) => {
                        let mut counts = b.counts.clone();
                        for (i, c) in d.counts.iter().enumerate() {
                            counts[i] += c;
                        }
                        (counts, b.count + d.count, b.sum + d.sum)
                    }
                    None => (d.counts.clone(), d.count, d.sum),
                };
                assert_eq!(rebuilt, (h.counts.clone(), h.count, h.sum), "histogram {name}");
            }
        }
    }
}

proptest! {
    #[test]
    fn snapshot_deltas_are_additive(
        before in proptest::collection::vec(update_strategy(), 0..40),
        after in proptest::collection::vec(update_strategy(), 0..40),
    ) {
        let reg = MetricsRegistry::new();
        for u in &before {
            apply(&reg, u);
        }
        let base = reg.snapshot();
        for u in &after {
            apply(&reg, u);
        }
        assert_delta_additive(&base, &reg.snapshot());
    }

    #[test]
    fn merge_is_commutative_and_associative(
        a in proptest::collection::vec(update_strategy(), 0..30),
        b in proptest::collection::vec(update_strategy(), 0..30),
        c in proptest::collection::vec(update_strategy(), 0..30),
    ) {
        // three independent "nodes" reporting overlapping metric names
        let snaps: Vec<Snapshot> = [&a, &b, &c]
            .iter()
            .map(|updates| {
                let reg = MetricsRegistry::new();
                for u in updates.iter() {
                    apply(&reg, u);
                }
                reg.snapshot()
            })
            .collect();
        let (sa, sb, sc) = (&snaps[0], &snaps[1], &snaps[2]);
        prop_assert_eq!(sa.merge(sb), sb.merge(sa));
        prop_assert_eq!(sa.merge(sb).merge(sc), sa.merge(&sb.merge(sc)));
        prop_assert_eq!(sc.merge(&sa.merge(sb)), sa.merge(sb).merge(sc));
    }

    #[test]
    fn threaded_updates_are_all_accounted(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(update_strategy(), 1..25), 2..5),
    ) {
        // Shared registry, one thread per update list: after joining,
        // counters and histograms must equal the sum every thread
        // contributed — the relaxed-atomic hot path drops nothing.
        let reg = MetricsRegistry::new();
        let handles: Vec<_> = per_thread
            .iter()
            .cloned()
            .map(|updates| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for u in &updates {
                        apply(&reg, u);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("updater thread panicked");
        }
        let snap = reg.snapshot();
        let all: Vec<&Update> = per_thread.iter().flatten().collect();
        for k in 0u8..4 {
            let expected: u64 = all
                .iter()
                .map(|u| match u {
                    Update::Count(key, n) if *key == k => *n as u64,
                    _ => 0,
                })
                .sum();
            prop_assert_eq!(snap.counter(&format!("c{k}")), expected);
            let observed: Vec<u64> = all
                .iter()
                .filter_map(|u| match u {
                    Update::Observe(key, v) if *key == k => Some(*v as u64),
                    _ => None,
                })
                .collect();
            match snap.histogram(&format!("h{k}")) {
                Some(h) => {
                    prop_assert_eq!(h.count, observed.len() as u64);
                    prop_assert_eq!(h.sum, observed.iter().sum::<u64>());
                }
                None => prop_assert!(observed.is_empty()),
            }
        }
        // per-thread snapshots merged equal the shared-registry totals
        // for counters/histograms when each thread had its own registry
        let merged = per_thread
            .iter()
            .map(|updates| {
                let reg = MetricsRegistry::new();
                for u in updates.iter() {
                    apply(&reg, u);
                }
                reg.snapshot()
            })
            .fold(Snapshot::default(), |acc, s| acc.merge(&s));
        for k in 0u8..4 {
            prop_assert_eq!(merged.counter(&format!("c{k}")), snap.counter(&format!("c{k}")));
        }
    }
}
