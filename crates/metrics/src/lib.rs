//! # gamedb-metrics
//!
//! The engine's observability surface: a lock-cheap registry of named
//! **counters**, **gauges**, and **fixed-bucket histograms**, threaded
//! through every subsystem as an optional handle. The paper's pitch is
//! that an MMO backend is a database problem — and databases are only
//! operable when their internals (queue depths, flush latencies, plan
//! choices, replication bytes) are exported as queryable facts rather
//! than log lines.
//!
//! ## Design
//!
//! * **Registration is locked, updates are not.** [`MetricsRegistry`]
//!   holds a name → metric map behind a mutex, but `counter` / `gauge` /
//!   `histogram` return cheap `Arc`-backed handles ([`Counter`],
//!   [`Gauge`], [`Histogram`]) that subsystems cache once at attach
//!   time. The hot path — a write record, a WAL flush — is a relaxed
//!   atomic op, no lock, no map lookup, no allocation.
//! * **Purely observational.** Handles never feed back into engine
//!   decisions; enabling metrics must leave a seeded workload
//!   bit-identical (enforced by `tests/metrics_transparency.rs` at the
//!   workspace root).
//! * **Snapshots are values.** [`MetricsRegistry::snapshot`] reads every
//!   metric into a [`Snapshot`] — an ordered name → value map that
//!   supports [`Snapshot::delta`] (what happened between two readings)
//!   and [`Snapshot::merge`] (fold readings from several nodes into a
//!   cluster-wide view; commutative). Export as stable sorted text
//!   ([`Snapshot::render_text`]) or machine-readable JSON
//!   ([`Snapshot::to_json`]).
//!
//! ```
//! use gamedb_metrics::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! let commits = reg.counter("wal.commits");
//! let depth = reg.gauge("wal.queue_depth");
//! let lat = reg.histogram("wal.enqueue_to_durable_us", gamedb_metrics::LATENCY_US_BUCKETS);
//! commits.inc();
//! depth.set(3);
//! lat.observe(120);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("wal.commits"), 1);
//! assert_eq!(snap.gauge("wal.queue_depth"), 3);
//! assert!(snap.render_text().contains("wal.commits"));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bucket upper bounds (µs) for latency histograms — 50µs to 1s, roughly
/// geometric. Values above the last bound land in the overflow bucket.
pub const LATENCY_US_BUCKETS: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// Bucket upper bounds for batch/segment **size** histograms (ops, rows,
/// or commits per unit) — powers of two up to 16k.
pub const SIZE_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384];

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time level (queue depth, lag, retained records). Signed so
/// "how far below target" states are representable.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set to an absolute level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust by a delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared state of one fixed-bucket histogram. `counts[i]` counts
/// observations `<= bounds[i]`; the final slot is the overflow bucket.
#[derive(Debug)]
struct HistCell {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram of `u64` observations (latencies in µs,
/// batch sizes in ops). Buckets are cumulative-free: each observation
/// lands in exactly one bucket (first bound `>=` value, else overflow).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistCell>);

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let cell = &*self.0;
        let idx = cell
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(cell.bounds.len());
        cell.counts[idx].fetch_add(1, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

/// One registered metric (the registry's map value).
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// The registry: get-or-create named metrics, snapshot them all.
/// Cloning is cheap and shares the underlying metrics — a subsystem
/// holding a clone reports into the same registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`. Panics if `name` is already
    /// registered as a different kind — a naming bug worth failing loud
    /// on, not a runtime condition.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.metrics.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Get or create the gauge `name` (panics on kind mismatch).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.metrics.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicI64::new(0)))))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or create the histogram `name` with the given bucket upper
    /// bounds (ascending; an implicit overflow bucket is appended).
    /// Re-registering returns the existing histogram — its original
    /// bounds win. Panics on kind mismatch.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let mut map = self.inner.metrics.lock().expect("metrics registry poisoned");
        match map.entry(name.to_string()).or_insert_with(|| {
            Metric::Histogram(Histogram(Arc::new(HistCell {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            })))
        }) {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Read every metric into a detached [`Snapshot`]. Concurrent
    /// updates may land between individual reads — each metric's value
    /// is exact, the set is only approximately simultaneous (quiesce
    /// writers for exact cross-metric consistency).
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.metrics.lock().expect("metrics registry poisoned");
        let metrics = map
            .iter()
            .map(|(name, m)| {
                let value = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(HistogramValue {
                        bounds: h.0.bounds.clone(),
                        counts: h.0.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                        count: h.count(),
                        sum: h.sum(),
                    }),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { metrics }
    }
}

/// Snapshot value of one histogram: per-bucket counts (`counts[i]` is
/// observations `<= bounds[i]`; the extra final slot is overflow), total
/// count and value sum.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramValue {
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl HistogramValue {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (`q` in
    /// 0..=1), `u64::MAX` when it falls in the overflow bucket, 0 when
    /// empty. Coarse by construction — resolution is the bucket grid.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Pointwise combine with `f` over aligned buckets. Mismatched
    /// bucket grids fold bucket-by-upper-bound: counts of bounds absent
    /// from the union keep their own slot.
    fn combine(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        if self.bounds == other.bounds {
            return HistogramValue {
                bounds: self.bounds.clone(),
                counts: self
                    .counts
                    .iter()
                    .zip(&other.counts)
                    .map(|(&a, &b)| f(a, b))
                    .collect(),
                count: f(self.count, other.count),
                sum: f(self.sum, other.sum),
            };
        }
        // Union grid: key every bucket by its upper bound (overflow =
        // u64::MAX), combine per key.
        let mut byb: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let b = self.bounds.get(i).copied().unwrap_or(u64::MAX);
            byb.entry(b).or_default().0 += c;
        }
        for (i, &c) in other.counts.iter().enumerate() {
            let b = other.bounds.get(i).copied().unwrap_or(u64::MAX);
            byb.entry(b).or_default().1 += c;
        }
        let mut bounds = Vec::new();
        let mut counts = Vec::new();
        let mut overflow = 0;
        for (b, (a, o)) in byb {
            if b == u64::MAX {
                overflow = f(a, o);
            } else {
                bounds.push(b);
                counts.push(f(a, o));
            }
        }
        counts.push(overflow);
        HistogramValue {
            bounds,
            counts,
            count: f(self.count, other.count),
            sum: f(self.sum, other.sum),
        }
    }
}

/// Snapshot value of one metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramValue),
}

/// A detached reading of every metric in a registry: an ordered
/// name → value map. Supports interval arithmetic ([`Snapshot::delta`])
/// and cross-node aggregation ([`Snapshot::merge`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// Look up one metric.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// Counter value, 0 when absent (or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge level, 0 when absent (or not a gauge).
    pub fn gauge(&self, name: &str) -> i64 {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram value, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramValue> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// What happened **between** `base` and `self` (`self` the later
    /// reading): counters and histogram buckets subtract (saturating, so
    /// a restarted peer reads as zero, not underflow); gauges keep the
    /// later level — a gauge is a state, not an accumulation. Metrics
    /// absent from `base` pass through unchanged, so
    /// `base + (later − base) = later` for counters and histograms:
    /// deltas are additive (the property test holds this).
    pub fn delta(&self, base: &Snapshot) -> Snapshot {
        let metrics = self
            .metrics
            .iter()
            .map(|(name, v)| {
                let dv = match (v, base.metrics.get(name)) {
                    (MetricValue::Counter(a), Some(MetricValue::Counter(b))) => {
                        MetricValue::Counter(a.saturating_sub(*b))
                    }
                    (MetricValue::Histogram(a), Some(MetricValue::Histogram(b))) => {
                        MetricValue::Histogram(a.combine(b, u64::saturating_sub))
                    }
                    // gauges, and anything base never saw, keep the later value
                    (v, _) => v.clone(),
                };
                (name.clone(), dv)
            })
            .collect();
        Snapshot { metrics }
    }

    /// Fold another snapshot in (cluster aggregation): counters,
    /// histograms, **and gauges** add — the merged gauge is the summed
    /// level across peers (total queue depth, total lag). Commutative
    /// and associative: merging N per-node snapshots in any order yields
    /// the same cluster snapshot (the property test holds this).
    pub fn merge(&self, other: &Snapshot) -> Snapshot {
        let mut metrics = self.metrics.clone();
        for (name, v) in &other.metrics {
            match metrics.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let merged = match (e.get(), v) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                            MetricValue::Counter(a + b)
                        }
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => MetricValue::Gauge(a + b),
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                            MetricValue::Histogram(a.combine(b, |x, y| x + y))
                        }
                        // kind clash across peers: keep self's reading
                        (mine, _) => mine.clone(),
                    };
                    e.insert(merged);
                }
            }
        }
        Snapshot { metrics }
    }

    /// Stable text export: one line per metric, sorted by name. The
    /// cluster-scenario report artifact is this format.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.metrics {
            match v {
                MetricValue::Counter(c) => {
                    out.push_str(&format!("{name} counter {c}\n"));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!("{name} gauge {g}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{name} histogram count={} sum={} mean={:.1}",
                        h.count,
                        h.sum,
                        h.mean()
                    ));
                    for (i, &c) in h.counts.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        match h.bounds.get(i) {
                            Some(b) => out.push_str(&format!(" le{b}={c}")),
                            None => out.push_str(&format!(" inf={c}")),
                        }
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Machine-readable export: a JSON object keyed by metric name.
    /// Hand-rolled (no serde in the dependency budget); names are the
    /// registry's dotted identifiers, so no string escaping is needed
    /// beyond quotes.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut parts = Vec::with_capacity(self.metrics.len());
        for (name, v) in &self.metrics {
            let body = match v {
                MetricValue::Counter(c) => format!("{{\"type\":\"counter\",\"value\":{c}}}"),
                MetricValue::Gauge(g) => format!("{{\"type\":\"gauge\",\"value\":{g}}}"),
                MetricValue::Histogram(h) => {
                    let bounds: Vec<String> = h.bounds.iter().map(|b| b.to_string()).collect();
                    let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
                    format!(
                        "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"bounds\":[{}],\"counts\":[{}]}}",
                        h.count,
                        h.sum,
                        bounds.join(","),
                        counts.join(",")
                    )
                }
            };
            parts.push(format!("\"{}\":{}", esc(name), body));
        }
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.count");
        let g = reg.gauge("a.level");
        let h = reg.histogram("a.lat", &[10, 100]);
        c.inc();
        c.add(4);
        g.set(7);
        g.add(-2);
        h.observe(5);
        h.observe(50);
        h.observe(5000);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a.count"), 5);
        assert_eq!(snap.gauge("a.level"), 5);
        let hv = snap.histogram("a.lat").unwrap();
        assert_eq!(hv.count, 3);
        assert_eq!(hv.sum, 5055);
        assert_eq!(hv.counts, vec![1, 1, 1]);
    }

    #[test]
    fn get_or_create_returns_the_same_metric() {
        let reg = MetricsRegistry::new();
        reg.counter("x").inc();
        reg.counter("x").inc();
        assert_eq!(reg.snapshot().counter("x"), 2);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn clones_share_the_registry() {
        let reg = MetricsRegistry::new();
        let clone = reg.clone();
        clone.counter("shared").add(3);
        assert_eq!(reg.snapshot().counter("shared"), 3);
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_gauges() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h", &[10]);
        c.add(2);
        g.set(5);
        h.observe(3);
        let base = reg.snapshot();
        c.add(10);
        g.set(-1);
        h.observe(3);
        h.observe(30);
        let later = reg.snapshot();
        let d = later.delta(&base);
        assert_eq!(d.counter("c"), 10);
        assert_eq!(d.gauge("g"), -1, "gauges report the later level");
        let hv = d.histogram("h").unwrap();
        assert_eq!(hv.count, 2);
        assert_eq!(hv.counts, vec![1, 1]);
    }

    #[test]
    fn merge_is_commutative() {
        let a_reg = MetricsRegistry::new();
        a_reg.counter("c").add(2);
        a_reg.gauge("g").set(3);
        a_reg.histogram("h", &[10, 100]).observe(7);
        let b_reg = MetricsRegistry::new();
        b_reg.counter("c").add(5);
        b_reg.gauge("g").set(4);
        b_reg.histogram("h", &[10, 100]).observe(70);
        b_reg.counter("only_b").inc();
        let (a, b) = (a_reg.snapshot(), b_reg.snapshot());
        let ab = a.merge(&b);
        assert_eq!(ab, b.merge(&a));
        assert_eq!(ab.counter("c"), 7);
        assert_eq!(ab.gauge("g"), 7, "merged gauges sum across peers");
        assert_eq!(ab.counter("only_b"), 1);
        assert_eq!(ab.histogram("h").unwrap().counts, vec![1, 1, 0]);
    }

    #[test]
    fn merge_unions_mismatched_bucket_grids() {
        let a_reg = MetricsRegistry::new();
        a_reg.histogram("h", &[10]).observe(5);
        let b_reg = MetricsRegistry::new();
        b_reg.histogram("h", &[100]).observe(50);
        let m = a_reg.snapshot().merge(&b_reg.snapshot());
        let hv = m.histogram("h").unwrap();
        assert_eq!(hv.bounds, vec![10, 100]);
        assert_eq!(hv.counts, vec![1, 1, 0]);
        assert_eq!(hv.count, 2);
    }

    #[test]
    fn quantile_bound_walks_the_grid() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h", &[10, 100, 1000]);
        for _ in 0..90 {
            h.observe(5);
        }
        for _ in 0..10 {
            h.observe(500);
        }
        let hv = reg.snapshot();
        let hv = hv.histogram("h").unwrap();
        assert_eq!(hv.quantile_bound(0.5), 10);
        assert_eq!(hv.quantile_bound(0.99), 1000);
        assert_eq!(hv.quantile_bound(1.0), 1000);
    }

    #[test]
    fn text_export_is_stable_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").inc();
        reg.counter("a.first").add(2);
        let text = reg.snapshot().render_text();
        assert_eq!(text, "a.first counter 2\nb.second counter 1\n");
        assert_eq!(text, reg.snapshot().render_text(), "rendering is stable");
    }

    #[test]
    fn json_export_is_parseable_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("c").inc();
        reg.gauge("g").set(-2);
        reg.histogram("h", &[10]).observe(4);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"c\":{\"type\":\"counter\",\"value\":1}"));
        assert!(json.contains("\"g\":{\"type\":\"gauge\",\"value\":-2}"));
        assert!(json.contains("\"bounds\":[10]"));
    }
}
