//! Property tests for the AST optimizer: optimized scripts are
//! observation-equivalent to their originals, remain well-typed, stay
//! parseable through the pretty-printer, and optimization is idempotent.
//!
//! Numeric fragments stick to dyadic values (integers, halves) so the
//! foreach-to-aggregate rewrite's different float-accumulation grouping
//! is exact and final worlds compare bit-for-bit.

use gamedb_content::{Value, ValueType};
use gamedb_core::{EffectBuffer, World};
use gamedb_script::{
    check_script, optimize, parse_script, run_script, ExecOptions, Level, ScriptLibrary,
};
use gamedb_spatial::Vec2;
use proptest::prelude::*;

/// Random full-level scripts exercising every optimizer pass: constant
/// arithmetic (folding), constant conditions (DCE), unread lets,
/// rewritable and non-rewritable foreach loops, and while loops.
fn script_strategy() -> impl Strategy<Value = String> {
    let num_expr = prop_oneof![
        Just("self.hp".to_string()),
        Just("self.dmg".to_string()),
        Just("other.dmg".to_string()),
        Just("2 + 3 * 4".to_string()),
        Just("min(6, 2) + max(1, 0)".to_string()),
        Just("self.dmg * 1 + 0".to_string()),
        Just("10 / 4".to_string()),
        (1..20i32).prop_map(|n| n.to_string()),
        (1..10i32).prop_map(|n| format!("{n} * 0.5")),
    ];
    let self_expr = prop_oneof![
        Just("self.hp".to_string()),
        Just("self.dmg * 2".to_string()),
        Just("1 + 1".to_string()),
        (1..20i32).prop_map(|n| n.to_string()),
    ];
    let stmt = (num_expr, self_expr).prop_flat_map(|(oe, se)| {
        prop_oneof![
            // plain arithmetic writes (folding targets)
            Just(format!("self.hp += {se};")),
            Just(format!("self.hp -= {se} * 0.5;")),
            // constant conditions (DCE targets)
            Just(format!("if 1 < 2 {{ self.hp += {se}; }}")),
            Just(format!("if 2 < 1 {{ self.hp += 99; }} else {{ self.hp -= {se}; }}")),
            Just(format!("if self.hp > 10 && true {{ self.hp -= {se}; }}")),
            // unread and read lets
            Just(format!("let VAR = {se}; self.hp += 1;")),
            Just(format!("let VAR = {se}; self.hp += VAR;")),
            // rewritable foreach (sum / filtered sum / count)
            Just(format!("foreach within (7) {{ self.hp -= {oe}; }}")),
            Just(
                "foreach within (9) { if other.team != self.team { self.threat += other.dmg; } }"
                    .to_string()
            ),
            Just("foreach within (6) { if other.hp > 20 { self.seen += 1; } }".to_string()),
            // NOT rewritable: writes other / multiple statements
            Just("foreach within (5) { other.hp -= 0.5; }".to_string()),
            Just("foreach within (5) { self.hp -= 0.5; other.hp -= 0.5; }".to_string()),
            // bounded while (full level)
            Just("let VAR = 0; while VAR < 3 { self.hp += 0.5; VAR = VAR + 1; }".to_string()),
            Just(format!("while false {{ self.hp += {se}; }}")),
        ]
    });
    proptest::collection::vec(stmt, 1..6).prop_map(|stmts| {
        stmts
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.replace("VAR", &format!("v{i}")))
            .collect::<Vec<_>>()
            .join("\n")
    })
}

fn test_world(positions: &[(f32, f32)]) -> World {
    let mut w = World::new();
    w.define_component("hp", ValueType::Float).unwrap();
    w.define_component("dmg", ValueType::Float).unwrap();
    w.define_component("threat", ValueType::Float).unwrap();
    w.define_component("seen", ValueType::Int).unwrap();
    w.define_component("team", ValueType::Str).unwrap();
    for (i, &(x, y)) in positions.iter().enumerate() {
        let e = w.spawn_at(Vec2::new(x, y));
        w.set_f32(e, "hp", 16.0 + (i % 7) as f32 * 8.0).unwrap();
        w.set_f32(e, "dmg", 1.0 + (i % 4) as f32).unwrap();
        w.set_f32(e, "threat", 0.0).unwrap();
        w.set(e, "seen", Value::Int(0)).unwrap();
        w.set(
            e,
            "team",
            Value::Str(if i % 2 == 0 { "red" } else { "blue" }.into()),
        )
        .unwrap();
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimized_equals_original(
        src in script_strategy(),
        positions in proptest::collection::vec((-30.0f32..30.0, -30.0f32..30.0), 2..20),
    ) {
        let world = test_world(&positions);
        let script = parse_script("s", &src).unwrap();
        prop_assert!(check_script(&script, &world, Level::Full).is_empty());
        let (opt, _) = optimize(&script);

        let mut lib_orig = ScriptLibrary::new();
        lib_orig.insert(script);
        let mut lib_opt = ScriptLibrary::new();
        lib_opt.insert(opt);

        for id in world.entity_vec() {
            let mut b_orig = EffectBuffer::new();
            let mut b_opt = EffectBuffer::new();
            run_script(&lib_orig, "s", &world, id, &mut b_orig, ExecOptions::default()).unwrap();
            run_script(&lib_opt, "s", &world, id, &mut b_opt, ExecOptions::default()).unwrap();
            let mut w_orig = world.clone();
            let mut w_opt = world.clone();
            b_orig.apply(&mut w_orig).unwrap();
            b_opt.apply(&mut w_opt).unwrap();
            prop_assert_eq!(w_orig.rows(), w_opt.rows(), "script:\n{}", src);
        }
    }

    #[test]
    fn optimized_scripts_still_typecheck(
        src in script_strategy(),
        positions in proptest::collection::vec((-30.0f32..30.0, -30.0f32..30.0), 2..8),
    ) {
        let world = test_world(&positions);
        let script = parse_script("s", &src).unwrap();
        let (opt, _) = optimize(&script);
        let errors = check_script(&opt, &world, Level::Full);
        prop_assert!(errors.is_empty(), "{errors:?}\n--- optimized from:\n{src}");
    }

    #[test]
    fn optimizer_output_reparses(src in script_strategy()) {
        let script = parse_script("s", &src).unwrap();
        let (opt, _) = optimize(&script);
        let printed = gamedb_script::ast::to_source(&opt.body);
        let reparsed = parse_script("s", &printed).unwrap();
        prop_assert_eq!(&reparsed.body, &opt.body, "printed:\n{}", printed);
    }

    #[test]
    fn optimization_is_idempotent(src in script_strategy()) {
        let script = parse_script("s", &src).unwrap();
        let (once, _) = optimize(&script);
        let (twice, stats) = optimize(&once);
        prop_assert_eq!(&once.body, &twice.body);
        prop_assert_eq!(
            stats.folded + stats.dead_stmts + stats.foreach_rewrites + stats.lets_removed,
            0,
            "second pass found work in:\n{}",
            gamedb_script::ast::to_source(&once.body)
        );
    }
}
