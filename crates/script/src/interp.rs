//! Tree-walking interpreter for GSL.
//!
//! The interpreter runs one script for one entity against the immutable
//! tick-start world, emitting effects into an [`EffectBuffer`] — the
//! state–effect discipline of the core crate. The [`ExecOptions::use_index`]
//! flag selects between spatial-index neighbor enumeration and the naive
//! full scan: flipping it is how experiment E1 produces its Ω(n²) versus
//! O(n·k) curves *from the same script*.

use std::collections::BTreeMap;
use std::fmt;

use gamedb_content::{Value, ValueType};
use gamedb_core::{Effect, EffectBuffer, EntityId, World};
use gamedb_spatial::Vec2;

use crate::ast::{AggKind, AssignOp, BinOp, BuiltinFn, Expr, Script, Stmt, Subject};

/// A script runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum SVal {
    Num(f64),
    Bool(bool),
    Str(String),
}

impl SVal {
    fn type_name(&self) -> &'static str {
        match self {
            SVal::Num(_) => "num",
            SVal::Bool(_) => "bool",
            SVal::Str(_) => "str",
        }
    }

    fn as_num(&self) -> Result<f64, RuntimeError> {
        match self {
            SVal::Num(n) => Ok(*n),
            other => Err(RuntimeError::TypeError(format!(
                "expected num, got {}",
                other.type_name()
            ))),
        }
    }

    fn as_bool(&self) -> Result<bool, RuntimeError> {
        match self {
            SVal::Bool(b) => Ok(*b),
            other => Err(RuntimeError::TypeError(format!(
                "expected bool, got {}",
                other.type_name()
            ))),
        }
    }
}

/// Runtime failures. Well-typed scripts can still hit the dynamic limits
/// (call depth, loop fuel) — those are the runtime's defense against
/// designer scripts that hang the frame.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    UnknownScript(String),
    CallDepthExceeded { script: String, limit: usize },
    LoopFuelExhausted { limit: usize },
    TypeError(String),
    /// Script needs a position (within/move) but the entity has none.
    NoPosition(EntityId),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownScript(s) => write!(f, "unknown script '{s}'"),
            RuntimeError::CallDepthExceeded { script, limit } => {
                write!(f, "call depth {limit} exceeded at '{script}'")
            }
            RuntimeError::LoopFuelExhausted { limit } => {
                write!(f, "loop fuel exhausted ({limit} iterations)")
            }
            RuntimeError::TypeError(m) => write!(f, "type error: {m}"),
            RuntimeError::NoPosition(id) => write!(f, "entity {id} has no position"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Interpreter knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecOptions {
    /// Use the world's spatial index for `within` (true) or scan every
    /// entity (false — the Ω(n²) baseline).
    pub use_index: bool,
    /// Maximum `call` nesting.
    pub max_call_depth: usize,
    /// Total `while`-loop iterations allowed per script run.
    pub loop_fuel: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            use_index: true,
            max_call_depth: 16,
            loop_fuel: 100_000,
        }
    }
}

/// A library of named scripts (`call` resolves against this).
#[derive(Debug, Clone, Default)]
pub struct ScriptLibrary {
    scripts: BTreeMap<String, Script>,
}

impl ScriptLibrary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add or replace a script.
    pub fn insert(&mut self, script: Script) {
        self.scripts.insert(script.name.clone(), script);
    }

    /// Script by name.
    pub fn get(&self, name: &str) -> Option<&Script> {
        self.scripts.get(name)
    }

    /// All scripts, name-ordered.
    pub fn iter(&self) -> impl Iterator<Item = &Script> {
        self.scripts.values()
    }

    /// Number of scripts.
    pub fn len(&self) -> usize {
        self.scripts.len()
    }

    /// True when the library is empty.
    pub fn is_empty(&self) -> bool {
        self.scripts.is_empty()
    }
}

/// Output of one script run (besides the effects in the buffer).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunOutput {
    /// Events emitted via `emit "…"` in emission order.
    pub events: Vec<String>,
}

struct Interp<'a> {
    lib: &'a ScriptLibrary,
    world: &'a World,
    buf: &'a mut EffectBuffer,
    opts: ExecOptions,
    self_id: EntityId,
    other: Option<EntityId>,
    /// locals as a stack of (name, value); linear scan is fine at script
    /// scale and keeps shadowing trivial
    locals: Vec<(String, SVal)>,
    events: Vec<String>,
    call_depth: usize,
    fuel: usize,
    neighbor_scratch: Vec<EntityId>,
}

impl<'a> Interp<'a> {
    fn read_comp(&self, id: EntityId, comp: &str) -> Result<SVal, RuntimeError> {
        if comp == "x" || comp == "y" {
            let p = self
                .world
                .pos(id)
                .ok_or(RuntimeError::NoPosition(id))?;
            return Ok(SVal::Num(if comp == "x" { p.x } else { p.y } as f64));
        }
        // Missing values read as the type's zero — designer-friendly,
        // consistent with Add-to-absent semantics in the effect layer.
        match self.world.component_type(comp) {
            Some(ValueType::Float) | Some(ValueType::Int) => {
                Ok(SVal::Num(self.world.get_number(id, comp).unwrap_or(0.0)))
            }
            Some(ValueType::Bool) => Ok(SVal::Bool(self.world.get_bool(id, comp).unwrap_or(false))),
            Some(ValueType::Str) => Ok(SVal::Str(match self.world.get(id, comp) {
                Some(Value::Str(s)) => s,
                _ => String::new(),
            })),
            Some(ValueType::Vec2) => Err(RuntimeError::TypeError(format!(
                "component '{comp}' is vec2"
            ))),
            None => Err(RuntimeError::TypeError(format!(
                "unknown component '{comp}'"
            ))),
        }
    }

    fn subject_id(&self, s: Subject) -> Result<EntityId, RuntimeError> {
        match s {
            Subject::SelfEnt => Ok(self.self_id),
            Subject::Other => self.other.ok_or_else(|| {
                RuntimeError::TypeError("'other' used outside foreach/aggregate".into())
            }),
        }
    }

    fn self_pos(&self) -> Result<Vec2, RuntimeError> {
        self.world
            .pos(self.self_id)
            .ok_or(RuntimeError::NoPosition(self.self_id))
    }

    /// Enumerate neighbors within `radius` of self, excluding self.
    fn neighbors(&mut self, radius: f64) -> Result<Vec<EntityId>, RuntimeError> {
        let center = self.self_pos()?;
        let r = radius.max(0.0) as f32;
        self.neighbor_scratch.clear();
        if self.opts.use_index {
            self.world.within(center, r, &mut self.neighbor_scratch);
            self.neighbor_scratch.retain(|&e| e != self.self_id);
        } else {
            // the naive path: scan everything, test distance
            let r2 = r * r;
            for e in self.world.entities() {
                if e == self.self_id {
                    continue;
                }
                if let Some(p) = self.world.pos(e) {
                    if p.dist2(center) <= r2 {
                        self.neighbor_scratch.push(e);
                    }
                }
            }
        }
        Ok(std::mem::take(&mut self.neighbor_scratch))
    }

    fn eval(&mut self, e: &Expr) -> Result<SVal, RuntimeError> {
        match e {
            Expr::Num(n) => Ok(SVal::Num(*n)),
            Expr::Bool(b) => Ok(SVal::Bool(*b)),
            Expr::Str(s) => Ok(SVal::Str(s.clone())),
            Expr::Var(name) => self
                .locals
                .iter()
                .rev()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| RuntimeError::TypeError(format!("undeclared variable '{name}'"))),
            Expr::Comp(subject, comp) => {
                let id = self.subject_id(*subject)?;
                self.read_comp(id, comp)
            }
            Expr::Unary { neg, not, inner } => {
                let v = self.eval(inner)?;
                if *not {
                    return Ok(SVal::Bool(!v.as_bool()?));
                }
                if *neg {
                    return Ok(SVal::Num(-v.as_num()?));
                }
                Ok(v)
            }
            Expr::Bin { op, lhs, rhs } => {
                // short-circuit logic first
                if op.is_logic() {
                    let l = self.eval(lhs)?.as_bool()?;
                    return match op {
                        BinOp::And => {
                            if !l {
                                Ok(SVal::Bool(false))
                            } else {
                                Ok(SVal::Bool(self.eval(rhs)?.as_bool()?))
                            }
                        }
                        BinOp::Or => {
                            if l {
                                Ok(SVal::Bool(true))
                            } else {
                                Ok(SVal::Bool(self.eval(rhs)?.as_bool()?))
                            }
                        }
                        _ => unreachable!(),
                    };
                }
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                if op.is_cmp() {
                    let ord = match (&l, &r) {
                        (SVal::Num(a), SVal::Num(b)) => a.partial_cmp(b),
                        (SVal::Str(a), SVal::Str(b)) => Some(a.cmp(b)),
                        (SVal::Bool(a), SVal::Bool(b)) => Some(a.cmp(b)),
                        _ => {
                            return Err(RuntimeError::TypeError(format!(
                                "cannot compare {} with {}",
                                l.type_name(),
                                r.type_name()
                            )))
                        }
                    };
                    use std::cmp::Ordering::*;
                    let result = match (op, ord) {
                        (BinOp::Eq, Some(Equal)) => true,
                        (BinOp::Eq, _) => false,
                        (BinOp::Ne, Some(Equal)) => false,
                        (BinOp::Ne, _) => true,
                        (BinOp::Lt, Some(Less)) => true,
                        (BinOp::Le, Some(Less | Equal)) => true,
                        (BinOp::Gt, Some(Greater)) => true,
                        (BinOp::Ge, Some(Greater | Equal)) => true,
                        _ => false,
                    };
                    return Ok(SVal::Bool(result));
                }
                let (a, b) = (l.as_num()?, r.as_num()?);
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => {
                        if b == 0.0 {
                            0.0 // scripts never crash the server on ÷0
                        } else {
                            a / b
                        }
                    }
                    BinOp::Rem => {
                        if b == 0.0 {
                            0.0
                        } else {
                            a % b
                        }
                    }
                    _ => unreachable!("logic/cmp handled above"),
                };
                Ok(SVal::Num(v))
            }
            Expr::DistToOther => {
                let other = self.subject_id(Subject::Other)?;
                let sp = self.self_pos()?;
                let op = self
                    .world
                    .pos(other)
                    .ok_or(RuntimeError::NoPosition(other))?;
                Ok(SVal::Num(sp.dist(op) as f64))
            }
            Expr::Builtin { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?.as_num()?);
                }
                let v = match name {
                    BuiltinFn::Min => vals[0].min(vals[1]),
                    BuiltinFn::Max => vals[0].max(vals[1]),
                    BuiltinFn::Abs => vals[0].abs(),
                    BuiltinFn::Clamp => vals[0].clamp(vals[1].min(vals[2]), vals[2].max(vals[1])),
                };
                Ok(SVal::Num(v))
            }
            Expr::Agg {
                kind,
                radius,
                arg,
                filter,
            } => {
                let r = self.eval(radius)?.as_num()?;
                let candidates = self.neighbors(r)?;
                let saved_other = self.other;
                let mut count = 0usize;
                let mut sum = 0.0f64;
                let mut minv = f64::INFINITY;
                let mut maxv = f64::NEG_INFINITY;
                for cand in candidates {
                    self.other = Some(cand);
                    if let Some(f) = filter {
                        if !self.eval(f)?.as_bool()? {
                            continue;
                        }
                    }
                    count += 1;
                    if let Some(a) = arg {
                        let v = self.eval(a)?.as_num()?;
                        sum += v;
                        minv = minv.min(v);
                        maxv = maxv.max(v);
                    }
                }
                self.other = saved_other;
                let out = match kind {
                    AggKind::Count => count as f64,
                    AggKind::Sum => sum,
                    AggKind::Min => {
                        if count == 0 {
                            0.0
                        } else {
                            minv
                        }
                    }
                    AggKind::Max => {
                        if count == 0 {
                            0.0
                        } else {
                            maxv
                        }
                    }
                    AggKind::Avg => {
                        if count == 0 {
                            0.0
                        } else {
                            sum / count as f64
                        }
                    }
                };
                Ok(SVal::Num(out))
            }
            Expr::NearestDist { radius } => {
                let r = self.eval(radius)?.as_num()?;
                let center = self.self_pos()?;
                let candidates = self.neighbors(r)?;
                let mut best = r;
                for cand in candidates {
                    if let Some(p) = self.world.pos(cand) {
                        best = best.min(p.dist(center) as f64);
                    }
                }
                Ok(SVal::Num(best))
            }
        }
    }

    /// Convert a script value into the component's declared type.
    fn to_component_value(
        &self,
        comp: &str,
        v: SVal,
    ) -> Result<Value, RuntimeError> {
        let ty = self
            .world
            .component_type(comp)
            .ok_or_else(|| RuntimeError::TypeError(format!("unknown component '{comp}'")))?;
        match (ty, v) {
            (ValueType::Float, SVal::Num(n)) => Ok(Value::Float(n as f32)),
            (ValueType::Int, SVal::Num(n)) => Ok(Value::Int(n.round() as i64)),
            (ValueType::Bool, SVal::Bool(b)) => Ok(Value::Bool(b)),
            (ValueType::Str, SVal::Str(s)) => Ok(Value::Str(s)),
            (ty, v) => Err(RuntimeError::TypeError(format!(
                "cannot store {} into {ty} component '{comp}'",
                v.type_name()
            ))),
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<(), RuntimeError> {
        let mark = self.locals.len();
        for s in stmts {
            self.exec(s)?;
        }
        self.locals.truncate(mark);
        Ok(())
    }

    fn exec(&mut self, s: &Stmt) -> Result<(), RuntimeError> {
        match s {
            Stmt::Let { name, value } => {
                let v = self.eval(value)?;
                self.locals.push((name.clone(), v));
            }
            Stmt::AssignVar { name, value } => {
                let v = self.eval(value)?;
                match self.locals.iter_mut().rev().find(|(n, _)| n == name) {
                    Some((_, slot)) => *slot = v,
                    None => {
                        return Err(RuntimeError::TypeError(format!(
                            "undeclared variable '{name}'"
                        )))
                    }
                }
            }
            Stmt::AssignComp {
                subject,
                component,
                op,
                value,
            } => {
                let target = self.subject_id(*subject)?;
                let v = self.eval(value)?;
                match op {
                    AssignOp::Set => {
                        let cv = self.to_component_value(component, v)?;
                        self.buf.push(target, component.clone(), Effect::Set(cv));
                    }
                    AssignOp::Add | AssignOp::Sub => {
                        let n = v.as_num()?;
                        let delta = if *op == AssignOp::Add { n } else { -n };
                        self.buf.push(target, component.clone(), Effect::Add(delta));
                    }
                }
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                if self.eval(cond)?.as_bool()? {
                    self.exec_block(then_block)?;
                } else {
                    self.exec_block(else_block)?;
                }
            }
            Stmt::Foreach { radius, body } => {
                let r = self.eval(radius)?.as_num()?;
                let candidates = self.neighbors(r)?;
                let saved = self.other;
                for cand in candidates {
                    self.other = Some(cand);
                    self.exec_block(body)?;
                }
                self.other = saved;
            }
            Stmt::While { cond, body } => {
                while self.eval(cond)?.as_bool()? {
                    if self.fuel == 0 {
                        return Err(RuntimeError::LoopFuelExhausted {
                            limit: self.opts.loop_fuel,
                        });
                    }
                    self.fuel -= 1;
                    self.exec_block(body)?;
                }
            }
            Stmt::Move { dx, dy } => {
                let dx = self.eval(dx)?.as_num()? as f32;
                let dy = self.eval(dy)?.as_num()? as f32;
                self.buf
                    .push(self.self_id, gamedb_core::POS, Effect::AddVec2(dx, dy));
            }
            Stmt::Despawn => {
                self.buf.despawn(self.self_id);
            }
            Stmt::Call { script } => {
                if self.call_depth >= self.opts.max_call_depth {
                    return Err(RuntimeError::CallDepthExceeded {
                        script: script.clone(),
                        limit: self.opts.max_call_depth,
                    });
                }
                let callee = self
                    .lib
                    .get(script)
                    .ok_or_else(|| RuntimeError::UnknownScript(script.clone()))?
                    .clone();
                self.call_depth += 1;
                // callee gets a fresh local scope, shares effects/events
                let saved_locals = std::mem::take(&mut self.locals);
                let result = self.exec_block(&callee.body);
                self.locals = saved_locals;
                self.call_depth -= 1;
                result?;
            }
            Stmt::Emit { event } => {
                self.events.push(event.clone());
            }
        }
        Ok(())
    }
}

/// Run one script for one entity. Effects land in `buf`; emitted events
/// are returned.
pub fn run_script(
    lib: &ScriptLibrary,
    name: &str,
    world: &World,
    self_id: EntityId,
    buf: &mut EffectBuffer,
    opts: ExecOptions,
) -> Result<RunOutput, RuntimeError> {
    let script = lib
        .get(name)
        .ok_or_else(|| RuntimeError::UnknownScript(name.to_string()))?;
    run_script_ref(lib, script, world, self_id, buf, opts)
}

/// [`run_script`] for an already-resolved script (the engine's prepared
/// bindings skip the by-name lookup on the per-entity path). The library
/// is still needed for `call` targets.
pub(crate) fn run_script_ref(
    lib: &ScriptLibrary,
    script: &Script,
    world: &World,
    self_id: EntityId,
    buf: &mut EffectBuffer,
    opts: ExecOptions,
) -> Result<RunOutput, RuntimeError> {
    let mut interp = Interp {
        lib,
        world,
        buf,
        opts,
        self_id,
        other: None,
        locals: Vec::new(),
        events: Vec::new(),
        call_depth: 0,
        fuel: opts.loop_fuel,
        neighbor_scratch: Vec::new(),
    };
    interp.exec_block(&script.body)?;
    Ok(RunOutput {
        events: interp.events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;
    use gamedb_core::TickExecutor;

    fn lib(sources: &[(&str, &str)]) -> ScriptLibrary {
        let mut l = ScriptLibrary::new();
        for (name, src) in sources {
            l.insert(parse_script(name, src).unwrap());
        }
        l
    }

    fn duel_world() -> (World, EntityId, EntityId) {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("dmg", ValueType::Float).unwrap();
        w.define_component("team", ValueType::Str).unwrap();
        let a = w.spawn_at(Vec2::new(0.0, 0.0));
        let b = w.spawn_at(Vec2::new(3.0, 0.0));
        for (e, team) in [(a, "red"), (b, "blue")] {
            w.set_f32(e, "hp", 100.0).unwrap();
            w.set_f32(e, "dmg", 10.0).unwrap();
            w.set(e, "team", Value::Str(team.into())).unwrap();
        }
        (w, a, b)
    }

    fn run_for(
        l: &ScriptLibrary,
        name: &str,
        w: &mut World,
        id: EntityId,
    ) -> RunOutput {
        let mut buf = EffectBuffer::new();
        let out = run_script(l, name, w, id, &mut buf, ExecOptions::default()).unwrap();
        buf.apply(w).unwrap();
        out
    }

    #[test]
    fn attack_nearest_via_foreach() {
        let l = lib(&[(
            "attack",
            r#"foreach within (5) {
                 if other.team != self.team {
                   other.hp -= self.dmg;
                 }
               }"#,
        )]);
        let (mut w, a, b) = duel_world();
        run_for(&l, "attack", &mut w, a);
        assert_eq!(w.get_f32(b, "hp"), Some(90.0));
        assert_eq!(w.get_f32(a, "hp"), Some(100.0), "same team untouched");
    }

    #[test]
    fn aggregates_match_foreach_semantics() {
        let l = lib(&[(
            "threat",
            r#"let enemies = count(10; other.team != self.team);
               let total_dmg = sum(10; other.dmg; other.team != self.team);
               self.hp = enemies * 1000 + total_dmg;"#,
        )]);
        let (mut w, a, _b) = duel_world();
        run_for(&l, "threat", &mut w, a);
        assert_eq!(w.get_f32(a, "hp"), Some(1010.0));
    }

    #[test]
    fn index_and_naive_agree() {
        let l = lib(&[(
            "s",
            "self.hp = count(8) + sum(8; other.dmg) + nearest_dist(8);",
        )]);
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("dmg", ValueType::Float).unwrap();
        let mut ids = vec![];
        for i in 0..40 {
            let e = w.spawn_at(Vec2::new((i % 8) as f32 * 2.0, (i / 8) as f32 * 2.0));
            w.set_f32(e, "dmg", i as f32).unwrap();
            ids.push(e);
        }
        for &id in &ids {
            let mut b1 = EffectBuffer::new();
            let mut b2 = EffectBuffer::new();
            run_script(&l, "s", &w, id, &mut b1, ExecOptions::default()).unwrap();
            run_script(
                &l,
                "s",
                &w,
                id,
                &mut b2,
                ExecOptions {
                    use_index: false,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut w1 = w.clone();
            let mut w2 = w.clone();
            b1.apply(&mut w1).unwrap();
            b2.apply(&mut w2).unwrap();
            assert_eq!(w1.get_f32(id, "hp"), w2.get_f32(id, "hp"));
        }
    }

    #[test]
    fn move_and_despawn() {
        let l = lib(&[("go", "move(2, -1); if self.hp < 5 { despawn; }")]);
        let (mut w, a, _) = duel_world();
        run_for(&l, "go", &mut w, a);
        assert_eq!(w.pos(a), Some(Vec2::new(2.0, -1.0)));
        assert!(w.is_live(a));
        w.set_f32(a, "hp", 1.0).unwrap();
        run_for(&l, "go", &mut w, a);
        assert!(!w.is_live(a));
    }

    #[test]
    fn while_loop_and_locals() {
        let l = lib(&[(
            "countdown",
            r#"let n = 5;
               let total = 0;
               while n > 0 {
                 total = total + n;
                 n = n - 1;
               }
               self.hp = total;"#,
        )]);
        let (mut w, a, _) = duel_world();
        run_for(&l, "countdown", &mut w, a);
        assert_eq!(w.get_f32(a, "hp"), Some(15.0));
    }

    #[test]
    fn loop_fuel_guards_infinite_loops() {
        let l = lib(&[("spin", "while true { self.hp += 1; }")]);
        let (w, a, _) = duel_world();
        let mut buf = EffectBuffer::new();
        let err = run_script(
            &l,
            "spin",
            &w,
            a,
            &mut buf,
            ExecOptions {
                loop_fuel: 100,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::LoopFuelExhausted { .. }));
    }

    #[test]
    fn call_chains_and_depth_limit() {
        let l = lib(&[
            ("main", "call buff; call buff;"),
            ("buff", "self.hp += 1;"),
        ]);
        let (mut w, a, _) = duel_world();
        run_for(&l, "main", &mut w, a);
        assert_eq!(w.get_f32(a, "hp"), Some(102.0));

        let rec = lib(&[("r", "call r;")]);
        let mut buf = EffectBuffer::new();
        let err = run_script(&rec, "r", &w, a, &mut buf, ExecOptions::default()).unwrap_err();
        assert!(matches!(err, RuntimeError::CallDepthExceeded { .. }));
    }

    #[test]
    fn emit_collects_events() {
        let l = lib(&[("alarm", r#"emit "intruder"; emit "sound_horn";"#)]);
        let (mut w, a, _) = duel_world();
        let out = run_for(&l, "alarm", &mut w, a);
        assert_eq!(out.events, vec!["intruder", "sound_horn"]);
    }

    #[test]
    fn missing_component_reads_as_zero() {
        let l = lib(&[("s", "self.hp = self.dmg + 1;")]);
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("dmg", ValueType::Float).unwrap();
        let e = w.spawn_at(Vec2::ZERO); // no dmg set
        run_for(&l, "s", &mut w, e);
        assert_eq!(w.get_f32(e, "hp"), Some(1.0));
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let l = lib(&[("s", "self.hp = 10 / self.dmg;")]);
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("dmg", ValueType::Float).unwrap();
        let e = w.spawn_at(Vec2::ZERO);
        run_for(&l, "s", &mut w, e);
        assert_eq!(w.get_f32(e, "hp"), Some(0.0));
    }

    #[test]
    fn int_components_round() {
        let l = lib(&[("s", "self.gold = 7 / 2;")]);
        let mut w = World::new();
        w.define_component("gold", ValueType::Int).unwrap();
        let e = w.spawn_at(Vec2::ZERO);
        run_for(&l, "s", &mut w, e);
        assert_eq!(w.get_i64(e, "gold"), Some(4)); // 3.5 rounds to 4
    }

    #[test]
    fn scripts_as_tick_systems() {
        // run a script for every entity through the tick executor
        let l = lib(&[(
            "drain",
            "foreach within (4) { other.hp -= 1; } self.hp += 0.5;",
        )]);
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        for i in 0..10 {
            let e = w.spawn_at(Vec2::new(i as f32 * 2.0, 0.0));
            w.set_f32(e, "hp", 10.0).unwrap();
        }
        let lib_ref = &l;
        let system = move |id: EntityId, world: &World, buf: &mut EffectBuffer| {
            run_script(lib_ref, "drain", world, id, buf, ExecOptions::default()).unwrap();
        };
        TickExecutor::sequential().run_tick(&mut w, &[&system]).unwrap();
        // spacing 2, radius 4 (closed disk): middle entities are attacked
        // by 4 neighbors => 10 - 4 + 0.5; edge entity by 2 => 10 - 2 + 0.5
        let ids: Vec<EntityId> = w.entities().collect();
        assert_eq!(w.get_f32(ids[5], "hp"), Some(6.5));
        assert_eq!(w.get_f32(ids[0], "hp"), Some(8.5));
    }

    #[test]
    fn short_circuit_avoids_rhs_errors() {
        // rhs would error (other outside foreach) but && short-circuits
        let l = lib(&[("s", "if false && dist(other) < 1 { despawn; }")]);
        let (mut w, a, _) = duel_world();
        run_for(&l, "s", &mut w, a);
        assert!(w.is_live(a));
    }
}
