//! # gamedb-script
//!
//! GSL — the designer scripting language of this workspace, implementing
//! the scripting-language story of *Database Research in Computer Games*
//! (SIGMOD 2009): designers author entity behaviour in data files; the
//! engine type-checks it, optionally *restricts* it (no iteration, no
//! recursion — the measure the paper reports studios taking to stop
//! accidentally-quadratic scripts), and executes it either by tree-walking
//! interpretation or compiled to specialized closures whose neighborhood
//! operations run through the spatial index.
//!
//! ## Contents
//!
//! * [`token`] / [`parser`] / [`ast`] — lexer, recursive-descent parser,
//!   AST with pretty-printer.
//! * [`types`] — type checker and the Full/Restricted language levels.
//! * [`interp`] — tree-walking interpreter emitting state–effect writes.
//! * [`optimize`](mod@optimize) — AST optimizer: constant folding, dead code
//!   elimination, and foreach-to-aggregate rewriting.
//! * [`compile`](mod@compile) — closure-specializing compiler (set-at-a-time
//!   evaluation of the restricted language).
//! * [`vm`] — register-based bytecode VM: [`vm::compile_program`] lowers
//!   the optimized AST to a dense instruction stream with pre-resolved
//!   column ids and pre-built query handles; [`vm::Vm`] dispatches it.
//!   The engine's default execution mode ([`engine::ExecMode::Vm`]); the
//!   interpreter stays on as the differential-testing oracle.
//!
//! ## A complete example
//!
//! ```
//! use gamedb_script::{parse_script, check_script, Level, ScriptLibrary,
//!                     run_script, ExecOptions};
//! use gamedb_core::{EffectBuffer, World};
//! use gamedb_content::ValueType;
//! use gamedb_spatial::Vec2;
//!
//! let mut world = World::new();
//! world.define_component("hp", ValueType::Float).unwrap();
//! let imp = world.spawn_at(Vec2::new(0.0, 0.0));
//! world.set_f32(imp, "hp", 40.0).unwrap();
//! let hero = world.spawn_at(Vec2::new(3.0, 0.0));
//! world.set_f32(hero, "hp", 100.0).unwrap();
//!
//! // A designer script in the restricted level: no loops, aggregate
//! // built-ins instead.
//! let script = parse_script("panic", r#"
//!     let rivals = count(10; other.hp > self.hp);
//!     if rivals > 0 { move(0 - 1, 0); }
//! "#).unwrap();
//! assert!(check_script(&script, &world, Level::Restricted).is_empty());
//!
//! let mut lib = ScriptLibrary::new();
//! lib.insert(script);
//! let mut buf = EffectBuffer::new();
//! run_script(&lib, "panic", &world, imp, &mut buf, ExecOptions::default()).unwrap();
//! buf.apply(&mut world).unwrap();
//! assert_eq!(world.pos(imp), Some(Vec2::new(-1.0, 0.0)));
//! ```

pub mod ast;
pub mod compile;
pub mod engine;
pub mod interp;
pub(crate) mod metrics;
pub mod optimize;
pub mod parser;
pub mod token;
pub mod types;
pub mod vm;

pub use ast::{AggKind, AssignOp, BinOp, BuiltinFn, Expr, Script, Stmt, Subject};
pub use compile::{compile, CompileError, CompiledScript};
pub use engine::{EngineError, EngineTickStats, ExecMode, ScriptEngine, SCRIPT_COMPONENT};
pub use vm::{compile_program, Program, Vm};
pub use interp::{run_script, ExecOptions, RunOutput, RuntimeError, SVal, ScriptLibrary};
pub use optimize::{optimize, OptStats};
pub use parser::{parse, parse_script, ParseError};
pub use token::{lex, LexError, Token, TokenKind};
pub use types::{check_library, check_script, ComponentSchema, Level, Ty, TypeError};
