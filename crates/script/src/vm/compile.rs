//! AST → bytecode lowering for the GSL VM.
//!
//! Mirrors the closure compiler's compilable subset and error surface
//! exactly (same [`CompileError`] variants and messages), but emits a
//! dense instruction stream into typed register files instead of boxed
//! closures. Registers are allocated with a mark/release stack: each
//! expression's temporaries are reclaimed as soon as its value is
//! consumed, so register-file sizes stay small even for deep scripts
//! while named locals keep their registers for their whole scope.
//!
//! Everything name-shaped is resolved here, once per (script, schema):
//! component references become interned [`ComponentId`]s, effect-write
//! names and string literals land in the program's constant pool, and
//! sargable aggregate filters become pre-built [`SargQuery`] handles.
//! The dispatch loop never sees a string it has to hash.

use std::collections::BTreeMap;

use gamedb_content::ValueType;
use gamedb_core::{ComponentId, World};

use super::{Instr, Program, Reg, SargQuery, VmArith, VmCmp, NO_QUERY};
use crate::ast::{AssignOp, BinOp, BuiltinFn, Expr, Script, Stmt, Subject};
use crate::compile::{sargable_filter, CompileError};
use crate::interp::ScriptLibrary;
use crate::types::Ty;

const MAX_INLINE_DEPTH: usize = 16;
/// Per-type register-file ceiling — far above any real script; hitting
/// it routes the script to the interpreter instead of panicking.
const MAX_REGS: u16 = 4096;
const MAX_LOOPS: u8 = 64;

#[derive(Clone, Copy)]
enum VReg {
    Num(Reg),
    Bool(Reg),
}

/// Register-allocation checkpoint: temporaries above these watermarks
/// are dead once the expression that allocated them is consumed.
#[derive(Clone, Copy)]
struct Mark {
    num: u16,
    bool_: u16,
    str_: u16,
}

struct Compiler<'a> {
    lib: &'a ScriptLibrary,
    schema: BTreeMap<String, (ComponentId, ValueType)>,
    scopes: Vec<BTreeMap<String, VReg>>,
    instrs: Vec<Instr>,
    pool: Vec<String>,
    queries: Vec<SargQuery>,
    comps: Vec<(ComponentId, String)>,
    next_num: u16,
    max_num: u16,
    next_bool: u16,
    max_bool: u16,
    next_str: u16,
    max_str: u16,
    next_loop: u8,
    max_loop: u8,
    inline_depth: usize,
}

fn vm_cmp(op: BinOp) -> VmCmp {
    match op {
        BinOp::Eq => VmCmp::Eq,
        BinOp::Ne => VmCmp::Ne,
        BinOp::Lt => VmCmp::Lt,
        BinOp::Le => VmCmp::Le,
        BinOp::Gt => VmCmp::Gt,
        BinOp::Ge => VmCmp::Ge,
        _ => unreachable!("caller checked is_cmp"),
    }
}

impl<'a> Compiler<'a> {
    // ---- register + pool bookkeeping ----

    fn alloc_num(&mut self) -> Result<Reg, CompileError> {
        if self.next_num >= MAX_REGS {
            return Err(CompileError::Unsupported(
                "num register file exhausted (script too large)".into(),
            ));
        }
        let r = self.next_num;
        self.next_num += 1;
        self.max_num = self.max_num.max(self.next_num);
        Ok(r)
    }

    fn alloc_bool(&mut self) -> Result<Reg, CompileError> {
        if self.next_bool >= MAX_REGS {
            return Err(CompileError::Unsupported(
                "bool register file exhausted (script too large)".into(),
            ));
        }
        let r = self.next_bool;
        self.next_bool += 1;
        self.max_bool = self.max_bool.max(self.next_bool);
        Ok(r)
    }

    fn alloc_str(&mut self) -> Result<Reg, CompileError> {
        if self.next_str >= MAX_REGS {
            return Err(CompileError::Unsupported(
                "str register file exhausted (script too large)".into(),
            ));
        }
        let r = self.next_str;
        self.next_str += 1;
        self.max_str = self.max_str.max(self.next_str);
        Ok(r)
    }

    fn alloc_loop(&mut self) -> Result<u8, CompileError> {
        if self.next_loop >= MAX_LOOPS {
            return Err(CompileError::Unsupported(
                "loop nesting too deep for the VM".into(),
            ));
        }
        let s = self.next_loop;
        self.next_loop += 1;
        self.max_loop = self.max_loop.max(self.next_loop);
        Ok(s)
    }

    fn free_loop(&mut self) {
        self.next_loop -= 1;
    }

    fn marks(&self) -> Mark {
        Mark {
            num: self.next_num,
            bool_: self.next_bool,
            str_: self.next_str,
        }
    }

    fn release(&mut self, m: Mark) {
        self.next_num = m.num;
        self.next_bool = m.bool_;
        self.next_str = m.str_;
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.instrs.push(i);
        self.instrs.len() - 1
    }

    fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.instrs[at] {
            Instr::Jump { to }
            | Instr::JumpIf { to, .. }
            | Instr::JumpIfNot { to, .. }
            | Instr::SkipIfPrefiltered { to, .. } => *to = target,
            Instr::LoopNext { exit, .. } => *exit = target,
            other => unreachable!("patched non-jump instruction {other:?}"),
        }
    }

    fn pool_idx(&mut self, s: &str) -> Result<u16, CompileError> {
        if let Some(i) = self.pool.iter().position(|p| p == s) {
            return Ok(i as u16);
        }
        if self.pool.len() >= u16::MAX as usize {
            return Err(CompileError::Unsupported(
                "constant pool exhausted (script too large)".into(),
            ));
        }
        self.pool.push(s.to_string());
        Ok((self.pool.len() - 1) as u16)
    }

    // ---- name resolution ----

    fn lookup(&self, name: &str) -> Option<VReg> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    /// Resolve a component name to its interned id + type, recording it
    /// in the program's validation table.
    fn comp(&mut self, name: &str) -> Result<(ComponentId, ValueType), CompileError> {
        let (id, ty) = self
            .schema
            .get(name)
            .copied()
            .ok_or_else(|| CompileError::Semantic(format!("unknown component '{name}'")))?;
        if !self.comps.iter().any(|(c, _)| *c == id) {
            self.comps.push((id, name.to_string()));
        }
        Ok((id, ty))
    }

    fn comp_ty(&self, comp: &str) -> Result<ValueType, CompileError> {
        if comp == "x" || comp == "y" {
            return Ok(ValueType::Float);
        }
        self.schema
            .get(comp)
            .map(|(_, t)| *t)
            .ok_or_else(|| CompileError::Semantic(format!("unknown component '{comp}'")))
    }

    /// Expression type in the compiled subset (same table as the closure
    /// compiler's).
    fn ty_of(&self, e: &Expr) -> Result<Ty, CompileError> {
        Ok(match e {
            Expr::Num(_) => Ty::Num,
            Expr::Bool(_) => Ty::Bool,
            Expr::Str(_) => Ty::Str,
            Expr::Var(name) => match self.lookup(name) {
                Some(VReg::Num(_)) => Ty::Num,
                Some(VReg::Bool(_)) => Ty::Bool,
                None => {
                    return Err(CompileError::Semantic(format!(
                        "undeclared variable '{name}'"
                    )))
                }
            },
            Expr::Comp(_, comp) => match self.comp_ty(comp)? {
                ValueType::Float | ValueType::Int => Ty::Num,
                ValueType::Bool => Ty::Bool,
                ValueType::Str => Ty::Str,
                ValueType::Vec2 => {
                    return Err(CompileError::Semantic(format!(
                        "component '{comp}' is vec2"
                    )))
                }
            },
            Expr::Unary { not, .. } => {
                if *not {
                    Ty::Bool
                } else {
                    Ty::Num
                }
            }
            Expr::Bin { op, .. } => {
                if op.is_cmp() || op.is_logic() {
                    Ty::Bool
                } else {
                    Ty::Num
                }
            }
            Expr::DistToOther
            | Expr::Builtin { .. }
            | Expr::Agg { .. }
            | Expr::NearestDist { .. } => Ty::Num,
        })
    }

    // ---- expression lowering ----

    /// Numeric source register: a named local reads in place (no copy);
    /// anything else evaluates into a fresh temporary. Callers bracket
    /// with [`Compiler::marks`]/[`Compiler::release`].
    fn num_src(&mut self, e: &Expr) -> Result<Reg, CompileError> {
        if let Expr::Var(name) = e {
            return match self.lookup(name) {
                Some(VReg::Num(r)) => Ok(r),
                Some(VReg::Bool(_)) => Err(CompileError::Semantic(format!(
                    "variable '{name}' is bool, expected num"
                ))),
                None => Err(CompileError::Semantic(format!(
                    "undeclared variable '{name}'"
                ))),
            };
        }
        let t = self.alloc_num()?;
        self.num_into(e, t)?;
        Ok(t)
    }

    fn bool_src(&mut self, e: &Expr) -> Result<Reg, CompileError> {
        if let Expr::Var(name) = e {
            return match self.lookup(name) {
                Some(VReg::Bool(r)) => Ok(r),
                Some(VReg::Num(_)) => Err(CompileError::Semantic(format!(
                    "variable '{name}' is num, expected bool"
                ))),
                None => Err(CompileError::Semantic(format!(
                    "undeclared variable '{name}'"
                ))),
            };
        }
        let t = self.alloc_bool()?;
        self.bool_into(e, t)?;
        Ok(t)
    }

    /// String source register. Only literals and str components compile
    /// (all comparisons need), matching the closure compiler's subset.
    fn str_src(&mut self, e: &Expr) -> Result<Reg, CompileError> {
        match e {
            Expr::Str(s) => {
                let pool = self.pool_idx(s)?;
                let t = self.alloc_str()?;
                self.emit(Instr::LoadStr { dst: t, pool });
                Ok(t)
            }
            Expr::Comp(subject, comp) if self.comp_ty(comp)? == ValueType::Str => {
                let (col, _) = self.comp(comp)?;
                let t = self.alloc_str()?;
                self.emit(Instr::ReadStr {
                    dst: t,
                    col,
                    subj: *subject,
                });
                Ok(t)
            }
            _ => Err(CompileError::Unsupported(
                "general string expressions (only str components and literals compile)".into(),
            )),
        }
    }

    /// Lower a numeric expression so its value lands in `dst`. Source
    /// registers are always read before `dst` is written within any one
    /// instruction, so `dst` may alias a source (in-place updates like
    /// `x = x + 1` compile without a copy).
    fn num_into(&mut self, e: &Expr, dst: Reg) -> Result<(), CompileError> {
        match e {
            Expr::Num(n) => {
                self.emit(Instr::LoadNum { dst, val: *n });
            }
            Expr::Var(_) => {
                let src = self.num_src(e)?;
                if src != dst {
                    self.emit(Instr::CopyNum { dst, src });
                }
            }
            Expr::Comp(subject, comp) => {
                if comp == "x" || comp == "y" {
                    self.emit(Instr::ReadAxis {
                        dst,
                        subj: *subject,
                        y: comp == "y",
                    });
                    return Ok(());
                }
                let (col, ty) = self.comp(comp)?;
                match ty {
                    ValueType::Float | ValueType::Int => {
                        self.emit(Instr::ReadNum {
                            dst,
                            col,
                            subj: *subject,
                        });
                    }
                    other => {
                        return Err(CompileError::Semantic(format!(
                            "component '{comp}' is {other}, expected numeric"
                        )))
                    }
                }
            }
            Expr::Unary { neg, not, inner } => {
                if *not {
                    return Err(CompileError::Semantic("'!' yields bool".into()));
                }
                self.num_into(inner, dst)?;
                if *neg {
                    self.emit(Instr::Neg { dst, src: dst });
                }
            }
            Expr::Bin { op, lhs, rhs } if !op.is_cmp() && !op.is_logic() => {
                let m = self.marks();
                let a = self.num_src(lhs)?;
                let b = self.num_src(rhs)?;
                let op = match op {
                    BinOp::Add => VmArith::Add,
                    BinOp::Sub => VmArith::Sub,
                    BinOp::Mul => VmArith::Mul,
                    BinOp::Div => VmArith::Div,
                    BinOp::Rem => VmArith::Rem,
                    _ => unreachable!(),
                };
                self.emit(Instr::Arith { op, dst, a, b });
                self.release(m);
            }
            Expr::Bin { .. } => {
                return Err(CompileError::Semantic(
                    "comparison used where num expected".into(),
                ))
            }
            Expr::DistToOther => {
                self.emit(Instr::Dist { dst });
            }
            Expr::Builtin { name, args } => {
                let m = self.marks();
                let mut regs = [0 as Reg; 3];
                for (i, a) in args.iter().enumerate() {
                    regs[i] = self.num_src(a)?;
                }
                match name {
                    BuiltinFn::Min => self.emit(Instr::MinNum {
                        dst,
                        a: regs[0],
                        b: regs[1],
                    }),
                    BuiltinFn::Max => self.emit(Instr::MaxNum {
                        dst,
                        a: regs[0],
                        b: regs[1],
                    }),
                    BuiltinFn::Abs => self.emit(Instr::AbsNum { dst, src: regs[0] }),
                    BuiltinFn::Clamp => self.emit(Instr::ClampNum {
                        dst,
                        x: regs[0],
                        lo: regs[1],
                        hi: regs[2],
                    }),
                };
                self.release(m);
            }
            Expr::Agg {
                kind,
                radius,
                arg,
                filter,
            } => self.agg(*kind, radius, arg.as_deref(), filter.as_deref(), dst)?,
            Expr::NearestDist { radius } => {
                let m = self.marks();
                let r = self.num_src(radius)?;
                self.emit(Instr::NearestDist { dst, radius: r });
                self.release(m);
            }
            Expr::Bool(_) | Expr::Str(_) => {
                return Err(CompileError::Semantic(
                    "bool/str used where num expected".into(),
                ))
            }
        }
        Ok(())
    }

    /// Lower a boolean expression into `dst`. Logic operators write the
    /// lhs into `dst` and conditionally skip the rhs — which is why
    /// `dst` must NOT alias a register the rhs reads; callers pass a
    /// fresh temporary (or a `let` target not yet in scope).
    fn bool_into(&mut self, e: &Expr, dst: Reg) -> Result<(), CompileError> {
        match e {
            Expr::Bool(b) => {
                self.emit(Instr::LoadBool { dst, val: *b });
            }
            Expr::Var(_) => {
                let src = self.bool_src(e)?;
                if src != dst {
                    self.emit(Instr::CopyBool { dst, src });
                }
            }
            Expr::Comp(subject, comp) => {
                let (col, ty) = self.comp(comp)?;
                if ty != ValueType::Bool {
                    return Err(CompileError::Semantic(format!(
                        "expected bool expression, got {e:?}"
                    )));
                }
                self.emit(Instr::ReadBool {
                    dst,
                    col,
                    subj: *subject,
                });
            }
            Expr::Unary { not, inner, .. } if *not => {
                self.bool_into(inner, dst)?;
                self.emit(Instr::Not { dst, src: dst });
            }
            Expr::Bin { op, lhs, rhs } if op.is_logic() => {
                self.bool_into(lhs, dst)?;
                let skip = if *op == BinOp::And {
                    self.emit(Instr::JumpIfNot { cond: dst, to: 0 })
                } else {
                    self.emit(Instr::JumpIf { cond: dst, to: 0 })
                };
                self.bool_into(rhs, dst)?;
                let end = self.here();
                self.patch(skip, end);
            }
            Expr::Bin { op, lhs, rhs } if op.is_cmp() => {
                let lt = self.ty_of(lhs)?;
                let rt = self.ty_of(rhs)?;
                if lt != rt {
                    return Err(CompileError::Semantic(format!(
                        "cannot compare {lt} with {rt}"
                    )));
                }
                let op = vm_cmp(*op);
                let m = self.marks();
                match lt {
                    Ty::Num => {
                        let a = self.num_src(lhs)?;
                        let b = self.num_src(rhs)?;
                        self.emit(Instr::CmpNum { op, dst, a, b });
                    }
                    Ty::Str => {
                        let a = self.str_src(lhs)?;
                        let b = self.str_src(rhs)?;
                        self.emit(Instr::CmpStr { op, dst, a, b });
                    }
                    Ty::Bool => {
                        let a = self.bool_src(lhs)?;
                        let b = self.bool_src(rhs)?;
                        self.emit(Instr::CmpBool { op, dst, a, b });
                    }
                }
                self.release(m);
            }
            other => {
                return Err(CompileError::Semantic(format!(
                    "expected bool expression, got {other:?}"
                )))
            }
        }
        Ok(())
    }

    /// Aggregate lowering: accumulator registers + a candidate loop,
    /// with the sargable filter routed through a pre-built query handle
    /// when extraction succeeds (same conditions as the closure path).
    fn agg(
        &mut self,
        kind: crate::ast::AggKind,
        radius: &Expr,
        arg: Option<&Expr>,
        filter: Option<&Expr>,
        dst: Reg,
    ) -> Result<(), CompileError> {
        let m = self.marks();
        let r = self.num_src(radius)?;
        let cnt = self.alloc_num()?;
        let sum = self.alloc_num()?;
        let minr = self.alloc_num()?;
        let maxr = self.alloc_num()?;
        let one = self.alloc_num()?;
        self.emit(Instr::LoadNum { dst: cnt, val: 0.0 });
        self.emit(Instr::LoadNum { dst: sum, val: 0.0 });
        self.emit(Instr::LoadNum {
            dst: minr,
            val: f64::INFINITY,
        });
        self.emit(Instr::LoadNum {
            dst: maxr,
            val: f64::NEG_INFINITY,
        });
        self.emit(Instr::LoadNum { dst: one, val: 1.0 });

        let query = match filter.and_then(sargable_filter) {
            Some((comp, op, lit)) => {
                if self.queries.len() >= NO_QUERY as usize {
                    return Err(CompileError::Unsupported(
                        "query table exhausted (script too large)".into(),
                    ));
                }
                self.comp(&comp)?;
                self.queries.push(SargQuery { comp, op, lit });
                (self.queries.len() - 1) as u16
            }
            None => NO_QUERY,
        };

        let slot = self.alloc_loop()?;
        self.emit(Instr::LoopBegin {
            slot,
            radius: r,
            query,
        });
        let head = self.here();
        let next_at = self.emit(Instr::LoopNext { slot, exit: 0 });
        if let Some(f) = filter {
            // when the query prefiltered the candidates, the inline
            // re-check is skipped at runtime — but it is still compiled,
            // because `use_index: false` falls back to the naive path
            let skip_at = (query != NO_QUERY)
                .then(|| self.emit(Instr::SkipIfPrefiltered { slot, to: 0 }));
            let fm = self.marks();
            let fb = self.bool_src(f)?;
            self.emit(Instr::JumpIfNot { cond: fb, to: head });
            self.release(fm);
            if let Some(at) = skip_at {
                let here = self.here();
                self.patch(at, here);
            }
        }
        self.emit(Instr::Arith {
            op: VmArith::Add,
            dst: cnt,
            a: cnt,
            b: one,
        });
        if let Some(a) = arg {
            let am = self.marks();
            let v = self.num_src(a)?;
            self.emit(Instr::Arith {
                op: VmArith::Add,
                dst: sum,
                a: sum,
                b: v,
            });
            self.emit(Instr::MinNum {
                dst: minr,
                a: minr,
                b: v,
            });
            self.emit(Instr::MaxNum {
                dst: maxr,
                a: maxr,
                b: v,
            });
            self.release(am);
        }
        self.emit(Instr::Jump { to: head });
        let exit = self.here();
        self.patch(next_at, exit);
        self.emit(Instr::AggFinish {
            kind,
            dst,
            count: cnt,
            sum,
            min: minr,
            max: maxr,
        });
        self.free_loop();
        self.release(m);
        Ok(())
    }

    // ---- statement lowering ----

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(BTreeMap::new());
        let m = self.marks();
        let result = stmts.iter().try_for_each(|s| self.stmt(s));
        self.release(m);
        self.scopes.pop();
        result
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Let { name, value } => {
                // the variable enters scope only after its initializer
                // compiles, so `let x = x + 1;` reads the outer `x`
                match self.ty_of(value)? {
                    Ty::Num => {
                        let dst = self.alloc_num()?;
                        let m = self.marks();
                        self.num_into(value, dst)?;
                        self.release(m);
                        self.scopes
                            .last_mut()
                            .expect("scope stack never empty")
                            .insert(name.clone(), VReg::Num(dst));
                    }
                    Ty::Bool => {
                        let dst = self.alloc_bool()?;
                        let m = self.marks();
                        self.bool_into(value, dst)?;
                        self.release(m);
                        self.scopes
                            .last_mut()
                            .expect("scope stack never empty")
                            .insert(name.clone(), VReg::Bool(dst));
                    }
                    Ty::Str => {
                        return Err(CompileError::Unsupported(
                            "string-valued locals do not compile (interpreter handles them)"
                                .into(),
                        ))
                    }
                }
            }
            Stmt::AssignVar { name, value } => match self.lookup(name) {
                Some(VReg::Num(r)) => {
                    let m = self.marks();
                    self.num_into(value, r)?;
                    self.release(m);
                }
                Some(VReg::Bool(r)) => {
                    // bool lowering may write dst before the rhs of a
                    // logic op runs (`b = c || b`), so evaluate into a
                    // fresh temp and copy
                    let m = self.marks();
                    let t = self.alloc_bool()?;
                    self.bool_into(value, t)?;
                    self.emit(Instr::CopyBool { dst: r, src: t });
                    self.release(m);
                }
                None => {
                    return Err(CompileError::Semantic(format!(
                        "undeclared variable '{name}'"
                    )))
                }
            },
            Stmt::AssignComp {
                subject,
                component,
                op,
                value,
            } => {
                if component == "x" || component == "y" {
                    return Err(CompileError::Semantic("position writes use move()".into()));
                }
                if *subject == Subject::Other && *op == AssignOp::Set {
                    return Err(CompileError::Semantic(
                        "non-commutative write to another entity".into(),
                    ));
                }
                let (_, cty) = self.comp(component)?;
                let name = self.pool_idx(component)?;
                // the interpreter resolves the write target before
                // evaluating the value, so an unbound `other` must error
                // ahead of any value-side error
                if *subject == Subject::Other {
                    self.emit(Instr::CheckOther);
                }
                let subj = *subject;
                match op {
                    AssignOp::Set => match cty {
                        ValueType::Float => {
                            let m = self.marks();
                            let src = self.num_src(value)?;
                            self.emit(Instr::SetF32 { subj, name, src });
                            self.release(m);
                        }
                        ValueType::Int => {
                            let m = self.marks();
                            let src = self.num_src(value)?;
                            self.emit(Instr::SetI64 { subj, name, src });
                            self.release(m);
                        }
                        ValueType::Bool => {
                            let m = self.marks();
                            let src = self.bool_src(value)?;
                            self.emit(Instr::SetBool { subj, name, src });
                            self.release(m);
                        }
                        ValueType::Str => {
                            let m = self.marks();
                            let src = self.str_src(value)?;
                            self.emit(Instr::SetStr { subj, name, src });
                            self.release(m);
                        }
                        ValueType::Vec2 => {
                            return Err(CompileError::Semantic(
                                "vec2 components are written with move()".into(),
                            ))
                        }
                    },
                    AssignOp::Add | AssignOp::Sub => {
                        let m = self.marks();
                        let src = self.num_src(value)?;
                        self.emit(Instr::AddNum {
                            subj,
                            name,
                            src,
                            negate: *op == AssignOp::Sub,
                        });
                        self.release(m);
                    }
                }
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                let m = self.marks();
                let c = self.bool_src(cond)?;
                let jf = self.emit(Instr::JumpIfNot { cond: c, to: 0 });
                self.release(m);
                self.block(then_block)?;
                if else_block.is_empty() {
                    let end = self.here();
                    self.patch(jf, end);
                } else {
                    let j = self.emit(Instr::Jump { to: 0 });
                    let else_at = self.here();
                    self.patch(jf, else_at);
                    self.block(else_block)?;
                    let end = self.here();
                    self.patch(j, end);
                }
            }
            Stmt::Foreach { radius, body } => {
                let m = self.marks();
                let r = self.num_src(radius)?;
                let slot = self.alloc_loop()?;
                self.emit(Instr::LoopBegin {
                    slot,
                    radius: r,
                    query: NO_QUERY,
                });
                self.release(m);
                let head = self.here();
                let next_at = self.emit(Instr::LoopNext { slot, exit: 0 });
                self.block(body)?;
                self.emit(Instr::Jump { to: head });
                let exit = self.here();
                self.patch(next_at, exit);
                self.free_loop();
            }
            Stmt::While { cond, body } => {
                let head = self.here();
                let m = self.marks();
                let c = self.bool_src(cond)?;
                let jf = self.emit(Instr::JumpIfNot { cond: c, to: 0 });
                self.release(m);
                self.emit(Instr::ConsumeFuel);
                self.block(body)?;
                self.emit(Instr::Jump { to: head });
                let exit = self.here();
                self.patch(jf, exit);
            }
            Stmt::Move { dx, dy } => {
                let m = self.marks();
                let a = self.num_src(dx)?;
                let b = self.num_src(dy)?;
                self.emit(Instr::MoveBy { dx: a, dy: b });
                self.release(m);
            }
            Stmt::Despawn => {
                self.emit(Instr::Despawn);
            }
            Stmt::Call { script } => {
                if self.inline_depth >= MAX_INLINE_DEPTH {
                    return Err(CompileError::InlineDepthExceeded(script.clone()));
                }
                let callee = self
                    .lib
                    .get(script)
                    .ok_or_else(|| CompileError::UnknownScript(script.clone()))?
                    .clone();
                self.inline_depth += 1;
                // callee sees no caller locals: fresh scope chain
                let saved_scopes = std::mem::replace(&mut self.scopes, vec![BTreeMap::new()]);
                let result = self.block(&callee.body);
                self.scopes = saved_scopes;
                self.inline_depth -= 1;
                result?;
            }
            Stmt::Emit { event } => {
                let pool = self.pool_idx(event)?;
                self.emit(Instr::Emit { pool });
            }
        }
        Ok(())
    }
}

/// Lower a script from a library to a [`Program`] against a world
/// schema. Fails with the same [`CompileError`]s (and messages) as the
/// closure compiler, so engine fallback behavior is mode-independent.
pub fn compile_program(
    lib: &ScriptLibrary,
    name: &str,
    world: &World,
) -> Result<Program, CompileError> {
    let script: &Script = lib
        .get(name)
        .ok_or_else(|| CompileError::UnknownScript(name.to_string()))?;
    let schema: BTreeMap<String, (ComponentId, ValueType)> = world
        .schema_by_id()
        .map(|(id, n, t)| (n.to_string(), (id, t)))
        .collect();
    let mut c = Compiler {
        lib,
        schema,
        scopes: vec![BTreeMap::new()],
        instrs: Vec::new(),
        pool: Vec::new(),
        queries: Vec::new(),
        comps: Vec::new(),
        next_num: 0,
        max_num: 0,
        next_bool: 0,
        max_bool: 0,
        next_str: 0,
        max_str: 0,
        next_loop: 0,
        max_loop: 0,
        inline_depth: 0,
    };
    c.block(&script.body)?;
    Ok(Program {
        name: name.to_string(),
        instrs: c.instrs,
        pool: c.pool,
        queries: c.queries,
        num_regs: c.max_num,
        bool_regs: c.max_bool,
        str_regs: c.max_str,
        loop_slots: c.max_loop,
        comps: c.comps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_script, ExecOptions};
    use crate::parser::parse_script;
    use crate::vm::Vm;
    use gamedb_content::Value;
    use gamedb_core::{EffectBuffer, World};
    use gamedb_spatial::Vec2;

    fn lib(sources: &[(&str, &str)]) -> ScriptLibrary {
        let mut l = ScriptLibrary::new();
        for (name, src) in sources {
            l.insert(parse_script(name, src).unwrap());
        }
        l
    }

    fn test_world(n: usize) -> World {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("dmg", ValueType::Float).unwrap();
        w.define_component("team", ValueType::Str).unwrap();
        w.define_component("gold", ValueType::Int).unwrap();
        w.define_component("alive", ValueType::Bool).unwrap();
        for i in 0..n {
            let e = w.spawn_at(Vec2::new((i % 8) as f32 * 3.0, (i / 8) as f32 * 3.0));
            w.set_f32(e, "hp", 50.0 + i as f32).unwrap();
            w.set_f32(e, "dmg", 1.0 + (i % 3) as f32).unwrap();
            w.set(
                e,
                "team",
                Value::Str(if i % 2 == 0 { "red" } else { "blue" }.into()),
            )
            .unwrap();
            w.set(e, "gold", Value::Int(i as i64)).unwrap();
            w.set(e, "alive", Value::Bool(true)).unwrap();
        }
        w
    }

    /// The VM must agree with the interpreter on every observable:
    /// outcome (Ok events or the exact RuntimeError), the effect ops in
    /// order, despawns, and the applied world state.
    fn assert_vm_equivalent_opts(src: &str, w: &World, opts: ExecOptions) {
        let l = lib(&[("s", src)]);
        let p = compile_program(&l, "s", w).unwrap();
        let mut vm = Vm::new();
        for id in w.entity_vec() {
            let mut b1 = EffectBuffer::new();
            let mut b2 = EffectBuffer::new();
            let r_i = run_script(&l, "s", w, id, &mut b1, opts);
            let r_v = vm.run(&p, w, id, &mut b2, opts);
            match (r_i, r_v) {
                (Ok(out), Ok(ev)) => assert_eq!(out.events, ev, "events: {src}"),
                (Err(e1), Err(e2)) => assert_eq!(e1, e2, "errors: {src}"),
                (a, b) => panic!("outcome mismatch for {src}: interp {a:?}, vm {b:?}"),
            }
            let o1: Vec<_> = b1.ops().collect();
            let o2: Vec<_> = b2.ops().collect();
            assert_eq!(o1, o2, "effect ops: {src}");
            assert_eq!(b1.despawned(), b2.despawned(), "despawns: {src}");
            let mut w1 = w.clone();
            let mut w2 = w.clone();
            b1.apply(&mut w1).unwrap();
            b2.apply(&mut w2).unwrap();
            assert_eq!(w1.rows(), w2.rows(), "rows: {src}");
        }
        assert!(vm.take_instr_count() > 0, "instruction counter sees runs");
    }

    fn assert_vm_equivalent(src: &str) {
        assert_vm_equivalent_opts(src, &test_world(30), ExecOptions::default());
    }

    #[test]
    fn arithmetic_equivalence() {
        assert_vm_equivalent("self.hp = 1 + 2 * 3 - 4 / 2 + self.dmg;");
        assert_vm_equivalent("self.gold = 7 / 2;");
        assert_vm_equivalent("self.hp = 5 / 0 + 5 % 0;");
        assert_vm_equivalent("self.hp = min(self.hp, 60) + max(1, self.dmg) + abs(0 - 3) + clamp(self.hp, 0, 55);");
        assert_vm_equivalent("self.hp = 0 - self.dmg + self.gold % 4;");
    }

    #[test]
    fn aggregate_equivalence() {
        assert_vm_equivalent("self.hp = count(7);");
        assert_vm_equivalent("self.hp = count(7; other.team != self.team);");
        assert_vm_equivalent("self.hp = sum(7; other.dmg; other.hp > self.hp);");
        assert_vm_equivalent(
            "self.hp = maxof(9; other.hp) + minof(9; other.hp) + avgof(9; other.gold);",
        );
        assert_vm_equivalent("self.hp = nearest_dist(12);");
        // empty candidate sets: min/max/avg report 0
        assert_vm_equivalent("self.hp = minof(0.1; other.hp) + maxof(0.1; other.hp) + avgof(0.1; other.hp);");
        // nested aggregate in the outer aggregate's argument
        assert_vm_equivalent("self.hp = sum(6; count(3));");
    }

    #[test]
    fn aggregate_pushdown_equivalence_with_indexes() {
        use gamedb_core::IndexKind;
        for src in [
            "self.hp = count(9; other.hp > 55);",
            "self.hp = sum(9; other.dmg; other.gold >= 20);",
            "self.hp = sum(200; other.dmg; other.hp == 61);",
            "self.hp = count(9; other.hp < 55);", // not sargable: inline filter
        ] {
            let mut w = test_world(30);
            w.create_index("hp", IndexKind::Sorted).unwrap();
            w.create_index("gold", IndexKind::Sorted).unwrap();
            assert_vm_equivalent_opts(src, &w, ExecOptions::default());
        }
    }

    #[test]
    fn naive_mode_matches_indexed() {
        let w = test_world(40);
        for src in [
            "self.hp = count(9) + sum(9; other.dmg);",
            "self.hp = count(9; other.hp > 55);", // sargable, but no index use
            "self.hp = nearest_dist(10);",
        ] {
            assert_vm_equivalent_opts(
                src,
                &w,
                ExecOptions {
                    use_index: false,
                    ..ExecOptions::default()
                },
            );
            assert_vm_equivalent_opts(src, &w, ExecOptions::default());
        }
    }

    #[test]
    fn control_flow_equivalence() {
        assert_vm_equivalent(
            r#"let n = count(6);
               if n > 2 {
                 move(0 - 1, 0);
                 emit "crowded";
               } else {
                 self.hp += 1;
               }"#,
        );
        assert_vm_equivalent(
            r#"let n = 3;
               let acc = 0;
               while n > 0 { acc = acc + n; n = n - 1; }
               self.hp = acc;"#,
        );
        // short-circuit: rhs of && / || must not evaluate when decided
        assert_vm_equivalent(
            r#"let a = self.hp > 0;
               let b = a || self.dmg > 100;
               let c = a && self.gold >= 0;
               if b == c { self.hp += 1; }"#,
        );
        // bool reassignment reading its own previous value
        assert_vm_equivalent(
            r#"let b = self.hp > 55;
               b = self.dmg > 100 || b;
               if b { self.hp += 1; }"#,
        );
    }

    #[test]
    fn foreach_equivalence() {
        assert_vm_equivalent(
            r#"foreach within (6) {
                 if other.team != self.team && dist(other) < 5 {
                   other.hp -= self.dmg;
                 }
               }"#,
        );
        // nested foreach: loop frames stack, `other` restores correctly
        assert_vm_equivalent(
            r#"foreach within (4) {
                 other.hp += 0.5;
                 foreach within (3) { other.hp -= 0.25; }
                 other.hp += count(2);
               }"#,
        );
    }

    #[test]
    fn bool_and_str_components() {
        assert_vm_equivalent("self.alive = self.hp > 0;");
        assert_vm_equivalent(r#"if self.team == "red" { self.hp += 1; } "#);
        assert_vm_equivalent(r#"self.team = "green";"#);
        assert_vm_equivalent("if self.alive == true { despawn; }");
        assert_vm_equivalent(r#"self.hp = count(8; other.team == "red");"#);
    }

    #[test]
    fn loop_fuel_parity() {
        // the VM shares one fuel pool across the whole run, exactly like
        // the interpreter — including the partial effects already pushed
        let opts = ExecOptions {
            loop_fuel: 10,
            ..ExecOptions::default()
        };
        assert_vm_equivalent_opts("while 1 > 0 { self.hp += 1; }", &test_world(3), opts);
        assert_vm_equivalent_opts(
            "let n = 6; while n > 0 { n = n - 1; } while 1 > 0 { self.hp += 1; }",
            &test_world(3),
            opts,
        );
    }

    #[test]
    fn runtime_error_parity() {
        // 'other' unbound outside any loop: interpreter wording, and the
        // error must surface before the value expression evaluates
        assert_vm_equivalent("self.hp = dist(other);");
        assert_vm_equivalent("other.hp += 1;");
        // entities without positions: NoPosition parity on neighborhood ops
        let mut w = test_world(6);
        let ghost = w.spawn();
        w.set_f32(ghost, "hp", 1.0).unwrap();
        assert_vm_equivalent_opts("self.hp = count(5);", &w, ExecOptions::default());
        assert_vm_equivalent_opts("self.hp = nearest_dist(5);", &w, ExecOptions::default());
        assert_vm_equivalent_opts("self.hp = self.x + self.y;", &w, ExecOptions::default());
    }

    #[test]
    fn call_inlining() {
        let l = lib(&[
            ("main", "call helper; call helper;"),
            ("helper", "self.hp += 1;"),
        ]);
        let w = test_world(4);
        let p = compile_program(&l, "main", &w).unwrap();
        let id = w.entity_vec()[0];
        let mut vm = Vm::new();
        let mut buf = EffectBuffer::new();
        vm.run(&p, &w, id, &mut buf, ExecOptions::default()).unwrap();
        let mut w2 = w.clone();
        buf.apply(&mut w2).unwrap();
        assert_eq!(w2.get_f32(id, "hp"), Some(52.0));
    }

    #[test]
    fn recursion_fails_to_compile() {
        let l = lib(&[("r", "call r;")]);
        let w = test_world(1);
        assert!(matches!(
            compile_program(&l, "r", &w),
            Err(CompileError::InlineDepthExceeded(_))
        ));
    }

    #[test]
    fn string_locals_unsupported() {
        let l = lib(&[("s", r#"let t = self.team; self.hp += 1;"#)]);
        let w = test_world(1);
        assert!(matches!(
            compile_program(&l, "s", &w),
            Err(CompileError::Unsupported(_))
        ));
    }

    #[test]
    fn unknown_component_is_semantic_error() {
        let l = lib(&[("s", "self.mana += 1;")]);
        let w = test_world(1);
        assert!(matches!(
            compile_program(&l, "s", &w),
            Err(CompileError::Semantic(_))
        ));
    }

    #[test]
    fn register_reuse_keeps_files_small() {
        // deep expression trees release temporaries as they go
        let src = "self.hp = ((1 + 2) * (3 + 4)) + ((5 + 6) * (7 + 8)) + self.dmg * (self.gold + 1);";
        let l = lib(&[("s", src)]);
        let w = test_world(2);
        let p = compile_program(&l, "s", &w).unwrap();
        assert!(
            p.num_regs() <= 8,
            "mark/release should bound the register file, got {}",
            p.num_regs()
        );
        assert_vm_equivalent(src);
    }

    #[test]
    fn validate_schema_detects_cross_world_reuse() {
        let l = lib(&[("s", "self.hp += 1;")]);
        let w = test_world(2);
        let p = compile_program(&l, "s", &w).unwrap();
        assert!(p.validate_schema(&w));
        // a world whose id→name mapping differs must be rejected
        let mut other = World::new();
        other.define_component("armor", ValueType::Float).unwrap();
        other.define_component("hp", ValueType::Float).unwrap();
        assert!(!p.validate_schema(&other));
    }

    #[test]
    fn program_introspection() {
        let l = lib(&[("s", "self.hp = count(5; other.hp > 55);")]);
        let w = test_world(2);
        let p = compile_program(&l, "s", &w).unwrap();
        assert_eq!(p.name(), "s");
        assert!(p.instr_count() > 0);
        assert_eq!(p.instr_count(), p.instrs().len());
        // the sargable filter became a pre-built query handle
        assert!(p
            .instrs()
            .iter()
            .any(|i| matches!(i, Instr::LoopBegin { query, .. } if *query != NO_QUERY)));
    }
}
