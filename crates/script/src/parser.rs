//! Recursive-descent parser for GSL.
//!
//! Precedence (loosest to tightest):
//! `||` < `&&` < comparisons < `+ -` < `* / %` < unary < primary.

use std::fmt;

use crate::ast::{AggKind, AssignOp, BinOp, BuiltinFn, Expr, Script, Stmt, Subject};
use crate::token::{lex, LexError, Token, TokenKind};

/// Parse error with location.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            col: e.col,
            message: e.message,
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError {
            line: t.line,
            col: t.col,
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token, ParseError> {
        if self.peek_kind() == kind {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {what}, found '{}'", self.peek_kind())))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.err(format!("expected {what}, found '{other}'"))),
        }
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek_kind() {
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::NotEq => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary {
                neg: true,
                not: false,
                inner: Box::new(inner),
            });
        }
        if self.eat(&TokenKind::Not) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary {
                neg: false,
                not: true,
                inner: Box::new(inner),
            });
        }
        self.primary()
    }

    fn agg(&mut self, kind: AggKind) -> Result<Expr, ParseError> {
        // e.g. sum(10; other.dmg; other.team == self.team)
        self.expect(&TokenKind::LParen, "'('")?;
        let radius = self.expr()?;
        let mut arg = None;
        let mut filter = None;
        if kind != AggKind::Count {
            self.expect(&TokenKind::Semi, "';' before aggregate expression")?;
            arg = Some(Box::new(self.expr()?));
        }
        if self.eat(&TokenKind::Semi) {
            filter = Some(Box::new(self.expr()?));
        }
        self.expect(&TokenKind::RParen, "')'")?;
        Ok(Expr::Agg {
            kind,
            radius: Box::new(radius),
            arg,
            filter,
        })
    }

    fn builtin(&mut self, name: BuiltinFn) -> Result<Expr, ParseError> {
        self.expect(&TokenKind::LParen, "'('")?;
        let mut args = Vec::new();
        if self.peek_kind() != &TokenKind::RParen {
            args.push(self.expr()?);
            while self.eat(&TokenKind::Comma) {
                args.push(self.expr()?);
            }
        }
        self.expect(&TokenKind::RParen, "')'")?;
        if args.len() != name.arity() {
            return Err(self.err(format!(
                "{name} takes {} argument(s), got {}",
                name.arity(),
                args.len()
            )));
        }
        Ok(Expr::Builtin { name, args })
    }

    fn comp_ref(&mut self, subject: Subject) -> Result<Expr, ParseError> {
        self.expect(&TokenKind::Dot, "'.' after entity reference")?;
        let comp = self.ident("component name")?;
        Ok(Expr::Comp(subject, comp))
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Number(n) => {
                self.bump();
                Ok(Expr::Num(n))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            TokenKind::SelfKw => {
                self.bump();
                self.comp_ref(Subject::SelfEnt)
            }
            TokenKind::Other => {
                self.bump();
                self.comp_ref(Subject::Other)
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::Var(name))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            TokenKind::Count => {
                self.bump();
                self.agg(AggKind::Count)
            }
            TokenKind::Sum => {
                self.bump();
                self.agg(AggKind::Sum)
            }
            TokenKind::MinOf => {
                self.bump();
                self.agg(AggKind::Min)
            }
            TokenKind::MaxOf => {
                self.bump();
                self.agg(AggKind::Max)
            }
            TokenKind::AvgOf => {
                self.bump();
                self.agg(AggKind::Avg)
            }
            TokenKind::NearestDist => {
                self.bump();
                self.expect(&TokenKind::LParen, "'('")?;
                let r = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(Expr::NearestDist {
                    radius: Box::new(r),
                })
            }
            TokenKind::Dist => {
                self.bump();
                self.expect(&TokenKind::LParen, "'('")?;
                self.expect(&TokenKind::Other, "'other' (dist measures to the iteration entity)")?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(Expr::DistToOther)
            }
            TokenKind::Min => {
                self.bump();
                self.builtin(BuiltinFn::Min)
            }
            TokenKind::Max => {
                self.bump();
                self.builtin(BuiltinFn::Max)
            }
            TokenKind::Abs => {
                self.bump();
                self.builtin(BuiltinFn::Abs)
            }
            TokenKind::Clamp => {
                self.bump();
                self.builtin(BuiltinFn::Clamp)
            }
            other => Err(self.err(format!("expected an expression, found '{other}'"))),
        }
    }

    // ---- statements ----

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&TokenKind::LBrace, "'{'")?;
        let mut stmts = Vec::new();
        while self.peek_kind() != &TokenKind::RBrace {
            if self.peek_kind() == &TokenKind::Eof {
                return Err(self.err("unexpected end of script inside block"));
            }
            stmts.push(self.stmt()?);
        }
        self.bump(); // consume '}'
        Ok(stmts)
    }

    fn assign_comp(&mut self, subject: Subject) -> Result<Stmt, ParseError> {
        self.expect(&TokenKind::Dot, "'.'")?;
        let component = self.ident("component name")?;
        let op = match self.peek_kind() {
            TokenKind::Assign => AssignOp::Set,
            TokenKind::PlusEq => AssignOp::Add,
            TokenKind::MinusEq => AssignOp::Sub,
            other => {
                return Err(self.err(format!(
                    "expected '=', '+=' or '-=' after component, found '{other}'"
                )))
            }
        };
        self.bump();
        let value = self.expr()?;
        self.expect(&TokenKind::Semi, "';'")?;
        Ok(Stmt::AssignComp {
            subject,
            component,
            op,
            value,
        })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Let => {
                self.bump();
                let name = self.ident("variable name")?;
                self.expect(&TokenKind::Assign, "'='")?;
                let value = self.expr()?;
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Stmt::Let { name, value })
            }
            TokenKind::Ident(name) => {
                self.bump();
                self.expect(&TokenKind::Assign, "'=' (assignment to local)")?;
                let value = self.expr()?;
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Stmt::AssignVar { name, value })
            }
            TokenKind::SelfKw => {
                self.bump();
                self.assign_comp(Subject::SelfEnt)
            }
            TokenKind::Other => {
                self.bump();
                self.assign_comp(Subject::Other)
            }
            TokenKind::If => {
                self.bump();
                let cond = self.expr()?;
                let then_block = self.block()?;
                let else_block = if self.eat(&TokenKind::Else) {
                    if self.peek_kind() == &TokenKind::If {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_block,
                    else_block,
                })
            }
            TokenKind::Foreach => {
                self.bump();
                self.expect(&TokenKind::Within, "'within'")?;
                self.expect(&TokenKind::LParen, "'('")?;
                let radius = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                let body = self.block()?;
                Ok(Stmt::Foreach { radius, body })
            }
            TokenKind::While => {
                self.bump();
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            TokenKind::Move => {
                self.bump();
                self.expect(&TokenKind::LParen, "'('")?;
                let dx = self.expr()?;
                self.expect(&TokenKind::Comma, "','")?;
                let dy = self.expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Stmt::Move { dx, dy })
            }
            TokenKind::Despawn => {
                self.bump();
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Stmt::Despawn)
            }
            TokenKind::Call => {
                self.bump();
                let script = self.ident("script name")?;
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Stmt::Call { script })
            }
            TokenKind::Emit => {
                self.bump();
                let event = match self.peek_kind().clone() {
                    TokenKind::Str(s) => {
                        self.bump();
                        s
                    }
                    other => return Err(self.err(format!("expected event string, found '{other}'"))),
                };
                self.expect(&TokenKind::Semi, "';'")?;
                Ok(Stmt::Emit { event })
            }
            other => Err(self.err(format!("expected a statement, found '{other}'"))),
        }
    }

    fn program(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        while self.peek_kind() != &TokenKind::Eof {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }
}

/// Parse GSL source into a statement list.
pub fn parse(src: &str) -> Result<Vec<Stmt>, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

/// Parse a named script.
pub fn parse_script(name: &str, src: &str) -> Result<Script, ParseError> {
    Ok(Script {
        name: name.to_string(),
        body: parse(src)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::to_source;

    #[test]
    fn precedence() {
        let b = parse("let x = 1 + 2 * 3;").unwrap();
        let Stmt::Let { value, .. } = &b[0] else { panic!() };
        // 1 + (2 * 3)
        let Expr::Bin { op: BinOp::Add, rhs, .. } = value else {
            panic!("expected add at top: {value:?}")
        };
        assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn logical_precedence() {
        let b = parse("let x = 1 < 2 && 3 < 4 || false;").unwrap();
        let Stmt::Let { value, .. } = &b[0] else { panic!() };
        assert!(matches!(value, Expr::Bin { op: BinOp::Or, .. }));
    }

    #[test]
    fn component_assignments() {
        let b = parse("self.hp -= 5; other.hp += 1; self.hp = 10;").unwrap();
        assert_eq!(b.len(), 3);
        assert!(matches!(
            &b[0],
            Stmt::AssignComp { subject: Subject::SelfEnt, op: AssignOp::Sub, .. }
        ));
        assert!(matches!(
            &b[1],
            Stmt::AssignComp { subject: Subject::Other, op: AssignOp::Add, .. }
        ));
        assert!(matches!(
            &b[2],
            Stmt::AssignComp { op: AssignOp::Set, .. }
        ));
    }

    #[test]
    fn if_else_chain() {
        let b = parse(
            "if self.hp < 10 { despawn; } else if self.hp < 50 { call flee; } else { move(1, 0); }",
        )
        .unwrap();
        let Stmt::If { else_block, .. } = &b[0] else { panic!() };
        assert_eq!(else_block.len(), 1);
        assert!(matches!(&else_block[0], Stmt::If { .. }));
    }

    #[test]
    fn foreach_and_while() {
        let b = parse(
            "foreach within (10) { if dist(other) < 2 { other.hp -= 1; } }\nwhile self.mana > 0 { self.mana -= 1; }",
        )
        .unwrap();
        assert!(matches!(&b[0], Stmt::Foreach { .. }));
        assert!(matches!(&b[1], Stmt::While { .. }));
    }

    #[test]
    fn aggregates() {
        let b = parse(
            r#"let n = count(10);
               let d = sum(10; other.dmg; other.team == self.team);
               let m = maxof(5; other.hp);
               let nd = nearest_dist(20);"#,
        )
        .unwrap();
        assert_eq!(b.len(), 4);
        let Stmt::Let { value: Expr::Agg { kind, arg, filter, .. }, .. } = &b[1] else {
            panic!()
        };
        assert_eq!(*kind, AggKind::Sum);
        assert!(arg.is_some());
        assert!(filter.is_some());
    }

    #[test]
    fn builtins_check_arity() {
        assert!(parse("let x = min(1, 2);").is_ok());
        assert!(parse("let x = clamp(5, 0, 10);").is_ok());
        let err = parse("let x = min(1);").unwrap_err();
        assert!(err.message.contains("argument"));
    }

    #[test]
    fn errors_carry_location() {
        let err = parse("let x = ;").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("expression"));

        let err = parse("self.hp ** 2;").unwrap_err();
        assert!(err.message.contains("expected"));
    }

    #[test]
    fn unterminated_block() {
        let err = parse("if true { despawn;").unwrap_err();
        assert!(err.message.contains("end of script"));
    }

    #[test]
    fn emit_and_call() {
        let b = parse(r#"emit "boss_seen"; call attack_nearest;"#).unwrap();
        assert!(matches!(&b[0], Stmt::Emit { event } if event == "boss_seen"));
        assert!(matches!(&b[1], Stmt::Call { script } if script == "attack_nearest"));
    }

    #[test]
    fn pretty_print_reparse_roundtrip() {
        let src = r#"
          let threat = count(12; other.team != self.team);
          if threat > 3 {
            move(-1, 0);
            emit "retreat";
          } else {
            foreach within (6) {
              if other.hp < self.hp {
                other.hp -= self.dmg;
              }
            }
          }
        "#;
        let ast1 = parse(src).unwrap();
        let printed = to_source(&ast1);
        let ast2 = parse(&printed).unwrap();
        assert_eq!(ast1, ast2);
    }

    #[test]
    fn dist_requires_other() {
        assert!(parse("let d = dist(other);").is_ok());
        assert!(parse("let d = dist(5);").is_err());
    }
}
