//! Abstract syntax tree for GSL, plus a pretty-printer.
//!
//! The AST is the contract between the parser, the type checker (which
//! enforces the restricted language level), the tree-walking interpreter,
//! and the set-at-a-time compiler.

use std::fmt;

/// Which entity a component reference reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subject {
    /// The entity running the script.
    SelfEnt,
    /// The iteration variable inside `foreach` / aggregate `where`.
    Other,
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::SelfEnt => write!(f, "self"),
            Subject::Other => write!(f, "other"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// True for comparison operators (result type Bool).
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for logical operators (operands and result Bool).
    pub fn is_logic(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        f.write_str(s)
    }
}

/// Aggregate kinds over the neighbor set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl fmt::Display for AggKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggKind::Count => "count",
            AggKind::Sum => "sum",
            AggKind::Min => "minof",
            AggKind::Max => "maxof",
            AggKind::Avg => "avgof",
        };
        f.write_str(s)
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Num(f64),
    Bool(bool),
    Str(String),
    /// Local variable.
    Var(String),
    /// `self.hp` or `other.hp`. `x`/`y` are virtual position components.
    Comp(Subject, String),
    Unary {
        neg: bool,
        not: bool,
        inner: Box<Expr>,
    },
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `dist(other)` — distance from self to other (foreach/where only).
    DistToOther,
    /// `min(a,b)`, `max(a,b)`, `abs(x)`, `clamp(x,lo,hi)`.
    Builtin {
        name: BuiltinFn,
        args: Vec<Expr>,
    },
    /// Aggregate over neighbors within a radius, with an optional
    /// expression over `other` (None for `count`) and optional filter.
    ///
    /// `sum(10; other.dmg; other.team == self.team)`
    Agg {
        kind: AggKind,
        radius: Box<Expr>,
        arg: Option<Box<Expr>>,
        filter: Option<Box<Expr>>,
    },
    /// `nearest_dist(r)` — distance to nearest other within `r`, or `r`
    /// when none.
    NearestDist { radius: Box<Expr> },
}

/// Pure numeric builtins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinFn {
    Min,
    Max,
    Abs,
    Clamp,
}

impl BuiltinFn {
    /// Number of arguments the builtin requires.
    pub fn arity(self) -> usize {
        match self {
            BuiltinFn::Min | BuiltinFn::Max => 2,
            BuiltinFn::Abs => 1,
            BuiltinFn::Clamp => 3,
        }
    }
}

impl fmt::Display for BuiltinFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BuiltinFn::Min => "min",
            BuiltinFn::Max => "max",
            BuiltinFn::Abs => "abs",
            BuiltinFn::Clamp => "clamp",
        };
        f.write_str(s)
    }
}

/// Assignment flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=` — Set effect (self only, enforced by the type checker).
    Set,
    /// `+=` — commutative Add effect.
    Add,
    /// `-=` — commutative Add of the negation.
    Sub,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let x = expr;`
    Let { name: String, value: Expr },
    /// `x = expr;` — reassign a local.
    AssignVar { name: String, value: Expr },
    /// `self.hp -= 3;` / `other.hp += 1;`
    AssignComp {
        subject: Subject,
        component: String,
        op: AssignOp,
        value: Expr,
    },
    If {
        cond: Expr,
        then_block: Vec<Stmt>,
        else_block: Vec<Stmt>,
    },
    /// `foreach within (r) { ... }` — binds `other`.
    Foreach { radius: Expr, body: Vec<Stmt> },
    While { cond: Expr, body: Vec<Stmt> },
    /// `move(dx, dy);`
    Move { dx: Expr, dy: Expr },
    /// `despawn;`
    Despawn,
    /// `call helper;`
    Call { script: String },
    /// `emit "event";`
    Emit { event: String },
}

/// A named script (a program).
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    pub name: String,
    pub body: Vec<Stmt>,
}

// ---- pretty printer (round-trip tests drive the parser) ----

fn indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Num(n) => out.push_str(&format!("{n}")),
        Expr::Bool(b) => out.push_str(&format!("{b}")),
        Expr::Str(s) => out.push_str(&format!("{s:?}")),
        Expr::Var(v) => out.push_str(v),
        Expr::Comp(s, c) => out.push_str(&format!("{s}.{c}")),
        Expr::Unary { neg, not, inner } => {
            if *not {
                out.push('!');
            }
            if *neg {
                out.push('-');
            }
            out.push('(');
            write_expr(inner, out);
            out.push(')');
        }
        Expr::Bin { op, lhs, rhs } => {
            out.push('(');
            write_expr(lhs, out);
            out.push_str(&format!(" {op} "));
            write_expr(rhs, out);
            out.push(')');
        }
        Expr::DistToOther => out.push_str("dist(other)"),
        Expr::Builtin { name, args } => {
            out.push_str(&format!("{name}("));
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(a, out);
            }
            out.push(')');
        }
        Expr::Agg {
            kind,
            radius,
            arg,
            filter,
        } => {
            out.push_str(&format!("{kind}("));
            write_expr(radius, out);
            if let Some(a) = arg {
                out.push_str("; ");
                write_expr(a, out);
            }
            if let Some(fexpr) = filter {
                out.push_str("; ");
                write_expr(fexpr, out);
            }
            out.push(')');
        }
        Expr::NearestDist { radius } => {
            out.push_str("nearest_dist(");
            write_expr(radius, out);
            out.push(')');
        }
    }
}

fn write_block(stmts: &[Stmt], out: &mut String, depth: usize) {
    for s in stmts {
        write_stmt(s, out, depth);
    }
}

fn write_stmt(s: &Stmt, out: &mut String, depth: usize) {
    indent(out, depth);
    match s {
        Stmt::Let { name, value } => {
            out.push_str(&format!("let {name} = "));
            write_expr(value, out);
            out.push_str(";\n");
        }
        Stmt::AssignVar { name, value } => {
            out.push_str(&format!("{name} = "));
            write_expr(value, out);
            out.push_str(";\n");
        }
        Stmt::AssignComp {
            subject,
            component,
            op,
            value,
        } => {
            let op_s = match op {
                AssignOp::Set => "=",
                AssignOp::Add => "+=",
                AssignOp::Sub => "-=",
            };
            out.push_str(&format!("{subject}.{component} {op_s} "));
            write_expr(value, out);
            out.push_str(";\n");
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
        } => {
            out.push_str("if ");
            write_expr(cond, out);
            out.push_str(" {\n");
            write_block(then_block, out, depth + 1);
            indent(out, depth);
            out.push('}');
            if !else_block.is_empty() {
                out.push_str(" else {\n");
                write_block(else_block, out, depth + 1);
                indent(out, depth);
                out.push('}');
            }
            out.push('\n');
        }
        Stmt::Foreach { radius, body } => {
            out.push_str("foreach within (");
            write_expr(radius, out);
            out.push_str(") {\n");
            write_block(body, out, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::While { cond, body } => {
            out.push_str("while ");
            write_expr(cond, out);
            out.push_str(" {\n");
            write_block(body, out, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Move { dx, dy } => {
            out.push_str("move(");
            write_expr(dx, out);
            out.push_str(", ");
            write_expr(dy, out);
            out.push_str(");\n");
        }
        Stmt::Despawn => out.push_str("despawn;\n"),
        Stmt::Call { script } => out.push_str(&format!("call {script};\n")),
        Stmt::Emit { event } => out.push_str(&format!("emit {event:?};\n")),
    }
}

/// Pretty-print a script body as parseable GSL source.
pub fn to_source(body: &[Stmt]) -> String {
    let mut out = String::new();
    write_block(body, &mut out, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_cmp());
        assert!(!BinOp::Add.is_cmp());
        assert!(BinOp::And.is_logic());
        assert!(!BinOp::Lt.is_logic());
    }

    #[test]
    fn builtin_arity() {
        assert_eq!(BuiltinFn::Min.arity(), 2);
        assert_eq!(BuiltinFn::Abs.arity(), 1);
        assert_eq!(BuiltinFn::Clamp.arity(), 3);
    }

    #[test]
    fn pretty_print_shapes() {
        let body = vec![
            Stmt::Let {
                name: "x".into(),
                value: Expr::Bin {
                    op: BinOp::Add,
                    lhs: Box::new(Expr::Num(1.0)),
                    rhs: Box::new(Expr::Comp(Subject::SelfEnt, "hp".into())),
                },
            },
            Stmt::If {
                cond: Expr::Bin {
                    op: BinOp::Lt,
                    lhs: Box::new(Expr::Var("x".into())),
                    rhs: Box::new(Expr::Num(10.0)),
                },
                then_block: vec![Stmt::Despawn],
                else_block: vec![],
            },
        ];
        let src = to_source(&body);
        assert!(src.contains("let x = (1 + self.hp);"));
        assert!(src.contains("if (x < 10) {"));
        assert!(src.contains("despawn;"));
    }
}
