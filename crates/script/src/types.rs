//! Type checker and language levels for GSL.
//!
//! Two checks matter beyond ordinary typing:
//!
//! 1. **Write safety.** `other.comp = x` (a Set on a *different* entity)
//!    is rejected in every language level: set-effects are only safe on
//!    the entity that owns the script, while `+=`/`-=` compile to
//!    commutative Add effects that merge deterministically. This is the
//!    static rule that prevents the scripting-language concurrency bugs
//!    the paper calls "one of the largest sources of bugs and exploits
//!    in MMOs".
//! 2. **The restricted level.** The paper reports studios "removing
//!    support for iteration and recursion from their scripting languages"
//!    to stop designers writing Ω(n²) behaviour. [`Level::Restricted`]
//!    rejects `foreach`, `while`, and recursive `call` chains; designers
//!    express neighborhood logic through the aggregate built-ins, which
//!    the engine evaluates through the spatial index.

use std::collections::BTreeMap;
use std::fmt;

use gamedb_content::ValueType;
use gamedb_core::World;

use crate::ast::{AssignOp, BinOp, Expr, Script, Stmt, Subject};

/// Script-level types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    Num,
    Bool,
    Str,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Num => write!(f, "num"),
            Ty::Bool => write!(f, "bool"),
            Ty::Str => write!(f, "str"),
        }
    }
}

/// Language levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Everything allowed (iteration, recursion through `call`).
    Full,
    /// No `foreach`, no `while`, no recursive `call` chains.
    Restricted,
}

/// Access to component types (the world schema). Implemented for the
/// engine's [`World`] and for plain maps (tools, tests).
pub trait ComponentSchema {
    fn lookup(&self, component: &str) -> Option<ValueType>;
}

impl ComponentSchema for World {
    fn lookup(&self, component: &str) -> Option<ValueType> {
        self.component_type(component)
    }
}

impl ComponentSchema for BTreeMap<String, ValueType> {
    fn lookup(&self, component: &str) -> Option<ValueType> {
        self.get(component).copied()
    }
}

/// A type-check diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError {
    pub script: String,
    pub message: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "script {}: {}", self.script, self.message)
    }
}

impl std::error::Error for TypeError {}

/// Map a component type into a script type. Vec2 components are not
/// directly accessible — scripts use the virtual `x`/`y` and `move`.
fn comp_ty(vt: ValueType) -> Option<Ty> {
    match vt {
        ValueType::Float | ValueType::Int => Some(Ty::Num),
        ValueType::Bool => Some(Ty::Bool),
        ValueType::Str => Some(Ty::Str),
        ValueType::Vec2 => None,
    }
}

struct Checker<'a> {
    script: String,
    schema: &'a dyn ComponentSchema,
    errors: Vec<TypeError>,
    /// lexical scopes of local variables
    scopes: Vec<BTreeMap<String, Ty>>,
    /// nesting depth of contexts where `other` is bound
    other_depth: usize,
}

impl<'a> Checker<'a> {
    fn error(&mut self, message: impl Into<String>) {
        self.errors.push(TypeError {
            script: self.script.clone(),
            message: message.into(),
        });
    }

    fn lookup_var(&self, name: &str) -> Option<Ty> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn comp_type(&mut self, subject: Subject, comp: &str) -> Option<Ty> {
        if comp == "x" || comp == "y" {
            return Some(Ty::Num); // virtual position reads
        }
        match self.schema.lookup(comp) {
            None => {
                self.error(format!("unknown component '{subject}.{comp}'"));
                None
            }
            Some(vt) => match comp_ty(vt) {
                Some(t) => Some(t),
                None => {
                    self.error(format!(
                        "component '{comp}' is vec2; use {subject}.x / {subject}.y or move()"
                    ));
                    None
                }
            },
        }
    }

    fn expr(&mut self, e: &Expr) -> Option<Ty> {
        match e {
            Expr::Num(_) => Some(Ty::Num),
            Expr::Bool(_) => Some(Ty::Bool),
            Expr::Str(_) => Some(Ty::Str),
            Expr::Var(name) => match self.lookup_var(name) {
                Some(t) => Some(t),
                None => {
                    self.error(format!("undeclared variable '{name}'"));
                    None
                }
            },
            Expr::Comp(subject, comp) => {
                if *subject == Subject::Other && self.other_depth == 0 {
                    self.error(format!(
                        "'other.{comp}' used outside foreach or aggregate"
                    ));
                }
                self.comp_type(*subject, comp)
            }
            Expr::Unary { neg, not, inner } => {
                let t = self.expr(inner)?;
                if *neg && t != Ty::Num {
                    self.error(format!("unary '-' needs num, got {t}"));
                    return None;
                }
                if *not && t != Ty::Bool {
                    self.error(format!("'!' needs bool, got {t}"));
                    return None;
                }
                Some(t)
            }
            Expr::Bin { op, lhs, rhs } => {
                let lt = self.expr(lhs);
                let rt = self.expr(rhs);
                let (lt, rt) = (lt?, rt?);
                if op.is_logic() {
                    if lt != Ty::Bool || rt != Ty::Bool {
                        self.error(format!("'{op}' needs bool operands, got {lt} and {rt}"));
                    }
                    Some(Ty::Bool)
                } else if op.is_cmp() {
                    if lt != rt {
                        self.error(format!("cannot compare {lt} with {rt}"));
                    } else if lt == Ty::Bool && !matches!(op, BinOp::Eq | BinOp::Ne) {
                        self.error("bools only compare with == and !=".to_string());
                    }
                    Some(Ty::Bool)
                } else {
                    // arithmetic
                    if lt != Ty::Num || rt != Ty::Num {
                        self.error(format!("'{op}' needs num operands, got {lt} and {rt}"));
                    }
                    Some(Ty::Num)
                }
            }
            Expr::DistToOther => {
                if self.other_depth == 0 {
                    self.error("dist(other) used outside foreach or aggregate");
                }
                Some(Ty::Num)
            }
            Expr::Builtin { name, args } => {
                for a in args {
                    if let Some(t) = self.expr(a) {
                        if t != Ty::Num {
                            self.error(format!("{name} arguments must be num, got {t}"));
                        }
                    }
                }
                Some(Ty::Num)
            }
            Expr::Agg {
                radius,
                arg,
                filter,
                ..
            } => {
                if let Some(t) = self.expr(radius) {
                    if t != Ty::Num {
                        self.error(format!("aggregate radius must be num, got {t}"));
                    }
                }
                self.other_depth += 1;
                if let Some(a) = arg {
                    if let Some(t) = self.expr(a) {
                        if t != Ty::Num {
                            self.error(format!("aggregate expression must be num, got {t}"));
                        }
                    }
                }
                if let Some(fx) = filter {
                    if let Some(t) = self.expr(fx) {
                        if t != Ty::Bool {
                            self.error(format!("aggregate filter must be bool, got {t}"));
                        }
                    }
                }
                self.other_depth -= 1;
                Some(Ty::Num)
            }
            Expr::NearestDist { radius } => {
                if let Some(t) = self.expr(radius) {
                    if t != Ty::Num {
                        self.error(format!("nearest_dist radius must be num, got {t}"));
                    }
                }
                Some(Ty::Num)
            }
        }
    }

    fn block(&mut self, stmts: &[Stmt], level: Level) {
        self.scopes.push(BTreeMap::new());
        for s in stmts {
            self.stmt(s, level);
        }
        self.scopes.pop();
    }

    fn stmt(&mut self, s: &Stmt, level: Level) {
        match s {
            Stmt::Let { name, value } => {
                let t = self.expr(value);
                let scope = self.scopes.last_mut().expect("scope stack never empty");
                if scope.contains_key(name) {
                    self.error(format!("variable '{name}' already declared in this scope"));
                } else if let Some(t) = t {
                    self.scopes
                        .last_mut()
                        .expect("scope stack never empty")
                        .insert(name.clone(), t);
                }
            }
            Stmt::AssignVar { name, value } => {
                let vt = self.expr(value);
                match self.lookup_var(name) {
                    None => self.error(format!("assignment to undeclared variable '{name}'")),
                    Some(dt) => {
                        if let Some(vt) = vt {
                            if vt != dt {
                                self.error(format!(
                                    "variable '{name}' is {dt}, cannot assign {vt}"
                                ));
                            }
                        }
                    }
                }
            }
            Stmt::AssignComp {
                subject,
                component,
                op,
                value,
            } => {
                if *subject == Subject::Other && self.other_depth == 0 {
                    self.error(format!(
                        "'other.{component}' assigned outside foreach"
                    ));
                }
                if *subject == Subject::Other && *op == AssignOp::Set {
                    self.error(format!(
                        "'other.{component} = …' is a non-commutative write to another \
                         entity; use '+=' / '-=' (commutative) instead"
                    ));
                }
                if component == "x" || component == "y" {
                    self.error(format!(
                        "position is written with move(dx, dy), not {subject}.{component}"
                    ));
                    let _ = self.expr(value);
                    return;
                }
                let ct = self.comp_type(*subject, component);
                let vt = self.expr(value);
                if let (Some(ct), Some(vt)) = (ct, vt) {
                    match op {
                        AssignOp::Set => {
                            if ct != vt {
                                self.error(format!(
                                    "component '{component}' is {ct}, cannot assign {vt}"
                                ));
                            }
                        }
                        AssignOp::Add | AssignOp::Sub => {
                            if ct != Ty::Num {
                                self.error(format!(
                                    "'+='/'-=' need a numeric component, '{component}' is {ct}"
                                ));
                            }
                            if vt != Ty::Num {
                                self.error(format!("'+='/'-=' need num value, got {vt}"));
                            }
                        }
                    }
                }
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                if let Some(t) = self.expr(cond) {
                    if t != Ty::Bool {
                        self.error(format!("if condition must be bool, got {t}"));
                    }
                }
                self.block(then_block, level);
                self.block(else_block, level);
            }
            Stmt::Foreach { radius, body } => {
                if level == Level::Restricted {
                    self.error(
                        "'foreach' is not available in the restricted language level \
                         (use aggregates: count/sum/minof/maxof/avgof)",
                    );
                }
                if let Some(t) = self.expr(radius) {
                    if t != Ty::Num {
                        self.error(format!("foreach radius must be num, got {t}"));
                    }
                }
                self.other_depth += 1;
                self.block(body, level);
                self.other_depth -= 1;
            }
            Stmt::While { cond, body } => {
                if level == Level::Restricted {
                    self.error("'while' is not available in the restricted language level");
                }
                if let Some(t) = self.expr(cond) {
                    if t != Ty::Bool {
                        self.error(format!("while condition must be bool, got {t}"));
                    }
                }
                self.block(body, level);
            }
            Stmt::Move { dx, dy } => {
                for (what, e) in [("dx", dx), ("dy", dy)] {
                    if let Some(t) = self.expr(e) {
                        if t != Ty::Num {
                            self.error(format!("move {what} must be num, got {t}"));
                        }
                    }
                }
            }
            Stmt::Despawn => {}
            Stmt::Call { .. } => {
                // resolved at the library level (needs the script set)
            }
            Stmt::Emit { .. } => {}
        }
    }
}

/// Type-check a single script body against a schema. Call-graph checks
/// (unknown callees, recursion in restricted mode) happen in
/// [`check_library`].
pub fn check_script(
    script: &Script,
    schema: &dyn ComponentSchema,
    level: Level,
) -> Vec<TypeError> {
    let mut c = Checker {
        script: script.name.clone(),
        schema,
        errors: Vec::new(),
        scopes: vec![BTreeMap::new()],
        other_depth: 0,
    };
    for s in &script.body {
        c.stmt(s, level);
    }
    c.errors
}

fn collect_calls(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Call { script } => out.push(script.clone()),
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                collect_calls(then_block, out);
                collect_calls(else_block, out);
            }
            Stmt::Foreach { body, .. } | Stmt::While { body, .. } => collect_calls(body, out),
            _ => {}
        }
    }
}

/// Check a whole script library: per-script type checks plus call-graph
/// validation. In [`Level::Restricted`], any cycle in the call graph
/// (including self-calls) is an error — that is the "no recursion" rule.
pub fn check_library(
    scripts: &[Script],
    schema: &dyn ComponentSchema,
    level: Level,
) -> Vec<TypeError> {
    let mut errors = Vec::new();
    let names: Vec<&str> = scripts.iter().map(|s| s.name.as_str()).collect();
    for s in scripts {
        errors.extend(check_script(s, schema, level));
        let mut calls = Vec::new();
        collect_calls(&s.body, &mut calls);
        for callee in &calls {
            if !names.contains(&callee.as_str()) {
                errors.push(TypeError {
                    script: s.name.clone(),
                    message: format!("call to unknown script '{callee}'"),
                });
            }
        }
    }
    if level == Level::Restricted {
        // DFS cycle detection over the call graph.
        let mut adj: BTreeMap<&str, Vec<String>> = BTreeMap::new();
        for s in scripts {
            let mut calls = Vec::new();
            collect_calls(&s.body, &mut calls);
            adj.insert(&s.name, calls);
        }
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        fn dfs(
            node: &str,
            adj: &BTreeMap<&str, Vec<String>>,
            marks: &mut BTreeMap<String, Mark>,
            path: &mut Vec<String>,
            cycles: &mut Vec<Vec<String>>,
        ) {
            match marks.get(node).copied().unwrap_or(Mark::White) {
                Mark::Black => return,
                Mark::Grey => {
                    let start = path.iter().position(|p| p == node).unwrap_or(0);
                    let mut cyc = path[start..].to_vec();
                    cyc.push(node.to_string());
                    cycles.push(cyc);
                    return;
                }
                Mark::White => {}
            }
            marks.insert(node.to_string(), Mark::Grey);
            path.push(node.to_string());
            if let Some(callees) = adj.get(node) {
                for c in callees {
                    if adj.contains_key(c.as_str()) {
                        dfs(c, adj, marks, path, cycles);
                    }
                }
            }
            path.pop();
            marks.insert(node.to_string(), Mark::Black);
        }
        let mut marks = BTreeMap::new();
        let mut cycles = Vec::new();
        for s in scripts {
            dfs(&s.name, &adj, &mut marks, &mut Vec::new(), &mut cycles);
        }
        for cyc in cycles {
            errors.push(TypeError {
                script: cyc[0].clone(),
                message: format!(
                    "recursive call chain not allowed in restricted level: {}",
                    cyc.join(" -> ")
                ),
            });
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;

    fn schema() -> BTreeMap<String, ValueType> {
        [
            ("hp".to_string(), ValueType::Float),
            ("dmg".to_string(), ValueType::Float),
            ("gold".to_string(), ValueType::Int),
            ("alive".to_string(), ValueType::Bool),
            ("team".to_string(), ValueType::Str),
            ("home".to_string(), ValueType::Vec2),
        ]
        .into_iter()
        .collect()
    }

    fn check(src: &str, level: Level) -> Vec<TypeError> {
        let s = parse_script("t", src).unwrap();
        check_script(&s, &schema(), level)
    }

    #[test]
    fn well_typed_script_passes() {
        let errs = check(
            r#"
            let near = count(10; other.team != self.team);
            if near > 2 && self.hp < 50 {
                move(1, 0);
                self.hp += 1;
            }
            "#,
            Level::Restricted,
        );
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn unknown_component() {
        let errs = check("self.mana -= 1;", Level::Full);
        assert!(errs[0].message.contains("unknown component"));
    }

    #[test]
    fn set_on_other_rejected() {
        let errs = check("foreach within (5) { other.hp = 0; }", Level::Full);
        assert!(errs.iter().any(|e| e.message.contains("non-commutative")));
        // += on other is fine
        let ok = check("foreach within (5) { other.hp -= 1; }", Level::Full);
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn other_outside_foreach_rejected() {
        let errs = check("let x = other.hp;", Level::Full);
        assert!(errs[0].message.contains("outside foreach"));
        let errs = check("self.hp = other.hp;", Level::Full);
        assert!(!errs.is_empty());
    }

    #[test]
    fn restricted_rejects_iteration() {
        let errs = check("foreach within (5) { other.hp -= 1; }", Level::Restricted);
        assert!(errs.iter().any(|e| e.message.contains("foreach")));
        let errs = check("while self.hp > 0 { self.hp -= 1; }", Level::Restricted);
        assert!(errs.iter().any(|e| e.message.contains("while")));
        // the aggregate alternative passes
        let ok = check("self.hp -= count(5);", Level::Restricted);
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn type_mismatches() {
        assert!(check("self.alive = 1;", Level::Full)[0]
            .message
            .contains("cannot assign"));
        assert!(check("self.team += 1;", Level::Full)[0]
            .message
            .contains("numeric component"));
        assert!(check("if self.hp { despawn; }", Level::Full)[0]
            .message
            .contains("must be bool"));
        assert!(check("let x = 1 + true;", Level::Full)[0]
            .message
            .contains("num operands"));
        assert!(check(r#"let x = self.team < "b" && true;"#, Level::Full).is_empty());
        assert!(!check(r#"let x = self.alive < true;"#, Level::Full).is_empty());
    }

    #[test]
    fn vec2_component_not_directly_accessible() {
        let errs = check("let h = self.home;", Level::Full);
        assert!(errs[0].message.contains("vec2"));
    }

    #[test]
    fn position_written_via_move_only() {
        let errs = check("self.x = 5;", Level::Full);
        assert!(errs[0].message.contains("move"));
        let ok = check("let dx = self.x + 1; move(dx, self.y);", Level::Full);
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn scoping_rules() {
        let errs = check("let x = 1; let x = 2;", Level::Full);
        assert!(errs[0].message.contains("already declared"));
        let errs = check("if true { let y = 1; } let z = y;", Level::Full);
        assert!(errs[0].message.contains("undeclared"));
        // shadowing in nested scope is allowed
        let ok = check("let x = 1; if true { let x = 2; self.hp = x; }", Level::Full);
        assert!(ok.is_empty(), "{ok:?}");
        let errs = check("x = 3;", Level::Full);
        assert!(errs[0].message.contains("undeclared"));
        let errs = check("let b = true; b = 1;", Level::Full);
        assert!(errs[0].message.contains("cannot assign"));
    }

    #[test]
    fn library_checks_unknown_callee() {
        let a = parse_script("a", "call b;").unwrap();
        let errs = check_library(&[a], &schema(), Level::Full);
        assert!(errs[0].message.contains("unknown script"));
    }

    #[test]
    fn restricted_rejects_recursion() {
        let a = parse_script("a", "call b;").unwrap();
        let b = parse_script("b", "call a;").unwrap();
        let errs = check_library(&[a.clone(), b.clone()], &schema(), Level::Restricted);
        assert!(
            errs.iter().any(|e| e.message.contains("recursive")),
            "{errs:?}"
        );
        // full level allows the cycle (bounded at runtime)
        let full = check_library(&[a, b], &schema(), Level::Full);
        assert!(full.is_empty(), "{full:?}");

        // self-recursion
        let c = parse_script("c", "call c;").unwrap();
        let errs = check_library(&[c], &schema(), Level::Restricted);
        assert!(errs.iter().any(|e| e.message.contains("recursive")));
    }

    #[test]
    fn acyclic_calls_pass_restricted() {
        let a = parse_script("a", "call b; call c;").unwrap();
        let b = parse_script("b", "call c;").unwrap();
        let c = parse_script("c", "self.hp += 1;").unwrap();
        let errs = check_library(&[a, b, c], &schema(), Level::Restricted);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn aggregate_filter_types() {
        let errs = check("let x = sum(5; other.hp; other.hp);", Level::Restricted);
        assert!(errs[0].message.contains("filter must be bool"));
        let errs = check("let x = count(true);", Level::Restricted);
        assert!(errs[0].message.contains("radius must be num"));
    }
}
