//! Script-runtime instrumentation: the cached metric handles a
//! [`crate::engine::ScriptEngine`] reports through when a
//! [`gamedb_metrics::MetricsRegistry`] is attached.

use gamedb_metrics::{Counter, Histogram, MetricsRegistry, SIZE_BUCKETS};

/// Cached handles for one engine. Catalog in ARCHITECTURE.md
/// § Observability.
#[derive(Debug, Clone)]
pub(crate) struct ScriptMetrics {
    /// `script.ticks`: whole-world scripted ticks executed.
    pub ticks: Counter,
    /// `script.scripts_run`: per-entity script executions across all
    /// ticks.
    pub scripts_run: Counter,
    /// `script.compiled_runs`: executions served by the compiled cache
    /// (the rest interpreted).
    pub compiled_runs: Counter,
    /// `script.events`: events emitted by scripts.
    pub events: Counter,
    /// `script.vm_runs`: per-entity executions dispatched through the
    /// bytecode VM.
    pub vm_runs: Counter,
    /// `script.interp_runs`: per-entity executions that tree-walked
    /// (interpreter mode, or VM-mode fallback for uncompilable scripts).
    pub interp_runs: Counter,
    /// `script.vm_instrs`: bytecode instructions retired by the VM.
    pub vm_instrs: Counter,
    /// `script.vm_compiles`: scripts lowered to bytecode (per binding
    /// preparation, including schema-change recompiles).
    pub vm_compiles: Counter,
    /// `script.tick_effects`: effect-buffer size per tick — the batch
    /// the tick commits through `World::apply_batch`.
    pub tick_effects: Histogram,
}

impl ScriptMetrics {
    pub fn new(registry: &MetricsRegistry) -> Self {
        ScriptMetrics {
            ticks: registry.counter("script.ticks"),
            scripts_run: registry.counter("script.scripts_run"),
            compiled_runs: registry.counter("script.compiled_runs"),
            events: registry.counter("script.events"),
            vm_runs: registry.counter("script.vm_runs"),
            interp_runs: registry.counter("script.interp_runs"),
            vm_instrs: registry.counter("script.vm_instrs"),
            vm_compiles: registry.counter("script.vm_compiles"),
            tick_effects: registry.histogram("script.tick_effects", SIZE_BUCKETS),
        }
    }
}
