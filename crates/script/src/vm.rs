//! Register-based bytecode VM for GSL.
//!
//! The tree-walking interpreter ([`crate::interp`]) re-touches names,
//! boxes every value in an [`crate::interp::SVal`], and linear-scans the
//! locals stack on every step — per entity, per tick. This module is the
//! hot-path replacement: [`compile::compile_program`] lowers the
//! (optimizer-processed) AST once into a dense `Vec<Instr>` with
//!
//! * **typed register files** — locals and temporaries live in flat
//!   `f64` / `bool` / `String` registers, numbered at compile time
//!   (the eval/apply register-machine design: each AST node compiles to
//!   instructions that leave their result in a caller-chosen register);
//! * **pre-resolved columns** — component reads carry interned
//!   [`ComponentId`]s, so the inner loop goes straight to the column
//!   store with no name hashing;
//! * **pre-built query handles** — sargable aggregate filters keep the
//!   closure compiler's [`Query`] push-down, baked into the loop-setup
//!   instruction.
//!
//! [`Vm::run`] is a flat dispatch loop over those instructions. Its
//! contract is *exact* observational equivalence with the interpreter:
//! the same `EffectBuffer` writes in the same order, the same emitted
//! events, and the same [`RuntimeError`]s (missing values read as
//! zero/false/"", ÷0 yields 0, `while` fuel is shared across the whole
//! run per [`ExecOptions::loop_fuel`]). The interpreter stays on as the
//! differential-testing oracle behind `ExecMode::Interp`.

use std::fmt;

use gamedb_content::{CmpOp, Value};
use gamedb_core::{ComponentId, Effect, EffectBuffer, EntityId, Query, World, POS};

use crate::ast::{AggKind, Subject};
use crate::interp::{ExecOptions, RuntimeError};

pub mod compile;

pub use compile::compile_program;

/// Register index into one of the VM's typed register files.
pub type Reg = u16;

/// Sentinel query index on [`Instr::LoopBegin`]: no sargable push-down.
pub const NO_QUERY: u16 = u16::MAX;

/// Comparison opcodes (f64 comparisons carry IEEE NaN semantics, which
/// match the interpreter's `partial_cmp` table exactly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmCmp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Arithmetic opcodes. Div/Rem by zero yield 0.0 — scripts never crash
/// the server on ÷0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmArith {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

/// A pre-extracted sargable aggregate filter — `other.<comp> <op>
/// <literal>` — executed through the query planner (and any secondary
/// index) instead of per-candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct SargQuery {
    pub comp: String,
    pub op: CmpOp,
    pub lit: f32,
}

/// One bytecode instruction. Jump targets are absolute instruction
/// indices; `pool` indexes the program's string pool; `name` indexes the
/// same pool (component names for effect writes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// num\[dst\] ← constant
    LoadNum { dst: Reg, val: f64 },
    /// bool\[dst\] ← constant
    LoadBool { dst: Reg, val: bool },
    /// str\[dst\] ← pool entry
    LoadStr { dst: Reg, pool: u16 },
    CopyNum { dst: Reg, src: Reg },
    CopyBool { dst: Reg, src: Reg },

    /// num\[dst\] ← numeric column (missing reads as 0.0)
    ReadNum { dst: Reg, col: ComponentId, subj: Subject },
    /// bool\[dst\] ← bool column (missing reads as false)
    ReadBool { dst: Reg, col: ComponentId, subj: Subject },
    /// str\[dst\] ← str column (missing reads as "")
    ReadStr { dst: Reg, col: ComponentId, subj: Subject },
    /// num\[dst\] ← position axis (`NoPosition` when the subject has none)
    ReadAxis { dst: Reg, subj: Subject, y: bool },

    Arith { op: VmArith, dst: Reg, a: Reg, b: Reg },
    Neg { dst: Reg, src: Reg },
    Not { dst: Reg, src: Reg },
    MinNum { dst: Reg, a: Reg, b: Reg },
    MaxNum { dst: Reg, a: Reg, b: Reg },
    AbsNum { dst: Reg, src: Reg },
    /// `x.clamp(lo.min(hi), hi.max(lo))` — swapped bounds tolerated,
    /// matching the interpreter's builtin.
    ClampNum { dst: Reg, x: Reg, lo: Reg, hi: Reg },
    CmpNum { op: VmCmp, dst: Reg, a: Reg, b: Reg },
    CmpBool { op: VmCmp, dst: Reg, a: Reg, b: Reg },
    CmpStr { op: VmCmp, dst: Reg, a: Reg, b: Reg },
    /// num\[dst\] ← dist(self, other)
    Dist { dst: Reg },
    /// num\[dst\] ← distance to nearest neighbor within num\[radius\]
    /// (the radius itself when none)
    NearestDist { dst: Reg, radius: Reg },

    Jump { to: u32 },
    JumpIf { cond: Reg, to: u32 },
    JumpIfNot { cond: Reg, to: u32 },
    /// Burn one unit of the run-wide `while` fuel
    /// ([`ExecOptions::loop_fuel`], shared across all loops of the run —
    /// interpreter semantics, not the closure compiler's per-loop cap).
    ConsumeFuel,
    /// Error unless `other` is bound — emitted where the interpreter
    /// resolves a subject before evaluating the value expression.
    CheckOther,

    /// Fill loop frame `slot` with neighbor candidates within
    /// num\[radius\] of self (excluding self), saving the current
    /// `other` binding. When `query != NO_QUERY` and the index is
    /// enabled, candidates come prefiltered through the pushed-down
    /// [`SargQuery`] instead.
    LoopBegin { slot: u8, radius: Reg, query: u16 },
    /// Bind `other` to the next candidate, or restore the saved binding
    /// and jump to `exit` when the frame is exhausted.
    LoopNext { slot: u8, exit: u32 },
    /// Skip the inline filter re-check when this frame's candidates were
    /// already prefiltered by the query push-down.
    SkipIfPrefiltered { slot: u8, to: u32 },
    /// Fold aggregate accumulators into num\[dst\]
    /// (count == 0 ⇒ 0.0 for min/max/avg).
    AggFinish { kind: AggKind, dst: Reg, count: Reg, sum: Reg, min: Reg, max: Reg },

    /// Effect write: `Set(Float(num[src] as f32))` on pool\[name\]
    SetF32 { subj: Subject, name: u16, src: Reg },
    /// Effect write: `Set(Int(num[src].round() as i64))`
    SetI64 { subj: Subject, name: u16, src: Reg },
    SetBool { subj: Subject, name: u16, src: Reg },
    SetStr { subj: Subject, name: u16, src: Reg },
    /// Effect write: commutative `Add` (negated for `-=`)
    AddNum { subj: Subject, name: u16, src: Reg, negate: bool },
    /// `move(dx, dy)`: `AddVec2` on the position column
    MoveBy { dx: Reg, dy: Reg },
    Despawn,
    /// Append pool\[pool\] to the run's emitted events
    Emit { pool: u16 },
}

/// A compiled script: dense instructions plus the constant pool and the
/// register-file sizes the compiler high-watermarked.
#[derive(Clone, PartialEq)]
pub struct Program {
    name: String,
    instrs: Vec<Instr>,
    pool: Vec<String>,
    queries: Vec<SargQuery>,
    num_regs: u16,
    bool_regs: u16,
    str_regs: u16,
    loop_slots: u8,
    /// Every `(id, name)` this program pre-resolved — the validation
    /// table [`Program::validate_schema`] checks a world against.
    comps: Vec<(ComponentId, String)>,
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Program")
            .field("name", &self.name)
            .field("instrs", &self.instrs.len())
            .field("num_regs", &self.num_regs)
            .field("bool_regs", &self.bool_regs)
            .field("str_regs", &self.str_regs)
            .field("loop_slots", &self.loop_slots)
            .field("queries", &self.queries.len())
            .finish_non_exhaustive()
    }
}

impl Program {
    /// Script name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of instructions in the compiled body.
    pub fn instr_count(&self) -> usize {
        self.instrs.len()
    }

    /// The instruction stream (introspection / disassembly in tests).
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Size of the f64 register file.
    pub fn num_regs(&self) -> u16 {
        self.num_regs
    }

    /// Size of the bool register file.
    pub fn bool_regs(&self) -> u16 {
        self.bool_regs
    }

    /// Size of the string register file.
    pub fn str_regs(&self) -> u16 {
        self.str_regs
    }

    /// True when every column id this program baked in still names the
    /// same component in `world`. Ids are stable within a world lineage,
    /// so this only fails when a program is reused across worlds — the
    /// engine recompiles on mismatch.
    pub fn validate_schema(&self, world: &World) -> bool {
        self.comps
            .iter()
            .all(|(id, name)| world.component_name(*id) == Some(name.as_str()))
    }
}

/// One in-flight neighbor loop.
#[derive(Default)]
struct LoopFrame {
    cands: Vec<EntityId>,
    idx: usize,
    saved_other: Option<EntityId>,
    prefiltered: bool,
}

/// The dispatch machine. Register files and loop frames are owned here
/// and reused across runs, so steady-state per-entity execution does no
/// allocation beyond what the interpreter's own query paths do.
#[derive(Default)]
pub struct Vm {
    nums: Vec<f64>,
    bools: Vec<bool>,
    strs: Vec<String>,
    loops: Vec<LoopFrame>,
    events: Vec<String>,
    scratch: Vec<EntityId>,
    instrs_retired: u64,
}

#[inline]
fn subj_id(self_id: EntityId, other: Option<EntityId>, s: Subject) -> Result<EntityId, RuntimeError> {
    match s {
        Subject::SelfEnt => Ok(self_id),
        Subject::Other => other.ok_or_else(|| {
            RuntimeError::TypeError("'other' used outside foreach/aggregate".into())
        }),
    }
}

/// Neighbor enumeration — byte-for-byte the interpreter's: spatial index
/// + retain, or the naive entity-order distance scan.
fn neighbors(
    world: &World,
    self_id: EntityId,
    radius: f64,
    use_index: bool,
    out: &mut Vec<EntityId>,
) -> Result<(), RuntimeError> {
    let center = world.pos(self_id).ok_or(RuntimeError::NoPosition(self_id))?;
    let r = radius.max(0.0) as f32;
    out.clear();
    if use_index {
        world.within(center, r, out);
        out.retain(|&e| e != self_id);
    } else {
        let r2 = r * r;
        for e in world.entities() {
            if e == self_id {
                continue;
            }
            if let Some(p) = world.pos(e) {
                if p.dist2(center) <= r2 {
                    out.push(e);
                }
            }
        }
    }
    Ok(())
}

#[inline]
fn cmp_ord(op: VmCmp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match (op, ord) {
        (VmCmp::Eq, Equal) => true,
        (VmCmp::Eq, _) => false,
        (VmCmp::Ne, Equal) => false,
        (VmCmp::Ne, _) => true,
        (VmCmp::Lt, Less) => true,
        (VmCmp::Le, Less | Equal) => true,
        (VmCmp::Gt, Greater) => true,
        (VmCmp::Ge, Greater | Equal) => true,
        _ => false,
    }
}

impl Vm {
    pub fn new() -> Self {
        Self::default()
    }

    /// Instructions retired since the last call (metrics drain).
    pub fn take_instr_count(&mut self) -> u64 {
        std::mem::take(&mut self.instrs_retired)
    }

    /// Run one compiled script for one entity against the immutable
    /// tick-start world. Effects land in `buf`; emitted events are
    /// returned — exactly as [`crate::interp::run_script`] would.
    pub fn run(
        &mut self,
        p: &Program,
        world: &World,
        self_id: EntityId,
        buf: &mut EffectBuffer,
        opts: ExecOptions,
    ) -> Result<Vec<String>, RuntimeError> {
        // size + zero the register files (cheap: a handful of slots)
        if self.nums.len() < p.num_regs as usize {
            self.nums.resize(p.num_regs as usize, 0.0);
        }
        self.nums[..p.num_regs as usize].fill(0.0);
        if self.bools.len() < p.bool_regs as usize {
            self.bools.resize(p.bool_regs as usize, false);
        }
        self.bools[..p.bool_regs as usize].fill(false);
        if self.strs.len() < p.str_regs as usize {
            self.strs.resize(p.str_regs as usize, String::new());
        }
        for s in &mut self.strs[..p.str_regs as usize] {
            s.clear(); // keep capacity: no per-run string allocation
        }
        while self.loops.len() < p.loop_slots as usize {
            self.loops.push(LoopFrame::default());
        }
        self.events.clear();
        let mut retired = 0u64;
        let result = self.dispatch(p, world, self_id, buf, opts, &mut retired);
        self.instrs_retired += retired;
        result?;
        Ok(std::mem::take(&mut self.events))
    }

    fn dispatch(
        &mut self,
        p: &Program,
        world: &World,
        self_id: EntityId,
        buf: &mut EffectBuffer,
        opts: ExecOptions,
        retired: &mut u64,
    ) -> Result<(), RuntimeError> {
        let instrs = &p.instrs[..];
        let mut pc = 0usize;
        let mut other: Option<EntityId> = None;
        let mut fuel = opts.loop_fuel;
        while let Some(&i) = instrs.get(pc) {
            *retired += 1;
            pc += 1;
            match i {
                Instr::LoadNum { dst, val } => self.nums[dst as usize] = val,
                Instr::LoadBool { dst, val } => self.bools[dst as usize] = val,
                Instr::LoadStr { dst, pool } => {
                    let s = &mut self.strs[dst as usize];
                    s.clear();
                    s.push_str(&p.pool[pool as usize]);
                }
                Instr::CopyNum { dst, src } => self.nums[dst as usize] = self.nums[src as usize],
                Instr::CopyBool { dst, src } => {
                    self.bools[dst as usize] = self.bools[src as usize]
                }

                Instr::ReadNum { dst, col, subj } => {
                    let id = subj_id(self_id, other, subj)?;
                    self.nums[dst as usize] = if world.is_live(id) {
                        world
                            .column_by_id(col)
                            .and_then(|c| c.get_number(id.index() as usize))
                            .unwrap_or(0.0)
                    } else {
                        0.0
                    };
                }
                Instr::ReadBool { dst, col, subj } => {
                    let id = subj_id(self_id, other, subj)?;
                    self.bools[dst as usize] = world.is_live(id)
                        && world
                            .column_by_id(col)
                            .and_then(|c| c.get_bool(id.index() as usize))
                            .unwrap_or(false);
                }
                Instr::ReadStr { dst, col, subj } => {
                    let id = subj_id(self_id, other, subj)?;
                    let val = if world.is_live(id) {
                        world
                            .column_by_id(col)
                            .and_then(|c| c.get_str(id.index() as usize))
                            .unwrap_or("")
                    } else {
                        ""
                    };
                    let s = &mut self.strs[dst as usize];
                    s.clear();
                    s.push_str(val);
                }
                Instr::ReadAxis { dst, subj, y } => {
                    let id = subj_id(self_id, other, subj)?;
                    let pp = world.pos(id).ok_or(RuntimeError::NoPosition(id))?;
                    self.nums[dst as usize] = (if y { pp.y } else { pp.x }) as f64;
                }

                Instr::Arith { op, dst, a, b } => {
                    let (x, y) = (self.nums[a as usize], self.nums[b as usize]);
                    self.nums[dst as usize] = match op {
                        VmArith::Add => x + y,
                        VmArith::Sub => x - y,
                        VmArith::Mul => x * y,
                        VmArith::Div => {
                            if y == 0.0 {
                                0.0
                            } else {
                                x / y
                            }
                        }
                        VmArith::Rem => {
                            if y == 0.0 {
                                0.0
                            } else {
                                x % y
                            }
                        }
                    };
                }
                Instr::Neg { dst, src } => self.nums[dst as usize] = -self.nums[src as usize],
                Instr::Not { dst, src } => self.bools[dst as usize] = !self.bools[src as usize],
                Instr::MinNum { dst, a, b } => {
                    self.nums[dst as usize] = self.nums[a as usize].min(self.nums[b as usize])
                }
                Instr::MaxNum { dst, a, b } => {
                    self.nums[dst as usize] = self.nums[a as usize].max(self.nums[b as usize])
                }
                Instr::AbsNum { dst, src } => {
                    self.nums[dst as usize] = self.nums[src as usize].abs()
                }
                Instr::ClampNum { dst, x, lo, hi } => {
                    let (v, lo, hi) =
                        (self.nums[x as usize], self.nums[lo as usize], self.nums[hi as usize]);
                    self.nums[dst as usize] = v.clamp(lo.min(hi), hi.max(lo));
                }
                Instr::CmpNum { op, dst, a, b } => {
                    let (x, y) = (self.nums[a as usize], self.nums[b as usize]);
                    // raw f64 comparisons match the interpreter's
                    // partial_cmp table (NaN fails all but Ne)
                    self.bools[dst as usize] = match op {
                        VmCmp::Eq => x == y,
                        VmCmp::Ne => x != y,
                        VmCmp::Lt => x < y,
                        VmCmp::Le => x <= y,
                        VmCmp::Gt => x > y,
                        VmCmp::Ge => x >= y,
                    };
                }
                Instr::CmpBool { op, dst, a, b } => {
                    let ord = self.bools[a as usize].cmp(&self.bools[b as usize]);
                    self.bools[dst as usize] = cmp_ord(op, ord);
                }
                Instr::CmpStr { op, dst, a, b } => {
                    let ord = self.strs[a as usize].cmp(&self.strs[b as usize]);
                    self.bools[dst as usize] = cmp_ord(op, ord);
                }
                Instr::Dist { dst } => {
                    // interpreter error order: other bound, self
                    // positioned, other positioned
                    let o = subj_id(self_id, other, Subject::Other)?;
                    let sp = world.pos(self_id).ok_or(RuntimeError::NoPosition(self_id))?;
                    let op_ = world.pos(o).ok_or(RuntimeError::NoPosition(o))?;
                    self.nums[dst as usize] = sp.dist(op_) as f64;
                }
                Instr::NearestDist { dst, radius } => {
                    let r = self.nums[radius as usize];
                    let center = world.pos(self_id).ok_or(RuntimeError::NoPosition(self_id))?;
                    neighbors(world, self_id, r, opts.use_index, &mut self.scratch)?;
                    let mut best = r;
                    for &cand in &self.scratch {
                        if let Some(pp) = world.pos(cand) {
                            best = best.min(pp.dist(center) as f64);
                        }
                    }
                    self.nums[dst as usize] = best;
                }

                Instr::Jump { to } => pc = to as usize,
                Instr::JumpIf { cond, to } => {
                    if self.bools[cond as usize] {
                        pc = to as usize;
                    }
                }
                Instr::JumpIfNot { cond, to } => {
                    if !self.bools[cond as usize] {
                        pc = to as usize;
                    }
                }
                Instr::ConsumeFuel => {
                    if fuel == 0 {
                        return Err(RuntimeError::LoopFuelExhausted {
                            limit: opts.loop_fuel,
                        });
                    }
                    fuel -= 1;
                }
                Instr::CheckOther => {
                    subj_id(self_id, other, Subject::Other)?;
                }

                Instr::LoopBegin { slot, radius, query } => {
                    let r = self.nums[radius as usize];
                    let frame = &mut self.loops[slot as usize];
                    frame.idx = 0;
                    frame.saved_other = other;
                    if query != NO_QUERY && opts.use_index {
                        let center =
                            world.pos(self_id).ok_or(RuntimeError::NoPosition(self_id))?;
                        let q = &p.queries[query as usize];
                        frame.cands = Query::select()
                            .within(center, r.max(0.0) as f32)
                            .filter(q.comp.clone(), q.op, Value::Float(q.lit))
                            .excluding(self_id)
                            .run(world);
                        frame.prefiltered = true;
                    } else {
                        frame.prefiltered = false;
                        neighbors(world, self_id, r, opts.use_index, &mut frame.cands)?;
                    }
                }
                Instr::LoopNext { slot, exit } => {
                    let frame = &mut self.loops[slot as usize];
                    if frame.idx < frame.cands.len() {
                        other = Some(frame.cands[frame.idx]);
                        frame.idx += 1;
                    } else {
                        other = frame.saved_other;
                        pc = exit as usize;
                    }
                }
                Instr::SkipIfPrefiltered { slot, to } => {
                    if self.loops[slot as usize].prefiltered {
                        pc = to as usize;
                    }
                }
                Instr::AggFinish { kind, dst, count, sum, min, max } => {
                    let cnt = self.nums[count as usize];
                    self.nums[dst as usize] = match kind {
                        AggKind::Count => cnt,
                        AggKind::Sum => self.nums[sum as usize],
                        AggKind::Min => {
                            if cnt == 0.0 {
                                0.0
                            } else {
                                self.nums[min as usize]
                            }
                        }
                        AggKind::Max => {
                            if cnt == 0.0 {
                                0.0
                            } else {
                                self.nums[max as usize]
                            }
                        }
                        AggKind::Avg => {
                            if cnt == 0.0 {
                                0.0
                            } else {
                                self.nums[sum as usize] / cnt
                            }
                        }
                    };
                }

                Instr::SetF32 { subj, name, src } => {
                    let id = subj_id(self_id, other, subj)?;
                    let v = self.nums[src as usize] as f32;
                    buf.push(id, p.pool[name as usize].clone(), Effect::Set(Value::Float(v)));
                }
                Instr::SetI64 { subj, name, src } => {
                    let id = subj_id(self_id, other, subj)?;
                    let v = self.nums[src as usize].round() as i64;
                    buf.push(id, p.pool[name as usize].clone(), Effect::Set(Value::Int(v)));
                }
                Instr::SetBool { subj, name, src } => {
                    let id = subj_id(self_id, other, subj)?;
                    let v = self.bools[src as usize];
                    buf.push(id, p.pool[name as usize].clone(), Effect::Set(Value::Bool(v)));
                }
                Instr::SetStr { subj, name, src } => {
                    let id = subj_id(self_id, other, subj)?;
                    let v = self.strs[src as usize].clone();
                    buf.push(id, p.pool[name as usize].clone(), Effect::Set(Value::Str(v)));
                }
                Instr::AddNum { subj, name, src, negate } => {
                    let id = subj_id(self_id, other, subj)?;
                    let mut v = self.nums[src as usize];
                    if negate {
                        v = -v;
                    }
                    buf.push(id, p.pool[name as usize].clone(), Effect::Add(v));
                }
                Instr::MoveBy { dx, dy } => {
                    let (x, y) =
                        (self.nums[dx as usize] as f32, self.nums[dy as usize] as f32);
                    buf.push(self_id, POS, Effect::AddVec2(x, y));
                }
                Instr::Despawn => buf.despawn(self_id),
                Instr::Emit { pool } => self.events.push(p.pool[pool as usize].clone()),
            }
        }
        Ok(())
    }
}
