//! The script engine: the one-stop API a game embeds.
//!
//! [`ScriptEngine`] owns the script library, enforces a language level at
//! load time, compiles what it can (falling back to the interpreter for
//! scripts outside the compilable subset), binds scripts to entities via
//! a component, and drives whole-world ticks — the piece that turns the
//! lower-level modules into the "custom scripting language runtime" a
//! studio would actually ship.

use std::collections::HashMap;

use gamedb_content::{Value, ValueType};
use gamedb_core::{EffectBuffer, EntityId, World};
use gamedb_metrics::MetricsRegistry;

use crate::compile::{compile, CompiledScript};
use crate::metrics::ScriptMetrics;
use crate::interp::{run_script, ExecOptions, RuntimeError, ScriptLibrary};
use crate::parser::{parse_script, ParseError};
use crate::types::{check_library, Level, TypeError};

/// Component that names the script an entity runs each tick.
pub const SCRIPT_COMPONENT: &str = "script";

/// Errors loading scripts into the engine.
#[derive(Debug)]
pub enum EngineError {
    Parse(ParseError),
    Check(Vec<TypeError>),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "parse: {e}"),
            EngineError::Check(errs) => {
                write!(f, "{} type error(s); first: {}", errs.len(), errs[0])
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Statistics from one engine tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineTickStats {
    /// Entities that ran a script.
    pub scripts_run: usize,
    /// Entities whose script ran compiled (vs interpreted).
    pub compiled_runs: usize,
    /// Events emitted by scripts, in deterministic (entity, order) order.
    pub events: Vec<(EntityId, String)>,
}

/// The embedded scripting runtime.
pub struct ScriptEngine {
    lib: ScriptLibrary,
    level: Level,
    opts: ExecOptions,
    optimize: bool,
    /// compiled cache, invalidated on load and on schema growth
    compiled: HashMap<String, CompiledScript>,
    /// Instrumentation handles ([`ScriptEngine::attach_metrics`]).
    metrics: Option<ScriptMetrics>,
}

impl ScriptEngine {
    /// Engine enforcing a language level on every loaded script.
    pub fn new(level: Level) -> Self {
        ScriptEngine {
            lib: ScriptLibrary::new(),
            level,
            opts: ExecOptions::default(),
            optimize: false,
            compiled: HashMap::new(),
            metrics: None,
        }
    }

    /// Attach a metrics registry: scripted ticks, per-entity runs,
    /// compiled-vs-interpreted counts, and effect-batch sizes are
    /// reported into `registry` from here on. Purely observational.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(ScriptMetrics::new(registry));
    }

    /// Detach the registry attached by
    /// [`ScriptEngine::attach_metrics`].
    pub fn detach_metrics(&mut self) {
        self.metrics = None;
    }

    /// Override interpreter options (index usage, fuel).
    pub fn with_options(mut self, opts: ExecOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Run the AST optimizer on every loaded script (constant folding,
    /// dead-code elimination, foreach-to-aggregate rewriting). Scripts
    /// are checked *before* optimization, so the enforced level applies
    /// to what the designer wrote, not to what the optimizer made of it.
    pub fn with_optimizer(mut self) -> Self {
        self.optimize = true;
        self
    }

    /// The enforced language level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Number of loaded scripts.
    pub fn len(&self) -> usize {
        self.lib.len()
    }

    /// True when no scripts are loaded.
    pub fn is_empty(&self) -> bool {
        self.lib.is_empty()
    }

    /// Parse, type-check (at the engine's level, against the world
    /// schema), and load a script. All-or-nothing per script.
    pub fn load(&mut self, name: &str, source: &str, world: &World) -> Result<(), EngineError> {
        let script = parse_script(name, source).map_err(EngineError::Parse)?;
        // check the new script together with the existing library so call
        // graphs (and restricted-level recursion) are validated globally
        let mut all: Vec<_> = self.lib.iter().cloned().collect();
        all.retain(|s| s.name != name);
        all.push(script.clone());
        let errors = check_library(&all, world, self.level);
        if !errors.is_empty() {
            return Err(EngineError::Check(errors));
        }
        let script = if self.optimize {
            crate::optimize::optimize(&script).0
        } else {
            script
        };
        self.lib.insert(script);
        // a new script may be called by cached ones: recompile lazily
        self.compiled.clear();
        Ok(())
    }

    /// Ensure the world can bind scripts to entities.
    pub fn ensure_binding_component(&self, world: &mut World) {
        if world.component_type(SCRIPT_COMPONENT).is_none() {
            world
                .define_component(SCRIPT_COMPONENT, ValueType::Str)
                .expect("script component type is str");
        }
    }

    /// Bind `entity` to run `script` each tick.
    pub fn bind(
        &self,
        world: &mut World,
        entity: EntityId,
        script: &str,
    ) -> Result<(), RuntimeError> {
        if self.lib.get(script).is_none() {
            return Err(RuntimeError::UnknownScript(script.to_string()));
        }
        world
            .set(entity, SCRIPT_COMPONENT, Value::Str(script.to_string()))
            .map_err(|e| RuntimeError::TypeError(e.to_string()))?;
        Ok(())
    }

    fn compiled_for(&mut self, name: &str, world: &World) -> Option<&CompiledScript> {
        if !self.compiled.contains_key(name) {
            if let Ok(c) = compile(&self.lib, name, world) {
                self.compiled.insert(name.to_string(), c);
            }
        }
        self.compiled.get(name)
    }

    /// Run one script for one entity (compiled when possible).
    pub fn run_one(
        &mut self,
        world: &World,
        entity: EntityId,
        script: &str,
        buf: &mut EffectBuffer,
    ) -> Result<Vec<String>, RuntimeError> {
        let use_index = self.opts.use_index;
        if let Some(c) = self.compiled_for(script, world) {
            return c.run(world, entity, buf, use_index);
        }
        let opts = self.opts;
        run_script(&self.lib, script, world, entity, buf, opts).map(|o| o.events)
    }

    /// Run one tick: every entity bound via the `script` component runs
    /// its script against the tick-start state; the merged effect buffer
    /// then commits as **one batch** through `World::apply_batch` —
    /// every slot one final write, one change-stream segment. Run
    /// against a `WalStore::world_mut()` world, the whole scripted tick
    /// becomes durable with a single group-commit WAL frame (pair with
    /// `WalStore::commit`); before the change pipeline this path
    /// bypassed durability entirely.
    pub fn tick(&mut self, world: &mut World) -> Result<EngineTickStats, RuntimeError> {
        let mut stats = EngineTickStats::default();
        let mut buf = EffectBuffer::new();
        for entity in world.entity_vec() {
            let Some(Value::Str(name)) = world.get(entity, SCRIPT_COMPONENT) else {
                continue;
            };
            if name.is_empty() {
                continue;
            }
            let was_compiled = {
                let use_index = self.opts.use_index;
                match self.compiled_for(&name, world) {
                    Some(c) => {
                        let events = c.run(world, entity, &mut buf, use_index)?;
                        stats
                            .events
                            .extend(events.into_iter().map(|e| (entity, e)));
                        true
                    }
                    None => {
                        let opts = self.opts;
                        let out = run_script(&self.lib, &name, world, entity, &mut buf, opts)?;
                        stats
                            .events
                            .extend(out.events.into_iter().map(|e| (entity, e)));
                        false
                    }
                }
            };
            stats.scripts_run += 1;
            if was_compiled {
                stats.compiled_runs += 1;
            }
        }
        if let Some(m) = &self.metrics {
            m.ticks.inc();
            m.scripts_run.add(stats.scripts_run as u64);
            m.compiled_runs.add(stats.compiled_runs as u64);
            m.events.add(stats.events.len() as u64);
            m.tick_effects.observe(buf.len() as u64);
        }
        buf.apply(world)
            .map_err(|e| RuntimeError::TypeError(e.to_string()))?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamedb_spatial::Vec2;

    fn world() -> World {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("team", ValueType::Str).unwrap();
        w
    }

    #[test]
    fn load_checks_at_engine_level() {
        let w = world();
        let mut restricted = ScriptEngine::new(Level::Restricted);
        let err = restricted
            .load("bad", "foreach within (5) { other.hp -= 1; }", &w)
            .unwrap_err();
        assert!(matches!(err, EngineError::Check(_)));
        assert!(restricted.is_empty());

        let mut full = ScriptEngine::new(Level::Full);
        full.load("ok", "foreach within (5) { other.hp -= 1; }", &w)
            .unwrap();
        assert_eq!(full.len(), 1);
    }

    #[test]
    fn load_rejects_parse_errors() {
        let w = world();
        let mut e = ScriptEngine::new(Level::Full);
        assert!(matches!(
            e.load("oops", "let = ;", &w),
            Err(EngineError::Parse(_))
        ));
    }

    #[test]
    fn load_validates_cross_script_calls() {
        let w = world();
        let mut e = ScriptEngine::new(Level::Restricted);
        e.load("helper", "self.hp += 1;", &w).unwrap();
        e.load("main", "call helper;", &w).unwrap();
        // adding a script that closes a call cycle is rejected
        let err = e.load("helper", "call main;", &w).unwrap_err();
        assert!(matches!(err, EngineError::Check(_)));
        // the old helper stays loaded
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn tick_runs_bound_entities_and_applies_effects() {
        let mut w = world();
        let mut e = ScriptEngine::new(Level::Restricted);
        e.ensure_binding_component(&mut w);
        e.load("regen", "self.hp += 5;", &w).unwrap();
        e.load("decay", "self.hp -= 1;", &w).unwrap();

        let a = w.spawn_at(Vec2::ZERO);
        let b = w.spawn_at(Vec2::new(1.0, 0.0));
        let c = w.spawn_at(Vec2::new(2.0, 0.0)); // unbound: no script runs
        for id in [a, b, c] {
            w.set_f32(id, "hp", 10.0).unwrap();
        }
        e.bind(&mut w, a, "regen").unwrap();
        e.bind(&mut w, b, "decay").unwrap();

        let stats = e.tick(&mut w).unwrap();
        assert_eq!(stats.scripts_run, 2);
        assert_eq!(stats.compiled_runs, 2, "both scripts compile");
        assert_eq!(w.get_f32(a, "hp"), Some(15.0));
        assert_eq!(w.get_f32(b, "hp"), Some(9.0));
        assert_eq!(w.get_f32(c, "hp"), Some(10.0));
    }

    #[test]
    fn bind_unknown_script_fails() {
        let mut w = world();
        let e = ScriptEngine::new(Level::Full);
        let id = w.spawn_at(Vec2::ZERO);
        assert!(matches!(
            e.bind(&mut w, id, "ghost"),
            Err(RuntimeError::UnknownScript(_))
        ));
    }

    #[test]
    fn interpreter_fallback_for_uncompilable_scripts() {
        let mut w = world();
        let mut e = ScriptEngine::new(Level::Full);
        e.ensure_binding_component(&mut w);
        // string local => interpreter-only
        e.load("fallback", r#"let t = self.team; if t == "red" { self.hp += 1; }"#, &w)
            .unwrap();
        let id = w.spawn_at(Vec2::ZERO);
        w.set_f32(id, "hp", 1.0).unwrap();
        w.set(id, "team", Value::Str("red".into())).unwrap();
        e.bind(&mut w, id, "fallback").unwrap();
        let stats = e.tick(&mut w).unwrap();
        assert_eq!(stats.scripts_run, 1);
        assert_eq!(stats.compiled_runs, 0, "fell back to the interpreter");
        assert_eq!(w.get_f32(id, "hp"), Some(2.0));
    }

    #[test]
    fn events_are_attributed_to_entities() {
        let mut w = world();
        let mut e = ScriptEngine::new(Level::Restricted);
        e.ensure_binding_component(&mut w);
        e.load("shout", r#"emit "ping";"#, &w).unwrap();
        let a = w.spawn_at(Vec2::ZERO);
        let b = w.spawn_at(Vec2::new(1.0, 0.0));
        e.bind(&mut w, a, "shout").unwrap();
        e.bind(&mut w, b, "shout").unwrap();
        let stats = e.tick(&mut w).unwrap();
        assert_eq!(
            stats.events,
            vec![(a, "ping".to_string()), (b, "ping".to_string())]
        );
    }

    #[test]
    fn reloading_a_script_changes_behaviour() {
        let mut w = world();
        let mut e = ScriptEngine::new(Level::Restricted);
        e.ensure_binding_component(&mut w);
        e.load("s", "self.hp += 1;", &w).unwrap();
        let id = w.spawn_at(Vec2::ZERO);
        w.set_f32(id, "hp", 0.0).unwrap();
        e.bind(&mut w, id, "s").unwrap();
        e.tick(&mut w).unwrap();
        assert_eq!(w.get_f32(id, "hp"), Some(1.0));
        // hot-reload (designers iterate live)
        e.load("s", "self.hp += 10;", &w).unwrap();
        e.tick(&mut w).unwrap();
        assert_eq!(w.get_f32(id, "hp"), Some(11.0));
    }

    #[test]
    fn optimizer_rewrites_loaded_scripts() {
        let mut w = world();
        let mut e = ScriptEngine::new(Level::Full).with_optimizer();
        e.ensure_binding_component(&mut w);
        let a = w.spawn_at(Vec2::ZERO);
        let b = w.spawn_at(Vec2::new(1.0, 0.0));
        for id in [a, b] {
            w.set_f32(id, "hp", 10.0).unwrap();
        }
        e.load("drain", "foreach within (5) { self.hp -= 2 * 1; }", &w)
            .unwrap();
        // the stored script is the aggregate rewrite, not the loop
        let stored = crate::ast::to_source(&e.lib.get("drain").unwrap().body);
        assert_eq!(stored, "self.hp -= sum(5; 2);\n");
        // and it still runs with identical semantics
        e.bind(&mut w, a, "drain").unwrap();
        e.tick(&mut w).unwrap();
        assert_eq!(w.get_f32(a, "hp"), Some(8.0), "one neighbor drains 2");
    }

    #[test]
    fn level_is_checked_before_optimization() {
        // a restricted engine must still reject the foreach the designer
        // wrote, even though the optimizer could rewrite it into a legal
        // aggregate — enforcement applies to source, not optimizer output
        let w = world();
        let mut e = ScriptEngine::new(Level::Restricted).with_optimizer();
        let err = e.load("bad", "foreach within (5) { self.hp -= 1; }", &w);
        assert!(matches!(err, Err(EngineError::Check(_))));
    }
}
