//! The script engine: the one-stop API a game embeds.
//!
//! [`ScriptEngine`] owns the script library, enforces a language level at
//! load time, lowers what it can to bytecode (falling back to the
//! interpreter for scripts outside the compilable subset), binds scripts
//! to entities via a component, and drives whole-world ticks — the piece
//! that turns the lower-level modules into the "custom scripting language
//! runtime" a studio would actually ship.
//!
//! Execution is mode-switched by [`ExecMode`]: the register VM is the
//! default hot path; the tree-walking interpreter stays available as the
//! differential-testing oracle (and runs any script the VM compiler
//! rejects). Per-entity dispatch is name-free in either mode: `bind`
//! pre-resolves the script to a prepared slot, and the tick loop revives
//! that slot from a per-entity cache without hashing the script name.

use std::collections::HashMap;

use gamedb_content::{Value, ValueType};
use gamedb_core::{EffectBuffer, EntityId, World};
use gamedb_metrics::MetricsRegistry;

use crate::ast::Script;
use crate::interp::{run_script_ref, ExecOptions, RuntimeError, ScriptLibrary};
use crate::metrics::ScriptMetrics;
use crate::parser::{parse_script, ParseError};
use crate::types::{check_library, Level, TypeError};
use crate::vm::{compile_program, Program, Vm};

/// Component that names the script an entity runs each tick.
pub const SCRIPT_COMPONENT: &str = "script";

/// How the engine executes scripts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Tree-walking interpreter — the semantic oracle the VM is
    /// differentially tested against.
    Interp,
    /// Register-based bytecode VM (scripts the VM compiler rejects still
    /// run interpreted).
    #[default]
    Vm,
}

/// Errors loading scripts into the engine.
#[derive(Debug)]
pub enum EngineError {
    Parse(ParseError),
    Check(Vec<TypeError>),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "parse: {e}"),
            EngineError::Check(errs) => {
                write!(f, "{} type error(s); first: {}", errs.len(), errs[0])
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Statistics from one engine tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineTickStats {
    /// Entities that ran a script.
    pub scripts_run: usize,
    /// Entities whose script ran compiled (vs interpreted). Equal to
    /// [`EngineTickStats::vm_runs`] — kept for callers that predate the
    /// mode split.
    pub compiled_runs: usize,
    /// Executions dispatched through the bytecode VM.
    pub vm_runs: usize,
    /// Executions that tree-walked (interpreter mode or VM fallback).
    pub interp_runs: usize,
    /// Events emitted by scripts, in deterministic (entity, order) order.
    pub events: Vec<(EntityId, String)>,
}

/// A script resolved once at bind time: the post-optimizer AST (for the
/// interpreter) plus its bytecode lowering when the VM compiler accepts
/// it. Per-entity dispatch indexes into these — no name hashing on the
/// tick path.
struct Prepared {
    name: String,
    script: Script,
    program: Option<Program>,
}

/// Sentinel for an empty per-entity cache slot.
const NO_SLOT: (u64, u32) = (u64::MAX, u32::MAX);

/// The embedded scripting runtime.
pub struct ScriptEngine {
    lib: ScriptLibrary,
    level: Level,
    opts: ExecOptions,
    optimize: bool,
    mode: ExecMode,
    /// Prepared bindings, invalidated on load (schema drift is handled
    /// by per-tick revalidation instead).
    programs: Vec<Prepared>,
    by_name: HashMap<String, u32>,
    /// `entity slot → (entity bits, program index)`: the per-binding
    /// cache that makes tick dispatch hash-free.
    slot_cache: Vec<(u64, u32)>,
    vm: Vm,
    /// Instrumentation handles ([`ScriptEngine::attach_metrics`]).
    metrics: Option<ScriptMetrics>,
}

impl ScriptEngine {
    /// Engine enforcing a language level on every loaded script.
    pub fn new(level: Level) -> Self {
        ScriptEngine {
            lib: ScriptLibrary::new(),
            level,
            opts: ExecOptions::default(),
            optimize: false,
            mode: ExecMode::default(),
            programs: Vec::new(),
            by_name: HashMap::new(),
            slot_cache: Vec::new(),
            vm: Vm::new(),
            metrics: None,
        }
    }

    /// Attach a metrics registry: scripted ticks, per-entity runs,
    /// dispatch-mode counts, VM instruction/compile totals, and
    /// effect-batch sizes are reported into `registry` from here on.
    /// Purely observational.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(ScriptMetrics::new(registry));
    }

    /// Detach the registry attached by
    /// [`ScriptEngine::attach_metrics`].
    pub fn detach_metrics(&mut self) {
        self.metrics = None;
    }

    /// Override interpreter options (index usage, fuel).
    pub fn with_options(mut self, opts: ExecOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Select the execution engine (default: [`ExecMode::Vm`]).
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self.invalidate_prepared();
        self
    }

    /// The active execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Run the AST optimizer on every loaded script (constant folding,
    /// dead-code elimination, foreach-to-aggregate rewriting). Scripts
    /// are checked *before* optimization, so the enforced level applies
    /// to what the designer wrote, not to what the optimizer made of it.
    pub fn with_optimizer(mut self) -> Self {
        self.optimize = true;
        self
    }

    /// The enforced language level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Number of loaded scripts.
    pub fn len(&self) -> usize {
        self.lib.len()
    }

    /// True when no scripts are loaded.
    pub fn is_empty(&self) -> bool {
        self.lib.is_empty()
    }

    fn invalidate_prepared(&mut self) {
        self.programs.clear();
        self.by_name.clear();
        self.slot_cache.clear();
    }

    /// Parse, type-check (at the engine's level, against the world
    /// schema), and load a script. All-or-nothing per script.
    pub fn load(&mut self, name: &str, source: &str, world: &World) -> Result<(), EngineError> {
        let script = parse_script(name, source).map_err(EngineError::Parse)?;
        // check the new script together with the existing library so call
        // graphs (and restricted-level recursion) are validated globally
        let mut all: Vec<_> = self.lib.iter().cloned().collect();
        all.retain(|s| s.name != name);
        all.push(script.clone());
        let errors = check_library(&all, world, self.level);
        if !errors.is_empty() {
            return Err(EngineError::Check(errors));
        }
        let script = if self.optimize {
            crate::optimize::optimize(&script).0
        } else {
            script
        };
        self.lib.insert(script);
        // a new script may be called by prepared ones: re-prepare lazily
        self.invalidate_prepared();
        Ok(())
    }

    /// Ensure the world can bind scripts to entities.
    pub fn ensure_binding_component(&self, world: &mut World) {
        if world.component_type(SCRIPT_COMPONENT).is_none() {
            world
                .define_component(SCRIPT_COMPONENT, ValueType::Str)
                .expect("script component type is str");
        }
    }

    /// Bind `entity` to run `script` each tick. Preparation (bytecode
    /// lowering, name resolution) happens here, so the tick path only
    /// revives a cached slot.
    pub fn bind(
        &mut self,
        world: &mut World,
        entity: EntityId,
        script: &str,
    ) -> Result<(), RuntimeError> {
        if self.lib.get(script).is_none() {
            return Err(RuntimeError::UnknownScript(script.to_string()));
        }
        world
            .set(entity, SCRIPT_COMPONENT, Value::Str(script.to_string()))
            .map_err(|e| RuntimeError::TypeError(e.to_string()))?;
        let idx = self.prepare_idx(script, world)?;
        self.cache_store(entity, idx);
        Ok(())
    }

    /// Resolve a script name to a prepared-slot index, lowering to
    /// bytecode on first sight (VM mode only).
    fn prepare_idx(&mut self, name: &str, world: &World) -> Result<u32, RuntimeError> {
        if let Some(&i) = self.by_name.get(name) {
            return Ok(i);
        }
        let script = self
            .lib
            .get(name)
            .ok_or_else(|| RuntimeError::UnknownScript(name.to_string()))?
            .clone();
        let program = if self.mode == ExecMode::Vm {
            self.lower(name, world)
        } else {
            None
        };
        let idx = self.programs.len() as u32;
        self.programs.push(Prepared {
            name: name.to_string(),
            script,
            program,
        });
        self.by_name.insert(name.to_string(), idx);
        Ok(idx)
    }

    fn lower(&self, name: &str, world: &World) -> Option<Program> {
        match compile_program(&self.lib, name, world) {
            Ok(p) => {
                if let Some(m) = &self.metrics {
                    m.vm_compiles.inc();
                }
                Some(p)
            }
            Err(_) => None, // outside the compilable subset: interpret
        }
    }

    fn cache_store(&mut self, entity: EntityId, idx: u32) {
        let slot = entity.index() as usize;
        if self.slot_cache.len() <= slot {
            self.slot_cache.resize(slot + 1, NO_SLOT);
        }
        self.slot_cache[slot] = (entity.to_bits(), idx);
    }

    fn cache_get(&self, entity: EntityId, name: &str) -> Option<u32> {
        let &(bits, idx) = self.slot_cache.get(entity.index() as usize)?;
        if bits != entity.to_bits() {
            return None;
        }
        // rebinding writes the component without going through `bind`
        // (e.g. snapshot restore): verify the cached slot still names
        // the bound script — a memcmp, not a hash
        let prep = self.programs.get(idx as usize)?;
        (prep.name == name).then_some(idx)
    }

    /// Recompile prepared programs whose baked-in column ids no longer
    /// match the world (cross-world reuse, schema growth unlocking a
    /// previously-uncompilable script). Cheap: a name check per
    /// component per script.
    fn revalidate_programs(&mut self, world: &World) {
        if self.mode != ExecMode::Vm {
            return;
        }
        for i in 0..self.programs.len() {
            let stale = match &self.programs[i].program {
                Some(p) => !p.validate_schema(world),
                None => true, // retry: schema growth may unlock it
            };
            if stale {
                let name = self.programs[i].name.clone();
                self.programs[i].program = self.lower(&name, world);
            }
        }
    }

    /// Run one script for one entity (bytecode when possible).
    pub fn run_one(
        &mut self,
        world: &World,
        entity: EntityId,
        script: &str,
        buf: &mut EffectBuffer,
    ) -> Result<Vec<String>, RuntimeError> {
        let idx = self.prepare_idx(script, world)? as usize;
        if self.mode == ExecMode::Vm {
            let stale = match &self.programs[idx].program {
                Some(p) => !p.validate_schema(world),
                None => true,
            };
            if stale {
                self.programs[idx].program = self.lower(script, world);
            }
        }
        let prep = &self.programs[idx];
        match (&prep.program, self.mode) {
            (Some(p), ExecMode::Vm) => self.vm.run(p, world, entity, buf, self.opts),
            _ => run_script_ref(&self.lib, &prep.script, world, entity, buf, self.opts)
                .map(|o| o.events),
        }
    }

    /// Run one tick: every entity bound via the `script` component runs
    /// its script against the tick-start state; the merged effect buffer
    /// then commits as **one batch** through `World::apply_batch` —
    /// every slot one final write, one change-stream segment. Run
    /// against a `WalStore::world_mut()` world, the whole scripted tick
    /// becomes durable with a single group-commit WAL frame (pair with
    /// `WalStore::commit`); before the change pipeline this path
    /// bypassed durability entirely.
    pub fn tick(&mut self, world: &mut World) -> Result<EngineTickStats, RuntimeError> {
        let mut stats = EngineTickStats::default();
        let mut buf = EffectBuffer::new();
        self.revalidate_programs(world);
        if let Some(script_cid) = world.component_id(SCRIPT_COMPONENT) {
            for entity in world.entity_vec() {
                let Some(name) = world.get_str_by_id(entity, script_cid) else {
                    continue;
                };
                if name.is_empty() {
                    continue;
                }
                let idx = match self.cache_get(entity, name) {
                    Some(i) => i,
                    None => {
                        let i = self.prepare_idx(name, world)?;
                        self.cache_store(entity, i);
                        i
                    }
                };
                let prep = &self.programs[idx as usize];
                match (&prep.program, self.mode) {
                    (Some(p), ExecMode::Vm) => {
                        let events = self.vm.run(p, world, entity, &mut buf, self.opts)?;
                        stats.vm_runs += 1;
                        stats
                            .events
                            .extend(events.into_iter().map(|e| (entity, e)));
                    }
                    _ => {
                        let out = run_script_ref(
                            &self.lib,
                            &prep.script,
                            world,
                            entity,
                            &mut buf,
                            self.opts,
                        )?;
                        stats.interp_runs += 1;
                        stats
                            .events
                            .extend(out.events.into_iter().map(|e| (entity, e)));
                    }
                }
                stats.scripts_run += 1;
            }
        }
        stats.compiled_runs = stats.vm_runs;
        let vm_instrs = self.vm.take_instr_count();
        if let Some(m) = &self.metrics {
            m.ticks.inc();
            m.scripts_run.add(stats.scripts_run as u64);
            m.compiled_runs.add(stats.compiled_runs as u64);
            m.vm_runs.add(stats.vm_runs as u64);
            m.interp_runs.add(stats.interp_runs as u64);
            m.vm_instrs.add(vm_instrs);
            m.events.add(stats.events.len() as u64);
            m.tick_effects.observe(buf.len() as u64);
        }
        buf.apply(world)
            .map_err(|e| RuntimeError::TypeError(e.to_string()))?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamedb_spatial::Vec2;

    fn world() -> World {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("team", ValueType::Str).unwrap();
        w
    }

    #[test]
    fn load_checks_at_engine_level() {
        let w = world();
        let mut restricted = ScriptEngine::new(Level::Restricted);
        let err = restricted
            .load("bad", "foreach within (5) { other.hp -= 1; }", &w)
            .unwrap_err();
        assert!(matches!(err, EngineError::Check(_)));
        assert!(restricted.is_empty());

        let mut full = ScriptEngine::new(Level::Full);
        full.load("ok", "foreach within (5) { other.hp -= 1; }", &w)
            .unwrap();
        assert_eq!(full.len(), 1);
    }

    #[test]
    fn load_rejects_parse_errors() {
        let w = world();
        let mut e = ScriptEngine::new(Level::Full);
        assert!(matches!(
            e.load("oops", "let = ;", &w),
            Err(EngineError::Parse(_))
        ));
    }

    #[test]
    fn load_validates_cross_script_calls() {
        let w = world();
        let mut e = ScriptEngine::new(Level::Restricted);
        e.load("helper", "self.hp += 1;", &w).unwrap();
        e.load("main", "call helper;", &w).unwrap();
        // adding a script that closes a call cycle is rejected
        let err = e.load("helper", "call main;", &w).unwrap_err();
        assert!(matches!(err, EngineError::Check(_)));
        // the old helper stays loaded
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn tick_runs_bound_entities_and_applies_effects() {
        let mut w = world();
        let mut e = ScriptEngine::new(Level::Restricted);
        e.ensure_binding_component(&mut w);
        e.load("regen", "self.hp += 5;", &w).unwrap();
        e.load("decay", "self.hp -= 1;", &w).unwrap();

        let a = w.spawn_at(Vec2::ZERO);
        let b = w.spawn_at(Vec2::new(1.0, 0.0));
        let c = w.spawn_at(Vec2::new(2.0, 0.0)); // unbound: no script runs
        for id in [a, b, c] {
            w.set_f32(id, "hp", 10.0).unwrap();
        }
        e.bind(&mut w, a, "regen").unwrap();
        e.bind(&mut w, b, "decay").unwrap();

        let stats = e.tick(&mut w).unwrap();
        assert_eq!(stats.scripts_run, 2);
        assert_eq!(stats.compiled_runs, 2, "both scripts compile");
        assert_eq!(stats.vm_runs, 2, "default mode is the VM");
        assert_eq!(stats.interp_runs, 0);
        assert_eq!(w.get_f32(a, "hp"), Some(15.0));
        assert_eq!(w.get_f32(b, "hp"), Some(9.0));
        assert_eq!(w.get_f32(c, "hp"), Some(10.0));
    }

    #[test]
    fn bind_unknown_script_fails() {
        let mut w = world();
        let mut e = ScriptEngine::new(Level::Full);
        let id = w.spawn_at(Vec2::ZERO);
        assert!(matches!(
            e.bind(&mut w, id, "ghost"),
            Err(RuntimeError::UnknownScript(_))
        ));
    }

    #[test]
    fn interpreter_fallback_for_uncompilable_scripts() {
        let mut w = world();
        let mut e = ScriptEngine::new(Level::Full);
        e.ensure_binding_component(&mut w);
        // string local => interpreter-only
        e.load("fallback", r#"let t = self.team; if t == "red" { self.hp += 1; }"#, &w)
            .unwrap();
        let id = w.spawn_at(Vec2::ZERO);
        w.set_f32(id, "hp", 1.0).unwrap();
        w.set(id, "team", Value::Str("red".into())).unwrap();
        e.bind(&mut w, id, "fallback").unwrap();
        let stats = e.tick(&mut w).unwrap();
        assert_eq!(stats.scripts_run, 1);
        assert_eq!(stats.compiled_runs, 0, "fell back to the interpreter");
        assert_eq!(stats.interp_runs, 1);
        assert_eq!(w.get_f32(id, "hp"), Some(2.0));
    }

    #[test]
    fn interp_mode_runs_everything_tree_walked() {
        let mut w = world();
        let mut e = ScriptEngine::new(Level::Restricted).with_mode(ExecMode::Interp);
        assert_eq!(e.mode(), ExecMode::Interp);
        e.ensure_binding_component(&mut w);
        e.load("regen", "self.hp += 5;", &w).unwrap();
        let a = w.spawn_at(Vec2::ZERO);
        w.set_f32(a, "hp", 10.0).unwrap();
        e.bind(&mut w, a, "regen").unwrap();
        let stats = e.tick(&mut w).unwrap();
        assert_eq!(stats.vm_runs, 0);
        assert_eq!(stats.interp_runs, 1);
        assert_eq!(w.get_f32(a, "hp"), Some(15.0));
    }

    #[test]
    fn both_modes_agree_on_world_state() {
        for mode in [ExecMode::Interp, ExecMode::Vm] {
            let mut w = world();
            let mut e = ScriptEngine::new(Level::Restricted)
                .with_optimizer()
                .with_mode(mode);
            e.ensure_binding_component(&mut w);
            e.load(
                "swarm",
                "let crowd = count(4; other.hp > 1); self.hp += crowd; emit \"t\";",
                &w,
            )
            .unwrap();
            let mut ids = Vec::new();
            for i in 0..12 {
                let p = w.spawn_at(Vec2::new((i % 4) as f32 * 2.0, (i / 4) as f32 * 2.0));
                w.set_f32(p, "hp", 5.0).unwrap();
                e.bind(&mut w, p, "swarm").unwrap();
                ids.push(p);
            }
            let stats = e.tick(&mut w).unwrap();
            assert_eq!(stats.scripts_run, 12);
            // both modes land on identical state
            let expected: Vec<f32> = ids.iter().map(|&p| w.get_f32(p, "hp").unwrap()).collect();
            assert_eq!(expected.len(), 12);
            if mode == ExecMode::Vm {
                assert_eq!(stats.vm_runs, 12);
            } else {
                assert_eq!(stats.interp_runs, 12);
            }
        }
    }

    #[test]
    fn run_one_dispatches_by_mode() {
        for mode in [ExecMode::Interp, ExecMode::Vm] {
            let mut w = world();
            let mut e = ScriptEngine::new(Level::Restricted).with_mode(mode);
            e.ensure_binding_component(&mut w);
            e.load("regen", "self.hp += 5; emit \"healed\";", &w).unwrap();
            let id = w.spawn_at(Vec2::ZERO);
            w.set_f32(id, "hp", 1.0).unwrap();
            let mut buf = EffectBuffer::new();
            let events = e.run_one(&w, id, "regen", &mut buf).unwrap();
            assert_eq!(events, vec!["healed".to_string()]);
            buf.apply(&mut w).unwrap();
            assert_eq!(w.get_f32(id, "hp"), Some(6.0));
        }
    }

    #[test]
    fn schema_growth_revalidates_programs() {
        // bind against a schema that lacks the component the script
        // needs → interpreter fallback; defining it later upgrades the
        // binding to bytecode on the next tick
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        let mut e = ScriptEngine::new(Level::Restricted);
        e.ensure_binding_component(&mut w);
        e.load("regen", "self.hp += 5;", &w).unwrap();
        let id = w.spawn_at(Vec2::ZERO);
        w.set_f32(id, "hp", 0.0).unwrap();
        e.bind(&mut w, id, "regen").unwrap();
        let stats = e.tick(&mut w).unwrap();
        assert_eq!(stats.vm_runs, 1, "compiles against the initial schema");

        // a fresh engine prepared against world A keeps working (and
        // recompiles) against a world with a different schema layout
        let mut w2 = World::new();
        w2.define_component("armor", ValueType::Float).unwrap();
        w2.define_component("hp", ValueType::Float).unwrap();
        e.ensure_binding_component(&mut w2);
        let id2 = w2.spawn_at(Vec2::ZERO);
        w2.set_f32(id2, "hp", 1.0).unwrap();
        e.bind(&mut w2, id2, "regen").unwrap();
        let stats = e.tick(&mut w2).unwrap();
        assert_eq!(stats.vm_runs, 1, "revalidation recompiled for w2");
        assert_eq!(w2.get_f32(id2, "hp"), Some(6.0));
    }

    #[test]
    fn events_are_attributed_to_entities() {
        let mut w = world();
        let mut e = ScriptEngine::new(Level::Restricted);
        e.ensure_binding_component(&mut w);
        e.load("shout", r#"emit "ping";"#, &w).unwrap();
        let a = w.spawn_at(Vec2::ZERO);
        let b = w.spawn_at(Vec2::new(1.0, 0.0));
        e.bind(&mut w, a, "shout").unwrap();
        e.bind(&mut w, b, "shout").unwrap();
        let stats = e.tick(&mut w).unwrap();
        assert_eq!(
            stats.events,
            vec![(a, "ping".to_string()), (b, "ping".to_string())]
        );
    }

    #[test]
    fn reloading_a_script_changes_behaviour() {
        let mut w = world();
        let mut e = ScriptEngine::new(Level::Restricted);
        e.ensure_binding_component(&mut w);
        e.load("s", "self.hp += 1;", &w).unwrap();
        let id = w.spawn_at(Vec2::ZERO);
        w.set_f32(id, "hp", 0.0).unwrap();
        e.bind(&mut w, id, "s").unwrap();
        e.tick(&mut w).unwrap();
        assert_eq!(w.get_f32(id, "hp"), Some(1.0));
        // hot-reload (designers iterate live)
        e.load("s", "self.hp += 10;", &w).unwrap();
        e.tick(&mut w).unwrap();
        assert_eq!(w.get_f32(id, "hp"), Some(11.0));
    }

    #[test]
    fn optimizer_rewrites_loaded_scripts() {
        let mut w = world();
        let mut e = ScriptEngine::new(Level::Full).with_optimizer();
        e.ensure_binding_component(&mut w);
        let a = w.spawn_at(Vec2::ZERO);
        let b = w.spawn_at(Vec2::new(1.0, 0.0));
        for id in [a, b] {
            w.set_f32(id, "hp", 10.0).unwrap();
        }
        e.load("drain", "foreach within (5) { self.hp -= 2 * 1; }", &w)
            .unwrap();
        // the stored script is the aggregate rewrite, not the loop
        let stored = crate::ast::to_source(&e.lib.get("drain").unwrap().body);
        assert_eq!(stored, "self.hp -= sum(5; 2);\n");
        // and it still runs with identical semantics
        e.bind(&mut w, a, "drain").unwrap();
        e.tick(&mut w).unwrap();
        assert_eq!(w.get_f32(a, "hp"), Some(8.0), "one neighbor drains 2");
    }

    #[test]
    fn level_is_checked_before_optimization() {
        // a restricted engine must still reject the foreach the designer
        // wrote, even though the optimizer could rewrite it into a legal
        // aggregate — enforcement applies to source, not optimizer output
        let w = world();
        let mut e = ScriptEngine::new(Level::Restricted).with_optimizer();
        let err = e.load("bad", "foreach within (5) { self.hp -= 1; }", &w);
        assert!(matches!(err, Err(EngineError::Check(_))));
    }
}
