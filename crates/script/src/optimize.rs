//! AST optimizer: the declarative rewrites of \[11\] as compiler passes.
//!
//! The paper's performance section argues that designer scripts should be
//! *processed like queries*. This module applies the classic pipeline:
//!
//! 1. **Constant folding** — literal arithmetic, comparisons, logical
//!    identities, pure builtins (`min`/`max`/`abs`/`clamp`), and the
//!    interpreter's ÷0 → 0 rule.
//! 2. **Algebraic simplification** — `x+0`, `x*1`, `x*0`, `0-x`, double
//!    negation, `true && e`, `false || e`, …
//! 3. **Dead code elimination** — `if` with a constant condition inlines
//!    a branch; `while false` disappears; `let`s whose variable is never
//!    read are dropped (expressions are pure, so this is sound).
//! 4. **Foreach-to-aggregate rewriting** — the headline pass:
//!    `foreach within (r) { self.x += e; }` becomes
//!    `self.x += sum(r; e);`, and
//!    `foreach within (r) { if c { self.x += 1; } }` becomes
//!    `self.x += count(r; c);`. The rewritten form is exactly what the
//!    restricted language level accepts and what the set-at-a-time
//!    compiler evaluates through the spatial index — so the optimizer
//!    mechanically performs the rewrite the paper says studios forced
//!    their designers to do by hand.
//!
//! Passes run to a fixpoint. Semantics are preserved for well-typed
//! scripts up to floating-point association (aggregate sums accumulate in
//! the same candidate order the loop would) and latent runtime errors in
//! code the optimizer removes (an unread `let x = count(5);` can no
//! longer raise a missing-position error — standard dead-code caveat).

use std::collections::HashSet;

use crate::ast::{AggKind, AssignOp, BinOp, BuiltinFn, Expr, Script, Stmt, Subject};

/// What the optimizer did, for reports and ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Expressions replaced by simpler ones (folds + identities).
    pub folded: usize,
    /// Statements removed or branch-inlined.
    pub dead_stmts: usize,
    /// `foreach` loops rewritten into aggregates.
    pub foreach_rewrites: usize,
    /// Unread `let`/variable assignments removed.
    pub lets_removed: usize,
}

impl OptStats {
    fn total(&self) -> usize {
        self.folded + self.dead_stmts + self.foreach_rewrites + self.lets_removed
    }
}

/// Optimize a script, returning the rewritten script and pass statistics.
pub fn optimize(script: &Script) -> (Script, OptStats) {
    let mut stats = OptStats::default();
    let mut body = script.body.clone();
    // Fixpoint: each round may expose more work (folding a condition
    // enables DCE, DCE removes the last read of a let, …). Rounds are
    // bounded because every pass strictly shrinks or simplifies.
    for _ in 0..16 {
        let before = stats;
        body = opt_block(body, &mut stats);
        body = remove_unread_lets(body, &mut stats);
        if stats.total() == before.total() {
            break;
        }
    }
    (
        Script {
            name: script.name.clone(),
            body,
        },
        stats,
    )
}

// ---------------------------------------------------------------------
// expressions
// ---------------------------------------------------------------------

fn num(e: &Expr) -> Option<f64> {
    match e {
        Expr::Num(n) => Some(*n),
        _ => None,
    }
}

fn boolean(e: &Expr) -> Option<bool> {
    match e {
        Expr::Bool(b) => Some(*b),
        _ => None,
    }
}

fn opt_expr(e: Expr, stats: &mut OptStats) -> Expr {
    match e {
        Expr::Unary { neg, not, inner } => {
            let inner = opt_expr(*inner, stats);
            match (&inner, neg, not) {
                (_, false, false) => {
                    stats.folded += 1;
                    inner
                }
                (Expr::Num(n), true, false) => {
                    stats.folded += 1;
                    Expr::Num(-n)
                }
                (Expr::Bool(b), false, true) => {
                    stats.folded += 1;
                    Expr::Bool(!b)
                }
                // !!e and -(-e) cancel
                (Expr::Unary { neg: n2, not: t2, inner: i2 }, _, _)
                    if (*n2, *t2) == (neg, not) =>
                {
                    stats.folded += 1;
                    (**i2).clone()
                }
                _ => Expr::Unary { neg, not, inner: Box::new(inner) },
            }
        }
        Expr::Bin { op, lhs, rhs } => {
            let lhs = opt_expr(*lhs, stats);
            let rhs = opt_expr(*rhs, stats);
            fold_bin(op, lhs, rhs, stats)
        }
        Expr::Builtin { name, args } => {
            let args: Vec<Expr> = args.into_iter().map(|a| opt_expr(a, stats)).collect();
            let nums: Option<Vec<f64>> = args.iter().map(num).collect();
            if let Some(v) = nums {
                stats.folded += 1;
                return Expr::Num(match name {
                    BuiltinFn::Min => v[0].min(v[1]),
                    BuiltinFn::Max => v[0].max(v[1]),
                    BuiltinFn::Abs => v[0].abs(),
                    BuiltinFn::Clamp => v[0].clamp(v[1].min(v[2]), v[2].max(v[1])),
                });
            }
            Expr::Builtin { name, args }
        }
        Expr::Agg { kind, radius, arg, filter } => Expr::Agg {
            kind,
            radius: Box::new(opt_expr(*radius, stats)),
            arg: arg.map(|a| Box::new(opt_expr(*a, stats))),
            filter: match filter.map(|f| opt_expr(*f, stats)) {
                // a constant-true filter is no filter
                Some(Expr::Bool(true)) => {
                    stats.folded += 1;
                    None
                }
                other => other.map(Box::new),
            },
        },
        Expr::NearestDist { radius } => Expr::NearestDist {
            radius: Box::new(opt_expr(*radius, stats)),
        },
        leaf => leaf,
    }
}

// float-literal patterns are disallowed; comparisons in guards are the
// idiomatic way to match 0.0/1.0 here
#[allow(clippy::redundant_guards)]
fn fold_bin(op: BinOp, lhs: Expr, rhs: Expr, stats: &mut OptStats) -> Expr {
    // constant ⊕ constant
    if let (Some(a), Some(b)) = (num(&lhs), num(&rhs)) {
        let v = match op {
            BinOp::Add => Some(a + b),
            BinOp::Sub => Some(a - b),
            BinOp::Mul => Some(a * b),
            // the interpreter defines ÷0 and %0 as 0 (scripts never
            // crash the server), so folding them is faithful
            BinOp::Div => Some(if b == 0.0 { 0.0 } else { a / b }),
            BinOp::Rem => Some(if b == 0.0 { 0.0 } else { a % b }),
            _ => None,
        };
        if let Some(v) = v {
            stats.folded += 1;
            return Expr::Num(v);
        }
        if op.is_cmp() {
            stats.folded += 1;
            return Expr::Bool(match op {
                BinOp::Eq => a == b,
                BinOp::Ne => a != b,
                BinOp::Lt => a < b,
                BinOp::Le => a <= b,
                BinOp::Gt => a > b,
                BinOp::Ge => a >= b,
                _ => unreachable!(),
            });
        }
    }
    if let (Some(a), Some(b)) = (boolean(&lhs), boolean(&rhs)) {
        stats.folded += 1;
        return Expr::Bool(match op {
            BinOp::And => a && b,
            BinOp::Or => a || b,
            BinOp::Eq => a == b,
            BinOp::Ne => a != b,
            _ => a & b, // other ops on bools are rejected by the checker
        });
    }
    // logical identities (expressions are pure, so dropping one side of a
    // short-circuit preserves the value)
    match (op, boolean(&lhs), boolean(&rhs)) {
        (BinOp::And, Some(true), _) | (BinOp::Or, Some(false), _) => {
            stats.folded += 1;
            return rhs;
        }
        (BinOp::And, Some(false), _) => {
            stats.folded += 1;
            return Expr::Bool(false);
        }
        (BinOp::Or, Some(true), _) => {
            stats.folded += 1;
            return Expr::Bool(true);
        }
        (BinOp::And, _, Some(true)) | (BinOp::Or, _, Some(false)) => {
            stats.folded += 1;
            return lhs;
        }
        (BinOp::And, _, Some(false)) => {
            stats.folded += 1;
            return Expr::Bool(false);
        }
        (BinOp::Or, _, Some(true)) => {
            stats.folded += 1;
            return Expr::Bool(true);
        }
        _ => {}
    }
    // arithmetic identities (exact for the finite component values the
    // engine stores; scripts cannot produce NaN — ÷0 is defined as 0)
    match (op, num(&lhs), num(&rhs)) {
        (BinOp::Add, Some(z), _) if z == 0.0 => {
            stats.folded += 1;
            return rhs;
        }
        (BinOp::Add, _, Some(z)) | (BinOp::Sub, _, Some(z)) if z == 0.0 => {
            stats.folded += 1;
            return lhs;
        }
        (BinOp::Sub, Some(z), _) if z == 0.0 => {
            stats.folded += 1;
            return Expr::Unary { neg: true, not: false, inner: Box::new(rhs) };
        }
        (BinOp::Mul, Some(o), _) if o == 1.0 => {
            stats.folded += 1;
            return rhs;
        }
        (BinOp::Mul, _, Some(o)) | (BinOp::Div, _, Some(o)) if o == 1.0 => {
            stats.folded += 1;
            return lhs;
        }
        (BinOp::Mul, Some(z), _) | (BinOp::Mul, _, Some(z)) if z == 0.0 => {
            stats.folded += 1;
            return Expr::Num(0.0);
        }
        _ => {}
    }
    Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
}

// ---------------------------------------------------------------------
// statements
// ---------------------------------------------------------------------

fn opt_block(block: Vec<Stmt>, stats: &mut OptStats) -> Vec<Stmt> {
    block
        .into_iter()
        .flat_map(|s| opt_stmt(s, stats))
        .collect()
}

/// Optimize one statement. Returns a list because inlining a constant
/// `if` splices its branch into the surrounding block. (Splicing hoists
/// the branch's `let`s into the parent scope; GSL locals shadow by stack
/// order, so this is observation-equivalent for well-formed scripts.)
fn opt_stmt(s: Stmt, stats: &mut OptStats) -> Vec<Stmt> {
    match s {
        Stmt::Let { name, value } => vec![Stmt::Let { name, value: opt_expr(value, stats) }],
        Stmt::AssignVar { name, value } => {
            vec![Stmt::AssignVar { name, value: opt_expr(value, stats) }]
        }
        Stmt::AssignComp { subject, component, op, value } => vec![Stmt::AssignComp {
            subject,
            component,
            op,
            value: opt_expr(value, stats),
        }],
        Stmt::If { cond, then_block, else_block } => {
            let cond = opt_expr(cond, stats);
            let then_block = opt_block(then_block, stats);
            let else_block = opt_block(else_block, stats);
            match boolean(&cond) {
                Some(true) => {
                    stats.dead_stmts += 1;
                    then_block
                }
                Some(false) => {
                    stats.dead_stmts += 1;
                    else_block
                }
                None => {
                    if then_block.is_empty() && else_block.is_empty() {
                        stats.dead_stmts += 1;
                        return vec![];
                    }
                    vec![Stmt::If { cond, then_block, else_block }]
                }
            }
        }
        Stmt::Foreach { radius, body } => {
            let radius = opt_expr(radius, stats);
            let body = opt_block(body, stats);
            if body.is_empty() {
                stats.dead_stmts += 1;
                return vec![];
            }
            if let Some(rewritten) = rewrite_foreach(&radius, &body) {
                stats.foreach_rewrites += 1;
                return vec![rewritten];
            }
            vec![Stmt::Foreach { radius, body }]
        }
        Stmt::While { cond, body } => {
            let cond = opt_expr(cond, stats);
            if boolean(&cond) == Some(false) {
                stats.dead_stmts += 1;
                return vec![];
            }
            vec![Stmt::While { cond, body: opt_block(body, stats) }]
        }
        Stmt::Move { dx, dy } => {
            let dx = opt_expr(dx, stats);
            let dy = opt_expr(dy, stats);
            if num(&dx) == Some(0.0) && num(&dy) == Some(0.0) {
                stats.dead_stmts += 1;
                return vec![];
            }
            vec![Stmt::Move { dx, dy }]
        }
        other => vec![other],
    }
}

/// The foreach-to-aggregate pass.
///
/// `foreach within (r) { self.c ⊕= e; }`            → `self.c ⊕= sum(r; e);`
/// `foreach within (r) { if f { self.c ⊕= e; } }`   → `self.c ⊕= sum(r; e; f);`
/// `foreach within (r) { if f { self.c += 1; } }`   → `self.c += count(r; f);`
///
/// Sound because `+=`/`-=` emit commutative `Add` effects against the
/// tick-start snapshot: per-neighbor adds and one summed add apply
/// identically. The body must write only `self` (writing `other` or
/// moving/despawning has per-iteration effects an aggregate cannot
/// express), and locals must not be declared inside the loop.
fn rewrite_foreach(radius: &Expr, body: &[Stmt]) -> Option<Stmt> {
    let (filter, inner) = match body {
        [Stmt::If { cond, then_block, else_block }] if else_block.is_empty() => {
            (Some(cond.clone()), then_block.as_slice())
        }
        _ => (None, body),
    };
    let [Stmt::AssignComp { subject: Subject::SelfEnt, component, op, value }] = inner else {
        return None;
    };
    if !matches!(op, AssignOp::Add | AssignOp::Sub) {
        return None;
    }
    let agg = if num(value) == Some(1.0) {
        Expr::Agg {
            kind: AggKind::Count,
            radius: Box::new(radius.clone()),
            arg: None,
            filter: filter.map(Box::new),
        }
    } else {
        Expr::Agg {
            kind: AggKind::Sum,
            radius: Box::new(radius.clone()),
            arg: Some(Box::new(value.clone())),
            filter: filter.map(Box::new),
        }
    };
    Some(Stmt::AssignComp {
        subject: Subject::SelfEnt,
        component: component.clone(),
        op: *op,
        value: agg,
    })
}

// ---------------------------------------------------------------------
// unread-let elimination
// ---------------------------------------------------------------------

fn collect_reads_expr(e: &Expr, out: &mut HashSet<String>) {
    match e {
        Expr::Var(name) => {
            out.insert(name.clone());
        }
        Expr::Unary { inner, .. } => collect_reads_expr(inner, out),
        Expr::Bin { lhs, rhs, .. } => {
            collect_reads_expr(lhs, out);
            collect_reads_expr(rhs, out);
        }
        Expr::Builtin { args, .. } => {
            for a in args {
                collect_reads_expr(a, out);
            }
        }
        Expr::Agg { radius, arg, filter, .. } => {
            collect_reads_expr(radius, out);
            if let Some(a) = arg {
                collect_reads_expr(a, out);
            }
            if let Some(f) = filter {
                collect_reads_expr(f, out);
            }
        }
        Expr::NearestDist { radius } => collect_reads_expr(radius, out),
        _ => {}
    }
}

fn collect_reads_block(block: &[Stmt], out: &mut HashSet<String>) {
    for s in block {
        match s {
            Stmt::Let { value, .. }
            | Stmt::AssignVar { value, .. }
            | Stmt::AssignComp { value, .. } => collect_reads_expr(value, out),
            Stmt::If { cond, then_block, else_block } => {
                collect_reads_expr(cond, out);
                collect_reads_block(then_block, out);
                collect_reads_block(else_block, out);
            }
            Stmt::Foreach { radius, body } => {
                collect_reads_expr(radius, out);
                collect_reads_block(body, out);
            }
            Stmt::While { cond, body } => {
                collect_reads_expr(cond, out);
                collect_reads_block(body, out);
            }
            Stmt::Move { dx, dy } => {
                collect_reads_expr(dx, out);
                collect_reads_expr(dy, out);
            }
            Stmt::Despawn | Stmt::Call { .. } | Stmt::Emit { .. } => {}
        }
    }
}

/// Remove `let`s (and reassignments) of variables never read anywhere in
/// the body. Conservative under shadowing: one read of the name keeps
/// every binding of it. Expressions are pure, so dropped initializers
/// cannot change state.
fn remove_unread_lets(body: Vec<Stmt>, stats: &mut OptStats) -> Vec<Stmt> {
    let mut reads = HashSet::new();
    collect_reads_block(&body, &mut reads);
    strip_unread(body, &reads, stats)
}

fn strip_unread(block: Vec<Stmt>, reads: &HashSet<String>, stats: &mut OptStats) -> Vec<Stmt> {
    block
        .into_iter()
        .filter_map(|s| match s {
            Stmt::Let { ref name, .. } | Stmt::AssignVar { ref name, .. }
                if !reads.contains(name) =>
            {
                stats.lets_removed += 1;
                None
            }
            Stmt::If { cond, then_block, else_block } => Some(Stmt::If {
                cond,
                then_block: strip_unread(then_block, reads, stats),
                else_block: strip_unread(else_block, reads, stats),
            }),
            Stmt::Foreach { radius, body } => Some(Stmt::Foreach {
                radius,
                body: strip_unread(body, reads, stats),
            }),
            Stmt::While { cond, body } => Some(Stmt::While {
                cond,
                body: strip_unread(body, reads, stats),
            }),
            other => Some(other),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;

    fn opt(src: &str) -> (Script, OptStats) {
        let script = parse_script("t", src).expect("test script parses");
        optimize(&script)
    }

    fn opt_src(src: &str) -> String {
        let (s, _) = opt(src);
        crate::ast::to_source(&s.body)
    }

    #[test]
    fn folds_literal_arithmetic() {
        assert_eq!(opt_src("self.hp += 2 * 3 + 4;"), "self.hp += 10;\n");
        assert_eq!(opt_src("self.hp += 7 / 2;"), "self.hp += 3.5;\n");
    }

    #[test]
    fn folds_div_by_zero_like_the_interpreter() {
        assert_eq!(opt_src("self.hp += 5 / 0;"), "self.hp += 0;\n");
        assert_eq!(opt_src("self.hp += 5 % 0;"), "self.hp += 0;\n");
    }

    #[test]
    fn folds_comparisons_and_logic() {
        assert_eq!(opt_src("if 3 < 4 { self.hp += 1; }"), "self.hp += 1;\n");
        assert_eq!(opt_src("if 3 > 4 { self.hp += 1; }"), "");
        assert_eq!(
            opt_src("if 1 < 2 && self.hp > 0 { self.hp += 1; }"),
            "if (self.hp > 0) {\n  self.hp += 1;\n}\n"
        );
    }

    #[test]
    fn folds_builtins() {
        assert_eq!(opt_src("self.hp += min(3, 8);"), "self.hp += 3;\n");
        assert_eq!(opt_src("self.hp += clamp(12, 0, 10);"), "self.hp += 10;\n");
        assert_eq!(opt_src("self.hp += abs(0 - 4);"), "self.hp += 4;\n");
    }

    #[test]
    fn arithmetic_identities() {
        assert_eq!(opt_src("self.hp += self.dmg * 1;"), "self.hp += self.dmg;\n");
        assert_eq!(opt_src("self.hp += self.dmg + 0;"), "self.hp += self.dmg;\n");
        assert_eq!(opt_src("self.hp += self.dmg * 0;"), "self.hp += 0;\n");
        assert_eq!(opt_src("self.hp += 0 - self.dmg;"), "self.hp += -(self.dmg);\n");
    }

    #[test]
    fn logic_identities() {
        assert_eq!(
            opt_src("if true && self.alive { self.hp += 1; }"),
            "if self.alive {\n  self.hp += 1;\n}\n"
        );
        assert_eq!(opt_src("if false && self.alive { self.hp += 1; }"), "");
        assert_eq!(opt_src("if self.alive || true { self.hp += 1; }"), "self.hp += 1;\n");
    }

    #[test]
    fn removes_while_false_and_empty_if() {
        assert_eq!(opt_src("while false { self.hp += 1; }"), "");
        assert_eq!(opt_src("if self.hp > 0 { }"), "");
    }

    #[test]
    fn inlines_constant_if_with_multiple_stmts() {
        let out = opt_src("if 1 < 2 { self.hp += 1; self.hp += 2; }");
        assert_eq!(out, "self.hp += 1;\nself.hp += 2;\n");
    }

    #[test]
    fn constant_false_keeps_else() {
        assert_eq!(
            opt_src("if 2 < 1 { self.hp += 1; } else { self.hp += 9; }"),
            "self.hp += 9;\n"
        );
    }

    #[test]
    fn removes_unread_lets() {
        let (s, stats) = opt("let a = 5; let b = a + 1; self.hp += 2;");
        assert_eq!(crate::ast::to_source(&s.body), "self.hp += 2;\n");
        // b is unread → removed; that frees a → removed next round
        assert_eq!(stats.lets_removed, 2);
    }

    #[test]
    fn keeps_read_lets() {
        let out = opt_src("let a = self.dmg; self.hp -= a;");
        assert!(out.contains("let a = self.dmg;"));
        assert!(out.contains("self.hp -= a;"));
    }

    #[test]
    fn rewrites_foreach_sum() {
        let out = opt_src("foreach within (8) { self.hp -= other.dmg; }");
        assert_eq!(out, "self.hp -= sum(8; other.dmg);\n");
    }

    #[test]
    fn rewrites_foreach_filtered_sum() {
        let out = opt_src(
            "foreach within (8) { if other.team != self.team { self.threat += other.dmg; } }",
        );
        assert_eq!(
            out,
            "self.threat += sum(8; other.dmg; (other.team != self.team));\n"
        );
    }

    #[test]
    fn rewrites_foreach_count() {
        let out = opt_src("foreach within (5) { if other.hp > 0 { self.seen += 1; } }");
        assert_eq!(out, "self.seen += count(5; (other.hp > 0));\n");
    }

    #[test]
    fn leaves_other_writing_foreach_alone() {
        let src = "foreach within (4) { other.hp -= 1; }";
        let out = opt_src(src);
        assert!(out.contains("foreach within (4)"), "{out}");
    }

    #[test]
    fn leaves_multi_statement_foreach_alone() {
        let out = opt_src("foreach within (4) { self.hp -= 1; self.threat += other.dmg; }");
        assert!(out.contains("foreach within (4)"), "{out}");
    }

    #[test]
    fn drops_empty_foreach() {
        assert_eq!(opt_src("foreach within (4) { }"), "");
    }

    #[test]
    fn drops_zero_move_keeps_real_move() {
        assert_eq!(opt_src("move(0, 0);"), "");
        assert_eq!(opt_src("move(1 + 1, 0);"), "move(2, 0);\n");
    }

    #[test]
    fn constant_true_filter_is_dropped() {
        let out = opt_src("self.seen += count(5; 1 < 2);");
        assert_eq!(out, "self.seen += count(5);\n");
    }

    #[test]
    fn fixpoint_chains_passes() {
        // folding the condition exposes the foreach rewrite underneath
        let out = opt_src(
            "if 1 < 2 { foreach within (6) { self.hp -= other.dmg * 1; } } else { self.hp += 99; }",
        );
        assert_eq!(out, "self.hp -= sum(6; other.dmg);\n");
    }

    #[test]
    fn stats_report_work() {
        let (_, stats) = opt("self.hp += 1 + 1; while false { self.hp += 1; } let q = 3;");
        assert!(stats.folded >= 1);
        assert!(stats.dead_stmts >= 1);
        assert_eq!(stats.lets_removed, 1);
        assert_eq!(stats.foreach_rewrites, 0);
    }

    #[test]
    fn optimizing_twice_is_idempotent() {
        let (once, _) = opt("foreach within (8) { self.hp -= other.dmg; } self.hp += 0 + 1;");
        let (twice, stats2) = optimize(&once);
        assert_eq!(once, twice);
        assert_eq!(stats2.total(), 0);
    }

    #[test]
    fn double_negation_cancels() {
        assert_eq!(opt_src("self.hp += -(-(self.dmg));"), "self.hp += self.dmg;\n");
        assert_eq!(
            opt_src("if !(!(self.alive)) { self.hp += 1; }"),
            "if self.alive {\n  self.hp += 1;\n}\n"
        );
    }
}
