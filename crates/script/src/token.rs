//! Lexer for GSL, the Game Scripting Language.
//!
//! GSL is the designer-facing language of this workspace — the kind of
//! scripting language the paper's data-driven-design section describes
//! studios building for their designers. The surface syntax is small and
//! C-like; the interesting part is the *restricted* language level (see
//! [`crate::types`]) that statically removes iteration and recursion,
//! as the paper reports studios doing \[10\].

use std::fmt;

/// A token with its source location (1-based line/column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // literals & identifiers
    Number(f64),
    Str(String),
    Ident(String),
    // keywords
    Let,
    If,
    Else,
    Foreach,
    While,
    Within,
    Where,
    SelfKw,
    Other,
    Move,
    Despawn,
    Call,
    Emit,
    True,
    False,
    Count,
    Sum,
    MinOf,
    MaxOf,
    AvgOf,
    NearestDist,
    Dist,
    Min,
    Max,
    Abs,
    Clamp,
    // punctuation & operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Dot,
    Assign,    // =
    PlusEq,    // +=
    MinusEq,   // -=
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Number(n) => write!(f, "{n}"),
            Str(s) => write!(f, "{s:?}"),
            Ident(s) => write!(f, "{s}"),
            Let => write!(f, "let"),
            If => write!(f, "if"),
            Else => write!(f, "else"),
            Foreach => write!(f, "foreach"),
            While => write!(f, "while"),
            Within => write!(f, "within"),
            Where => write!(f, "where"),
            SelfKw => write!(f, "self"),
            Other => write!(f, "other"),
            Move => write!(f, "move"),
            Despawn => write!(f, "despawn"),
            Call => write!(f, "call"),
            Emit => write!(f, "emit"),
            True => write!(f, "true"),
            False => write!(f, "false"),
            Count => write!(f, "count"),
            Sum => write!(f, "sum"),
            MinOf => write!(f, "minof"),
            MaxOf => write!(f, "maxof"),
            AvgOf => write!(f, "avgof"),
            NearestDist => write!(f, "nearest_dist"),
            Dist => write!(f, "dist"),
            Min => write!(f, "min"),
            Max => write!(f, "max"),
            Abs => write!(f, "abs"),
            Clamp => write!(f, "clamp"),
            LParen => write!(f, "("),
            RParen => write!(f, ")"),
            LBrace => write!(f, "{{"),
            RBrace => write!(f, "}}"),
            Semi => write!(f, ";"),
            Comma => write!(f, ","),
            Dot => write!(f, "."),
            Assign => write!(f, "="),
            PlusEq => write!(f, "+="),
            MinusEq => write!(f, "-="),
            Plus => write!(f, "+"),
            Minus => write!(f, "-"),
            Star => write!(f, "*"),
            Slash => write!(f, "/"),
            Percent => write!(f, "%"),
            EqEq => write!(f, "=="),
            NotEq => write!(f, "!="),
            Lt => write!(f, "<"),
            Le => write!(f, "<="),
            Gt => write!(f, ">"),
            Ge => write!(f, ">="),
            AndAnd => write!(f, "&&"),
            OrOr => write!(f, "||"),
            Not => write!(f, "!"),
            Eof => write!(f, "<eof>"),
        }
    }
}

/// Lexical error with location.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

fn keyword(s: &str) -> Option<TokenKind> {
    use TokenKind::*;
    Some(match s {
        "let" => Let,
        "if" => If,
        "else" => Else,
        "foreach" => Foreach,
        "while" => While,
        "within" => Within,
        "where" => Where,
        "self" => SelfKw,
        "other" => Other,
        "move" => Move,
        "despawn" => Despawn,
        "call" => Call,
        "emit" => Emit,
        "true" => True,
        "false" => False,
        "count" => Count,
        "sum" => Sum,
        "minof" => MinOf,
        "maxof" => MaxOf,
        "avgof" => AvgOf,
        "nearest_dist" => NearestDist,
        "dist" => Dist,
        "min" => Min,
        "max" => Max,
        "abs" => Abs,
        "clamp" => Clamp,
        _ => return None,
    })
}

/// Tokenize a GSL source string.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let b = src.as_bytes();
    let mut tokens = Vec::new();
    let (mut i, mut line, mut col) = (0usize, 1u32, 1u32);
    macro_rules! push {
        ($kind:expr, $l:expr, $c:expr) => {
            tokens.push(Token {
                kind: $kind,
                line: $l,
                col: $c,
            })
        };
    }
    while i < b.len() {
        let (l, c) = (line, col);
        let ch = b[i];
        let adv = |n: usize, i: &mut usize, col: &mut u32| {
            *i += n;
            *col += n as u32;
        };
        match ch {
            b'\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            b' ' | b'\t' | b'\r' => adv(1, &mut i, &mut col),
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    i += 1;
                }
                let text = &src[start..i];
                col += (i - start) as u32;
                let n = text.parse::<f64>().map_err(|_| LexError {
                    line: l,
                    col: c,
                    message: format!("malformed number {text:?}"),
                })?;
                push!(TokenKind::Number(n), l, c);
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let text = &src[start..i];
                col += (i - start) as u32;
                match keyword(text) {
                    Some(kw) => push!(kw, l, c),
                    None => push!(TokenKind::Ident(text.to_string()), l, c),
                }
            }
            b'"' => {
                i += 1;
                col += 1;
                let mut s = String::new();
                loop {
                    if i >= b.len() {
                        return Err(LexError {
                            line: l,
                            col: c,
                            message: "unterminated string".into(),
                        });
                    }
                    match b[i] {
                        b'"' => {
                            i += 1;
                            col += 1;
                            break;
                        }
                        b'\n' => {
                            return Err(LexError {
                                line: l,
                                col: c,
                                message: "newline in string".into(),
                            })
                        }
                        b'\\' if i + 1 < b.len() => {
                            let esc = b[i + 1];
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'"' => '"',
                                b'\\' => '\\',
                                other => {
                                    return Err(LexError {
                                        line,
                                        col,
                                        message: format!(
                                            "unknown escape '\\{}'",
                                            other as char
                                        ),
                                    })
                                }
                            });
                            i += 2;
                            col += 2;
                        }
                        other => {
                            s.push(other as char);
                            i += 1;
                            col += 1;
                        }
                    }
                }
                push!(TokenKind::Str(s), l, c);
            }
            _ => {
                use TokenKind::*;
                let two = if i + 1 < b.len() { &b[i..i + 2] } else { &b[i..i + 1] };
                let (kind, len) = match two {
                    b"+=" => (PlusEq, 2),
                    b"-=" => (MinusEq, 2),
                    b"==" => (EqEq, 2),
                    b"!=" => (NotEq, 2),
                    b"<=" => (Le, 2),
                    b">=" => (Ge, 2),
                    b"&&" => (AndAnd, 2),
                    b"||" => (OrOr, 2),
                    _ => match ch {
                        b'(' => (LParen, 1),
                        b')' => (RParen, 1),
                        b'{' => (LBrace, 1),
                        b'}' => (RBrace, 1),
                        b';' => (Semi, 1),
                        b',' => (Comma, 1),
                        b'.' => (Dot, 1),
                        b'=' => (Assign, 1),
                        b'+' => (Plus, 1),
                        b'-' => (Minus, 1),
                        b'*' => (Star, 1),
                        b'/' => (Slash, 1),
                        b'%' => (Percent, 1),
                        b'<' => (Lt, 1),
                        b'>' => (Gt, 1),
                        b'!' => (Not, 1),
                        other => {
                            return Err(LexError {
                                line: l,
                                col: c,
                                message: format!("unexpected character {:?}", other as char),
                            })
                        }
                    },
                };
                adv(len, &mut i, &mut col);
                push!(kind, l, c);
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers_idents_keywords() {
        assert_eq!(
            kinds("let x = 3.5;"),
            vec![Let, Ident("x".into()), Assign, Number(3.5), Semi, Eof]
        );
        assert_eq!(kinds("42"), vec![Number(42.0), Eof]);
    }

    #[test]
    fn operators_two_char_before_one_char() {
        assert_eq!(
            kinds("a += b <= c == d != e && f || !g"),
            vec![
                Ident("a".into()),
                PlusEq,
                Ident("b".into()),
                Le,
                Ident("c".into()),
                EqEq,
                Ident("d".into()),
                NotEq,
                Ident("e".into()),
                AndAnd,
                Ident("f".into()),
                OrOr,
                Not,
                Ident("g".into()),
                Eof
            ]
        );
    }

    #[test]
    fn self_component_access() {
        assert_eq!(
            kinds("self.hp -= 5;"),
            vec![SelfKw, Dot, Ident("hp".into()), MinusEq, Number(5.0), Semi, Eof]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("x // the variable\n y"),
            vec![Ident("x".into()), Ident("y".into()), Eof]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#"emit "boss\n\"fight\"";"#),
            vec![Emit, Str("boss\n\"fight\"".into()), Semi, Eof]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        let err = lex("\"oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn malformed_number_is_error() {
        let err = lex("1.2.3").unwrap_err();
        assert!(err.message.contains("malformed"));
    }

    #[test]
    fn unknown_char_is_error() {
        let err = lex("let $x = 1;").unwrap_err();
        assert_eq!(err.col, 5);
        assert!(err.message.contains('$'));
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = lex("let a = 1;\n  let b = 2;").unwrap();
        let b_tok = toks
            .iter()
            .find(|t| t.kind == Ident("b".into()))
            .unwrap();
        assert_eq!(b_tok.line, 2);
        assert_eq!(b_tok.col, 7);
    }

    #[test]
    fn aggregate_keywords() {
        assert_eq!(
            kinds("count(10) sum minof maxof avgof nearest_dist within where"),
            vec![
                Count,
                LParen,
                Number(10.0),
                RParen,
                Sum,
                MinOf,
                MaxOf,
                AvgOf,
                NearestDist,
                Within,
                Where,
                Eof
            ]
        );
    }
}
