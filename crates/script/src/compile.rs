//! Script compilation: from designer AST to specialized closures.
//!
//! This is the "declarative processing" step of the paper's reference
//! \[11\]: instead of re-interpreting the AST per entity per tick, the
//! engine compiles each script once — resolving locals to dense slots,
//! component references to typed accessors, and aggregate expressions to
//! index-backed evaluation — and then runs the compiled form for every
//! entity. The asymptotic win over naive scripts comes from the spatial
//! index; compilation removes the interpretive constant factor on top
//! (experiment E1 reports all three curves).
//!
//! Compilation is *total* for the restricted language level. Scripts that
//! use string-valued locals or other rarely-used dynamic features fall
//! back to the interpreter ([`CompileError::Unsupported`]).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use gamedb_content::{CmpOp, Value, ValueType};
use gamedb_core::{compare, Effect, EffectBuffer, EntityId, Query, World, POS};
use gamedb_spatial::Vec2;

use crate::ast::{AggKind, AssignOp, BinOp, BuiltinFn, Expr, Script, Stmt, Subject};
use crate::interp::{RuntimeError, ScriptLibrary};
use crate::types::Ty;

/// Why a script could not be compiled (it still runs interpreted).
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The script (or a callee) uses a feature outside the compilable
    /// subset.
    Unsupported(String),
    /// `call` target missing from the library.
    UnknownScript(String),
    /// `call` chain exceeded the inlining depth (recursion in full-level
    /// scripts).
    InlineDepthExceeded(String),
    /// A semantic error compilation surfaced (compile after type checking
    /// to avoid these).
    Semantic(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Unsupported(m) => write!(f, "not compilable: {m}"),
            CompileError::UnknownScript(s) => write!(f, "call to unknown script '{s}'"),
            CompileError::InlineDepthExceeded(s) => {
                write!(f, "call chain too deep to inline at '{s}' (recursive?)")
            }
            CompileError::Semantic(m) => write!(f, "semantic error: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Execution context threaded through compiled closures.
pub struct Ctx<'w, 'b> {
    world: &'w World,
    buf: &'b mut EffectBuffer,
    self_id: EntityId,
    other: Option<EntityId>,
    nums: Vec<f64>,
    bools: Vec<bool>,
    use_index: bool,
    events: Vec<String>,
}

impl Ctx<'_, '_> {
    fn subject(&self, s: Subject) -> Result<EntityId, RuntimeError> {
        match s {
            Subject::SelfEnt => Ok(self.self_id),
            Subject::Other => self
                .other
                .ok_or_else(|| RuntimeError::TypeError("'other' unbound".into())),
        }
    }

    fn self_pos(&self) -> Result<Vec2, RuntimeError> {
        self.world
            .pos(self.self_id)
            .ok_or(RuntimeError::NoPosition(self.self_id))
    }

    fn neighbors(&self, radius: f64, out: &mut Vec<EntityId>) -> Result<(), RuntimeError> {
        let center = self.self_pos()?;
        let r = radius.max(0.0) as f32;
        if self.use_index {
            self.world.within(center, r, out);
            out.retain(|&e| e != self.self_id);
        } else {
            let r2 = r * r;
            for e in self.world.entities() {
                if e != self.self_id {
                    if let Some(p) = self.world.pos(e) {
                        if p.dist2(center) <= r2 {
                            out.push(e);
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// A filter the query planner can serve from a secondary index:
/// `other.<component> <cmp> <literal>`. Extracted from the filter AST at
/// compile time so aggregate candidate sets can route through
/// [`Query::run`] — which pushes the predicate into an attribute index
/// when the world has one, exactly the paper's "scripting as queries"
/// promise.
///
/// Push-down must be observation-equivalent to the interpreted filter,
/// which reads missing numeric components as `0.0`, while `Query`
/// excludes entities lacking the component (SQL-ish NULL semantics). The
/// two agree exactly when `0 <cmp> literal` is false — so that is a
/// condition of extraction, as is the literal surviving the f64→f32
/// round-trip unchanged.
pub(crate) fn sargable_filter(filter: &Expr) -> Option<(String, CmpOp, f32)> {
    let Expr::Bin { op, lhs, rhs } = filter else {
        return None;
    };
    let cmp = match op {
        BinOp::Eq => CmpOp::Eq,
        // `!=` stays on the closure path: compare() fails NaN under Ne
        // while raw f64 `!=` passes it, and an index never serves Ne
        // anyway, so pushing it down risks divergence for zero gain.
        BinOp::Lt => CmpOp::Lt,
        BinOp::Le => CmpOp::Le,
        BinOp::Gt => CmpOp::Gt,
        BinOp::Ge => CmpOp::Ge,
        _ => return None,
    };
    let (Expr::Comp(Subject::Other, name), Expr::Num(lit)) = (lhs.as_ref(), rhs.as_ref()) else {
        return None;
    };
    // x/y are virtual position reads, not real columns.
    if name == "x" || name == "y" || name == POS {
        return None;
    }
    let lit32 = *lit as f32;
    if (lit32 as f64) != *lit {
        return None;
    }
    if compare(&Value::Float(0.0), cmp, &Value::Float(lit32)) {
        // Missing components would pass the interpreted filter (0 cmp lit
        // holds) but fail the query predicate: not equivalent, keep the
        // closure.
        return None;
    }
    Some((name.clone(), cmp, lit32))
}

type CNum = Box<dyn Fn(&mut Ctx) -> Result<f64, RuntimeError> + Send + Sync>;
type CBool = Box<dyn Fn(&mut Ctx) -> Result<bool, RuntimeError> + Send + Sync>;
type CStmt = Box<dyn Fn(&mut Ctx) -> Result<(), RuntimeError> + Send + Sync>;
type CStr = Box<dyn Fn(&mut Ctx) -> Result<String, RuntimeError> + Send + Sync>;

/// A compiled, reusable script.
pub struct CompiledScript {
    name: String,
    body: Vec<CStmt>,
    num_slots: usize,
    bool_slots: usize,
}

impl fmt::Debug for CompiledScript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledScript")
            .field("name", &self.name)
            .field("num_slots", &self.num_slots)
            .field("bool_slots", &self.bool_slots)
            .finish_non_exhaustive()
    }
}

impl CompiledScript {
    /// Script name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Run for one entity against the tick-start world. Returns emitted
    /// events.
    pub fn run(
        &self,
        world: &World,
        self_id: EntityId,
        buf: &mut EffectBuffer,
        use_index: bool,
    ) -> Result<Vec<String>, RuntimeError> {
        let mut ctx = Ctx {
            world,
            buf,
            self_id,
            other: None,
            nums: vec![0.0; self.num_slots],
            bools: vec![false; self.bool_slots],
            use_index,
            events: Vec::new(),
        };
        for s in &self.body {
            s(&mut ctx)?;
        }
        Ok(ctx.events)
    }
}

#[derive(Clone, Copy)]
enum Slot {
    Num(usize),
    Bool(usize),
}

struct Compiler<'a> {
    lib: &'a ScriptLibrary,
    schema: BTreeMap<String, ValueType>,
    scopes: Vec<BTreeMap<String, Slot>>,
    num_slots: usize,
    bool_slots: usize,
    inline_depth: usize,
}

const MAX_INLINE_DEPTH: usize = 16;

impl<'a> Compiler<'a> {
    fn lookup(&self, name: &str) -> Option<Slot> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn comp_ty(&self, comp: &str) -> Result<ValueType, CompileError> {
        if comp == "x" || comp == "y" {
            return Ok(ValueType::Float);
        }
        self.schema
            .get(comp)
            .copied()
            .ok_or_else(|| CompileError::Semantic(format!("unknown component '{comp}'")))
    }

    /// Expression type in the compiled subset.
    fn ty_of(&self, e: &Expr) -> Result<Ty, CompileError> {
        Ok(match e {
            Expr::Num(_) => Ty::Num,
            Expr::Bool(_) => Ty::Bool,
            Expr::Str(_) => Ty::Str,
            Expr::Var(name) => match self.lookup(name) {
                Some(Slot::Num(_)) => Ty::Num,
                Some(Slot::Bool(_)) => Ty::Bool,
                None => {
                    return Err(CompileError::Semantic(format!(
                        "undeclared variable '{name}'"
                    )))
                }
            },
            Expr::Comp(_, comp) => match self.comp_ty(comp)? {
                ValueType::Float | ValueType::Int => Ty::Num,
                ValueType::Bool => Ty::Bool,
                ValueType::Str => Ty::Str,
                ValueType::Vec2 => {
                    return Err(CompileError::Semantic(format!(
                        "component '{comp}' is vec2"
                    )))
                }
            },
            Expr::Unary { not, .. } => {
                if *not {
                    Ty::Bool
                } else {
                    Ty::Num
                }
            }
            Expr::Bin { op, .. } => {
                if op.is_cmp() || op.is_logic() {
                    Ty::Bool
                } else {
                    Ty::Num
                }
            }
            Expr::DistToOther
            | Expr::Builtin { .. }
            | Expr::Agg { .. }
            | Expr::NearestDist { .. } => Ty::Num,
        })
    }

    fn num(&mut self, e: &Expr) -> Result<CNum, CompileError> {
        match e {
            Expr::Num(n) => {
                let n = *n;
                Ok(Box::new(move |_| Ok(n)))
            }
            Expr::Var(name) => match self.lookup(name) {
                Some(Slot::Num(i)) => Ok(Box::new(move |ctx| Ok(ctx.nums[i]))),
                Some(Slot::Bool(_)) => Err(CompileError::Semantic(format!(
                    "variable '{name}' is bool, expected num"
                ))),
                None => Err(CompileError::Semantic(format!(
                    "undeclared variable '{name}'"
                ))),
            },
            Expr::Comp(subject, comp) => {
                let subject = *subject;
                if comp == "x" || comp == "y" {
                    let is_x = comp == "x";
                    return Ok(Box::new(move |ctx| {
                        let id = ctx.subject(subject)?;
                        let p = ctx.world.pos(id).ok_or(RuntimeError::NoPosition(id))?;
                        Ok(if is_x { p.x } else { p.y } as f64)
                    }));
                }
                match self.comp_ty(comp)? {
                    ValueType::Float | ValueType::Int => {
                        let name: Arc<str> = Arc::from(comp.as_str());
                        Ok(Box::new(move |ctx| {
                            let id = ctx.subject(subject)?;
                            Ok(ctx.world.get_number(id, &name).unwrap_or(0.0))
                        }))
                    }
                    other => Err(CompileError::Semantic(format!(
                        "component '{comp}' is {other}, expected numeric"
                    ))),
                }
            }
            Expr::Unary { neg, not, inner } => {
                if *not {
                    return Err(CompileError::Semantic("'!' yields bool".into()));
                }
                let inner = self.num(inner)?;
                if *neg {
                    Ok(Box::new(move |ctx| Ok(-inner(ctx)?)))
                } else {
                    Ok(inner)
                }
            }
            Expr::Bin { op, lhs, rhs } if !op.is_cmp() && !op.is_logic() => {
                let l = self.num(lhs)?;
                let r = self.num(rhs)?;
                let op = *op;
                Ok(Box::new(move |ctx| {
                    let (a, b) = (l(ctx)?, r(ctx)?);
                    Ok(match op {
                        BinOp::Add => a + b,
                        BinOp::Sub => a - b,
                        BinOp::Mul => a * b,
                        BinOp::Div => {
                            if b == 0.0 {
                                0.0
                            } else {
                                a / b
                            }
                        }
                        BinOp::Rem => {
                            if b == 0.0 {
                                0.0
                            } else {
                                a % b
                            }
                        }
                        _ => unreachable!(),
                    })
                }))
            }
            Expr::Bin { .. } => Err(CompileError::Semantic(
                "comparison used where num expected".into(),
            )),
            Expr::DistToOther => Ok(Box::new(move |ctx| {
                let other = ctx.subject(Subject::Other)?;
                let sp = ctx.self_pos()?;
                let op = ctx
                    .world
                    .pos(other)
                    .ok_or(RuntimeError::NoPosition(other))?;
                Ok(sp.dist(op) as f64)
            })),
            Expr::Builtin { name, args } => {
                let compiled: Result<Vec<CNum>, CompileError> =
                    args.iter().map(|a| self.num(a)).collect();
                let compiled = compiled?;
                let name = *name;
                Ok(Box::new(move |ctx| {
                    let mut vals = [0.0f64; 3];
                    for (i, c) in compiled.iter().enumerate() {
                        vals[i] = c(ctx)?;
                    }
                    Ok(match name {
                        BuiltinFn::Min => vals[0].min(vals[1]),
                        BuiltinFn::Max => vals[0].max(vals[1]),
                        BuiltinFn::Abs => vals[0].abs(),
                        BuiltinFn::Clamp => {
                            vals[0].clamp(vals[1].min(vals[2]), vals[2].max(vals[1]))
                        }
                    })
                }))
            }
            Expr::Agg {
                kind,
                radius,
                arg,
                filter,
            } => {
                let radius = self.num(radius)?;
                let arg = match arg {
                    Some(a) => Some(self.num(a)?),
                    None => None,
                };
                // A sargable filter can ride the query planner (and any
                // secondary index) instead of running per-candidate.
                let sargable = filter.as_deref().and_then(sargable_filter);
                let filter = match filter {
                    Some(f) => Some(self.boolean(f)?),
                    None => None,
                };
                let kind = *kind;
                Ok(Box::new(move |ctx| {
                    let r = radius(ctx)?;
                    let mut cands = Vec::new();
                    let mut prefiltered = false;
                    match (&sargable, ctx.use_index) {
                        (Some((comp, op, lit)), true) => {
                            let center = ctx.self_pos()?;
                            cands = Query::select()
                                .within(center, r.max(0.0) as f32)
                                .filter(comp.clone(), *op, Value::Float(*lit))
                                .excluding(ctx.self_id)
                                .run(ctx.world);
                            prefiltered = true;
                        }
                        _ => ctx.neighbors(r, &mut cands)?,
                    }
                    let saved = ctx.other;
                    let mut count = 0usize;
                    let mut sum = 0.0;
                    let mut minv = f64::INFINITY;
                    let mut maxv = f64::NEG_INFINITY;
                    for cand in cands {
                        ctx.other = Some(cand);
                        if let Some(f) = &filter {
                            if !prefiltered && !f(ctx)? {
                                continue;
                            }
                        }
                        count += 1;
                        if let Some(a) = &arg {
                            let v = a(ctx)?;
                            sum += v;
                            minv = minv.min(v);
                            maxv = maxv.max(v);
                        }
                    }
                    ctx.other = saved;
                    Ok(match kind {
                        AggKind::Count => count as f64,
                        AggKind::Sum => sum,
                        AggKind::Min => {
                            if count == 0 {
                                0.0
                            } else {
                                minv
                            }
                        }
                        AggKind::Max => {
                            if count == 0 {
                                0.0
                            } else {
                                maxv
                            }
                        }
                        AggKind::Avg => {
                            if count == 0 {
                                0.0
                            } else {
                                sum / count as f64
                            }
                        }
                    })
                }))
            }
            Expr::NearestDist { radius } => {
                let radius = self.num(radius)?;
                Ok(Box::new(move |ctx| {
                    let r = radius(ctx)?;
                    let center = ctx.self_pos()?;
                    let mut cands = Vec::new();
                    ctx.neighbors(r, &mut cands)?;
                    let mut best = r;
                    for cand in cands {
                        if let Some(p) = ctx.world.pos(cand) {
                            best = best.min(p.dist(center) as f64);
                        }
                    }
                    Ok(best)
                }))
            }
            Expr::Bool(_) | Expr::Str(_) => Err(CompileError::Semantic(
                "bool/str used where num expected".into(),
            )),
        }
    }

    /// Compile a string-valued expression into a getter. Only component
    /// refs and literals are supported (that is all comparisons need).
    fn string_get(&mut self, e: &Expr) -> Result<CStr, CompileError> {
        match e {
            Expr::Str(s) => {
                let s = s.clone();
                Ok(Box::new(move |_| Ok(s.clone())))
            }
            Expr::Comp(subject, comp) if self.comp_ty(comp)? == ValueType::Str => {
                let subject = *subject;
                let name: Arc<str> = Arc::from(comp.as_str());
                Ok(Box::new(move |ctx| {
                    let id = ctx.subject(subject)?;
                    Ok(match ctx.world.get(id, &name) {
                        Some(Value::Str(s)) => s,
                        _ => String::new(),
                    })
                }))
            }
            _ => Err(CompileError::Unsupported(
                "general string expressions (only str components and literals compile)".into(),
            )),
        }
    }

    fn boolean(&mut self, e: &Expr) -> Result<CBool, CompileError> {
        match e {
            Expr::Bool(b) => {
                let b = *b;
                Ok(Box::new(move |_| Ok(b)))
            }
            Expr::Var(name) => match self.lookup(name) {
                Some(Slot::Bool(i)) => Ok(Box::new(move |ctx| Ok(ctx.bools[i]))),
                Some(Slot::Num(_)) => Err(CompileError::Semantic(format!(
                    "variable '{name}' is num, expected bool"
                ))),
                None => Err(CompileError::Semantic(format!(
                    "undeclared variable '{name}'"
                ))),
            },
            Expr::Comp(subject, comp) if self.comp_ty(comp)? == ValueType::Bool => {
                let subject = *subject;
                let name: Arc<str> = Arc::from(comp.as_str());
                Ok(Box::new(move |ctx| {
                    let id = ctx.subject(subject)?;
                    Ok(ctx.world.get_bool(id, &name).unwrap_or(false))
                }))
            }
            Expr::Unary { not, inner, .. } if *not => {
                let inner = self.boolean(inner)?;
                Ok(Box::new(move |ctx| Ok(!inner(ctx)?)))
            }
            Expr::Bin { op, lhs, rhs } if op.is_logic() => {
                let l = self.boolean(lhs)?;
                let r = self.boolean(rhs)?;
                let is_and = *op == BinOp::And;
                Ok(Box::new(move |ctx| {
                    let lv = l(ctx)?;
                    if is_and {
                        if !lv {
                            return Ok(false);
                        }
                        r(ctx)
                    } else {
                        if lv {
                            return Ok(true);
                        }
                        r(ctx)
                    }
                }))
            }
            Expr::Bin { op, lhs, rhs } if op.is_cmp() => {
                let lt = self.ty_of(lhs)?;
                let rt = self.ty_of(rhs)?;
                if lt != rt {
                    return Err(CompileError::Semantic(format!(
                        "cannot compare {lt} with {rt}"
                    )));
                }
                let op = *op;
                match lt {
                    Ty::Num => {
                        let l = self.num(lhs)?;
                        let r = self.num(rhs)?;
                        Ok(Box::new(move |ctx| {
                            let (a, b) = (l(ctx)?, r(ctx)?);
                            Ok(match op {
                                BinOp::Eq => a == b,
                                BinOp::Ne => a != b,
                                BinOp::Lt => a < b,
                                BinOp::Le => a <= b,
                                BinOp::Gt => a > b,
                                BinOp::Ge => a >= b,
                                _ => unreachable!(),
                            })
                        }))
                    }
                    Ty::Str => {
                        let l = self.string_get(lhs)?;
                        let r = self.string_get(rhs)?;
                        Ok(Box::new(move |ctx| {
                            let (a, b) = (l(ctx)?, r(ctx)?);
                            Ok(match op {
                                BinOp::Eq => a == b,
                                BinOp::Ne => a != b,
                                BinOp::Lt => a < b,
                                BinOp::Le => a <= b,
                                BinOp::Gt => a > b,
                                BinOp::Ge => a >= b,
                                _ => unreachable!(),
                            })
                        }))
                    }
                    Ty::Bool => {
                        let l = self.boolean(lhs)?;
                        let r = self.boolean(rhs)?;
                        Ok(Box::new(move |ctx| {
                            let (a, b) = (l(ctx)?, r(ctx)?);
                            Ok(match op {
                                BinOp::Eq => a == b,
                                BinOp::Ne => a != b,
                                _ => false,
                            })
                        }))
                    }
                }
            }
            other => Err(CompileError::Semantic(format!(
                "expected bool expression, got {other:?}"
            ))),
        }
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<Vec<CStmt>, CompileError> {
        self.scopes.push(BTreeMap::new());
        let result: Result<Vec<CStmt>, CompileError> =
            stmts.iter().map(|s| self.stmt(s)).collect();
        self.scopes.pop();
        result
    }

    fn stmt(&mut self, s: &Stmt) -> Result<CStmt, CompileError> {
        match s {
            Stmt::Let { name, value } => {
                let ty = self.ty_of(value)?;
                match ty {
                    Ty::Num => {
                        let v = self.num(value)?;
                        let slot = self.num_slots;
                        self.num_slots += 1;
                        self.scopes
                            .last_mut()
                            .expect("scope stack never empty")
                            .insert(name.clone(), Slot::Num(slot));
                        Ok(Box::new(move |ctx| {
                            ctx.nums[slot] = v(ctx)?;
                            Ok(())
                        }))
                    }
                    Ty::Bool => {
                        let v = self.boolean(value)?;
                        let slot = self.bool_slots;
                        self.bool_slots += 1;
                        self.scopes
                            .last_mut()
                            .expect("scope stack never empty")
                            .insert(name.clone(), Slot::Bool(slot));
                        Ok(Box::new(move |ctx| {
                            ctx.bools[slot] = v(ctx)?;
                            Ok(())
                        }))
                    }
                    Ty::Str => Err(CompileError::Unsupported(
                        "string-valued locals do not compile (interpreter handles them)".into(),
                    )),
                }
            }
            Stmt::AssignVar { name, value } => match self.lookup(name) {
                Some(Slot::Num(slot)) => {
                    let v = self.num(value)?;
                    Ok(Box::new(move |ctx| {
                        ctx.nums[slot] = v(ctx)?;
                        Ok(())
                    }))
                }
                Some(Slot::Bool(slot)) => {
                    let v = self.boolean(value)?;
                    Ok(Box::new(move |ctx| {
                        ctx.bools[slot] = v(ctx)?;
                        Ok(())
                    }))
                }
                None => Err(CompileError::Semantic(format!(
                    "undeclared variable '{name}'"
                ))),
            },
            Stmt::AssignComp {
                subject,
                component,
                op,
                value,
            } => {
                if component == "x" || component == "y" {
                    return Err(CompileError::Semantic(
                        "position writes use move()".into(),
                    ));
                }
                let subject = *subject;
                if subject == Subject::Other && *op == AssignOp::Set {
                    return Err(CompileError::Semantic(
                        "non-commutative write to another entity".into(),
                    ));
                }
                let cty = self.comp_ty(component)?;
                let name: Arc<str> = Arc::from(component.as_str());
                match op {
                    AssignOp::Set => match cty {
                        ValueType::Float => {
                            let v = self.num(value)?;
                            Ok(Box::new(move |ctx| {
                                let id = ctx.subject(subject)?;
                                let val = v(ctx)?;
                                ctx.buf.push(
                                    id,
                                    name.to_string(),
                                    Effect::Set(Value::Float(val as f32)),
                                );
                                Ok(())
                            }))
                        }
                        ValueType::Int => {
                            let v = self.num(value)?;
                            Ok(Box::new(move |ctx| {
                                let id = ctx.subject(subject)?;
                                let val = v(ctx)?;
                                ctx.buf.push(
                                    id,
                                    name.to_string(),
                                    Effect::Set(Value::Int(val.round() as i64)),
                                );
                                Ok(())
                            }))
                        }
                        ValueType::Bool => {
                            let v = self.boolean(value)?;
                            Ok(Box::new(move |ctx| {
                                let id = ctx.subject(subject)?;
                                let val = v(ctx)?;
                                ctx.buf
                                    .push(id, name.to_string(), Effect::Set(Value::Bool(val)));
                                Ok(())
                            }))
                        }
                        ValueType::Str => {
                            let v = self.string_get(value)?;
                            Ok(Box::new(move |ctx| {
                                let id = ctx.subject(subject)?;
                                let val = v(ctx)?;
                                ctx.buf
                                    .push(id, name.to_string(), Effect::Set(Value::Str(val)));
                                Ok(())
                            }))
                        }
                        ValueType::Vec2 => Err(CompileError::Semantic(
                            "vec2 components are written with move()".into(),
                        )),
                    },
                    AssignOp::Add | AssignOp::Sub => {
                        let v = self.num(value)?;
                        let negate = *op == AssignOp::Sub;
                        Ok(Box::new(move |ctx| {
                            let id = ctx.subject(subject)?;
                            let mut val = v(ctx)?;
                            if negate {
                                val = -val;
                            }
                            ctx.buf.push(id, name.to_string(), Effect::Add(val));
                            Ok(())
                        }))
                    }
                }
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                let cond = self.boolean(cond)?;
                let then_c = self.block(then_block)?;
                let else_c = self.block(else_block)?;
                Ok(Box::new(move |ctx| {
                    let branch = if cond(ctx)? { &then_c } else { &else_c };
                    for s in branch {
                        s(ctx)?;
                    }
                    Ok(())
                }))
            }
            Stmt::Foreach { radius, body } => {
                let radius = self.num(radius)?;
                let body_c = self.block(body)?;
                Ok(Box::new(move |ctx| {
                    let r = radius(ctx)?;
                    let mut cands = Vec::new();
                    ctx.neighbors(r, &mut cands)?;
                    let saved = ctx.other;
                    for cand in cands {
                        ctx.other = Some(cand);
                        for s in &body_c {
                            s(ctx)?;
                        }
                    }
                    ctx.other = saved;
                    Ok(())
                }))
            }
            Stmt::While { cond, body } => {
                let cond = self.boolean(cond)?;
                let body_c = self.block(body)?;
                Ok(Box::new(move |ctx| {
                    let mut fuel = 100_000usize;
                    while cond(ctx)? {
                        if fuel == 0 {
                            return Err(RuntimeError::LoopFuelExhausted { limit: 100_000 });
                        }
                        fuel -= 1;
                        for s in &body_c {
                            s(ctx)?;
                        }
                    }
                    Ok(())
                }))
            }
            Stmt::Move { dx, dy } => {
                let dx = self.num(dx)?;
                let dy = self.num(dy)?;
                Ok(Box::new(move |ctx| {
                    let (x, y) = (dx(ctx)? as f32, dy(ctx)? as f32);
                    let id = ctx.self_id;
                    ctx.buf.push(id, POS, Effect::AddVec2(x, y));
                    Ok(())
                }))
            }
            Stmt::Despawn => Ok(Box::new(move |ctx| {
                let id = ctx.self_id;
                ctx.buf.despawn(id);
                Ok(())
            })),
            Stmt::Call { script } => {
                // inline the callee
                if self.inline_depth >= MAX_INLINE_DEPTH {
                    return Err(CompileError::InlineDepthExceeded(script.clone()));
                }
                let callee = self
                    .lib
                    .get(script)
                    .ok_or_else(|| CompileError::UnknownScript(script.clone()))?
                    .clone();
                self.inline_depth += 1;
                // callee sees no caller locals: fresh scope chain
                let saved_scopes = std::mem::replace(&mut self.scopes, vec![BTreeMap::new()]);
                let result = self.block(&callee.body);
                self.scopes = saved_scopes;
                self.inline_depth -= 1;
                let body_c = result?;
                Ok(Box::new(move |ctx| {
                    for s in &body_c {
                        s(ctx)?;
                    }
                    Ok(())
                }))
            }
            Stmt::Emit { event } => {
                let event = event.clone();
                Ok(Box::new(move |ctx| {
                    ctx.events.push(event.clone());
                    Ok(())
                }))
            }
        }
    }
}

/// Compile a script from a library against a world schema.
pub fn compile(
    lib: &ScriptLibrary,
    name: &str,
    world: &World,
) -> Result<CompiledScript, CompileError> {
    let script: &Script = lib
        .get(name)
        .ok_or_else(|| CompileError::UnknownScript(name.to_string()))?;
    let schema: BTreeMap<String, ValueType> = world
        .schema()
        .map(|(n, t)| (n.to_string(), t))
        .collect();
    let mut c = Compiler {
        lib,
        schema,
        scopes: vec![BTreeMap::new()],
        num_slots: 0,
        bool_slots: 0,
        inline_depth: 0,
    };
    let body = c.block(&script.body)?;
    Ok(CompiledScript {
        name: name.to_string(),
        body,
        num_slots: c.num_slots,
        bool_slots: c.bool_slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_script, ExecOptions};
    use crate::parser::parse_script;

    fn lib(sources: &[(&str, &str)]) -> ScriptLibrary {
        let mut l = ScriptLibrary::new();
        for (name, src) in sources {
            l.insert(parse_script(name, src).unwrap());
        }
        l
    }

    fn test_world(n: usize) -> World {
        let mut w = World::new();
        w.define_component("hp", ValueType::Float).unwrap();
        w.define_component("dmg", ValueType::Float).unwrap();
        w.define_component("team", ValueType::Str).unwrap();
        w.define_component("gold", ValueType::Int).unwrap();
        w.define_component("alive", ValueType::Bool).unwrap();
        for i in 0..n {
            let e = w.spawn_at(Vec2::new((i % 8) as f32 * 3.0, (i / 8) as f32 * 3.0));
            w.set_f32(e, "hp", 50.0 + i as f32).unwrap();
            w.set_f32(e, "dmg", 1.0 + (i % 3) as f32).unwrap();
            w.set(
                e,
                "team",
                Value::Str(if i % 2 == 0 { "red" } else { "blue" }.into()),
            )
            .unwrap();
            w.set(e, "gold", Value::Int(i as i64)).unwrap();
            w.set(e, "alive", Value::Bool(true)).unwrap();
        }
        w
    }

    /// Compiled execution must agree exactly with interpretation.
    fn assert_equivalent(src: &str) {
        let l = lib(&[("s", src)]);
        let w = test_world(30);
        let compiled = compile(&l, "s", &w).unwrap();
        for id in w.entity_vec() {
            let mut b1 = EffectBuffer::new();
            let mut b2 = EffectBuffer::new();
            let out_i =
                run_script(&l, "s", &w, id, &mut b1, ExecOptions::default()).unwrap();
            let out_c = compiled.run(&w, id, &mut b2, true).unwrap();
            assert_eq!(out_i.events, out_c);
            let mut w1 = w.clone();
            let mut w2 = w.clone();
            b1.apply(&mut w1).unwrap();
            b2.apply(&mut w2).unwrap();
            assert_eq!(w1.rows(), w2.rows(), "script: {src}");
        }
    }

    #[test]
    fn arithmetic_equivalence() {
        assert_equivalent("self.hp = 1 + 2 * 3 - 4 / 2 + self.dmg;");
        assert_equivalent("self.gold = 7 / 2;");
        assert_equivalent("self.hp = min(self.hp, 60) + max(1, self.dmg) + abs(0 - 3) + clamp(self.hp, 0, 55);");
    }

    #[test]
    fn aggregate_equivalence() {
        assert_equivalent("self.hp = count(7);");
        assert_equivalent("self.hp = count(7; other.team != self.team);");
        assert_equivalent("self.hp = sum(7; other.dmg; other.hp > self.hp);");
        assert_equivalent("self.hp = maxof(9; other.hp) + minof(9; other.hp) + avgof(9; other.gold);");
        assert_equivalent("self.hp = nearest_dist(12);");
    }

    #[test]
    fn sargable_extraction_rules() {
        let get = |src: &str| {
            let script = parse_script("s", &format!("self.hp = count(5; {src});")).unwrap();
            let Stmt::AssignComp { value, .. } = &script.body[0] else {
                panic!("expected assign");
            };
            let Expr::Agg { filter, .. } = value else {
                panic!("expected aggregate");
            };
            sargable_filter(filter.as_deref().unwrap())
        };
        // 0 > 40 is false: missing-as-zero and missing-excluded agree
        assert_eq!(get("other.hp > 40"), Some(("hp".into(), CmpOp::Gt, 40.0)));
        assert_eq!(get("other.gold >= 3"), Some(("gold".into(), CmpOp::Ge, 3.0)));
        // 0 < 40 is true: a missing hp would flip between the two paths
        assert_eq!(get("other.hp < 40"), None);
        // != diverges on NaN (compare() fails Ne, raw f64 != passes it)
        assert_eq!(get("other.hp != 40"), None);
        // non-literal rhs, self fields, and virtual coords stay closures
        assert_eq!(get("other.hp > self.hp"), None);
        assert_eq!(get("other.x > 4"), None);
    }

    /// Sargable aggregate filters route through the query planner; with
    /// secondary indexes on the world the compiled script must still
    /// agree with the interpreter exactly.
    #[test]
    fn aggregate_pushdown_equivalence_with_indexes() {
        use gamedb_core::IndexKind;
        for src in [
            "self.hp = count(9; other.hp > 55);",
            "self.hp = sum(9; other.dmg; other.gold >= 20);",
            "self.hp = sum(200; other.dmg; other.hp == 61);",
            "self.hp = count(9; other.hp < 55);", // not sargable: closure path
        ] {
            let l = lib(&[("s", src)]);
            let mut w = test_world(30);
            w.create_index("hp", IndexKind::Sorted).unwrap();
            w.create_index("gold", IndexKind::Sorted).unwrap();
            let compiled = compile(&l, "s", &w).unwrap();
            for id in w.entity_vec() {
                let mut b1 = EffectBuffer::new();
                let mut b2 = EffectBuffer::new();
                run_script(&l, "s", &w, id, &mut b1, ExecOptions::default()).unwrap();
                compiled.run(&w, id, &mut b2, true).unwrap();
                let mut w1 = w.clone();
                let mut w2 = w.clone();
                b1.apply(&mut w1).unwrap();
                b2.apply(&mut w2).unwrap();
                assert_eq!(w1.rows(), w2.rows(), "script: {src}");
            }
        }
    }

    #[test]
    fn control_flow_equivalence() {
        assert_equivalent(
            r#"let n = count(6);
               if n > 2 {
                 move(0 - 1, 0);
                 emit "crowded";
               } else {
                 self.hp += 1;
               }"#,
        );
        assert_equivalent(
            r#"let n = 3;
               let acc = 0;
               while n > 0 { acc = acc + n; n = n - 1; }
               self.hp = acc;"#,
        );
    }

    #[test]
    fn foreach_equivalence() {
        assert_equivalent(
            r#"foreach within (6) {
                 if other.team != self.team && dist(other) < 5 {
                   other.hp -= self.dmg;
                 }
               }"#,
        );
    }

    #[test]
    fn bool_and_str_components() {
        assert_equivalent("self.alive = self.hp > 0;");
        assert_equivalent(r#"if self.team == "red" { self.hp += 1; } "#);
        assert_equivalent(r#"self.team = "green";"#);
        assert_equivalent("if self.alive == true { despawn; }");
    }

    #[test]
    fn call_inlining() {
        let l = lib(&[
            ("main", "call helper; call helper;"),
            ("helper", "self.hp += 1;"),
        ]);
        let w = test_world(4);
        let compiled = compile(&l, "main", &w).unwrap();
        let id = w.entity_vec()[0];
        let mut buf = EffectBuffer::new();
        compiled.run(&w, id, &mut buf, true).unwrap();
        let mut w2 = w.clone();
        buf.apply(&mut w2).unwrap();
        assert_eq!(w2.get_f32(id, "hp"), Some(52.0));
    }

    #[test]
    fn recursion_fails_to_inline() {
        let l = lib(&[("r", "call r;")]);
        let w = test_world(1);
        assert!(matches!(
            compile(&l, "r", &w),
            Err(CompileError::InlineDepthExceeded(_))
        ));
    }

    #[test]
    fn string_locals_unsupported() {
        let l = lib(&[("s", r#"let t = self.team; self.hp += 1;"#)]);
        let w = test_world(1);
        assert!(matches!(
            compile(&l, "s", &w),
            Err(CompileError::Unsupported(_))
        ));
    }

    #[test]
    fn unknown_component_is_semantic_error() {
        let l = lib(&[("s", "self.mana += 1;")]);
        let w = test_world(1);
        assert!(matches!(
            compile(&l, "s", &w),
            Err(CompileError::Semantic(_))
        ));
    }

    #[test]
    fn compiled_naive_mode_matches_indexed() {
        let l = lib(&[("s", "self.hp = count(9) + sum(9; other.dmg);")]);
        let w = test_world(40);
        let compiled = compile(&l, "s", &w).unwrap();
        for id in w.entity_vec() {
            let mut b1 = EffectBuffer::new();
            let mut b2 = EffectBuffer::new();
            compiled.run(&w, id, &mut b1, true).unwrap();
            compiled.run(&w, id, &mut b2, false).unwrap();
            let mut w1 = w.clone();
            let mut w2 = w.clone();
            b1.apply(&mut w1).unwrap();
            b2.apply(&mut w2).unwrap();
            assert_eq!(w1.get_f32(id, "hp"), w2.get_f32(id, "hp"));
        }
    }
}
