//! Property tests for the consistency machinery:
//! * every safe executor is serially equivalent on wealth (the auditor
//!   stays clean) under random action batches;
//! * the racy loop never *destroys* more than it *creates* silently — the
//!   auditor's drift always accounts for the discrepancy vs serial;
//! * dynamic bubble shard placement never splits a bubble across nodes
//!   and is deterministic.

use gamedb_core::EntityId;
use gamedb_spatial::Vec2;
use gamedb_sync::{
    arena_world, partition, Action, AssignPolicy, Auditor, BubbleConfig, BubbleExecutor,
    Executor, LockingExecutor, OptimisticExecutor, SerialExecutor, ShardManager,
};
use proptest::prelude::*;

/// Random positions, then random actions among the first `n` entities.
fn batch_strategy(n: usize) -> impl Strategy<Value = Vec<(u8, usize, usize, i64)>> {
    proptest::collection::vec(
        (0u8..4, 0..n, 0..n, 1i64..80),
        1..40,
    )
}

fn to_actions(raw: &[(u8, usize, usize, i64)], ids: &[EntityId]) -> Vec<Action> {
    raw.iter()
        .filter(|(_, a, b, _)| a != b)
        .map(|&(kind, a, b, amt)| match kind {
            0 => Action::Attack { attacker: ids[a], target: ids[b] },
            1 => Action::Trade { from: ids[a], to: ids[b], amount: amt },
            2 => Action::Heal { healer: ids[a], target: ids[b] },
            _ => Action::Move {
                who: ids[a],
                to: Vec2::new(b as f32, amt as f32),
                speed: 2.0,
            },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No safe executor ever creates or destroys wealth, overdraws an
    /// account, or teleports anyone — on any batch.
    #[test]
    fn safe_executors_always_audit_clean(
        raw in batch_strategy(24),
        positions in proptest::collection::vec((-50.0f32..50.0, -50.0f32..50.0), 24..25),
    ) {
        let execs: Vec<Box<dyn Executor>> = vec![
            Box::new(SerialExecutor),
            Box::new(LockingExecutor),
            Box::new(OptimisticExecutor::default()),
            Box::new(BubbleExecutor::default()),
        ];
        for exec in execs {
            let (mut w, ids) = arena_world(24, |i| {
                Vec2::new(positions[i].0, positions[i].1)
            });
            let batch = gamedb_sync::collapse_moves(to_actions(&raw, &ids));
            let mut auditor = Auditor::new(2.0);
            let before = auditor.snapshot(&w);
            exec.execute(&mut w, &batch);
            let report = auditor.audit(&before, &w);
            prop_assert!(
                report.clean(),
                "{} violated invariants: {report:?}",
                exec.name()
            );
        }
    }

    /// All safe executors agree with the serial baseline on total wealth
    /// (they may differ in serialization order, so per-entity state can
    /// legitimately differ on conflicting trades — the conserved quantity
    /// is what matters).
    #[test]
    fn executors_agree_on_wealth(
        raw in batch_strategy(16),
    ) {
        let run = |exec: &dyn Executor| {
            let (mut w, ids) = arena_world(16, |i| Vec2::new(i as f32 * 4.0, 0.0));
            let batch = to_actions(&raw, &ids);
            exec.execute(&mut w, &batch);
            gamedb_sync::wealth(&w)
        };
        let reference = run(&SerialExecutor);
        prop_assert_eq!(run(&LockingExecutor), reference);
        prop_assert_eq!(run(&OptimisticExecutor::default()), reference);
        prop_assert_eq!(run(&BubbleExecutor::default()), reference);
    }

    /// Dynamic bubble placement never splits a causality bubble across
    /// server nodes, and the same world places identically twice.
    #[test]
    fn shard_placement_respects_bubbles(
        positions in proptest::collection::vec((-400.0f32..400.0, -400.0f32..400.0), 4..64),
        nodes in 1usize..8,
    ) {
        let (w, _) = arena_world(positions.len(), |i| {
            Vec2::new(positions[i].0, positions[i].1)
        });
        let cfg = BubbleConfig::default();
        let mgr = ShardManager::new(
            nodes,
            AssignPolicy::DynamicBubbles { cfg, max_overload: 1.5 },
        );
        let a1 = mgr.assign(&w);
        let a2 = mgr.assign(&w);
        prop_assert_eq!(&a1.node_of, &a2.node_of, "placement must be deterministic");
        let part = partition(&w, &cfg);
        for bubble in &part.bubbles {
            let owners: std::collections::HashSet<usize> =
                bubble.iter().map(|e| a1.node_of[e]).collect();
            prop_assert_eq!(owners.len(), 1, "bubble split across nodes");
        }
        // every positioned entity is placed
        prop_assert_eq!(a1.node_of.len(), positions.len());
    }
}
