//! Distributed tick execution over a sharded cluster.
//!
//! [`crate::shard`] decides *where* entities live; this module executes a
//! tick the way the resulting cluster would: each node runs the actions
//! whose footprint it owns entirely (its local batch) with no
//! coordination, and every action spanning nodes becomes a **distributed
//! transaction** — executed in a serial cross-node phase and billed a
//! two-phase-commit round-trip. The output equals a single-server tick
//! (the simulation shares one world; the *cost model* is what changes),
//! so experiments can put a price on cross-node fractions: the reason the
//! paper's games go to such lengths to "dynamically partition their
//! databases" is exactly that a 2PC round trip costs ~milliseconds while
//! a local action costs ~microseconds.

use gamedb_core::{EffectBuffer, EntityId, World};

use crate::action::Action;
use crate::shard::{NodeId, ShardAssignment};
use crate::view::OverlayView;

/// Cost model for the simulated cluster, in microseconds of simulated
/// wall time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterCost {
    /// Executing one action locally.
    pub local_action_us: f64,
    /// One cross-node (2PC) commit round trip.
    pub distributed_commit_us: f64,
    /// Shipping one handoff byte between nodes (segment-streamed
    /// entity migration — see [`crate::router::ShardRouter`]).
    pub handoff_byte_us: f64,
}

impl Default for ClusterCost {
    fn default() -> Self {
        ClusterCost {
            local_action_us: 2.0,
            // a LAN round trip plus two log forces: three orders of
            // magnitude over a local action, which is the whole story
            distributed_commit_us: 2000.0,
            // ~1 Gbit/s effective: 8 ns per byte
            handoff_byte_us: 0.008,
        }
    }
}

/// What one cluster tick did and what it would have cost.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClusterStats {
    /// Actions executed entirely on one node, per node.
    pub local_per_node: Vec<usize>,
    /// Actions whose footprint spanned nodes (each billed one 2PC).
    pub distributed: usize,
    /// Handoff bytes billed onto this tick
    /// ([`ClusterExecutor::bill_handoff`]) — migration is no longer
    /// free by-value movement.
    pub handoff_bytes: usize,
    /// Simulated wall time: slowest node's local phase + the serial
    /// distributed phase (+ billed handoff shipping).
    pub simulated_us: f64,
    /// Simulated wall time had every action run on one server.
    pub single_server_us: f64,
}

impl ClusterStats {
    /// Simulated speedup of the cluster over one server. Values below
    /// 1.0 mean the cross-node traffic ate the parallelism — the paper's
    /// motivation for partitioning along interaction boundaries.
    pub fn speedup(&self) -> f64 {
        if self.simulated_us == 0.0 {
            1.0
        } else {
            self.single_server_us / self.simulated_us
        }
    }
}

/// Executes tick batches against a shard assignment.
#[derive(Debug, Clone, Default)]
pub struct ClusterExecutor {
    pub cost: ClusterCost,
}

impl ClusterExecutor {
    pub fn new(cost: ClusterCost) -> Self {
        ClusterExecutor { cost }
    }

    /// Split a batch into per-node local batches and the distributed
    /// residue, under `assignment`.
    pub fn route(
        &self,
        assignment: &ShardAssignment,
        actions: &[Action],
    ) -> (Vec<Vec<usize>>, Vec<usize>) {
        let mut local: Vec<Vec<usize>> = vec![Vec::new(); assignment.nodes];
        let mut distributed = Vec::new();
        'outer: for (i, a) in actions.iter().enumerate() {
            let mut fp = a.read_set();
            fp.extend(a.write_set());
            let mut owner: Option<NodeId> = None;
            for e in fp {
                match (owner, assignment.node_of.get(&e)) {
                    // unplaced entity (no position): treat as distributed
                    (_, None) => {
                        distributed.push(i);
                        continue 'outer;
                    }
                    (None, Some(&n)) => owner = Some(n),
                    (Some(prev), Some(&n)) if prev != n => {
                        distributed.push(i);
                        continue 'outer;
                    }
                    _ => {}
                }
            }
            match owner {
                Some(n) => local[n].push(i),
                None => distributed.push(i),
            }
        }
        (local, distributed)
    }

    /// Execute one tick. Each node's local batch runs serially within the
    /// node against an overlay view (nodes own disjoint entities, so
    /// their effect buffers merge conflict-free); the distributed residue
    /// runs afterwards, serially, each action billed a 2PC.
    pub fn execute(
        &self,
        world: &mut World,
        assignment: &ShardAssignment,
        actions: &[Action],
    ) -> ClusterStats {
        let (local, distributed) = self.route(assignment, actions);

        let mut merged = EffectBuffer::new();
        for node_batch in &local {
            let mut view = OverlayView::new(world);
            for &i in node_batch {
                let mut tmp = EffectBuffer::new();
                actions[i].execute(&view, &mut tmp);
                view.absorb(&tmp);
                merged.merge(tmp);
            }
        }
        merged.apply(world).expect("action effects are well-typed");

        for &i in &distributed {
            let mut buf = EffectBuffer::new();
            actions[i].execute(world, &mut buf);
            buf.apply(world).expect("action effects are well-typed");
        }

        let local_counts: Vec<usize> = local.iter().map(Vec::len).collect();
        let slowest = local_counts.iter().copied().max().unwrap_or(0);
        let simulated_us = slowest as f64 * self.cost.local_action_us
            + distributed.len() as f64
                * (self.cost.local_action_us + self.cost.distributed_commit_us);
        let single_server_us = actions.len() as f64 * self.cost.local_action_us;
        ClusterStats {
            local_per_node: local_counts,
            distributed: distributed.len(),
            handoff_bytes: 0,
            simulated_us,
            single_server_us,
        }
    }

    /// Price a tick's shard handoff onto its stats: `bytes` is what the
    /// [`crate::router::ShardRouter`] shipped this tick
    /// (`HandoffReport::total_bytes`). A single server never pays this,
    /// so it lands on `simulated_us` only — migration stops being free
    /// exactly where the cluster pays for it.
    pub fn bill_handoff(&self, stats: &mut ClusterStats, bytes: usize) {
        stats.handoff_bytes += bytes;
        stats.simulated_us += bytes as f64 * self.cost.handoff_byte_us;
    }
}

/// Convenience: who owns an entity under an assignment (for tests).
pub fn owner_of(assignment: &ShardAssignment, e: EntityId) -> Option<NodeId> {
    assignment.node_of.get(&e).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::arena_world;
    use crate::executor::{Executor, SerialExecutor};
    use crate::shard::{AssignPolicy, ShardManager};
    use crate::bubbles::BubbleConfig;
    use gamedb_spatial::Vec2;

    /// Four squads far apart: dynamic placement gives one node per squad.
    fn squads() -> (World, Vec<EntityId>, ShardAssignment) {
        let (w, ids) = arena_world(32, |i| {
            let squad = i / 8;
            Vec2::new(squad as f32 * 6000.0 + (i % 8) as f32 * 2.0, 0.0)
        });
        let mgr = ShardManager::new(
            4,
            AssignPolicy::DynamicBubbles {
                cfg: BubbleConfig::default(),
                max_overload: 1.5,
            },
        );
        let a = mgr.assign(&w);
        (w, ids, a)
    }

    fn squad_attacks(ids: &[EntityId]) -> Vec<Action> {
        (0..32)
            .filter(|i| i % 8 != 7)
            .map(|i| Action::Attack { attacker: ids[i], target: ids[i + 1] })
            .collect()
    }

    #[test]
    fn routing_keeps_squad_actions_local() {
        let (_, ids, a) = squads();
        let exec = ClusterExecutor::default();
        let (local, distributed) = exec.route(&a, &squad_attacks(&ids));
        assert!(distributed.is_empty());
        assert_eq!(local.iter().map(Vec::len).sum::<usize>(), 28);
        for node_batch in &local {
            assert_eq!(node_batch.len(), 7, "7 intra-squad attacks per node");
        }
    }

    #[test]
    fn cross_squad_trade_goes_distributed() {
        let (_, ids, a) = squads();
        let exec = ClusterExecutor::default();
        let batch = vec![
            Action::Attack { attacker: ids[0], target: ids[1] },
            Action::Trade { from: ids[0], to: ids[31], amount: 5 },
        ];
        let (local, distributed) = exec.route(&a, &batch);
        assert_eq!(distributed, vec![1]);
        assert_eq!(local.iter().map(Vec::len).sum::<usize>(), 1);
    }

    #[test]
    fn cluster_matches_serial_result() {
        let (mut w1, ids, a) = squads();
        let (mut w2, ids2, _) = squads();
        let mut batch = squad_attacks(&ids);
        batch.push(Action::Trade { from: ids[0], to: ids[31], amount: 9 });
        let mut batch2 = squad_attacks(&ids2);
        batch2.push(Action::Trade { from: ids2[0], to: ids2[31], amount: 9 });

        let stats = ClusterExecutor::default().execute(&mut w1, &a, &batch);
        SerialExecutor.execute(&mut w2, &batch2);
        assert_eq!(w1.rows(), w2.rows());
        assert_eq!(stats.distributed, 1);
    }

    #[test]
    fn local_actions_within_a_node_serialize() {
        // two trades out of one account on the same node must not overdraw
        let (mut w, ids, a) = squads();
        let batch = vec![
            Action::Trade { from: ids[0], to: ids[1], amount: 60 },
            Action::Trade { from: ids[0], to: ids[2], amount: 60 },
        ];
        ClusterExecutor::default().execute(&mut w, &a, &batch);
        assert_eq!(w.get_i64(ids[0], "gold"), Some(0));
        assert_eq!(
            w.get_i64(ids[1], "gold").unwrap() + w.get_i64(ids[2], "gold").unwrap(),
            300
        );
    }

    #[test]
    fn cost_model_punishes_cross_node_traffic() {
        let (mut w1, ids, a) = squads();
        let local_stats =
            ClusterExecutor::default().execute(&mut w1, &a, &squad_attacks(&ids));
        assert!(local_stats.speedup() > 2.0, "local tick parallelizes 4 ways");

        // all-cross-node batch: every action is a 2PC; slower than one server
        let (mut w2, ids2, a2) = squads();
        let cross: Vec<Action> = (0..8)
            .map(|i| Action::Trade { from: ids2[i], to: ids2[24 + i], amount: 1 })
            .collect();
        let cross_stats = ClusterExecutor::default().execute(&mut w2, &a2, &cross);
        assert_eq!(cross_stats.distributed, 8);
        assert!(
            cross_stats.speedup() < 0.1,
            "2PC per action must be far slower than one server: {}",
            cross_stats.speedup()
        );
    }

    #[test]
    fn handoff_billing_prices_migration_onto_the_tick() {
        let (mut w, ids, a) = squads();
        let exec = ClusterExecutor::default();
        let mut stats = exec.execute(&mut w, &a, &squad_attacks(&ids));
        let before = stats.simulated_us;
        // a 10 KB handoff (the router's per-tick total) stops being free
        exec.bill_handoff(&mut stats, 10_000);
        assert_eq!(stats.handoff_bytes, 10_000);
        let billed = stats.simulated_us - before;
        assert!((billed - 10_000.0 * exec.cost.handoff_byte_us).abs() < 1e-9);
        // ... but the single-server baseline never pays it
        assert!(stats.single_server_us > 0.0);
        assert_eq!(
            stats.single_server_us,
            squad_attacks(&ids).len() as f64 * exec.cost.local_action_us
        );
    }

    #[test]
    fn empty_batch_and_owner_lookup() {
        let (mut w, ids, a) = squads();
        let stats = ClusterExecutor::default().execute(&mut w, &a, &[]);
        assert_eq!(stats.distributed, 0);
        assert_eq!(stats.simulated_us, 0.0);
        assert_eq!(stats.speedup(), 1.0);
        assert!(owner_of(&a, ids[0]).is_some());
    }
}
