//! # gamedb-sync
//!
//! MMO consistency machinery from *Database Research in Computer Games*
//! (SIGMOD 2009): player actions as transactions, executors ranging from
//! the global-lock baseline through two-phase locking and optimistic
//! concurrency to **causality bubbles** (the EVE-style motion-predicted
//! partitioning the paper highlights), plus **aggro management** (role-
//! based combat without exact spatial fidelity) and **replication** with
//! weak consistency levels.
//!
//! ## Contents
//!
//! * [`action`] — actions with read/write footprints ([`Action`]).
//! * [`executor`] — [`SerialExecutor`], [`LockingExecutor`],
//!   [`OptimisticExecutor`] behind the [`Executor`] trait.
//! * [`bubbles`] — motion-predicted partitioning ([`BubbleExecutor`]).
//! * [`aggro`] — threat tables and targeting policies ([`AggroTable`]).
//! * [`replication`] — consistency levels and divergence metrics
//!   ([`Replicator`]).
//! * [`shard`] — multi-server dynamic map partitioning
//!   ([`ShardManager`]).
//! * [`router`] — cross-shard change shipping: segment-streamed entity
//!   handoff and warm standbys ([`ShardRouter`]).
//! * [`cluster`] — distributed tick execution over the shard placement,
//!   with a 2PC cost model for cross-node actions ([`ClusterExecutor`]).
//! * [`invariant`] — dupe/speed-hack exploit models and the invariant
//!   auditor that catches them ([`Auditor`], [`RacyExecutor`]).
//! * [`view`] — read views for action execution; the overlay that gives
//!   bubbles serial-within-bubble semantics ([`OverlayView`]).
//! * [`workload`] — reproducible MMO workload generators ([`Workload`]).
//!
//! ## Tick semantics
//!
//! All wave-parallel executors give every action in a tick a read view of
//! the tick-start state and apply writes through commutative effects, so
//! conflict-free groups may execute in any order (and on any thread) with
//! identical results — the same state–effect discipline as the engine's
//! script executor.

pub mod action;
pub mod aggro;
pub mod bubbles;
pub mod cluster;
pub mod executor;
pub mod invariant;
pub(crate) mod metrics;
pub mod replication;
pub mod router;
pub mod shard;
pub mod view;
pub mod workload;

pub use action::{arena_world, Action};
pub use aggro::{AggroTable, AggroTargeting, CandidateView, NearestTargeting, Role, Targeting};
pub use bubbles::{partition, BubbleConfig, BubbleExecutor, Partition, UnionFind};
pub use cluster::{owner_of, ClusterCost, ClusterExecutor, ClusterStats};
pub use executor::{ExecStats, Executor, LockingExecutor, OptimisticExecutor, SerialExecutor};
pub use invariant::{
    collapse_moves, inject_speed_hacks, wealth, AuditReport, Auditor, Baseline, RacyExecutor,
};
pub use replication::{
    ConsistencyLevel, DeltaSegment, Divergence, Interest, Replica, Replicator,
};
pub use router::{node_oracle, HandoffReport, ShardRouter};
pub use shard::{step_flock, AssignPolicy, NodeId, ShardAssignment, ShardManager, ShardStats};
pub use view::{OverlayView, StateView};
pub use workload::{fleet_world, step_fleet, ActionMix, Workload, WorkloadConfig};
