//! Multi-server dynamic map partitioning.
//!
//! The paper: games "predict which players may issue conflicting
//! interactions with one another and dynamically partition their
//! databases to reduce server load." A single causality bubble never
//! needs to talk to another bubble within the tick horizon, so bubbles
//! are also the natural unit of *placement*: this module assigns bubbles
//! to simulated server nodes and rebalances as players move.
//!
//! Three placement policies are compared (experiment E12):
//!
//! * [`AssignPolicy::StaticZones`] — the classic zoned MMO server: the
//!   map is cut into a fixed grid of rectangles, each owned by a node.
//!   Cheap and stable, but a popular in-game event overloads one node.
//! * [`AssignPolicy::HashEntities`] — entity-id hashing. Perfectly
//!   balanced but oblivious to locality, so almost every interaction
//!   becomes a cross-node (distributed) transaction.
//! * [`AssignPolicy::DynamicBubbles`] — the paper's technique: bubbles
//!   are bin-packed onto nodes by load, with *stickiness* (a bubble
//!   prefers the node already owning most of its entities) so rebalancing
//!   only pays migration cost when imbalance actually demands it.

use std::collections::HashMap;

use gamedb_core::{EntityId, World};
use gamedb_spatial::Vec2;

use crate::action::Action;
use crate::bubbles::{partition, BubbleConfig, Partition};

/// Identifier of a simulated server node.
pub type NodeId = usize;

/// How entities are placed onto server nodes.
///
/// **Unpositioned entities** (global flags, quest state — anything
/// without a `pos`) are owned by their hash **home node**
/// (`id % nodes`) under *every* policy: a spatial rule cannot place
/// them, but leaving them unowned silently exempted every transaction
/// touching them from [`ShardAssignment::cross_node_fraction`] and from
/// handoff accounting. The home node is stable across ticks, so they
/// never migrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AssignPolicy {
    /// Fixed rectangular zones over a `map_size`² map, dealt to nodes
    /// round-robin in row-major order.
    StaticZones { cols: usize, rows: usize, map_size: f32 },
    /// `entity id % nodes` — locality-oblivious baseline.
    HashEntities,
    /// Causality-bubble bin packing with sticky placement. A bubble only
    /// moves off its preferred (majority-owner) node when that node's
    /// projected load exceeds `ideal · max_overload`.
    DynamicBubbles { cfg: BubbleConfig, max_overload: f32 },
}

/// Per-tick shard placement: which node owns each entity.
#[derive(Debug, Clone, Default)]
pub struct ShardAssignment {
    pub node_of: HashMap<EntityId, NodeId>,
    pub nodes: usize,
}

impl ShardAssignment {
    /// Entities owned by each node.
    pub fn load_per_node(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.nodes];
        for &n in self.node_of.values() {
            load[n] += 1;
        }
        load
    }

    /// Peak-to-ideal load ratio (1.0 = perfectly balanced). The paper's
    /// "server load" figure of merit: how much hotter the hottest node
    /// runs than a perfectly spread world would.
    pub fn imbalance(&self) -> f32 {
        let load = self.load_per_node();
        let max = load.iter().copied().max().unwrap_or(0) as f32;
        let ideal = self.node_of.len() as f32 / self.nodes.max(1) as f32;
        if ideal == 0.0 {
            1.0
        } else {
            max / ideal
        }
    }

    /// Number of entities whose owner changed relative to `prev`
    /// (the handoff cost a real cluster pays in serialization + network).
    pub fn migrations_from(&self, prev: &ShardAssignment) -> usize {
        self.node_of
            .iter()
            .filter(|(e, n)| prev.node_of.get(e).is_some_and(|p| p != *n))
            .count()
    }

    /// Fraction of `actions` whose footprint spans more than one node —
    /// each of those is a distributed transaction in a real deployment.
    pub fn cross_node_fraction(&self, actions: &[Action]) -> f32 {
        if actions.is_empty() {
            return 0.0;
        }
        let crossing = actions
            .iter()
            .filter(|a| {
                let mut fp = a.read_set();
                fp.extend(a.write_set());
                let mut owner: Option<NodeId> = None;
                for e in fp {
                    match (owner, self.node_of.get(&e)) {
                        (_, None) => {}
                        (None, Some(&n)) => owner = Some(n),
                        (Some(prev), Some(&n)) if prev != n => return true,
                        _ => {}
                    }
                }
                false
            })
            .count();
        crossing as f32 / actions.len() as f32
    }
}

/// Rolling statistics of a shard simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// Ticks simulated.
    pub ticks: usize,
    /// Mean peak-to-ideal load ratio across ticks.
    pub mean_imbalance: f32,
    /// Worst peak-to-ideal load ratio seen on any tick.
    pub max_imbalance: f32,
    /// Mean fraction of actions spanning nodes.
    pub mean_cross_node: f32,
    /// Total entities handed between nodes.
    pub total_migrations: usize,
}

/// Assigns entities to nodes tick by tick and accumulates [`ShardStats`].
#[derive(Debug, Clone)]
pub struct ShardManager {
    pub policy: AssignPolicy,
    pub nodes: usize,
    prev: Option<ShardAssignment>,
    // accumulators
    ticks: usize,
    sum_imbalance: f64,
    max_imbalance: f32,
    sum_cross: f64,
    migrations: usize,
    /// Instrumentation handles ([`ShardManager::attach_metrics`]).
    metrics: Option<crate::metrics::ShardMetrics>,
}

impl ShardManager {
    pub fn new(nodes: usize, policy: AssignPolicy) -> Self {
        assert!(nodes > 0, "need at least one server node");
        ShardManager {
            policy,
            nodes,
            prev: None,
            ticks: 0,
            sum_imbalance: 0.0,
            max_imbalance: 0.0,
            sum_cross: 0.0,
            migrations: 0,
            metrics: None,
        }
    }

    /// Attach a metrics registry: placement rounds, node handoffs, and
    /// the latest imbalance / cross-node readings are reported into
    /// `registry` from here on. Purely observational.
    pub fn attach_metrics(&mut self, registry: &gamedb_metrics::MetricsRegistry) {
        self.metrics = Some(crate::metrics::ShardMetrics::new(registry));
    }

    /// Detach the registry attached by
    /// [`ShardManager::attach_metrics`].
    pub fn detach_metrics(&mut self) {
        self.metrics = None;
    }

    /// Compute this tick's placement for the current world state.
    /// Every live entity receives an owner: positioned entities per the
    /// policy, unpositioned entities at their hash home node (see
    /// [`AssignPolicy`]).
    pub fn assign(&self, world: &World) -> ShardAssignment {
        let mut assignment = match self.policy {
            AssignPolicy::StaticZones { cols, rows, map_size } => {
                self.assign_zones(world, cols, rows, map_size)
            }
            AssignPolicy::HashEntities => {
                let node_of = world
                    .entities()
                    .map(|e| (e, e.index() as usize % self.nodes))
                    .collect();
                ShardAssignment { node_of, nodes: self.nodes }
            }
            AssignPolicy::DynamicBubbles { cfg, max_overload } => {
                self.assign_bubbles(world, &cfg, max_overload)
            }
        };
        // Unpositioned entities fall through every spatial rule; pin
        // them to their stable home node so no policy leaves live
        // state unowned.
        for e in world.entities() {
            if world.pos(e).is_none() {
                assignment
                    .node_of
                    .entry(e)
                    .or_insert(e.index() as usize % self.nodes);
            }
        }
        assignment
    }

    fn assign_zones(
        &self,
        world: &World,
        cols: usize,
        rows: usize,
        map_size: f32,
    ) -> ShardAssignment {
        let node_of = world
            .entities()
            .filter_map(|e| world.pos(e).map(|p| (e, p)))
            .map(|(e, p)| {
                let cx = zone_coord(p.x, map_size, cols);
                let cy = zone_coord(p.y, map_size, rows);
                (e, (cy * cols + cx) % self.nodes)
            })
            .collect();
        ShardAssignment { node_of, nodes: self.nodes }
    }

    fn assign_bubbles(
        &self,
        world: &World,
        cfg: &BubbleConfig,
        max_overload: f32,
    ) -> ShardAssignment {
        let part: Partition = partition(world, cfg);
        let total: usize = part.bubbles.iter().map(Vec::len).sum();
        let ideal = total as f32 / self.nodes as f32;
        let cap = (ideal * max_overload).max(1.0);

        // Largest bubbles first: classic first-fit-decreasing bin packing,
        // except each bubble first tries its sticky node.
        let mut order: Vec<usize> = (0..part.bubbles.len()).collect();
        order.sort_by_key(|&b| std::cmp::Reverse(part.bubbles[b].len()));

        let mut load = vec![0usize; self.nodes];
        let mut node_of = HashMap::with_capacity(total);
        for b in order {
            let members = &part.bubbles[b];
            // The cap is compared in f32: `cap as usize` floored a
            // fractional cap (max_overload 1.1 over ideal 6 ⇒ 6.6
            // became 6), spilling sticky bubbles off their preferred
            // node earlier than the documented "projected load exceeds
            // ideal · max_overload" rule.
            let target = self
                .sticky_node(members)
                .filter(|&n| (load[n] + members.len()) as f32 <= cap)
                .unwrap_or_else(|| {
                    // least-loaded node
                    (0..self.nodes).min_by_key(|&n| load[n]).expect("nodes > 0")
                });
            load[target] += members.len();
            for &e in members {
                node_of.insert(e, target);
            }
        }
        ShardAssignment { node_of, nodes: self.nodes }
    }

    /// Node owning the plurality of `members` last tick, if any. The
    /// previous placement may name nodes this manager no longer has —
    /// a manager rebuilt after failover or scale-down and seeded with
    /// the old placement ([`ShardManager::seed_placement`]) — so votes
    /// for out-of-range nodes are discarded rather than indexed
    /// (which used to panic).
    fn sticky_node(&self, members: &[EntityId]) -> Option<NodeId> {
        let prev = self.prev.as_ref()?;
        let mut votes = vec![0usize; self.nodes];
        for e in members {
            if let Some(&n) = prev.node_of.get(e) {
                if n < self.nodes {
                    votes[n] += 1;
                }
            }
        }
        let (best, &count) = votes.iter().enumerate().max_by_key(|(_, &c)| c)?;
        (count > 0).then_some(best)
    }

    /// Seed the manager with a placement computed elsewhere — the
    /// failover path: a manager rebuilt on a surviving node (possibly
    /// with a different node count) adopts the last known placement so
    /// stickiness keeps working across the rebuild instead of
    /// re-shuffling the whole world on its first tick. Owners the new
    /// topology no longer has simply stop voting (see
    /// [`ShardManager::sticky_node`]).
    pub fn seed_placement(&mut self, prev: ShardAssignment) {
        self.prev = Some(prev);
    }

    /// Place this tick, score it against the action batch, accumulate.
    pub fn tick(&mut self, world: &World, actions: &[Action]) -> ShardAssignment {
        let assignment = self.assign(world);
        let imb = assignment.imbalance();
        self.sum_imbalance += imb as f64;
        self.max_imbalance = self.max_imbalance.max(imb);
        let cross = assignment.cross_node_fraction(actions);
        self.sum_cross += cross as f64;
        let mut handoffs = 0usize;
        if let Some(prev) = &self.prev {
            handoffs = assignment.migrations_from(prev);
            self.migrations += handoffs;
        }
        self.ticks += 1;
        if let Some(m) = &self.metrics {
            m.ticks.inc();
            m.handoffs.add(handoffs as u64);
            m.imbalance_pct.set((imb * 100.0) as i64);
            m.cross_node_permille.set((cross * 1000.0) as i64);
        }
        self.prev = Some(assignment.clone());
        assignment
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> ShardStats {
        let t = self.ticks.max(1) as f64;
        ShardStats {
            ticks: self.ticks,
            mean_imbalance: (self.sum_imbalance / t) as f32,
            max_imbalance: self.max_imbalance,
            mean_cross_node: (self.sum_cross / t) as f32,
            total_migrations: self.migrations,
        }
    }
}

fn zone_coord(v: f32, map_size: f32, cells: usize) -> usize {
    let cell = (v / map_size * cells as f32).floor();
    (cell.max(0.0) as usize).min(cells - 1)
}

/// Drive every player toward `event` by `speed` per tick — the "everyone
/// piles into the world event" scenario that melts a zoned server.
pub fn step_flock(world: &mut World, players: &[EntityId], event: Vec2, speed: f32) {
    for &e in players {
        let Some(p) = world.pos(e) else { continue };
        let delta = event - p;
        let d = delta.len();
        let step = if d <= speed || d == 0.0 { delta } else { delta * (speed / d) };
        world.set_pos(e, p + step).expect("live player");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::arena_world;
    use crate::workload::{Workload, WorkloadConfig};

    fn grid_world(n: usize, spacing: f32) -> (World, Vec<EntityId>) {
        let side = (n as f32).sqrt().ceil() as usize;
        arena_world(n, |i| {
            Vec2::new((i % side) as f32 * spacing, (i / side) as f32 * spacing)
        })
    }

    #[test]
    fn static_zones_partition_by_position() {
        let (w, ids) = arena_world(4, |i| match i {
            0 => Vec2::new(10.0, 10.0),
            1 => Vec2::new(910.0, 10.0),
            2 => Vec2::new(10.0, 910.0),
            _ => Vec2::new(910.0, 910.0),
        });
        let mgr = ShardManager::new(
            4,
            AssignPolicy::StaticZones { cols: 2, rows: 2, map_size: 1000.0 },
        );
        let a = mgr.assign(&w);
        let nodes: Vec<NodeId> = ids.iter().map(|e| a.node_of[e]).collect();
        assert_eq!(nodes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn zone_coord_clamps_out_of_range_positions() {
        assert_eq!(zone_coord(-5.0, 100.0, 4), 0);
        assert_eq!(zone_coord(250.0, 100.0, 4), 3);
        assert_eq!(zone_coord(99.9, 100.0, 4), 3);
        assert_eq!(zone_coord(0.0, 100.0, 4), 0);
    }

    #[test]
    fn hash_assignment_is_balanced() {
        let (w, _) = grid_world(400, 5.0);
        let mgr = ShardManager::new(4, AssignPolicy::HashEntities);
        let a = mgr.assign(&w);
        assert!(a.imbalance() < 1.05, "imbalance={}", a.imbalance());
    }

    #[test]
    fn hash_assignment_crosses_nodes_constantly() {
        let (w, ids) = grid_world(64, 2.0);
        let mgr = ShardManager::new(8, AssignPolicy::HashEntities);
        let a = mgr.assign(&w);
        // neighbor attacks: id i -> i+1 lands on a different node by
        // construction (consecutive indices mod 8 differ)
        let batch: Vec<Action> = (0..63)
            .map(|i| Action::Attack { attacker: ids[i], target: ids[i + 1] })
            .collect();
        assert_eq!(a.cross_node_fraction(&batch), 1.0);
    }

    #[test]
    fn dynamic_bubbles_keep_interactions_local() {
        // four well-separated squads: bubbles == squads, so squad-internal
        // attacks never cross nodes
        let (w, ids) = arena_world(32, |i| {
            let squad = i / 8;
            Vec2::new(squad as f32 * 5000.0 + (i % 8) as f32 * 2.0, 0.0)
        });
        let mgr = ShardManager::new(
            4,
            AssignPolicy::DynamicBubbles { cfg: BubbleConfig::default(), max_overload: 1.5 },
        );
        let a = mgr.assign(&w);
        let batch: Vec<Action> = (0..32)
            .filter(|i| i % 8 != 7)
            .map(|i| Action::Attack { attacker: ids[i], target: ids[i + 1] })
            .collect();
        assert_eq!(a.cross_node_fraction(&batch), 0.0);
        assert!(a.imbalance() <= 1.01, "four equal bubbles over four nodes");
    }

    #[test]
    fn bubble_never_splits_across_nodes() {
        let (w, _) = arena_world(48, |i| {
            let squad = i / 12;
            Vec2::new(squad as f32 * 9000.0 + (i % 12) as f32 * 1.5, 0.0)
        });
        let cfg = BubbleConfig::default();
        let mgr = ShardManager::new(
            3,
            AssignPolicy::DynamicBubbles { cfg, max_overload: 2.0 },
        );
        let a = mgr.assign(&w);
        let part = partition(&w, &cfg);
        for bubble in &part.bubbles {
            let owners: std::collections::HashSet<NodeId> =
                bubble.iter().map(|e| a.node_of[e]).collect();
            assert_eq!(owners.len(), 1, "bubble split across {owners:?}");
        }
    }

    #[test]
    fn stickiness_avoids_gratuitous_migration() {
        let (w, _) = arena_world(40, |i| {
            let squad = i / 10;
            Vec2::new(squad as f32 * 8000.0 + (i % 10) as f32 * 2.0, 0.0)
        });
        let mut mgr = ShardManager::new(
            4,
            AssignPolicy::DynamicBubbles { cfg: BubbleConfig::default(), max_overload: 1.5 },
        );
        mgr.tick(&w, &[]);
        // identical world next tick: nothing should move
        mgr.tick(&w, &[]);
        assert_eq!(mgr.stats().total_migrations, 0);
    }

    /// ISSUE-3 satellite: `DynamicBubbles` placement is a pure function
    /// of world state + previous placement — two runs from identical
    /// seeds produce identical node assignments tick for tick (no
    /// HashMap-iteration or thread-scheduling nondeterminism), which is
    /// what makes the E12 experiments and any future failover replay
    /// reproducible.
    #[test]
    fn dynamic_bubbles_placement_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<Vec<(EntityId, NodeId)>> {
            let cfg = WorkloadConfig {
                players: 120,
                map_size: 400.0,
                seed,
                ..Default::default()
            };
            let mut wl = Workload::new(cfg);
            let mut mgr = ShardManager::new(
                5,
                AssignPolicy::DynamicBubbles {
                    cfg: BubbleConfig::default(),
                    max_overload: 1.3,
                },
            );
            let mut placements = Vec::new();
            for _ in 0..8 {
                let batch = wl.next_batch();
                let assignment = mgr.tick(&wl.world, &batch);
                let mut sorted: Vec<(EntityId, NodeId)> =
                    assignment.node_of.iter().map(|(&e, &n)| (e, n)).collect();
                sorted.sort_unstable();
                placements.push(sorted);
                // evolve the world so later ticks exercise stickiness
                let event = Vec2::new(200.0, 200.0);
                let players = wl.players.clone();
                step_flock(&mut wl.world, &players, event, 4.0);
            }
            placements
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "identical seeds must place identically");
        assert_ne!(
            a,
            run(43),
            "a different seed must actually reshuffle the world (sanity)"
        );
    }

    #[test]
    fn flock_overloads_static_zone() {
        // everyone walks to one corner event: the owning zone's node ends
        // up with every player while dynamic placement keeps spreading
        // bubbles across nodes as long as separate bubbles exist
        let cfg = WorkloadConfig {
            players: 256,
            hotspot_fraction: 0.0,
            map_size: 1000.0,
            seed: 9,
            ..Default::default()
        };
        let mut wl = Workload::new(cfg);
        let players = wl.players.clone();
        let event = Vec2::new(100.0, 100.0);

        let mut zoned = ShardManager::new(
            4,
            AssignPolicy::StaticZones { cols: 2, rows: 2, map_size: 1000.0 },
        );
        for _ in 0..60 {
            step_flock(&mut wl.world, &players, event, 20.0);
            let batch = wl.next_batch();
            zoned.tick(&wl.world, &batch);
        }
        let z = zoned.stats();
        // all 256 players in node 0's zone => imbalance ~ 4.0 at the end
        assert!(z.max_imbalance > 3.5, "zoned max_imbalance={}", z.max_imbalance);
    }

    #[test]
    fn migrations_accumulate_when_players_cross_zones() {
        let (mut w, ids) = arena_world(10, |_| Vec2::new(490.0, 500.0));
        let mut mgr = ShardManager::new(
            2,
            AssignPolicy::StaticZones { cols: 2, rows: 1, map_size: 1000.0 },
        );
        mgr.tick(&w, &[]);
        for &e in &ids {
            w.set_pos(e, Vec2::new(510.0, 500.0)).unwrap();
        }
        mgr.tick(&w, &[]);
        assert_eq!(mgr.stats().total_migrations, 10);
    }

    #[test]
    fn stats_mean_over_ticks() {
        let (w, _) = grid_world(16, 3.0);
        let mut mgr = ShardManager::new(2, AssignPolicy::HashEntities);
        for _ in 0..5 {
            mgr.tick(&w, &[]);
        }
        let s = mgr.stats();
        assert_eq!(s.ticks, 5);
        assert!((s.mean_imbalance - 1.0).abs() < 0.01);
        assert_eq!(s.total_migrations, 0, "hash placement is stable");
    }

    #[test]
    fn single_node_takes_everything() {
        let (w, _) = grid_world(25, 4.0);
        for policy in [
            AssignPolicy::HashEntities,
            AssignPolicy::StaticZones { cols: 3, rows: 3, map_size: 100.0 },
            AssignPolicy::DynamicBubbles { cfg: BubbleConfig::default(), max_overload: 1.2 },
        ] {
            let mgr = ShardManager::new(1, policy);
            let a = mgr.assign(&w);
            assert_eq!(a.load_per_node(), vec![25]);
            assert_eq!(a.imbalance(), 1.0);
        }
    }

    #[test]
    fn overload_cap_spills_sticky_bubbles() {
        // one big squad and one small squad; after the big squad's node is
        // saturated, tightening the cap forces the small bubble elsewhere
        // even though stickiness would prefer the same node
        let (w, _) = arena_world(12, |i| {
            if i < 10 {
                Vec2::new(i as f32 * 1.5, 0.0)
            } else {
                Vec2::new(9000.0 + i as f32 * 1.5, 0.0)
            }
        });
        let mut mgr = ShardManager::new(
            2,
            AssignPolicy::DynamicBubbles { cfg: BubbleConfig::default(), max_overload: 1.1 },
        );
        let a1 = mgr.tick(&w, &[]);
        // ideal = 6/node, cap = 6.6: the 10-bubble overflows its fair
        // share but cannot split — it owns one node alone, the 2-bubble
        // lands on the other
        let mut loads = a1.load_per_node();
        loads.sort_unstable();
        assert_eq!(loads, vec![2, 10]);
        // placement is stable on the next identical tick
        mgr.tick(&w, &[]);
        assert_eq!(mgr.stats().total_migrations, 0);
    }

    /// ISSUE-8 satellite: the overload cap is compared in f32. The old
    /// `cap as usize` floored a fractional cap before comparing; this
    /// pins the documented rule — a sticky bubble stays while its
    /// node's projected load does not *exceed* `ideal · max_overload`
    /// — from both sides of a fractional boundary (ideal 6: cap 6.6
    /// keeps a projected load of 6 and spills 7; cap 7.2 keeps 7).
    #[test]
    fn fractional_cap_boundary_holds_sticky_bubbles() {
        // bubbles of 6, 5, 1 over 2 nodes: ideal 6. The singleton is
        // seeded onto the 6-bubble's node, so its sticky projection is
        // exactly 7 — one past the ideal, between cap 6.6 and cap 7.2.
        let (w, ids) = arena_world(12, |i| {
            let (squad, member) = match i {
                0..=5 => (0, i),
                6..=10 => (1, i - 6),
                _ => (2, 0),
            };
            Vec2::new(squad as f32 * 9000.0 + member as f32 * 1.5, 0.0)
        });
        let run = |max_overload: f32| {
            let mut mgr = ShardManager::new(
                2,
                AssignPolicy::DynamicBubbles { cfg: BubbleConfig::default(), max_overload },
            );
            let mut node_of = HashMap::new();
            for (i, &e) in ids.iter().enumerate() {
                node_of.insert(e, if (6..=10).contains(&i) { 1 } else { 0 });
            }
            mgr.seed_placement(ShardAssignment { node_of, nodes: 2 });
            mgr.tick(&w, &[]);
            mgr.stats().total_migrations
        };
        // cap 6.6: the singleton's sticky node projects 6 + 1 = 7 >
        // 6.6, so it spills to the other node (one migration)
        assert_eq!(run(1.1), 1, "projected 7 exceeds cap 6.6: spills");
        // cap 7.2: the same projected 7 ≤ 7.2 — the bubble is held
        assert_eq!(run(1.2), 0, "projected 7 within cap 7.2: sticky");
    }

    /// ISSUE-8 satellite: a manager rebuilt with fewer nodes (failover
    /// or scale-down) and seeded with the prior placement must not
    /// index vote tallies with out-of-range node ids — stickiness just
    /// loses the votes of nodes that no longer exist.
    #[test]
    fn node_count_shrink_with_seeded_placement_does_not_panic() {
        let (w, _) = arena_world(40, |i| {
            let squad = i / 10;
            Vec2::new(squad as f32 * 8000.0 + (i % 10) as f32 * 2.0, 0.0)
        });
        let policy = AssignPolicy::DynamicBubbles {
            cfg: BubbleConfig::default(),
            max_overload: 1.5,
        };
        let mut before = ShardManager::new(4, policy);
        let old = before.tick(&w, &[]);
        assert!(old.node_of.values().any(|&n| n >= 2), "4-node placement uses high ids");
        // nodes 2 and 3 died: rebuild on the survivors, seeded with the
        // last known placement (the failover path)
        let mut after = ShardManager::new(2, policy);
        after.seed_placement(old.clone());
        let rebalanced = after.tick(&w, &[]); // used to panic in sticky_node
        assert_eq!(rebalanced.nodes, 2);
        assert!(rebalanced.node_of.values().all(|&n| n < 2));
        assert_eq!(rebalanced.node_of.len(), 40, "every entity re-placed");
        // bubbles whose majority owner survived stay put (stickiness
        // still works for in-range owners)
        for (e, &n) in &rebalanced.node_of {
            if let Some(&p) = old.node_of.get(e) {
                if p < 2 {
                    assert_eq!(n, p, "surviving owner keeps its bubble");
                }
            }
        }
    }

    /// ISSUE-8 satellite: unpositioned entities (global flags, quest
    /// state) get an owner under **every** policy — their stable hash
    /// home node — instead of silently falling out of spatial
    /// placements, which undercounted cross-node transactions touching
    /// them.
    #[test]
    fn unpositioned_entities_own_a_home_node_under_every_policy() {
        // wide spacing: every grid entity is its own bubble, and the
        // 3x3 zone grid gets one entity per cell, so positioned
        // entities provably spread across all three nodes
        let (mut w, ids) = grid_world(9, 4000.0);
        let flag = w.spawn(); // no position: a global quest flag
        w.set(flag, "gold", gamedb_content::Value::Int(500)).unwrap();
        let home = flag.index() as usize % 3;
        for policy in [
            AssignPolicy::HashEntities,
            AssignPolicy::StaticZones { cols: 3, rows: 3, map_size: 12000.0 },
            AssignPolicy::DynamicBubbles { cfg: BubbleConfig::default(), max_overload: 1.3 },
        ] {
            let mgr = ShardManager::new(3, policy);
            let a = mgr.assign(&w);
            assert_eq!(
                a.node_of.len(),
                10,
                "every live entity owned under {policy:?}"
            );
            assert_eq!(a.node_of[&flag], home, "stable hash home under {policy:?}");
            // a transaction touching the flag and an entity owned
            // elsewhere is a distributed transaction — and now counts
            let other = ids
                .iter()
                .find(|&&e| a.node_of[&e] != home)
                .copied()
                .expect("some entity on another node");
            let batch = vec![Action::Trade { from: other, to: flag, amount: 1 }];
            assert_eq!(
                a.cross_node_fraction(&batch),
                1.0,
                "flag-touching transaction must count under {policy:?}"
            );
        }
    }

    #[test]
    fn empty_world_assignment() {
        let w = World::new();
        let mgr = ShardManager::new(3, AssignPolicy::HashEntities);
        let a = mgr.assign(&w);
        assert!(a.node_of.is_empty());
        assert_eq!(a.imbalance(), 1.0);
        assert_eq!(a.cross_node_fraction(&[]), 0.0);
    }

    #[test]
    fn step_flock_converges_on_event() {
        let (mut w, ids) = grid_world(9, 100.0);
        let event = Vec2::new(50.0, 50.0);
        for _ in 0..100 {
            step_flock(&mut w, &ids, event, 10.0);
        }
        for &e in &ids {
            assert!(w.pos(e).unwrap().dist(event) < 1.0);
        }
    }
}
