//! Exploit detection: the invariants a consistent MMO must keep.
//!
//! The paper: "concurrency violations in scripting languages are one of
//! the largest sources of bugs and exploits in MMOs" — duplication
//! ("dupe") exploits, speed hacks, and item black holes \[6\]. This module
//! provides
//!
//! * [`RacyExecutor`] — a faithful model of the *buggy* server loop those
//!   exploits target: every action reads tick-start state and writes
//!   absolute values back (read-modify-write without any concurrency
//!   control). Concurrent trades out of one account duplicate gold;
//!   concurrent pickups of one item duplicate loot; concurrent attacks
//!   lose damage.
//! * [`Auditor`] — the invariant checker an operations team runs against
//!   every tick: wealth conservation (no gold created or destroyed),
//!   no-overdraft, and per-tick movement bounds (speed-hack detection).
//!
//! Experiment E13 runs the same workload through the racy loop and each
//! safe executor and counts what the auditor catches.

use std::collections::HashMap;

use gamedb_content::{CmpOp, Value};
use gamedb_core::{
    AggFn, ChangeOp, ComponentId, CoreError, EntityId, Query, TapId, ViewId, World, POS_ID,
};
use gamedb_spatial::Vec2;

use crate::action::Action;
use crate::executor::{ExecStats, Executor};

/// Total wealth of a world: live entities' `gold` plus live items'
/// `value`. Every built-in action conserves this sum — trades move gold,
/// pickups convert an item's `value` into the holder's `gold`.
pub fn wealth(world: &World) -> i64 {
    world
        .entities()
        .map(|e| world.get_i64(e, "gold").unwrap_or(0) + world.get_i64(e, "value").unwrap_or(0))
        .sum()
}

/// The overdraft invariant as a declarative query.
fn overdraft_query() -> Query {
    Query::select().filter("gold", CmpOp::Lt, Value::Int(0))
}

/// Pre-tick snapshot the auditor compares against.
#[derive(Debug, Clone)]
pub struct Baseline {
    wealth: i64,
    positions: HashMap<EntityId, Vec2>,
}

/// One tick's audit findings.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AuditReport {
    /// Wealth after minus wealth before. Positive = a dupe created value
    /// out of thin air; negative = a black hole destroyed it. Zero for
    /// every serially-equivalent executor.
    pub wealth_drift: i64,
    /// Entities holding negative gold after the tick.
    pub overdrafts: usize,
    /// Entities that moved farther than the speed limit allows in one
    /// tick (speed hacks, or a broken movement integrator).
    pub speed_violations: usize,
}

impl AuditReport {
    /// True when the tick kept every invariant.
    pub fn clean(&self) -> bool {
        self.wealth_drift == 0 && self.overdrafts == 0 && self.speed_violations == 0
    }
}

/// Tick-by-tick invariant checker.
///
/// ```
/// # use gamedb_sync::{arena_world, Action, Auditor, Executor, SerialExecutor};
/// # use gamedb_spatial::Vec2;
/// let (mut world, ids) = arena_world(2, |i| Vec2::new(i as f32 * 3.0, 0.0));
/// let mut auditor = Auditor::new(2.5);
/// let before = auditor.snapshot(&world);
/// SerialExecutor.execute(&mut world, &[Action::Trade { from: ids[0], to: ids[1], amount: 30 }]);
/// let report = auditor.audit(&before, &world);
/// assert!(report.clean());
/// ```
#[derive(Debug, Clone)]
pub struct Auditor {
    /// Maximum distance any entity may legitimately cover in one tick.
    pub max_step: f32,
    /// Standing `gold < 0` view when subscribed (see
    /// [`Auditor::subscribe_overdrafts`]).
    overdraft_view: Option<ViewId>,
    /// Change-stream tap shared by the stream-driven audits (see
    /// [`Auditor::subscribe_movement`] / [`Auditor::subscribe_wealth`]).
    move_tap: Option<TapId>,
    /// Movement audit reads the stream instead of a position snapshot.
    movement_streamed: bool,
    /// Wealth drift folds from the stream instead of two full scans.
    wealth_streamed: bool,
    /// Global `Sum` operator views over `gold` and `value` when
    /// subscribed (see [`Auditor::subscribe_wealth_views`]): the
    /// differential view engine maintains total wealth, and the auditor
    /// reads it in O(1).
    wealth_views: Option<(ViewId, ViewId)>,
    ticks: usize,
    dirty_ticks: usize,
    total_drift: i64,
    total_overdrafts: usize,
    total_speed_violations: usize,
}

impl Auditor {
    pub fn new(max_step: f32) -> Self {
        Auditor {
            max_step,
            overdraft_view: None,
            move_tap: None,
            movement_streamed: false,
            wealth_streamed: false,
            wealth_views: None,
            ticks: 0,
            dirty_ticks: 0,
            total_drift: 0,
            total_overdrafts: 0,
            total_speed_violations: 0,
        }
    }

    /// Switch the overdraft check from a per-tick requery to a standing
    /// view: the world maintains the `gold < 0` result set incrementally
    /// from its write deltas, so [`Auditor::audit`] reads the
    /// materialized rows in O(overdrafts) with no scan and no index
    /// required. The auditor is tied to `world` from here on; auditing a
    /// different world falls back to the query. Call
    /// [`Auditor::audit_tick`] (or `world.refresh_views()` before
    /// `audit`) so the view reflects the tick being audited.
    ///
    /// After a crash recovery the view still exists (the persistence
    /// catalog re-materialized it), so a freshly constructed auditor
    /// re-attaches to it here instead of registering a duplicate.
    pub fn subscribe_overdrafts(&mut self, world: &mut World) {
        if self.overdraft_view.is_none() {
            let query = overdraft_query();
            self.overdraft_view = Some(
                world
                    .find_view(&query)
                    .unwrap_or_else(|| world.register_view(query)),
            );
        }
    }

    /// Switch the speed-hack check from a full-world position snapshot
    /// to the change stream: a tap captures every `pos` write, so the
    /// per-tick audit inspects only the entities that actually moved
    /// (O(movement), not O(entities)) and [`Auditor::snapshot_tick`]
    /// stops building the position map entirely. Pair with
    /// [`Auditor::snapshot_tick`] + [`Auditor::audit_tick`] — the tap
    /// segment is anchored at snapshot time and consumed by the audit.
    pub fn subscribe_movement(&mut self, world: &mut World) {
        if self.move_tap.is_none() {
            self.move_tap = Some(world.attach_tap());
        }
        self.movement_streamed = true;
    }

    /// Switch wealth conservation from two full scans per tick to a
    /// stream fold: `gold`/`value` writes carry their `old → new`
    /// values, and — the piece that used to force the scan —
    /// [`ChangeOp::Despawned`] now carries the dropped row image, so a
    /// death's wealth loss folds incrementally too. The per-tick drift
    /// is the telescoped sum of record deltas anchored at
    /// [`Auditor::snapshot_tick`]; no O(entities) pass remains in the
    /// wealth audit (equivalence to the scanning auditor is pinned by
    /// test).
    pub fn subscribe_wealth(&mut self, world: &mut World) {
        if self.move_tap.is_none() {
            self.move_tap = Some(world.attach_tap());
        }
        self.wealth_streamed = true;
    }

    /// Re-home the wealth *baseline* onto the differential view engine:
    /// two global `Sum` group-aggregate views (over `gold` and `value`)
    /// keep the world's total wealth maintained inside the operator
    /// tree, so [`Auditor::snapshot`] and the drift check read it in
    /// O(1) — no tap, no per-record fold, no scan at either end of the
    /// tick. Whenever the views are stale (pending deltas) or belong to
    /// another world, the wealth read falls back to the full scan, so
    /// the audit verdict never depends on refresh discipline.
    ///
    /// After a crash recovery the operator trees still exist (the
    /// persistence catalog re-registers them at their slots), so a
    /// freshly constructed auditor re-attaches here instead of
    /// registering duplicates.
    pub fn subscribe_wealth_views(&mut self, world: &mut World) -> Result<(), CoreError> {
        if self.wealth_views.is_none() {
            let gold_plan = Query::select().into_aggregate_plan(AggFn::Sum("gold".into()))?;
            let value_plan = Query::select().into_aggregate_plan(AggFn::Sum("value".into()))?;
            let gold = match world.find_plan_view(&gold_plan) {
                Some(v) => v,
                None => world.register_view_plan(gold_plan)?,
            };
            let value = match world.find_plan_view(&value_plan) {
                Some(v) => v,
                None => world.register_view_plan(value_plan)?,
            };
            self.wealth_views = Some((gold, value));
        }
        Ok(())
    }

    /// Total wealth as this auditor reads it: the maintained global
    /// `Sum` views when subscribed and current, else the full scan.
    /// (The global group vanishes when no entity carries the column —
    /// an absent group reads as zero wealth, same as the scan.)
    fn wealth_of(&self, world: &World) -> i64 {
        match self.wealth_views {
            Some((gold, value))
                if world.has_view(gold)
                    && world.has_view(value)
                    && world.pending_deltas() == 0 =>
            {
                (world.view_group_value(gold, None).unwrap_or(0.0)
                    + world.view_group_value(value, None).unwrap_or(0.0)) as i64
            }
            _ => wealth(world),
        }
    }

    /// Release the stream tap (movement and wealth audits revert to
    /// scans). Call when retiring the auditor — an abandoned tap pins
    /// the world's change-stream window forever.
    pub fn unsubscribe_movement(&mut self, world: &mut World) {
        if let Some(tap) = self.move_tap.take() {
            world.detach_tap(tap);
        }
        self.movement_streamed = false;
        self.wealth_streamed = false;
    }

    /// [`Auditor::audit`] preceded by a view refresh — the per-tick
    /// entry point for callers driving the world outside the tick
    /// executor (action executors never bump the tick counter). With a
    /// movement tap subscribed, the speed check reads the stream
    /// segment accumulated since [`Auditor::snapshot_tick`]: each
    /// entity's first recorded pre-move position stands in for the
    /// baseline, and only moved entities are inspected.
    pub fn audit_tick(&mut self, before: &Baseline, world: &mut World) -> AuditReport {
        world.refresh_views();
        let mut streamed_speed: Option<usize> = None;
        let mut streamed_drift: Option<i64> = None;
        if let Some(tap) = self.move_tap {
            let eps = 1e-3;
            // the wealth-bearing columns, as interned ids (worlds
            // without them simply contribute nothing)
            let gold = world.component_id("gold");
            let value = world.component_id("value");
            let bears_wealth =
                |c: ComponentId| Some(c) == gold || Some(c) == value;
            let as_gold = |v: &Value| match v {
                Value::Int(x) => *x,
                _ => 0,
            };
            let mut first_old: HashMap<EntityId, Option<Vec2>> = HashMap::new();
            let mut drift = 0i64;
            for change in world.tap_pending(tap) {
                match &change.op {
                    ChangeOp::Set {
                        id,
                        component,
                        old,
                        new,
                    } => {
                        if *component == POS_ID && self.movement_streamed {
                            first_old.entry(*id).or_insert(match old {
                                Some(Value::Vec2(x, y)) => Some(Vec2::new(*x, *y)),
                                _ => None,
                            });
                        }
                        if self.wealth_streamed && bears_wealth(*component) {
                            drift += as_gold(new) - old.as_ref().map(&as_gold).unwrap_or(0);
                        }
                    }
                    ChangeOp::Removed { component, old, .. }
                        if self.wealth_streamed && bears_wealth(*component) =>
                    {
                        drift -= as_gold(old);
                    }
                    // the dropped row image the record now carries is
                    // exactly what lets a death fold incrementally
                    ChangeOp::Despawned { row, .. } if self.wealth_streamed => {
                        for (component, v) in row {
                            if bears_wealth(*component) {
                                drift -= as_gold(v);
                            }
                        }
                    }
                    _ => {}
                }
            }
            if self.movement_streamed {
                let max_step = self.max_step;
                streamed_speed = Some(
                    first_old
                        .iter()
                        .filter(|(e, then)| {
                            let (Some(now), Some(then)) = (world.pos(**e), then) else {
                                return false;
                            };
                            now.dist(*then) > max_step + eps
                        })
                        .count(),
                );
            }
            if self.wealth_streamed {
                streamed_drift = Some(drift);
            }
            world.ack_tap(tap);
        }
        self.audit_with(before, world, streamed_speed, streamed_drift)
    }

    /// Capture the pre-tick state the post-tick check needs.
    pub fn snapshot(&self, world: &World) -> Baseline {
        Baseline {
            wealth: self.wealth_of(world),
            positions: world
                .entities()
                .filter_map(|e| world.pos(e).map(|p| (e, p)))
                .collect(),
        }
    }

    /// [`Auditor::snapshot`] for a movement-subscribed auditor: anchors
    /// the tap segment here and skips the O(world) position map (the
    /// stream carries each mover's pre-move position instead). Falls
    /// back to the full snapshot when no tap is subscribed.
    pub fn snapshot_tick(&mut self, world: &mut World) -> Baseline {
        match self.move_tap {
            Some(tap) => {
                world.ack_tap(tap);
                Baseline {
                    // a wealth subscription folds drift from the stream:
                    // no baseline scan either
                    wealth: if self.wealth_streamed { 0 } else { self.wealth_of(world) },
                    positions: if self.movement_streamed {
                        HashMap::new()
                    } else {
                        world
                            .entities()
                            .filter_map(|e| world.pos(e).map(|p| (e, p)))
                            .collect()
                    },
                }
            }
            None => self.snapshot(world),
        }
    }

    /// Check the post-tick world against the pre-tick baseline.
    ///
    /// The overdraft check is a declarative query (`gold < 0`), so an
    /// operations team running the auditor against a large shard can
    /// make it O(overdrafts) instead of O(entities) by creating a sorted
    /// secondary index on `gold` — the planner picks it up without any
    /// change here. With [`Auditor::subscribe_overdrafts`] it drops the
    /// per-tick requery entirely and reads the standing view's
    /// materialized rows (falling back to the query whenever the view is
    /// stale or belongs to another world).
    pub fn audit(&mut self, before: &Baseline, world: &World) -> AuditReport {
        self.audit_with(before, world, None, None)
    }

    fn audit_with(
        &mut self,
        before: &Baseline,
        world: &World,
        streamed_speed: Option<usize>,
        streamed_drift: Option<i64>,
    ) -> AuditReport {
        let eps = 1e-3;
        let overdrafts = match self.overdraft_view {
            Some(v) if world.has_view(v) && world.pending_deltas() == 0 => world.view_count(v),
            _ => overdraft_query().count(world),
        };
        let speed_violations = streamed_speed.unwrap_or_else(|| {
            world
                .entities()
                .filter(|&e| {
                    let (Some(now), Some(&then)) = (world.pos(e), before.positions.get(&e))
                    else {
                        return false;
                    };
                    now.dist(then) > self.max_step + eps
                })
                .count()
        });
        let report = AuditReport {
            wealth_drift: streamed_drift
                .unwrap_or_else(|| self.wealth_of(world) - before.wealth),
            overdrafts,
            speed_violations,
        };
        self.ticks += 1;
        if !report.clean() {
            self.dirty_ticks += 1;
        }
        self.total_drift += report.wealth_drift.abs();
        self.total_overdrafts += report.overdrafts;
        self.total_speed_violations += report.speed_violations;
        report
    }

    /// Ticks audited so far.
    pub fn ticks(&self) -> usize {
        self.ticks
    }

    /// Ticks with at least one violation.
    pub fn dirty_ticks(&self) -> usize {
        self.dirty_ticks
    }

    /// Sum of |wealth drift| across audited ticks (gold conjured or
    /// destroyed, in absolute gold units).
    pub fn total_drift(&self) -> i64 {
        self.total_drift
    }

    /// Total overdraft sightings across ticks.
    pub fn total_overdrafts(&self) -> usize {
        self.total_overdrafts
    }

    /// Total speed-limit violations across ticks.
    pub fn total_speed_violations(&self) -> usize {
        self.total_speed_violations
    }
}

/// The buggy server loop real exploits target.
///
/// All actions read the tick-start state, then write **absolute** values
/// back in submission order — the read-modify-write interleaving a
/// scripting language without concurrency control produces when two
/// handlers run "simultaneously". No schedule, no validation, no waves.
///
/// The resulting anomalies, on conflicting actions:
/// * two `Trade`s out of one account → only one debit survives, both
///   credits land: **gold duplicated**;
/// * two `Pickup`s of one item → both see it live: **loot duplicated**;
/// * two `Attack`s on one target → one damage write lost;
/// * `Trade` into an account that also traded out → a credit lost.
#[derive(Debug, Default, Clone, Copy)]
pub struct RacyExecutor;

impl Executor for RacyExecutor {
    fn name(&self) -> &'static str {
        "racy"
    }

    fn execute(&self, world: &mut World, actions: &[Action]) -> ExecStats {
        let start = std::time::Instant::now();
        // Read phase: every action captures what it needs from the
        // tick-start state.
        enum Write {
            Gold(EntityId, i64),
            Hp(EntityId, f32),
            Pos(EntityId, Vec2),
            Despawn(EntityId),
        }
        let mut writes: Vec<Write> = Vec::with_capacity(actions.len() * 2);
        for a in actions {
            match *a {
                Action::Move { who, to, speed } => {
                    let Some(p) = world.pos(who) else { continue };
                    let delta = to - p;
                    let d = delta.len();
                    let step = if d <= speed || d == 0.0 { delta } else { delta * (speed / d) };
                    writes.push(Write::Pos(who, p + step));
                }
                Action::Attack { attacker, target } => {
                    if !world.is_live(attacker) || !world.is_live(target) {
                        continue;
                    }
                    let dmg = world.get_f32(attacker, "dmg").unwrap_or(1.0);
                    let hp = world.get_f32(target, "hp").unwrap_or(0.0);
                    writes.push(Write::Hp(target, hp - dmg));
                }
                Action::Trade { from, to, amount } => {
                    if !world.is_live(from) || !world.is_live(to) || from == to {
                        continue;
                    }
                    let from_bal = world.get_i64(from, "gold").unwrap_or(0);
                    let to_bal = world.get_i64(to, "gold").unwrap_or(0);
                    let amt = amount.clamp(0, from_bal.max(0));
                    if amt == 0 {
                        continue;
                    }
                    writes.push(Write::Gold(from, from_bal - amt));
                    writes.push(Write::Gold(to, to_bal + amt));
                }
                Action::Heal { healer, target } => {
                    if !world.is_live(healer) || !world.is_live(target) {
                        continue;
                    }
                    let power = world.get_f32(healer, "power").unwrap_or(5.0);
                    let hp = world.get_f32(target, "hp").unwrap_or(0.0);
                    writes.push(Write::Hp(target, hp + power));
                }
                Action::Pickup { player, item } => {
                    if !world.is_live(player) || !world.is_live(item) {
                        continue;
                    }
                    let gold = world.get_i64(player, "gold").unwrap_or(0);
                    let value = world.get_i64(item, "value").unwrap_or(0);
                    writes.push(Write::Gold(player, gold + value));
                    writes.push(Write::Despawn(item));
                }
            }
        }
        // Write phase: absolute values land in submission order; later
        // writers silently clobber earlier ones.
        for w in writes {
            match w {
                Write::Gold(e, v) => {
                    if world.is_live(e) {
                        world.set(e, "gold", gamedb_content::Value::Int(v)).expect("gold is Int");
                    }
                }
                Write::Hp(e, v) => {
                    if world.is_live(e) {
                        world.set_f32(e, "hp", v).expect("hp is Float");
                    }
                }
                Write::Pos(e, p) => {
                    if world.is_live(e) {
                        world.set_pos(e, p).expect("entity is live");
                    }
                }
                Write::Despawn(e) => {
                    world.despawn(e);
                }
            }
        }
        ExecStats {
            submitted: actions.len(),
            executed: actions.len(),
            rounds: 1,
            aborts: 0,
            micros: start.elapsed().as_micros(),
            max_group: actions.len(),
            critical_path: 1,
        }
    }
}

/// Turn `fraction` of the batch's `Move` actions into speed hacks: the
/// "client" claims a speed `factor`× the legitimate one. Returns how many
/// were injected (deterministic: every ⌈1/fraction⌉-th move).
pub fn inject_speed_hacks(batch: &mut [Action], fraction: f32, factor: f32) -> usize {
    if fraction <= 0.0 {
        return 0;
    }
    let stride = (1.0 / fraction).ceil().max(1.0) as usize;
    let mut seen = 0usize;
    let mut injected = 0usize;
    for a in batch.iter_mut() {
        if let Action::Move { speed, .. } = a {
            if seen.is_multiple_of(stride) {
                *speed *= factor;
                injected += 1;
            }
            seen += 1;
        }
    }
    injected
}

/// Server-side movement-input collapsing: keep only the first `Move` per
/// entity in the batch (later ones are dropped). Real servers do this so
/// a client cannot stack movement commands within one tick — without it,
/// duplicate moves are indistinguishable from a speed hack.
pub fn collapse_moves(batch: Vec<Action>) -> Vec<Action> {
    let mut seen: std::collections::HashSet<EntityId> = std::collections::HashSet::new();
    batch
        .into_iter()
        .filter(|a| match a {
            Action::Move { who, .. } => seen.insert(*who),
            _ => true,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::arena_world;
    use crate::executor::{LockingExecutor, OptimisticExecutor, SerialExecutor};
    use gamedb_content::Value;

    fn line_world(n: usize) -> (World, Vec<EntityId>) {
        arena_world(n, |i| Vec2::new(i as f32 * 3.0, 0.0))
    }

    /// The classic dupe: one account fires two trades to two different
    /// recipients in the same tick.
    fn dupe_batch(ids: &[EntityId]) -> Vec<Action> {
        vec![
            Action::Trade { from: ids[0], to: ids[1], amount: 60 },
            Action::Trade { from: ids[0], to: ids[2], amount: 60 },
        ]
    }

    /// ISSUE-4 satellite: the change-stream movement audit must report
    /// exactly what the snapshot-based audit reports — speed hacks
    /// caught, legitimate moves ignored — while skipping the O(world)
    /// position map entirely.
    #[test]
    fn movement_audit_via_stream_equals_snapshot_audit() {
        let (mut w_snap, ids_s) = line_world(12);
        let (mut w_tap, ids_t) = line_world(12);
        let mut snap_auditor = Auditor::new(2.5);
        let mut tap_auditor = Auditor::new(2.5);
        tap_auditor.subscribe_movement(&mut w_tap);

        // per tick: (entity, dx) moves — some legal, some speed hacks,
        // one entity teleports in two hops that are individually legal
        // but jointly a violation (the stream must compare first-old
        // against final, not hop by hop)
        let script: Vec<Vec<(usize, f32)>> = vec![
            vec![(0, 1.0), (1, 2.0)],          // all legal
            vec![(2, 50.0)],                    // blatant speed hack
            vec![(3, 2.0), (3, 2.0)],           // 4.0 total: violation
            vec![(4, -1.0), (5, 2.4)],          // legal again
            vec![],                             // quiet tick
            vec![(0, 3.0), (1, -9.0), (2, 0.5)] // two violations
        ];
        for (tick, moves) in script.iter().enumerate() {
            let before_snap = snap_auditor.snapshot(&w_snap);
            let before_tap = tap_auditor.snapshot_tick(&mut w_tap);
            assert!(
                before_tap.positions.is_empty(),
                "tapped baseline skips the position map"
            );
            for &(i, dx) in moves {
                for (w, ids) in [(&mut w_snap, &ids_s), (&mut w_tap, &ids_t)] {
                    let p = w.pos(ids[i]).unwrap();
                    w.set_pos(ids[i], Vec2::new(p.x + dx, p.y)).unwrap();
                }
            }
            let r_snap = snap_auditor.audit_tick(&before_snap, &mut w_snap);
            let r_tap = tap_auditor.audit_tick(&before_tap, &mut w_tap);
            assert_eq!(
                r_snap.speed_violations, r_tap.speed_violations,
                "tick {tick}"
            );
            assert_eq!(r_snap, r_tap, "tick {tick}");
        }
        assert_eq!(
            snap_auditor.total_speed_violations(),
            tap_auditor.total_speed_violations()
        );
        assert!(tap_auditor.total_speed_violations() >= 4);
    }

    /// ISSUE-5 satellite: the stream-folded wealth audit must report
    /// exactly what the scanning auditor reports — dupes, black holes,
    /// conserving ticks — across a workload of trades, item pickups,
    /// gold-carrying despawns (the case that needs the `Despawned` row
    /// image), component removals, and spawns, while doing **no**
    /// O(entities) wealth scan at either end of the tick.
    #[test]
    fn wealth_audit_via_stream_equals_scanning_audit() {
        let (mut w_scan, ids_s) = line_world(6);
        let (mut w_tap, ids_t) = line_world(6);
        let mut scanning = Auditor::new(100.0);
        let mut folded = Auditor::new(100.0);
        folded.subscribe_wealth(&mut w_tap);

        #[derive(Clone, Copy)]
        enum Step {
            SetGold(usize, i64),
            Remove(usize),
            Despawn(usize),
            SpawnItem(i64),
            PickupLast(usize),
        }
        use Step::*;
        // per tick: a script of mutations — some conserve, some dupe,
        // some destroy
        let script: Vec<Vec<Step>> = vec![
            vec![SetGold(0, 40), SetGold(1, 160)],      // conserving trade
            vec![SetGold(2, 200)],                      // +100 duped
            vec![SpawnItem(500)],                       // +500 minted item
            vec![PickupLast(0), SetGold(3, 90)],        // pickup conserves, -10 hole
            vec![Despawn(4)],                           // -100 black hole (row image!)
            vec![Remove(5)],                            // -100 removal
            vec![],                                     // quiet tick
            vec![SetGold(0, 0), SpawnItem(7), Despawn(1)],
        ];
        let mut spawned_s: Vec<EntityId> = Vec::new();
        let mut spawned_t: Vec<EntityId> = Vec::new();
        for (tick, steps) in script.iter().enumerate() {
            let before_s = scanning.snapshot(&w_scan);
            let before_t = folded.snapshot_tick(&mut w_tap);
            assert_eq!(before_t.wealth, 0, "folded baseline skips the scan");
            for &step in steps {
                match step {
                    SetGold(i, g) => {
                        w_scan.set(ids_s[i], "gold", Value::Int(g)).unwrap();
                        w_tap.set(ids_t[i], "gold", Value::Int(g)).unwrap();
                    }
                    Remove(i) => {
                        w_scan.remove_component(ids_s[i], "gold").unwrap();
                        w_tap.remove_component(ids_t[i], "gold").unwrap();
                    }
                    Despawn(i) => {
                        w_scan.despawn(ids_s[i]);
                        w_tap.despawn(ids_t[i]);
                    }
                    SpawnItem(v) => {
                        let a = w_scan.spawn_at(Vec2::ZERO);
                        w_scan.set(a, "value", Value::Int(v)).unwrap();
                        spawned_s.push(a);
                        let b = w_tap.spawn_at(Vec2::ZERO);
                        w_tap.set(b, "value", Value::Int(v)).unwrap();
                        spawned_t.push(b);
                    }
                    PickupLast(i) => {
                        // item value converts into holder gold, item dies
                        let (a, b) = (spawned_s.pop().unwrap(), spawned_t.pop().unwrap());
                        for (w, ids, item) in
                            [(&mut w_scan, &ids_s, a), (&mut w_tap, &ids_t, b)]
                        {
                            let v = w.get_i64(item, "value").unwrap();
                            let g = w.get_i64(ids[i], "gold").unwrap_or(0);
                            w.set(ids[i], "gold", Value::Int(g + v)).unwrap();
                            w.despawn(item);
                        }
                    }
                }
            }
            let r_scan = scanning.audit(&before_s, &w_scan);
            let r_fold = folded.audit_tick(&before_t, &mut w_tap);
            assert_eq!(r_scan.wealth_drift, r_fold.wealth_drift, "tick {tick}");
            assert_eq!(r_scan.overdrafts, r_fold.overdrafts, "tick {tick}");
        }
        assert_eq!(scanning.total_drift(), folded.total_drift());
        assert!(folded.total_drift() > 0, "the script must exercise drift");
    }

    /// ISSUE-10 tentpole (sync layer): the view-backed wealth baseline —
    /// two global `Sum` operator views maintained by the differential
    /// view engine — must report exactly what the scanning auditor
    /// reports across trades, dupes, minted items, pickups, and
    /// gold-carrying despawns, while reading total wealth straight out
    /// of the maintained group rows.
    #[test]
    fn wealth_views_equal_scanning_audit() {
        let (mut w_scan, ids_s) = line_world(6);
        let (mut w_view, ids_v) = line_world(6);
        let mut scanning = Auditor::new(100.0);
        let mut viewed = Auditor::new(100.0);
        viewed.subscribe_wealth_views(&mut w_view).unwrap();

        let script: Vec<Vec<(usize, i64)>> = vec![
            vec![(0, 40), (1, 160)], // conserving trade
            vec![(2, 200)],          // +100 duped
            vec![(3, -30)],          // overdraft + black hole
            vec![],                  // quiet tick
            vec![(0, 0), (4, 500)],  // mixed
        ];
        for (tick, writes) in script.iter().enumerate() {
            let before_s = scanning.snapshot(&w_scan);
            let before_v = viewed.snapshot(&w_view);
            assert_eq!(before_s.wealth, before_v.wealth, "baselines agree");
            for &(i, gold) in writes {
                w_scan.set(ids_s[i], "gold", Value::Int(gold)).unwrap();
                w_view.set(ids_v[i], "gold", Value::Int(gold)).unwrap();
            }
            if tick == 2 {
                // minted item + a death carrying gold: the view engine
                // must retract both rows from the global sums
                let a = w_scan.spawn_at(Vec2::ZERO);
                w_scan.set(a, "value", Value::Int(77)).unwrap();
                let b = w_view.spawn_at(Vec2::ZERO);
                w_view.set(b, "value", Value::Int(77)).unwrap();
                w_scan.despawn(ids_s[5]);
                w_view.despawn(ids_v[5]);
            }
            let r_scan = scanning.audit(&before_s, &w_scan);
            let r_view = viewed.audit_tick(&before_v, &mut w_view);
            assert_eq!(r_scan.wealth_drift, r_view.wealth_drift, "tick {tick}");
            assert_eq!(r_scan.overdrafts, r_view.overdrafts, "tick {tick}");
        }
        assert_eq!(scanning.total_drift(), viewed.total_drift());
        assert!(viewed.total_drift() > 0, "the script must exercise drift");
        // a second auditor re-attaches to the same operator trees
        let mut second = Auditor::new(100.0);
        second.subscribe_wealth_views(&mut w_view).unwrap();
        assert_eq!(second.wealth_views, viewed.wealth_views);
    }

    /// Wealth and movement subscriptions share one tap and one stream
    /// pass; both audits agree with their scanning counterparts.
    #[test]
    fn wealth_and_movement_subscriptions_compose() {
        let (mut w_scan, ids_s) = line_world(4);
        let (mut w_tap, ids_t) = line_world(4);
        let mut scanning = Auditor::new(2.0);
        let mut folded = Auditor::new(2.0);
        folded.subscribe_wealth(&mut w_tap);
        folded.subscribe_movement(&mut w_tap);
        for tick in 0..4 {
            let before_s = scanning.snapshot(&w_scan);
            let before_t = folded.snapshot_tick(&mut w_tap);
            assert!(before_t.positions.is_empty());
            for (w, ids) in [(&mut w_scan, &ids_s), (&mut w_tap, &ids_t)] {
                let p = w.pos(ids[0]).unwrap();
                // tick 2 speed-hacks, tick 3 dupes gold
                let step = if tick == 2 { 50.0 } else { 1.0 };
                w.set_pos(ids[0], Vec2::new(p.x + step, p.y)).unwrap();
                if tick == 3 {
                    w.set(ids[1], "gold", Value::Int(999)).unwrap();
                }
            }
            let r_scan = scanning.audit(&before_s, &w_scan);
            let r_fold = folded.audit_tick(&before_t, &mut w_tap);
            assert_eq!(r_scan, r_fold, "tick {tick}");
        }
        folded.unsubscribe_movement(&mut w_tap);
        assert_eq!(w_tap.pending_deltas(), 0);
    }

    #[test]
    fn audit_agrees_with_and_without_gold_index() {
        use gamedb_core::IndexKind;
        let (mut w, ids) = line_world(4);
        w.set(ids[1], "gold", Value::Int(-30)).unwrap();
        w.set(ids[3], "gold", Value::Int(-1)).unwrap();
        let mut plain = Auditor::new(3.0);
        let report_plain = {
            let before = plain.snapshot(&w);
            plain.audit(&before, &w)
        };
        w.create_index("gold", IndexKind::Sorted).unwrap();
        let mut indexed = Auditor::new(3.0);
        let before = indexed.snapshot(&w);
        let report_indexed = indexed.audit(&before, &w);
        assert_eq!(report_plain.overdrafts, 2);
        assert_eq!(report_plain, report_indexed);
    }

    /// ISSUE-2 satellite: the standing-view overdraft subscription must
    /// fire on exactly the ticks the per-tick requery fired on, with the
    /// same counts, across a workload that drives balances negative and
    /// back.
    #[test]
    fn overdraft_subscription_fires_on_same_ticks_as_requery() {
        let (mut w_view, ids_v) = line_world(4);
        let (mut w_poll, ids_p) = line_world(4);
        let mut subscribed = Auditor::new(3.0);
        subscribed.subscribe_overdrafts(&mut w_view);
        let mut polled = Auditor::new(3.0);

        // tick script: (entity, new gold) writes applied by a "buggy
        // handler" — some ticks overdraw, some recover, one despawns
        let script: Vec<Vec<(usize, i64)>> = vec![
            vec![(0, -40)],            // overdraft appears
            vec![(1, -5), (2, 10)],    // second account overdrawn too
            vec![(0, 25)],             // first recovers
            vec![],                    // nothing happens
            vec![(1, 0), (3, -1)],     // swap which accounts are negative
        ];
        let mut fired_view = Vec::new();
        let mut fired_poll = Vec::new();
        for (tick, writes) in script.iter().enumerate() {
            let before_v = subscribed.snapshot(&w_view);
            let before_p = polled.snapshot(&w_poll);
            for &(i, gold) in writes {
                w_view.set(ids_v[i], "gold", Value::Int(gold)).unwrap();
                w_poll.set(ids_p[i], "gold", Value::Int(gold)).unwrap();
            }
            if tick == 3 {
                // a despawn mid-stream must evict any overdraft row
                w_view.despawn(ids_v[2]);
                w_poll.despawn(ids_p[2]);
            }
            let rv = subscribed.audit_tick(&before_v, &mut w_view);
            let rp = polled.audit(&before_p, &w_poll);
            assert_eq!(rv.overdrafts, rp.overdrafts, "tick {tick}");
            fired_view.push(rv.overdrafts > 0);
            fired_poll.push(rp.overdrafts > 0);
        }
        assert_eq!(fired_view, fired_poll);
        assert_eq!(fired_view, vec![true, true, true, true, true]);
        assert_eq!(subscribed.total_overdrafts(), polled.total_overdrafts());
    }

    /// A stale view (pending deltas not yet refreshed) must not be
    /// trusted: plain `audit` falls back to the live requery.
    #[test]
    fn stale_view_falls_back_to_requery() {
        let (mut w, ids) = line_world(2);
        let mut auditor = Auditor::new(3.0);
        auditor.subscribe_overdrafts(&mut w);
        let before = auditor.snapshot(&w);
        w.set(ids[0], "gold", Value::Int(-10)).unwrap();
        // no refresh: the view still says zero overdrafts, the requery
        // fallback must report one anyway
        assert!(w.pending_deltas() > 0);
        let report = auditor.audit(&before, &w);
        assert_eq!(report.overdrafts, 1);
    }

    #[test]
    fn racy_loop_duplicates_gold() {
        let (mut w, ids) = line_world(3);
        let mut auditor = Auditor::new(3.0);
        let before = auditor.snapshot(&w);
        RacyExecutor.execute(&mut w, &dupe_batch(&ids));
        let report = auditor.audit(&before, &w);
        // both credits landed, only one debit survived: +60 from thin air
        assert_eq!(report.wealth_drift, 60);
        assert_eq!(w.get_i64(ids[0], "gold"), Some(40));
        assert_eq!(w.get_i64(ids[1], "gold"), Some(160));
        assert_eq!(w.get_i64(ids[2], "gold"), Some(160));
    }

    #[test]
    fn safe_executors_never_dupe() {
        for exec in [
            Box::new(SerialExecutor) as Box<dyn Executor>,
            Box::new(LockingExecutor),
            Box::new(OptimisticExecutor::default()),
        ] {
            let (mut w, ids) = line_world(3);
            let mut auditor = Auditor::new(3.0);
            let before = auditor.snapshot(&w);
            exec.execute(&mut w, &dupe_batch(&ids));
            let report = auditor.audit(&before, &w);
            assert!(report.clean(), "{} leaked wealth: {report:?}", exec.name());
            // second trade saw the post-debit balance and clamped
            assert_eq!(w.get_i64(ids[0], "gold"), Some(0), "{}", exec.name());
        }
    }

    #[test]
    fn bubbles_serialize_within_bubble() {
        // all three players share one bubble; the two trades out of
        // ids[0] must see each other (overlay) — no overdraft, no dupe
        use crate::bubbles::BubbleExecutor;
        let (mut w, ids) = arena_world(3, |i| Vec2::new(i as f32 * 2.0, 0.0));
        let mut auditor = Auditor::new(3.0);
        let before = auditor.snapshot(&w);
        BubbleExecutor::default().execute(&mut w, &dupe_batch(&ids));
        let report = auditor.audit(&before, &w);
        assert!(report.clean(), "bubble write-skew: {report:?}");
        assert_eq!(w.get_i64(ids[0], "gold"), Some(0));
        assert_eq!(
            w.get_i64(ids[1], "gold").unwrap() + w.get_i64(ids[2], "gold").unwrap(),
            300
        );
    }

    #[test]
    fn racy_loop_duplicates_loot() {
        let (mut w, ids) = line_world(2);
        let item = w.spawn_at(Vec2::new(1.0, 0.0));
        w.set(item, "value", Value::Int(500)).unwrap();
        let batch = vec![
            Action::Pickup { player: ids[0], item },
            Action::Pickup { player: ids[1], item },
        ];
        let mut auditor = Auditor::new(3.0);
        let before = auditor.snapshot(&w);
        RacyExecutor.execute(&mut w, &batch);
        let report = auditor.audit(&before, &w);
        assert_eq!(report.wealth_drift, 500, "item value duplicated");
        assert_eq!(w.get_i64(ids[0], "gold"), Some(600));
        assert_eq!(w.get_i64(ids[1], "gold"), Some(600));
        assert!(!w.is_live(item));
    }

    #[test]
    fn safe_executors_give_loot_once() {
        for exec in [
            Box::new(SerialExecutor) as Box<dyn Executor>,
            Box::new(LockingExecutor),
        ] {
            let (mut w, ids) = line_world(2);
            let item = w.spawn_at(Vec2::new(1.0, 0.0));
            w.set(item, "value", Value::Int(500)).unwrap();
            let batch = vec![
                Action::Pickup { player: ids[0], item },
                Action::Pickup { player: ids[1], item },
            ];
            let mut auditor = Auditor::new(3.0);
            let before = auditor.snapshot(&w);
            exec.execute(&mut w, &batch);
            assert!(auditor.audit(&before, &w).clean(), "{}", exec.name());
            let total = w.get_i64(ids[0], "gold").unwrap() + w.get_i64(ids[1], "gold").unwrap();
            assert_eq!(total, 700, "{}: 200 starting + 500 item", exec.name());
        }
    }

    #[test]
    fn racy_loop_loses_damage() {
        let (mut w_racy, ids) = line_world(3);
        let batch = vec![
            Action::Attack { attacker: ids[0], target: ids[2] },
            Action::Attack { attacker: ids[1], target: ids[2] },
        ];
        RacyExecutor.execute(&mut w_racy, &batch);
        // both attacks read hp=100 and wrote 95: one hit vanished
        assert_eq!(w_racy.get_f32(ids[2], "hp"), Some(95.0));

        let (mut w_safe, ids2) = line_world(3);
        let batch2 = vec![
            Action::Attack { attacker: ids2[0], target: ids2[2] },
            Action::Attack { attacker: ids2[1], target: ids2[2] },
        ];
        SerialExecutor.execute(&mut w_safe, &batch2);
        assert_eq!(w_safe.get_f32(ids2[2], "hp"), Some(90.0));
    }

    #[test]
    fn racy_matches_serial_when_conflict_free() {
        let (mut w1, ids1) = line_world(8);
        let (mut w2, ids2) = line_world(8);
        let batch1: Vec<Action> = (0..4)
            .map(|i| Action::Trade { from: ids1[2 * i], to: ids1[2 * i + 1], amount: 10 })
            .collect();
        let batch2: Vec<Action> = (0..4)
            .map(|i| Action::Trade { from: ids2[2 * i], to: ids2[2 * i + 1], amount: 10 })
            .collect();
        RacyExecutor.execute(&mut w1, &batch1);
        SerialExecutor.execute(&mut w2, &batch2);
        assert_eq!(w1.rows(), w2.rows(), "disjoint batches are exploit-free");
    }

    #[test]
    fn auditor_detects_speed_hack() {
        let (mut w, ids) = line_world(4);
        let mut batch: Vec<Action> = ids
            .iter()
            .map(|&e| Action::Move { who: e, to: Vec2::new(1000.0, 0.0), speed: 2.0 })
            .collect();
        let injected = inject_speed_hacks(&mut batch, 0.25, 50.0);
        assert_eq!(injected, 1);
        let mut auditor = Auditor::new(2.0);
        let before = auditor.snapshot(&w);
        SerialExecutor.execute(&mut w, &batch);
        let report = auditor.audit(&before, &w);
        assert_eq!(report.speed_violations, 1);
        assert_eq!(report.wealth_drift, 0);
    }

    #[test]
    fn clean_moves_pass_the_speed_check() {
        let (mut w, ids) = line_world(4);
        let batch: Vec<Action> = ids
            .iter()
            .map(|&e| Action::Move { who: e, to: Vec2::new(1000.0, 0.0), speed: 2.0 })
            .collect();
        let mut auditor = Auditor::new(2.0);
        let before = auditor.snapshot(&w);
        SerialExecutor.execute(&mut w, &batch);
        assert!(auditor.audit(&before, &w).clean());
    }

    #[test]
    fn inject_nothing_at_zero_fraction() {
        let (_, ids) = line_world(2);
        let mut batch = vec![Action::Move { who: ids[0], to: Vec2::ZERO, speed: 2.0 }];
        assert_eq!(inject_speed_hacks(&mut batch, 0.0, 50.0), 0);
        assert!(matches!(batch[0], Action::Move { speed, .. } if speed == 2.0));
    }

    #[test]
    fn auditor_flags_overdraft() {
        let (mut w, ids) = line_world(1);
        let mut auditor = Auditor::new(2.0);
        let before = auditor.snapshot(&w);
        // a buggy handler drives gold negative directly
        w.set(ids[0], "gold", Value::Int(-40)).unwrap();
        let report = auditor.audit(&before, &w);
        assert_eq!(report.overdrafts, 1);
        assert_eq!(report.wealth_drift, -140);
        assert!(!report.clean());
    }

    #[test]
    fn auditor_accumulates_across_ticks() {
        let (mut w, ids) = line_world(3);
        let mut auditor = Auditor::new(3.0);
        for _ in 0..3 {
            let before = auditor.snapshot(&w);
            RacyExecutor.execute(&mut w, &dupe_batch(&ids));
            auditor.audit(&before, &w);
        }
        assert_eq!(auditor.ticks(), 3);
        // tick 1: both 60-trades read balance 100 → one debit lost, +60.
        // tick 2: balance 40 clamps both trades to 40 → +40 duped.
        // tick 3: ids[0] is broke → nothing moves, clean.
        assert_eq!(auditor.dirty_ticks(), 2);
        assert_eq!(auditor.total_drift(), 100);
        assert_eq!(auditor.total_speed_violations(), 0);
    }

    #[test]
    fn wealth_counts_gold_and_items() {
        let (mut w, _) = line_world(2);
        assert_eq!(wealth(&w), 200);
        let item = w.spawn_at(Vec2::ZERO);
        w.set(item, "value", Value::Int(50)).unwrap();
        assert_eq!(wealth(&w), 250);
        w.despawn(item);
        assert_eq!(wealth(&w), 200);
    }

    #[test]
    fn collapse_moves_keeps_first_per_entity() {
        let (_, ids) = line_world(2);
        let batch = vec![
            Action::Move { who: ids[0], to: Vec2::new(5.0, 0.0), speed: 2.0 },
            Action::Attack { attacker: ids[0], target: ids[1] },
            Action::Move { who: ids[0], to: Vec2::new(9.0, 0.0), speed: 2.0 },
            Action::Move { who: ids[1], to: Vec2::new(9.0, 0.0), speed: 2.0 },
        ];
        let collapsed = collapse_moves(batch);
        assert_eq!(collapsed.len(), 3);
        assert!(matches!(collapsed[0], Action::Move { who, .. } if who == ids[0]));
        assert!(matches!(collapsed[1], Action::Attack { .. }));
        assert!(matches!(collapsed[2], Action::Move { who, .. } if who == ids[1]));
    }

    #[test]
    fn stacked_moves_trip_the_audit_until_collapsed() {
        let (mut w, ids) = line_world(1);
        let batch = vec![
            Action::Move { who: ids[0], to: Vec2::new(100.0, 0.0), speed: 2.0 },
            Action::Move { who: ids[0], to: Vec2::new(100.0, 0.0), speed: 2.0 },
        ];
        let mut auditor = Auditor::new(2.0);
        let before = auditor.snapshot(&w);
        SerialExecutor.execute(&mut w, &batch.clone());
        assert_eq!(auditor.audit(&before, &w).speed_violations, 1);

        let (mut w2, _) = line_world(1);
        let mut auditor2 = Auditor::new(2.0);
        let before2 = auditor2.snapshot(&w2);
        SerialExecutor.execute(&mut w2, &collapse_moves(batch));
        assert!(auditor2.audit(&before2, &w2).clean());
    }

    #[test]
    fn racy_self_trade_is_ignored() {
        let (mut w, ids) = line_world(1);
        RacyExecutor.execute(
            &mut w,
            &[Action::Trade { from: ids[0], to: ids[0], amount: 50 }],
        );
        assert_eq!(w.get_i64(ids[0], "gold"), Some(100));
    }
}
