//! Distribution-layer instrumentation: the cached metric handles a
//! [`crate::replication::Replicator`] and a
//! [`crate::shard::ShardManager`] report through when a
//! [`gamedb_metrics::MetricsRegistry`] is attached.
//!
//! Several replicators (one per client) typically share one registry;
//! their counters sum into fleet totals, which is exactly what the
//! cluster report wants. Per-client accounting stays on the replicator
//! itself (`rows_sent` / `bytes_sent`).

use gamedb_metrics::{Counter, Gauge, MetricsRegistry};

/// Cached handles for replication shipping. Catalog in ARCHITECTURE.md
/// § Observability.
#[derive(Debug, Clone)]
pub(crate) struct ReplMetrics {
    /// `repl.segments`: delta segments shipped.
    pub segments: Counter,
    /// `repl.segment_bytes`: wire bytes across all delta segments.
    pub segment_bytes: Counter,
    /// `repl.rows`: rows shipped in delta segments.
    pub rows: Counter,
    /// `repl.full_rows`: entities shipped as complete row images (first
    /// sight, or re-entry after their rows were dropped).
    pub full_rows: Counter,
    /// `repl.delta_rows`: entities shipped as changed-columns-only
    /// deltas.
    pub delta_rows: Counter,
    /// `repl.full_walks`: full-walk syncs (no stream attached, or the
    /// priming walk).
    pub full_walks: Counter,
    /// `repl.full_walk_bytes`: wire bytes across all full walks.
    pub full_walk_bytes: Counter,
    /// `repl.resyncs`: tap evictions that forced a live resync — a
    /// consumer stalled past the retention window.
    pub resyncs: Counter,
    /// `repl.gated_ticks`: Strict-level syncs refused because the
    /// durability watermark had not drained.
    pub gated_ticks: Counter,
}

impl ReplMetrics {
    pub fn new(registry: &MetricsRegistry) -> Self {
        ReplMetrics {
            segments: registry.counter("repl.segments"),
            segment_bytes: registry.counter("repl.segment_bytes"),
            rows: registry.counter("repl.rows"),
            full_rows: registry.counter("repl.full_rows"),
            delta_rows: registry.counter("repl.delta_rows"),
            full_walks: registry.counter("repl.full_walks"),
            full_walk_bytes: registry.counter("repl.full_walk_bytes"),
            resyncs: registry.counter("repl.resyncs"),
            gated_ticks: registry.counter("repl.gated_ticks"),
        }
    }
}

/// Cached handles for shard rebalancing.
#[derive(Debug, Clone)]
pub(crate) struct ShardMetrics {
    /// `shard.ticks`: placement rounds computed.
    pub ticks: Counter,
    /// `shard.handoffs`: player migrations between nodes across all
    /// rounds (the paper's handoff cost).
    pub handoffs: Counter,
    /// `shard.imbalance`: busiest-node overload factor at the last
    /// round, in percent (100 = perfectly balanced).
    pub imbalance_pct: Gauge,
    /// `shard.cross_node_permille`: fraction of actions spanning nodes
    /// at the last round, in permille.
    pub cross_node_permille: Gauge,
}

impl ShardMetrics {
    pub fn new(registry: &MetricsRegistry) -> Self {
        ShardMetrics {
            ticks: registry.counter("shard.ticks"),
            handoffs: registry.counter("shard.handoffs"),
            imbalance_pct: registry.gauge("shard.imbalance"),
            cross_node_permille: registry.gauge("shard.cross_node_permille"),
        }
    }
}

/// Cached handles for cross-shard change shipping
/// ([`crate::router::ShardRouter`]).
#[derive(Debug, Clone)]
pub(crate) struct RouterMetrics {
    /// `shard.handoff_segments`: non-empty handoff segments shipped
    /// across all node links.
    pub segments: Counter,
    /// `shard.handoff_bytes`: wire bytes across all handoff segments
    /// (delta framing).
    pub bytes: Counter,
    /// `shard.handoff_rows`: rows (puts) shipped in handoff segments.
    pub rows: Counter,
    /// `shard.handoff_entities`: entities that changed owner (excludes
    /// the priming tick, which seeds state rather than moving it).
    pub entities: Counter,
    /// `shard.handoff_baseline_bytes`: what the same traffic would have
    /// cost shipped as full row images under the legacy row framing —
    /// the by-value baseline `shard.handoff_bytes` must undercut.
    pub baseline_bytes: Counter,
    /// `shard.handoff_resyncs`: node links evicted from the change
    /// stream (stalled past retention) and re-shipped whole.
    pub resyncs: Counter,
    /// `standby.lag`: worst unapplied-segment tail across warm
    /// standbys at the last router tick.
    pub standby_lag: Gauge,
    /// `standby.replays`: segments replayed at failover promotions.
    pub standby_replays: Counter,
}

impl RouterMetrics {
    pub fn new(registry: &MetricsRegistry) -> Self {
        RouterMetrics {
            segments: registry.counter("shard.handoff_segments"),
            bytes: registry.counter("shard.handoff_bytes"),
            rows: registry.counter("shard.handoff_rows"),
            entities: registry.counter("shard.handoff_entities"),
            baseline_bytes: registry.counter("shard.handoff_baseline_bytes"),
            resyncs: registry.counter("shard.handoff_resyncs"),
            standby_lag: registry.gauge("standby.lag"),
            standby_replays: registry.counter("standby.replays"),
        }
    }
}
