//! Aggro management: role-based combat targeting.
//!
//! The paper: "'aggro management' is the technique that World of Warcraft
//! uses to target opponents and process combat. It assigns abstract roles
//! to the participants, which allows the game to handle combat without
//! exact spatial fidelity." A mob keeps a *threat table* — accumulated
//! threat per attacker, weighted by role — and targets the top entry.
//! Because threat integrates over time and roles, the chosen target is
//! stable under small positional noise, where exact nearest-enemy
//! targeting flaps; experiment E8 quantifies exactly that robustness.

use std::collections::HashMap;

use gamedb_core::{Changelog, EntityId, JoinOn, PlanNode, Query, ViewId, ViewPlan, World};

/// Combat roles with their threat multipliers. Tanks generate extra
/// threat by design — the game *wants* the boss hitting the tank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    Tank,
    Healer,
    Dps,
}

impl Role {
    /// Threat generated per point of damage (or healing) done.
    pub fn threat_multiplier(self) -> f64 {
        match self {
            Role::Tank => 3.0,
            Role::Healer => 0.75,
            Role::Dps => 1.0,
        }
    }
}

/// Per-mob threat table.
#[derive(Debug, Clone, Default)]
pub struct AggroTable {
    threat: HashMap<EntityId, f64>,
    /// Taunt forces the target for a number of ticks.
    taunt: Option<(EntityId, u32)>,
}

impl AggroTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record damage (or healing converted to threat) done by `who` with
    /// `role`.
    pub fn add_threat(&mut self, who: EntityId, role: Role, amount: f64) {
        *self.threat.entry(who).or_insert(0.0) += amount.max(0.0) * role.threat_multiplier();
    }

    /// Taunt: force targeting of `who` for `ticks` ticks.
    pub fn taunt(&mut self, who: EntityId, ticks: u32) {
        self.taunt = Some((who, ticks));
    }

    /// Exponential decay each tick (threat half-life keeps tables fresh).
    pub fn decay(&mut self, factor: f64) {
        for v in self.threat.values_mut() {
            *v *= factor.clamp(0.0, 1.0);
        }
        self.threat.retain(|_, v| *v > 1e-9);
        if let Some((_, ticks)) = &mut self.taunt {
            if *ticks == 0 {
                self.taunt = None;
            } else {
                *ticks -= 1;
            }
        }
    }

    /// Remove an attacker (death, despawn, zone-out).
    pub fn remove(&mut self, who: EntityId) {
        self.threat.remove(&who);
        if let Some((t, _)) = self.taunt {
            if t == who {
                self.taunt = None;
            }
        }
    }

    /// Current threat of `who`.
    pub fn threat_of(&self, who: EntityId) -> f64 {
        self.threat.get(&who).copied().unwrap_or(0.0)
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.threat.len()
    }

    /// True when no attacker has threat.
    pub fn is_empty(&self) -> bool {
        self.threat.is_empty()
    }

    /// Pick the target: the taunter if taunted, else the highest-threat
    /// live attacker (ties break to the lower id — deterministic).
    pub fn target(&self, world: &World) -> Option<EntityId> {
        if let Some((who, _)) = self.taunt {
            if world.is_live(who) {
                return Some(who);
            }
        }
        self.threat
            .iter()
            .filter(|(&who, _)| world.is_live(who))
            .max_by(|(a_id, a), (b_id, b)| {
                a.partial_cmp(b)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b_id.cmp(a_id))
            })
            .map(|(&who, _)| who)
    }
}

/// Standing candidate set for one mob: the entities inside its aggro
/// radius, maintained by the differential view engine as an anchored
/// **spatial join** — the mob (an anchored scan) joined against
/// everyone else within `radius`. The join follows the anchor's own
/// position deltas, so a moving mob stays on the incremental path: no
/// retarget, no rescan-diff, ever.
///
/// [`CandidateView::sync`] folds pending deltas and consumes the
/// join's pair changelog — exiting candidates (death, despawn,
/// zone-out, or the mob walking away) are evicted from the mob's
/// threat table, the bookkeeping [`AggroTable::remove`]'s docs ask
/// callers to do by hand.
#[derive(Debug, Clone)]
pub struct CandidateView {
    mob: EntityId,
    radius: f32,
    view: ViewId,
}

impl CandidateView {
    /// The operator tree identifying one mob's candidate set: the mob
    /// itself spatially joined against every other entity in range.
    fn plan(mob: EntityId, radius: f32) -> ViewPlan {
        ViewPlan::join(
            PlanNode::scan_only(Query::select(), mob),
            PlanNode::scan(Query::select().excluding(mob)),
            JoinOn::Within { radius },
        )
    }

    /// Register the standing join view for the mob. Returns `None` when
    /// the mob has no position (a position-less mob has no aggro disk).
    pub fn register(world: &mut World, mob: EntityId, radius: f32) -> Option<Self> {
        world.pos(mob)?;
        let view = world.register_view_plan(Self::plan(mob, radius)).ok()?;
        Some(CandidateView { mob, radius, view })
    }

    /// Re-attach to this mob's standing aggro view after a restart:
    /// recovery re-registers operator trees from the catalog, so the
    /// candidate set already exists in the recovered world — found by
    /// structural equality with the exact plan
    /// [`CandidateView::register`] builds. No retarget step remains:
    /// the join re-derives membership from the mob's current position
    /// on its first refresh. Falls back to registering a fresh view
    /// when none survives. Returns `None` when the mob has no position.
    pub fn reattach(world: &mut World, mob: EntityId, radius: f32) -> Option<Self> {
        world.pos(mob)?;
        let plan = Self::plan(mob, radius);
        let view = match world.find_plan_view(&plan) {
            Some(v) => v,
            None => world.register_view_plan(plan).ok()?,
        };
        Some(CandidateView { mob, radius, view })
    }

    /// The mob this view follows.
    pub fn mob(&self) -> EntityId {
        self.mob
    }

    /// The aggro radius the join maintains.
    pub fn radius(&self) -> f32 {
        self.radius
    }

    /// The underlying standing-view handle (for stats inspection).
    pub fn view(&self) -> ViewId {
        self.view
    }

    /// Per-tick maintenance: refresh, prune threat for every candidate
    /// that left the radius (or the world). The spatial join follows
    /// the mob's own position deltas, so moving and stationary mobs
    /// alike stay incremental. Returns the membership changelog
    /// (synthesized from the join's pair deltas — the mob is the left
    /// of every pair) so callers can react to entries (e.g. open
    /// combat on `entered`).
    pub fn sync(&mut self, world: &mut World, table: &mut AggroTable) -> Changelog {
        world.refresh_views();
        let pairs = world.take_view_pair_changelog(self.view);
        let log = Changelog {
            entered: pairs.entered.into_iter().map(|(_, r)| r).collect(),
            exited: pairs.exited.into_iter().map(|(_, r)| r).collect(),
            changed: Vec::new(),
            rescans: 0,
        };
        for &gone in &log.exited {
            table.remove(gone);
        }
        log
    }

    /// Current candidates, sorted by entity id — the set a per-tick
    /// `within` query would have recomputed (the right side of every
    /// maintained join pair).
    pub fn candidates(&self, world: &World) -> Vec<EntityId> {
        world
            .view_pairs(self.view)
            .iter()
            .map(|&(_, right)| right)
            .collect()
    }

    /// Drop the underlying view (the mob died).
    pub fn release(self, world: &mut World) {
        world.drop_view(self.view);
    }
}

/// Targeting policies compared in experiment E8.
pub trait Targeting {
    fn name(&self) -> &'static str;
    /// Choose a target for `mob` among `candidates`.
    fn choose(&mut self, world: &World, mob: EntityId, candidates: &[EntityId])
        -> Option<EntityId>;
}

/// Exact nearest-enemy targeting (requires exact spatial fidelity).
#[derive(Debug, Default)]
pub struct NearestTargeting;

impl Targeting for NearestTargeting {
    fn name(&self) -> &'static str {
        "nearest"
    }

    fn choose(
        &mut self,
        world: &World,
        mob: EntityId,
        candidates: &[EntityId],
    ) -> Option<EntityId> {
        let mp = world.pos(mob)?;
        candidates
            .iter()
            .filter(|&&c| world.is_live(c))
            .filter_map(|&c| world.pos(c).map(|p| (c, p.dist2(mp))))
            .min_by(|(ca, da), (cb, db)| {
                da.partial_cmp(db)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ca.cmp(cb))
            })
            .map(|(c, _)| c)
    }
}

/// Aggro-table targeting (role-weighted threat accumulation).
#[derive(Debug, Default)]
pub struct AggroTargeting {
    tables: HashMap<EntityId, AggroTable>,
    /// per-tick threat decay
    pub decay: f64,
}

impl AggroTargeting {
    pub fn new(decay: f64) -> Self {
        AggroTargeting {
            tables: HashMap::new(),
            decay,
        }
    }

    /// Table of a mob (created on demand).
    pub fn table_mut(&mut self, mob: EntityId) -> &mut AggroTable {
        self.tables.entry(mob).or_default()
    }

    /// Record a damage event against a mob.
    pub fn record_damage(&mut self, mob: EntityId, attacker: EntityId, role: Role, dmg: f64) {
        self.table_mut(mob).add_threat(attacker, role, dmg);
    }

    /// Advance one tick (decay all tables).
    pub fn tick(&mut self) {
        for t in self.tables.values_mut() {
            t.decay(self.decay);
        }
    }
}

impl Targeting for AggroTargeting {
    fn name(&self) -> &'static str {
        "aggro"
    }

    fn choose(
        &mut self,
        world: &World,
        mob: EntityId,
        _candidates: &[EntityId],
    ) -> Option<EntityId> {
        self.tables.get(&mob).and_then(|t| t.target(world))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::arena_world;
    use gamedb_spatial::Vec2;

    fn world3() -> (World, Vec<EntityId>) {
        arena_world(4, |i| Vec2::new(i as f32 * 2.0, 0.0))
    }

    #[test]
    fn tank_outthreats_dps_at_lower_damage() {
        let (w, ids) = world3();
        let (mob, tank, dps) = (ids[0], ids[1], ids[2]);
        let mut t = AggroTable::new();
        t.add_threat(tank, Role::Tank, 50.0); // 150 threat
        t.add_threat(dps, Role::Dps, 120.0); // 120 threat
        assert_eq!(t.target(&w), Some(tank));
        assert_eq!(t.threat_of(tank), 150.0);
        let _ = mob;
    }

    #[test]
    fn taunt_overrides_until_expiry() {
        let (w, ids) = world3();
        let (tank, dps) = (ids[1], ids[2]);
        let mut t = AggroTable::new();
        t.add_threat(dps, Role::Dps, 1000.0);
        t.taunt(tank, 2);
        // needs some threat entry for tank not required: taunt wins outright
        assert_eq!(t.target(&w), Some(tank));
        t.decay(1.0);
        assert_eq!(t.target(&w), Some(tank));
        t.decay(1.0);
        t.decay(1.0);
        assert_eq!(t.target(&w), Some(dps), "taunt expired");
    }

    #[test]
    fn decay_and_cleanup() {
        let (_, ids) = world3();
        let mut t = AggroTable::new();
        t.add_threat(ids[1], Role::Dps, 8.0);
        for _ in 0..100 {
            t.decay(0.5);
        }
        assert!(t.is_empty(), "fully decayed entries are dropped");
    }

    #[test]
    fn dead_attackers_skipped() {
        let (mut w, ids) = world3();
        let mut t = AggroTable::new();
        t.add_threat(ids[1], Role::Dps, 100.0);
        t.add_threat(ids[2], Role::Dps, 50.0);
        w.despawn(ids[1]);
        assert_eq!(t.target(&w), Some(ids[2]));
        t.remove(ids[1]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn tie_breaks_deterministic() {
        let (w, ids) = world3();
        let mut t = AggroTable::new();
        t.add_threat(ids[2], Role::Dps, 10.0);
        t.add_threat(ids[1], Role::Dps, 10.0);
        assert_eq!(t.target(&w), Some(ids[1].min(ids[2])));
    }

    #[test]
    fn nearest_targeting_tracks_position() {
        let (mut w, ids) = world3();
        let mut nt = NearestTargeting;
        let mob = ids[0];
        let cands = &ids[1..];
        assert_eq!(nt.choose(&w, mob, cands), Some(ids[1]));
        // move ids[3] right next to the mob
        w.set_pos(ids[3], Vec2::new(0.1, 0.0)).unwrap();
        assert_eq!(nt.choose(&w, mob, cands), Some(ids[3]));
    }

    /// ISSUE-2: the standing candidate view must track the per-tick
    /// `within` rescan exactly as the mob and players move, and exits
    /// must evict threat.
    #[test]
    fn candidate_view_matches_rescan_and_prunes_threat() {
        let (mut w, ids) = arena_world(6, |i| Vec2::new(i as f32 * 2.0, 0.0));
        let mob = ids[0];
        let radius = 5.0;
        let mut cv = CandidateView::register(&mut w, mob, radius).unwrap();
        let mut table = AggroTable::new();
        for &p in &ids[1..] {
            table.add_threat(p, Role::Dps, 10.0);
        }
        for tick in 0..8 {
            // players drift right, the mob chases slowly; one player dies
            for (i, &p) in ids[1..].iter().enumerate() {
                if let Some(pos) = w.pos(p) {
                    w.set_pos(p, Vec2::new(pos.x + (i as f32 + 1.0) * 0.7, pos.y)).unwrap();
                }
            }
            let mp = w.pos(mob).unwrap();
            w.set_pos(mob, Vec2::new(mp.x + 0.5, 0.0)).unwrap();
            if tick == 4 {
                w.despawn(ids[2]);
            }
            let log = cv.sync(&mut w, &mut table);
            // oracle: fresh rescan of the same query
            let oracle = Query::select()
                .within(w.pos(mob).unwrap(), radius)
                .excluding(mob)
                .run_scan(&w);
            assert_eq!(cv.candidates(&w), oracle.as_slice(), "tick {tick}");
            for &gone in &log.exited {
                assert_eq!(table.threat_of(gone), 0.0, "exit must evict threat");
            }
        }
        // the dead player is long gone from both table and view
        assert_eq!(table.threat_of(ids[2]), 0.0);
        assert!(!cv.candidates(&w).contains(&ids[2]));

        // a stationary mob must not pay retarget rescans
        let rescans_before = w.view_stats(cv.view()).rescans;
        cv.sync(&mut w, &mut table);
        cv.sync(&mut w, &mut table);
        assert_eq!(
            w.view_stats(cv.view()).rescans,
            rescans_before,
            "stationary syncs must stay incremental"
        );
        cv.release(&mut w);
    }

    #[test]
    fn candidate_view_needs_positioned_mob() {
        let mut w = World::new();
        let ghost = w.spawn();
        assert!(CandidateView::register(&mut w, ghost, 5.0).is_none());
    }

    #[test]
    fn aggro_stable_under_position_noise() {
        // tank holds aggro even as a dps runs closer — nearest flaps
        let (mut w, ids) = world3();
        let (mob, tank, dps) = (ids[0], ids[1], ids[2]);
        let mut aggro = AggroTargeting::new(0.95);
        let mut nearest = NearestTargeting;
        aggro.record_damage(mob, tank, Role::Tank, 30.0);
        aggro.record_damage(mob, dps, Role::Dps, 40.0);

        let mut aggro_switches = 0;
        let mut nearest_switches = 0;
        let (mut last_a, mut last_n) = (None, None);
        for tick in 0..20 {
            // dps oscillates between nearer and farther than the tank
            let x = if tick % 2 == 0 { 0.5 } else { 3.5 };
            w.set_pos(dps, Vec2::new(x, 0.0)).unwrap();
            aggro.record_damage(mob, tank, Role::Tank, 10.0);
            aggro.record_damage(mob, dps, Role::Dps, 12.0);
            aggro.tick();
            let a = aggro.choose(&w, mob, &[tank, dps]);
            let n = nearest.choose(&w, mob, &[tank, dps]);
            if last_a.is_some() && a != last_a {
                aggro_switches += 1;
            }
            if last_n.is_some() && n != last_n {
                nearest_switches += 1;
            }
            last_a = a;
            last_n = n;
        }
        assert_eq!(aggro_switches, 0, "tank holds aggro");
        assert!(nearest_switches > 10, "nearest flaps with position noise");
    }
}
