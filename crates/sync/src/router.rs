//! Cross-shard change shipping: segment-streamed entity handoff.
//!
//! [`crate::shard`] decides *where* entities live and
//! [`crate::cluster`] prices the transactions that span nodes — but
//! until now a placement change moved entities between nodes *by
//! value*, for free, while client replication already ships compact
//! id-keyed [`DeltaSegment`]s. The paper's games "dynamically partition
//! their databases to reduce server load"; the partitioning only pays
//! off if the handoff itself rides the same change-stream machinery.
//!
//! The [`ShardRouter`] closes that gap. It holds one change-stream tap
//! per node on the primary world (a **link**, exactly like a client's
//! `sync_stream` tap) and, each tick, diffs consecutive
//! [`ShardAssignment`]s into per-node handoff sets:
//!
//! * **gained** entities (owned now, not before) ship their full row
//!   image as segment puts;
//! * **retained** entities ship only the columns the change records
//!   named — the delta;
//! * **lost** entities (handed off or despawned) ship as segment
//!   drops, so the losing node and its standby forget them.
//!
//! Component names ship **once per link** ([`DeltaSegment::defines`]):
//! steady-state handoff rows cost a 1-byte varint where by-value
//! row framing pays `4 + len(name)` bytes. Every segment is stamped
//! with the change-stream sequence it snapshots (`World::tap_cursor`),
//! and the tap is acked only up to that stamp (`World::ack_tap_to`) so
//! records landing after the snapshot are never lost.
//!
//! Each node may keep a **warm standby** fed from the same link: the
//! standby buffers the node's segments and applies them lazily under a
//! lag budget, so failover replays only the buffered tail instead of
//! re-shipping the node's whole state.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use gamedb_content::Value;
use gamedb_core::{ChangeOp, ComponentId, EntityId, TapId, World};
use gamedb_metrics::MetricsRegistry;

use crate::metrics::RouterMetrics;
use crate::replication::{row_wire_bytes, DeltaSegment, Replica};
use crate::shard::{NodeId, ShardAssignment};

/// A node's warm standby: a replica fed the node's own segment stream,
/// applied lazily. `pending` is the unapplied tail — the only thing a
/// failover has to replay.
#[derive(Debug, Clone)]
struct WarmStandby {
    replica: Replica,
    pending: VecDeque<DeltaSegment>,
    /// Most segments the standby may leave unapplied. A budget of 0 is
    /// a hot mirror; larger budgets trade failover replay time for
    /// steady-state apply work.
    lag_budget: usize,
}

/// What one router tick shipped, per node — the deterministic record
/// the handoff tests compare across seeded runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HandoffReport {
    /// Entities each node gained this tick (sorted).
    pub gained: Vec<Vec<EntityId>>,
    /// Entities each node lost this tick (handed off or despawned;
    /// sorted).
    pub dropped: Vec<Vec<EntityId>>,
    /// Wire bytes of each node's segment(s) this tick.
    pub segment_bytes: Vec<usize>,
    /// Change-stream sequence each node's segment snapshots — the
    /// anchor a crash-recovery rebuild resumes from.
    pub snapshot_seq: Vec<u64>,
}

impl HandoffReport {
    /// Total wire bytes shipped this tick across all links (what
    /// [`crate::cluster::ClusterExecutor::bill_handoff`] prices).
    pub fn total_bytes(&self) -> usize {
        self.segment_bytes.iter().sum()
    }

    /// Total entities that changed owner this tick.
    pub fn total_moved(&self) -> usize {
        self.gained.iter().map(Vec::len).sum()
    }
}

/// Streams shard handoffs (and subsequent changes to owned entities) to
/// per-node replicas as [`DeltaSegment`]s — see the module docs.
#[derive(Debug)]
pub struct ShardRouter {
    nodes: usize,
    /// One change-stream tap per node link.
    taps: Vec<TapId>,
    /// Per-link name tables: component ids whose names this link has
    /// been sent (the server-side mirror of the node's accumulated
    /// table, exactly as `Replicator::named` is per client).
    named: Vec<HashSet<ComponentId>>,
    /// Node-local state: the rows of the entities each node owns.
    states: Vec<Replica>,
    standbys: Vec<Option<WarmStandby>>,
    prev: Option<ShardAssignment>,
    /// Wire bytes shipped across all links (delta framing).
    pub handoff_bytes: usize,
    /// What the same traffic would have cost shipped as full row
    /// images under the legacy row framing — the by-value baseline the
    /// acceptance bound compares against.
    pub baseline_bytes: usize,
    /// Non-empty segments shipped.
    pub segments_sent: usize,
    /// Rows (puts) shipped across all segments.
    pub rows_sent: usize,
    /// Entities that changed owner (gained by some node).
    pub entities_moved: usize,
    metrics: Option<RouterMetrics>,
}

impl ShardRouter {
    /// Attach a router to the primary world: one tap per node starts
    /// recording immediately, so the first [`ShardRouter::tick`] ships
    /// each node its initial full state and later ticks ship deltas.
    pub fn new(world: &mut World, nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node link");
        let taps = (0..nodes).map(|_| world.attach_tap()).collect();
        ShardRouter {
            nodes,
            taps,
            named: vec![HashSet::new(); nodes],
            states: vec![Replica::default(); nodes],
            standbys: vec![None; nodes],
            prev: None,
            handoff_bytes: 0,
            baseline_bytes: 0,
            segments_sent: 0,
            rows_sent: 0,
            entities_moved: 0,
            metrics: None,
        }
    }

    /// Keep a warm standby for `node`, fed from the node's own segment
    /// stream and applied lazily under `lag_budget` (see
    /// [`WarmStandby`]). Enabling resets any previous standby for the
    /// node to the node's current state.
    pub fn enable_standby(&mut self, node: NodeId, lag_budget: usize) {
        self.standbys[node] = Some(WarmStandby {
            replica: self.states[node].clone(),
            pending: VecDeque::new(),
            lag_budget,
        });
    }

    /// Attach a metrics registry: handoff segments/bytes/rows, the
    /// row-framed baseline, resyncs, and standby lag are reported into
    /// `registry` from here on. Purely observational.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(RouterMetrics::new(registry));
    }

    /// A node's local state (the rows of the entities it owns).
    pub fn node_state(&self, node: NodeId) -> &Replica {
        &self.states[node]
    }

    /// The placement the router last shipped against — what a manager
    /// rebuilt after failover seeds stickiness from
    /// (`ShardManager::seed_placement`).
    pub fn last_assignment(&self) -> Option<&ShardAssignment> {
        self.prev.as_ref()
    }

    /// Unapplied tail length of a node's standby, in segments. `None`
    /// when the node has no standby.
    pub fn standby_lag(&self, node: NodeId) -> Option<usize> {
        self.standbys[node].as_ref().map(|s| s.pending.len())
    }

    /// Promote a node's warm standby: replay its buffered tail (only
    /// the tail — that is the whole point of keeping it warm) and swap
    /// the caught-up replica in as the node's state. Returns the number
    /// of segments replayed, or `None` if the node had no standby.
    pub fn fail_over(&mut self, node: NodeId) -> Option<usize> {
        let mut sb = self.standbys[node].take()?;
        let replayed = sb.pending.len();
        while let Some(seg) = sb.pending.pop_front() {
            sb.replica.apply_segment(&seg);
        }
        self.states[node] = sb.replica;
        if let Some(m) = &self.metrics {
            m.standby_replays.add(replayed as u64);
        }
        Some(replayed)
    }

    /// Release the per-node taps. Call when the router is retired: an
    /// abandoned tap would pin the world's change-stream window.
    pub fn detach(&mut self, world: &mut World) {
        for tap in self.taps.drain(..) {
            world.detach_tap(tap);
        }
    }

    /// Ship one tick: diff `assignment` against the previous placement
    /// into per-node handoff sets, drain each node's tap for the delta
    /// on retained entities, and apply the resulting segment to the
    /// node's state (and its standby's queue). Call after the world has
    /// been mutated for the tick, with the placement computed for it.
    pub fn tick(&mut self, world: &mut World, assignment: &ShardAssignment) -> HandoffReport {
        assert_eq!(
            assignment.nodes, self.nodes,
            "placement topology must match the router's links"
        );
        let mut owned_now: Vec<BTreeSet<EntityId>> = vec![BTreeSet::new(); self.nodes];
        for (&e, &n) in &assignment.node_of {
            owned_now[n].insert(e);
        }
        let mut owned_before: Vec<BTreeSet<EntityId>> = vec![BTreeSet::new(); self.nodes];
        if let Some(prev) = &self.prev {
            for (&e, &n) in &prev.node_of {
                if n < self.nodes {
                    owned_before[n].insert(e);
                }
            }
        }
        let mut report = HandoffReport {
            gained: vec![Vec::new(); self.nodes],
            dropped: vec![Vec::new(); self.nodes],
            segment_bytes: vec![0; self.nodes],
            snapshot_seq: vec![0; self.nodes],
        };
        for n in 0..self.nodes {
            // A link that stalled past the world's tap-retention window
            // was evicted: the stream is no longer a complete delta
            // source, so clear the node and re-ship its state whole.
            if world.tap_evicted(self.taps[n]) {
                world.detach_tap(self.taps[n]);
                self.taps[n] = world.attach_tap();
                let stale: Vec<EntityId> = {
                    let mut s: BTreeSet<EntityId> =
                        self.states[n].rows.keys().map(|(e, _)| *e).collect();
                    s.extend(owned_before[n].iter().copied());
                    s.into_iter().collect()
                };
                owned_before[n].clear();
                if !stale.is_empty() {
                    let clear = DeltaSegment { drops: stale, ..Default::default() };
                    report.segment_bytes[n] += clear.wire_bytes();
                    self.note_baseline(clear.drops.len() * 8);
                    self.ship(n, clear);
                }
                if let Some(m) = &self.metrics {
                    m.resyncs.inc();
                }
            }
            // Drain the link's tap: per retained entity, exactly the
            // columns whose values moved since the last shipment.
            let mut touched: BTreeMap<EntityId, BTreeSet<ComponentId>> = BTreeMap::new();
            let mut drained = 0u64;
            for change in world.tap_pending(self.taps[n]) {
                if let ChangeOp::Set { id, component, .. }
                | ChangeOp::Removed { id, component, .. } = &change.op
                {
                    touched.entry(*id).or_default().insert(*component);
                }
                drained += 1;
            }
            // Stamp the segment with the sequence it snapshots and ack
            // only up to it: records landing later stay pending.
            let snapshot = world.tap_cursor(self.taps[n]).unwrap_or(0) + drained;
            world.ack_tap_to(self.taps[n], snapshot);
            report.snapshot_seq[n] = snapshot;

            let mut seg = DeltaSegment::default();
            let mut baseline = 0usize;
            // gained entities: the receiving node holds nothing yet —
            // ship the full row image (by value, this is the whole
            // entity serialized under row framing)
            for &e in owned_now[n].difference(&owned_before[n]) {
                for (name, value) in world.components_of(e) {
                    let cid = world.component_id(name).expect("named column exists");
                    if self.named[n].insert(cid) {
                        seg.defines.push((cid, name.to_string()));
                    }
                    baseline += row_wire_bytes(name, &value);
                    seg.puts.push((e, cid, value));
                }
                report.gained[n].push(e);
            }
            // retained entities: only the columns the records named —
            // where by-value movement would re-serialize the whole row
            for (&e, comps) in &touched {
                if !owned_now[n].contains(&e) || !owned_before[n].contains(&e) {
                    continue; // gained ships whole; lost drops below
                }
                let mut touched_row = false;
                for &cid in comps {
                    let Some(name) = world.component_name(cid) else {
                        continue;
                    };
                    match world.get(e, name) {
                        Some(value) => {
                            if self.named[n].insert(cid) {
                                seg.defines.push((cid, name.to_string()));
                            }
                            seg.puts.push((e, cid, value));
                            touched_row = true;
                        }
                        None => {
                            if self.states[n].rows.contains_key(&(e, name.to_string())) {
                                seg.unsets.push((e, cid));
                                touched_row = true;
                            }
                        }
                    }
                }
                if touched_row {
                    for (name, value) in world.components_of(e) {
                        baseline += row_wire_bytes(name, &value);
                    }
                }
            }
            // lost entities: handed off to another node, or despawned
            // (a dead entity has no owner in the new placement)
            for &e in owned_before[n].difference(&owned_now[n]) {
                seg.drops.push(e);
                report.dropped[n].push(e);
                baseline += 8;
            }
            if !seg.is_empty() {
                report.segment_bytes[n] += seg.wire_bytes();
                self.note_baseline(baseline);
                self.ship(n, seg);
            }
        }
        self.entities_moved += if self.prev.is_some() {
            report.total_moved()
        } else {
            0 // the priming tick seeds state; nothing *moved*
        };
        if let Some(m) = &self.metrics {
            m.entities.add(if self.prev.is_some() {
                report.total_moved() as u64
            } else {
                0
            });
            let lag = (0..self.nodes)
                .filter_map(|n| self.standby_lag(n))
                .max()
                .unwrap_or(0);
            m.standby_lag.set(lag as i64);
        }
        self.prev = Some(assignment.clone());
        report
    }

    /// Account what the same traffic would have cost under the legacy
    /// by-value row framing.
    fn note_baseline(&mut self, bytes: usize) {
        self.baseline_bytes += bytes;
        if let Some(m) = &self.metrics {
            m.baseline_bytes.add(bytes as u64);
        }
    }

    /// Send one segment down a node's link: account it, apply it to the
    /// node's state, and enqueue it on the node's standby (which then
    /// catches up to its lag budget).
    fn ship(&mut self, n: NodeId, seg: DeltaSegment) {
        self.segments_sent += 1;
        self.rows_sent += seg.puts.len();
        self.handoff_bytes += seg.wire_bytes();
        if let Some(m) = &self.metrics {
            m.segments.inc();
            m.bytes.add(seg.wire_bytes() as u64);
            m.rows.add(seg.puts.len() as u64);
        }
        self.states[n].apply_segment(&seg);
        if let Some(sb) = &mut self.standbys[n] {
            sb.pending.push_back(seg);
            while sb.pending.len() > sb.lag_budget {
                let seg = sb.pending.pop_front().expect("nonempty");
                sb.replica.apply_segment(&seg);
            }
        }
    }
}

/// The by-value oracle: the rows node `node` owns under `assignment`,
/// read straight off the primary world. Post-handoff node-local state
/// must equal this exactly, every tick.
pub fn node_oracle(
    world: &World,
    assignment: &ShardAssignment,
    node: NodeId,
) -> HashMap<(EntityId, String), Value> {
    let mut rows = HashMap::new();
    for (&e, &n) in &assignment.node_of {
        if n == node && world.is_live(e) {
            for (name, value) in world.components_of(e) {
                rows.insert((e, name.to_string()), value);
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::arena_world;
    use crate::bubbles::BubbleConfig;
    use crate::shard::{step_flock, AssignPolicy, ShardManager};
    use gamedb_spatial::Vec2;

    const NODES: usize = 3;

    fn migrating_setup() -> (World, Vec<EntityId>, ShardManager) {
        // three squads far apart, plus an unpositioned global flag:
        // flocking everyone toward squad 0 forces bubble merges and
        // therefore cross-node migrations tick over tick
        let (mut w, ids) = arena_world(24, |i| {
            let squad = i / 8;
            Vec2::new(squad as f32 * 5000.0 + (i % 8) as f32 * 2.0, 0.0)
        });
        let flag = w.spawn();
        w.set(flag, "gold", Value::Int(777)).unwrap();
        let mgr = ShardManager::new(
            NODES,
            AssignPolicy::DynamicBubbles { cfg: BubbleConfig::default(), max_overload: 1.2 },
        );
        (w, ids, mgr)
    }

    fn churn(w: &mut World, ids: &[EntityId], t: usize) {
        step_flock(w, ids, Vec2::new(0.0, 0.0), 120.0);
        for (i, &e) in ids.iter().enumerate() {
            if i % 3 == t % 3 && w.is_live(e) {
                w.set_f32(e, "hp", 40.0 + (t * 7 + i) as f32).unwrap();
            }
        }
        if t == 4 {
            w.despawn(ids[5]);
        }
        if t == 6 {
            let e = w.spawn_at(Vec2::new(300.0, 10.0));
            w.set_f32(e, "hp", 55.0).unwrap();
        }
    }

    /// The tentpole's core acceptance: node-local state built purely
    /// from shipped segments is byte-identical to the by-value oracle
    /// at every tick of a migrating workload — handoffs, despawns,
    /// spawns, component churn, and unpositioned state included.
    #[test]
    fn segment_streamed_nodes_match_by_value_oracle_every_tick() {
        let (mut w, ids, mut mgr) = migrating_setup();
        let mut router = ShardRouter::new(&mut w, NODES);
        for t in 0..12 {
            churn(&mut w, &ids, t);
            let a = mgr.tick(&w, &[]);
            router.tick(&mut w, &a);
            for n in 0..NODES {
                assert_eq!(
                    router.node_state(n).rows,
                    node_oracle(&w, &a, n),
                    "node {n} diverged from by-value oracle at tick {t}"
                );
            }
        }
        assert!(
            router.entities_moved > 0,
            "the flock must actually force migrations"
        );
        router.detach(&mut w);
        assert_eq!(w.pending_deltas(), 0, "released taps stop recording");
    }

    /// The bandwidth acceptance: delta-framed handoff segments with
    /// per-link name tables must land strictly below shipping full row
    /// images under the legacy row framing.
    #[test]
    fn handoff_bytes_undercut_full_row_shipping() {
        let (mut w, ids, mut mgr) = migrating_setup();
        let mut router = ShardRouter::new(&mut w, NODES);
        for t in 0..12 {
            churn(&mut w, &ids, t);
            let a = mgr.tick(&w, &[]);
            router.tick(&mut w, &a);
        }
        assert!(router.handoff_bytes > 0 && router.rows_sent > 0);
        assert!(
            router.handoff_bytes < router.baseline_bytes,
            "segments ({} B) must undercut full-row shipping ({} B)",
            router.handoff_bytes,
            router.baseline_bytes
        );
        router.detach(&mut w);
    }

    /// ISSUE-8 satellite: identical seeds produce identical per-tick
    /// handoff sets, segment byte counts, and snapshot anchors — the
    /// segment-layer extension of
    /// `dynamic_bubbles_placement_is_deterministic_per_seed`.
    #[test]
    fn handoff_stream_is_deterministic_per_seed() {
        let run = || {
            let (mut w, ids, mut mgr) = migrating_setup();
            let mut router = ShardRouter::new(&mut w, NODES);
            let mut reports = Vec::new();
            for t in 0..10 {
                churn(&mut w, &ids, t);
                let a = mgr.tick(&w, &[]);
                reports.push(router.tick(&mut w, &a));
            }
            (reports, router.handoff_bytes, router.baseline_bytes)
        };
        let (r1, b1, base1) = run();
        let (r2, b2, base2) = run();
        assert_eq!(r1, r2, "per-tick handoff sets and bytes must match");
        assert_eq!((b1, base1), (b2, base2));
    }

    /// Warm standby: fed from the node's own segment stream, lag stays
    /// within budget, and failover replays exactly the buffered tail —
    /// the promoted replica equals the by-value oracle.
    #[test]
    fn standby_failover_replays_only_the_tail() {
        let (mut w, ids, mut mgr) = migrating_setup();
        let mut router = ShardRouter::new(&mut w, NODES);
        router.enable_standby(1, 3);
        let mut last = ShardAssignment::default();
        for t in 0..9 {
            churn(&mut w, &ids, t);
            last = mgr.tick(&w, &[]);
            router.tick(&mut w, &last);
            assert!(
                router.standby_lag(1).unwrap() <= 3,
                "standby lag must respect its budget"
            );
        }
        let lag = router.standby_lag(1).unwrap();
        assert!(lag > 0, "a lag budget of 3 must leave a tail to replay");
        let replayed = router.fail_over(1).unwrap();
        assert_eq!(replayed, lag, "failover replays exactly the tail");
        assert_eq!(
            router.node_state(1).rows,
            node_oracle(&w, &last, 1),
            "promoted standby must equal the by-value oracle"
        );
        assert!(router.standby_lag(1).is_none(), "standby consumed");
        router.detach(&mut w);
    }

    /// A router that stalls past the tap-retention window loses its
    /// links; the next tick re-ships each node's state whole and ends
    /// exact again.
    #[test]
    fn evicted_link_resyncs_node_state_exactly() {
        let (mut w, ids, mut mgr) = migrating_setup();
        w.set_tap_retention(Some(16));
        let mut router = ShardRouter::new(&mut w, NODES);
        let a = mgr.tick(&w, &[]);
        router.tick(&mut w, &a);
        // the router stalls while the world churns far past the window
        for t in 0..30 {
            churn(&mut w, &ids, t);
        }
        assert!(w.tap_evicted(router.taps[0]), "stall must evict the link");
        let a = mgr.tick(&w, &[]);
        router.tick(&mut w, &a);
        for n in 0..NODES {
            assert_eq!(
                router.node_state(n).rows,
                node_oracle(&w, &a, n),
                "node {n} must be exact after the resync"
            );
        }
        // and the re-attached links stream incrementally again
        churn(&mut w, &ids, 31);
        let a = mgr.tick(&w, &[]);
        router.tick(&mut w, &a);
        for n in 0..NODES {
            assert_eq!(router.node_state(n).rows, node_oracle(&w, &a, n));
        }
        router.detach(&mut w);
    }

    /// The report's change-stream anchors advance with the stream and
    /// the tap is acked exactly to them.
    #[test]
    fn segments_are_stamped_with_their_snapshot_seq() {
        let (mut w, ids, mut mgr) = migrating_setup();
        let mut router = ShardRouter::new(&mut w, NODES);
        let a = mgr.tick(&w, &[]);
        let first = router.tick(&mut w, &a);
        churn(&mut w, &ids, 0);
        let a = mgr.tick(&w, &[]);
        let second = router.tick(&mut w, &a);
        for n in 0..NODES {
            assert!(second.snapshot_seq[n] > first.snapshot_seq[n]);
            assert_eq!(
                w.tap_cursor(router.taps[n]),
                Some(second.snapshot_seq[n]),
                "tap acked exactly to the stamped snapshot"
            );
        }
        router.detach(&mut w);
    }
}
