//! Causality bubbles: motion-predicted dynamic partitioning.
//!
//! The paper (via EVE Online): "a continuous differential equation that
//! takes into account the acceleration of every space ship … allows them
//! to determine, for any given time interval, which ships can move within
//! range of each other; this way they can dynamically partition the map
//! into feasible units." This module implements that technique for our
//! worlds: integrate each entity's velocity and maximum acceleration over
//! the tick horizon to get a *reachability disk*; entities whose disks
//! (inflated by the interaction range) overlap land in the same bubble
//! (union-find over index-found neighbor pairs); each bubble's actions
//! then execute with no locking or validation at all, because no action
//! can cross a bubble boundary within the horizon.

use std::collections::HashMap;
use std::time::Instant;

use gamedb_core::{EffectBuffer, EntityId, World};
use gamedb_spatial::Vec2;

use crate::action::Action;
use crate::executor::{ExecStats, Executor};

/// Union-find over dense indices.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    pub fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    pub fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
    }
}

/// Parameters of the motion-prediction model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BubbleConfig {
    /// Tick horizon Δt in seconds.
    pub dt: f32,
    /// Maximum acceleration any entity can apply (the differential
    /// equation's bound).
    pub max_accel: f32,
    /// Range at which two entities can interact (attack reach, trade
    /// distance).
    pub interaction_range: f32,
}

impl Default for BubbleConfig {
    fn default() -> Self {
        BubbleConfig {
            dt: 1.0,
            max_accel: 2.0,
            interaction_range: 5.0,
        }
    }
}

impl BubbleConfig {
    /// Reachability radius of an entity moving at `speed`:
    /// `|v|·Δt + ½·a·Δt²`.
    pub fn reach(&self, speed: f32) -> f32 {
        speed * self.dt + 0.5 * self.max_accel * self.dt * self.dt
    }
}

/// The result of bubble partitioning.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    /// bubble id per entity
    pub bubble_of: HashMap<EntityId, usize>,
    /// entities per bubble
    pub bubbles: Vec<Vec<EntityId>>,
}

impl Partition {
    /// Number of bubbles.
    pub fn len(&self) -> usize {
        self.bubbles.len()
    }

    /// True when there are no bubbles.
    pub fn is_empty(&self) -> bool {
        self.bubbles.is_empty()
    }

    /// Size of the largest bubble.
    pub fn max_bubble(&self) -> usize {
        self.bubbles.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Mean bubble size.
    pub fn mean_bubble(&self) -> f32 {
        if self.bubbles.is_empty() {
            0.0
        } else {
            let total: usize = self.bubbles.iter().map(Vec::len).sum();
            total as f32 / self.bubbles.len() as f32
        }
    }
}

/// Compute the bubble partition of all positioned entities.
///
/// Velocity is read from the optional `vel` (vec2) component; entities
/// without one predict from speed 0 (reach = ½·a·Δt²). Neighbor pairs are
/// found through the world's spatial index with the maximal pair radius,
/// then refined with the per-pair test, so partitioning is O(n·k), not
/// O(n²) — bubbles must be cheaper than the contention they remove.
pub fn partition(world: &World, cfg: &BubbleConfig) -> Partition {
    let ids: Vec<EntityId> = world
        .entities()
        .filter(|&e| world.pos(e).is_some())
        .collect();
    let index_of: HashMap<EntityId, usize> =
        ids.iter().enumerate().map(|(i, &e)| (e, i)).collect();

    let speed_of = |e: EntityId| -> f32 {
        match world.get(e, "vel") {
            Some(gamedb_content::Value::Vec2(vx, vy)) => Vec2::new(vx, vy).len(),
            _ => 0.0,
        }
    };
    let reaches: Vec<f32> = ids.iter().map(|&e| cfg.reach(speed_of(e))).collect();
    let max_reach = reaches.iter().copied().fold(0.0f32, f32::max);

    let mut uf = UnionFind::new(ids.len());
    let mut near = Vec::new();
    for (i, &e) in ids.iter().enumerate() {
        let p = world.pos(e).expect("filtered to positioned entities");
        // any entity whose disk could overlap ours is within this radius
        let search = reaches[i] + max_reach + cfg.interaction_range;
        near.clear();
        world.within(p, search, &mut near);
        for &other in &near {
            if other == e {
                continue;
            }
            let Some(&j) = index_of.get(&other) else { continue };
            if j <= i {
                continue; // each pair once
            }
            let q = world.pos(other).expect("indexed entities have positions");
            let limit = reaches[i] + reaches[j] + cfg.interaction_range;
            if p.dist2(q) <= limit * limit {
                uf.union(i, j);
            }
        }
    }

    let mut bubble_index: HashMap<usize, usize> = HashMap::new();
    let mut bubbles: Vec<Vec<EntityId>> = Vec::new();
    let mut bubble_of = HashMap::new();
    for (i, &e) in ids.iter().enumerate() {
        let root = uf.find(i);
        let b = *bubble_index.entry(root).or_insert_with(|| {
            bubbles.push(Vec::new());
            bubbles.len() - 1
        });
        bubbles[b].push(e);
        bubble_of.insert(e, b);
    }
    Partition { bubble_of, bubbles }
}

/// Executor that partitions the world into causality bubbles and runs
/// each bubble's actions without any concurrency control.
///
/// Actions whose footprint spans bubbles (possible only for
/// beyond-horizon interactions, e.g. long-range trades) fall into a
/// residual phase executed after the bubbles.
#[derive(Debug, Clone, Copy, Default)]
pub struct BubbleExecutor {
    pub cfg: BubbleConfig,
}

impl BubbleExecutor {
    pub fn new(cfg: BubbleConfig) -> Self {
        BubbleExecutor { cfg }
    }

    /// Partition + assignment, exposed for the E6 reports.
    pub fn plan(&self, world: &World, actions: &[Action]) -> (Partition, Vec<Vec<usize>>, Vec<usize>) {
        let part = partition(world, &self.cfg);
        let mut per_bubble: Vec<Vec<usize>> = vec![Vec::new(); part.len()];
        let mut residual = Vec::new();
        'outer: for (i, a) in actions.iter().enumerate() {
            let mut fp = a.read_set();
            fp.extend(a.write_set());
            let mut bubble: Option<usize> = None;
            for e in fp {
                match part.bubble_of.get(&e) {
                    None => {
                        residual.push(i);
                        continue 'outer;
                    }
                    Some(&b) => match bubble {
                        None => bubble = Some(b),
                        Some(prev) if prev != b => {
                            residual.push(i);
                            continue 'outer;
                        }
                        Some(_) => {}
                    },
                }
            }
            match bubble {
                Some(b) => per_bubble[b].push(i),
                None => residual.push(i),
            }
        }
        (part, per_bubble, residual)
    }
}

impl Executor for BubbleExecutor {
    fn name(&self) -> &'static str {
        "bubbles"
    }

    fn execute(&self, world: &mut World, actions: &[Action]) -> ExecStats {
        let start = Instant::now();
        let (_part, per_bubble, residual) = self.plan(world, actions);

        // Bubbles are disjoint by construction, so their buffers merge
        // conflict-free. Fan out over at most `cores` worker threads —
        // each worker processes a contiguous run of bubbles into its own
        // buffer (merge order stays bubble order: deterministic). Within
        // a bubble, actions run serially through an overlay view so each
        // sees its predecessors' writes — without this, two trades out of
        // one account both clamp against the tick-start balance and
        // overdraw it (the write-skew anomaly experiment E13 audits for).
        let run_bubble = |bubble_actions: &[usize], buf: &mut EffectBuffer| {
            let mut view = crate::view::OverlayView::new(world);
            for &i in bubble_actions {
                let mut tmp = EffectBuffer::new();
                actions[i].execute(&view, &mut tmp);
                view.absorb(&tmp);
                buf.merge(tmp);
            }
        };
        let busy: Vec<&Vec<usize>> =
            per_bubble.iter().filter(|b| !b.is_empty()).collect();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut merged = EffectBuffer::new();
        if cores <= 1 || busy.len() <= 1 {
            for bubble_actions in &busy {
                run_bubble(bubble_actions, &mut merged);
            }
        } else {
            let chunk = busy.len().div_ceil(cores);
            let groups: Vec<&[&Vec<usize>]> = busy.chunks(chunk).collect();
            let mut buffers: Vec<EffectBuffer> =
                groups.iter().map(|_| EffectBuffer::new()).collect();
            let run_bubble = &run_bubble;
            crossbeam::thread::scope(|scope| {
                for (group, buf) in groups.iter().zip(buffers.iter_mut()) {
                    scope.spawn(move |_| {
                        for bubble_actions in *group {
                            run_bubble(bubble_actions, buf);
                        }
                    });
                }
            })
            .expect("bubble worker panicked");
            for buf in buffers {
                merged.merge(buf);
            }
        }
        merged.apply(world).expect("action effects are well-typed");

        // residual cross-bubble actions: serial
        for &i in &residual {
            let mut buf = EffectBuffer::new();
            actions[i].execute(world, &mut buf);
            buf.apply(world).expect("action effects are well-typed");
        }

        let max_bubble_actions = per_bubble.iter().map(Vec::len).max().unwrap_or(0);
        ExecStats {
            submitted: actions.len(),
            executed: actions.len(),
            rounds: busy.len() + residual.len(),
            aborts: 0,
            micros: start.elapsed().as_micros(),
            max_group: max_bubble_actions,
            critical_path: max_bubble_actions + residual.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::arena_world;
    use crate::executor::SerialExecutor;
    use gamedb_content::Value;

    fn clustered_world(
        clusters: usize,
        per_cluster: usize,
        spread: f32,
        gap: f32,
    ) -> (World, Vec<EntityId>) {
        arena_world(clusters * per_cluster, |i| {
            let c = i / per_cluster;
            let k = i % per_cluster;
            Vec2::new(
                c as f32 * gap + (k % 4) as f32 * spread,
                (k / 4) as f32 * spread,
            )
        })
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(3, 4);
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(3));
        uf.union(1, 3);
        assert_eq!(uf.find(0), uf.find(4));
        assert_ne!(uf.find(2), uf.find(0));
    }

    #[test]
    fn far_clusters_get_separate_bubbles() {
        let (w, _) = clustered_world(4, 8, 2.0, 1000.0);
        let part = partition(&w, &BubbleConfig::default());
        assert_eq!(part.len(), 4);
        assert_eq!(part.max_bubble(), 8);
    }

    #[test]
    fn dense_world_collapses_to_one_bubble() {
        let (w, _) = clustered_world(1, 32, 2.0, 0.0);
        let part = partition(&w, &BubbleConfig::default());
        assert_eq!(part.len(), 1);
    }

    #[test]
    fn reach_follows_velocity() {
        let cfg = BubbleConfig {
            dt: 2.0,
            max_accel: 1.0,
            interaction_range: 0.0,
        };
        assert_eq!(cfg.reach(0.0), 2.0); // 0.5*1*4
        assert_eq!(cfg.reach(3.0), 8.0); // 3*2 + 2

        // two stationary entities 30 apart: separate bubbles; give one a
        // big velocity toward the other: same bubble
        let (mut w, ids) = arena_world(2, |i| Vec2::new(i as f32 * 30.0, 0.0));
        w.define_component("vel", gamedb_content::ValueType::Vec2)
            .unwrap();
        let p1 = partition(&w, &cfg);
        assert_eq!(p1.len(), 2);
        w.set(ids[0], "vel", Value::Vec2(14.0, 0.0)).unwrap();
        let p2 = partition(&w, &cfg);
        assert_eq!(p2.len(), 1, "fast mover can reach the other within dt");
    }

    #[test]
    fn bubble_executor_matches_serial_on_attacks() {
        let (mut w1, ids) = clustered_world(4, 8, 2.0, 500.0);
        let (mut w2, _) = clustered_world(4, 8, 2.0, 500.0);
        // attacks inside each cluster
        let mut batch = Vec::new();
        for c in 0..4 {
            for k in 0..7 {
                batch.push(Action::Attack {
                    attacker: ids[c * 8 + k],
                    target: ids[c * 8 + k + 1],
                });
            }
        }
        SerialExecutor.execute(&mut w1, &batch);
        let stats = BubbleExecutor::default().execute(&mut w2, &batch);
        assert_eq!(w1.rows(), w2.rows());
        assert_eq!(stats.executed, batch.len());
        // four bubbles working
        assert_eq!(stats.rounds, 4);
    }

    #[test]
    fn cross_bubble_actions_go_residual() {
        let (w, ids) = clustered_world(2, 4, 1.0, 500.0);
        let exec = BubbleExecutor::default();
        let batch = vec![
            Action::Attack {
                attacker: ids[0],
                target: ids[1],
            },
            // long-range trade across clusters
            Action::Trade {
                from: ids[0],
                to: ids[7],
                amount: 10,
            },
        ];
        let (part, per_bubble, residual) = exec.plan(&w, &batch);
        assert_eq!(part.len(), 2);
        assert_eq!(residual, vec![1]);
        assert_eq!(per_bubble.iter().map(Vec::len).sum::<usize>(), 1);

        // and execution still applies the residual action
        let (mut w2, ids2) = clustered_world(2, 4, 1.0, 500.0);
        let batch2 = vec![Action::Trade {
            from: ids2[0],
            to: ids2[7],
            amount: 10,
        }];
        exec.execute(&mut w2, &batch2);
        assert_eq!(w2.get_i64(ids2[7], "gold"), Some(110));
    }

    #[test]
    fn density_sweep_bubble_counts_decrease() {
        // as gap shrinks, bubbles merge: bubble count must be monotonically
        // non-increasing across these gaps
        let mut counts = Vec::new();
        for gap in [1000.0, 100.0, 20.0, 5.0] {
            let (w, _) = clustered_world(8, 4, 1.0, gap);
            counts.push(partition(&w, &BubbleConfig::default()).len());
        }
        for pair in counts.windows(2) {
            assert!(pair[0] >= pair[1], "bubbles must merge as density grows: {counts:?}");
        }
        assert_eq!(counts[0], 8);
        assert_eq!(*counts.last().unwrap(), 1);
    }

    #[test]
    fn partition_stats() {
        let (w, _) = clustered_world(3, 5, 1.0, 400.0);
        let part = partition(&w, &BubbleConfig::default());
        assert_eq!(part.len(), 3);
        assert_eq!(part.max_bubble(), 5);
        assert!((part.mean_bubble() - 5.0).abs() < 1e-6);
    }
}
