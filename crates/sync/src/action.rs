//! Player actions as transactions.
//!
//! "Players are performing conflicting actions at a very high rate" — the
//! consistency problem of the paper's MMO section. An [`Action`] is a
//! small transaction over world entities with a statically known
//! *footprint* (read set / write set), which is what every executor in
//! this crate schedules around: 2PL locks the footprint, OCC validates
//! it, and causality bubbles guarantee footprints never cross bubble
//! boundaries.

use gamedb_content::Value;
use gamedb_core::{Effect, EffectBuffer, EntityId, World};
use gamedb_spatial::Vec2;

use crate::view::StateView;

/// One player action (a mini-transaction).
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Move an entity toward a target point at a speed (per-tick step).
    Move { who: EntityId, to: Vec2, speed: f32 },
    /// Attack: read attacker's `dmg`, subtract from target's `hp`.
    Attack { attacker: EntityId, target: EntityId },
    /// Transfer `amount` gold from `from` to `to` (clamped at balance).
    Trade {
        from: EntityId,
        to: EntityId,
        amount: i64,
    },
    /// Heal target by the healer's `power`.
    Heal { healer: EntityId, target: EntityId },
    /// Pick up an item entity: adds its `value` to the player's gold and
    /// despawns the item.
    Pickup { player: EntityId, item: EntityId },
}

impl Action {
    /// Entities this action reads (includes everything written).
    pub fn read_set(&self) -> Vec<EntityId> {
        match self {
            Action::Move { who, .. } => vec![*who],
            Action::Attack { attacker, target } => vec![*attacker, *target],
            Action::Trade { from, to, .. } => vec![*from, *to],
            Action::Heal { healer, target } => vec![*healer, *target],
            Action::Pickup { player, item } => vec![*player, *item],
        }
    }

    /// Entities this action writes.
    pub fn write_set(&self) -> Vec<EntityId> {
        match self {
            Action::Move { who, .. } => vec![*who],
            Action::Attack { target, .. } => vec![*target],
            Action::Trade { from, to, .. } => vec![*from, *to],
            Action::Heal { target, .. } => vec![*target],
            Action::Pickup { player, item } => vec![*player, *item],
        }
    }

    /// True when the two actions' footprints conflict (any write-write or
    /// read-write overlap on an entity).
    pub fn conflicts_with(&self, other: &Action) -> bool {
        let (r1, w1) = (self.read_set(), self.write_set());
        let (r2, w2) = (other.read_set(), other.write_set());
        w1.iter().any(|e| r2.contains(e) || w2.contains(e))
            || w2.iter().any(|e| r1.contains(e))
    }

    /// Execute against a read view of tick state, emitting effects.
    ///
    /// Wave executors pass the wave-start [`World`]; the bubble executor
    /// passes an [`crate::view::OverlayView`] so actions in one bubble
    /// observe each other (serial-within-bubble). Uses only commutative
    /// effects (`Add`, `AddVec2`, `Min`) plus despawn, so conflict-free
    /// actions may execute in any order within a wave. Actions against
    /// dead entities become no-ops (players race against deaths
    /// constantly).
    pub fn execute(&self, world: &impl StateView, buf: &mut EffectBuffer) {
        match self {
            Action::Move { who, to, speed } => {
                let Some(p) = world.view_pos(*who) else { return };
                let delta = *to - p;
                let d = delta.len();
                let step = if d <= *speed || d == 0.0 {
                    delta
                } else {
                    delta * (*speed / d)
                };
                buf.push(*who, gamedb_core::POS, Effect::AddVec2(step.x, step.y));
            }
            Action::Attack { attacker, target } => {
                if !world.view_is_live(*attacker) || !world.view_is_live(*target) {
                    return;
                }
                let dmg = world.view_f32(*attacker, "dmg").unwrap_or(1.0) as f64;
                buf.push(*target, "hp", Effect::Add(-dmg));
            }
            Action::Trade { from, to, amount } => {
                if !world.view_is_live(*from) || !world.view_is_live(*to) {
                    return;
                }
                let balance = world.view_i64(*from, "gold").unwrap_or(0);
                let amt = (*amount).clamp(0, balance.max(0));
                if amt == 0 {
                    return;
                }
                buf.push(*from, "gold", Effect::Add(-(amt as f64)));
                buf.push(*to, "gold", Effect::Add(amt as f64));
            }
            Action::Heal { healer, target } => {
                if !world.view_is_live(*healer) || !world.view_is_live(*target) {
                    return;
                }
                let power = world.view_f32(*healer, "power").unwrap_or(5.0) as f64;
                buf.push(*target, "hp", Effect::Add(power));
            }
            Action::Pickup { player, item } => {
                if !world.view_is_live(*player) || !world.view_is_live(*item) {
                    return;
                }
                let value = world.view_i64(*item, "value").unwrap_or(0) as f64;
                buf.push(*player, "gold", Effect::Add(value));
                buf.despawn(*item);
            }
        }
    }
}

/// Build a standard arena world for consistency experiments: `players`
/// player entities with hp/gold/dmg/power components.
pub fn arena_world(players: usize, place: impl Fn(usize) -> Vec2) -> (World, Vec<EntityId>) {
    let mut w = World::new();
    for (name, ty) in [
        ("hp", gamedb_content::ValueType::Float),
        ("dmg", gamedb_content::ValueType::Float),
        ("power", gamedb_content::ValueType::Float),
        ("gold", gamedb_content::ValueType::Int),
        ("value", gamedb_content::ValueType::Int),
    ] {
        w.define_component(name, ty).unwrap();
    }
    let mut ids = Vec::with_capacity(players);
    for i in 0..players {
        let e = w.spawn_at(place(i));
        w.set_f32(e, "hp", 100.0).unwrap();
        w.set_f32(e, "dmg", 5.0).unwrap();
        w.set_f32(e, "power", 3.0).unwrap();
        w.set(e, "gold", Value::Int(100)).unwrap();
        ids.push(e);
    }
    (w, ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_world(n: usize) -> (World, Vec<EntityId>) {
        arena_world(n, |i| Vec2::new(i as f32 * 10.0, 0.0))
    }

    fn apply(world: &mut World, action: &Action) {
        let mut buf = EffectBuffer::new();
        action.execute(world, &mut buf);
        buf.apply(world).unwrap();
    }

    #[test]
    fn move_steps_toward_target() {
        let (mut w, ids) = line_world(1);
        apply(
            &mut w,
            &Action::Move {
                who: ids[0],
                to: Vec2::new(10.0, 0.0),
                speed: 3.0,
            },
        );
        assert_eq!(w.pos(ids[0]), Some(Vec2::new(3.0, 0.0)));
        // arrives exactly when closer than speed
        apply(
            &mut w,
            &Action::Move {
                who: ids[0],
                to: Vec2::new(4.0, 0.0),
                speed: 3.0,
            },
        );
        assert_eq!(w.pos(ids[0]), Some(Vec2::new(4.0, 0.0)));
    }

    #[test]
    fn attack_and_heal() {
        let (mut w, ids) = line_world(2);
        apply(
            &mut w,
            &Action::Attack {
                attacker: ids[0],
                target: ids[1],
            },
        );
        assert_eq!(w.get_f32(ids[1], "hp"), Some(95.0));
        apply(
            &mut w,
            &Action::Heal {
                healer: ids[0],
                target: ids[1],
            },
        );
        assert_eq!(w.get_f32(ids[1], "hp"), Some(98.0));
    }

    #[test]
    fn trade_clamps_to_balance() {
        let (mut w, ids) = line_world(2);
        apply(
            &mut w,
            &Action::Trade {
                from: ids[0],
                to: ids[1],
                amount: 250,
            },
        );
        assert_eq!(w.get_i64(ids[0], "gold"), Some(0));
        assert_eq!(w.get_i64(ids[1], "gold"), Some(200));
        // broke player sends nothing
        apply(
            &mut w,
            &Action::Trade {
                from: ids[0],
                to: ids[1],
                amount: 10,
            },
        );
        assert_eq!(w.get_i64(ids[1], "gold"), Some(200));
    }

    #[test]
    fn pickup_despawns_item() {
        let (mut w, ids) = line_world(1);
        let item = w.spawn_at(Vec2::new(1.0, 0.0));
        w.set(item, "value", Value::Int(42)).unwrap();
        apply(
            &mut w,
            &Action::Pickup {
                player: ids[0],
                item,
            },
        );
        assert_eq!(w.get_i64(ids[0], "gold"), Some(142));
        assert!(!w.is_live(item));
    }

    #[test]
    fn actions_on_dead_entities_are_noops() {
        let (mut w, ids) = line_world(2);
        w.despawn(ids[1]);
        apply(
            &mut w,
            &Action::Attack {
                attacker: ids[0],
                target: ids[1],
            },
        );
        apply(
            &mut w,
            &Action::Trade {
                from: ids[1],
                to: ids[0],
                amount: 10,
            },
        );
        assert_eq!(w.get_i64(ids[0], "gold"), Some(100));
    }

    #[test]
    fn conflict_detection() {
        let (_, ids) = line_world(4);
        let a = Action::Attack {
            attacker: ids[0],
            target: ids[1],
        };
        let b = Action::Attack {
            attacker: ids[2],
            target: ids[1],
        };
        let c = Action::Attack {
            attacker: ids[2],
            target: ids[3],
        };
        assert!(a.conflicts_with(&b), "write-write on same target");
        // b reads {2,1} writes {1}; c reads {2,3} writes {3}: both read
        // entity 2, but read-read is not a conflict.
        assert!(!b.conflicts_with(&c));
        assert!(!a.conflicts_with(&c));
        // move vs attack on same entity conflicts
        let m = Action::Move {
            who: ids[1],
            to: Vec2::ZERO,
            speed: 1.0,
        };
        assert!(m.conflicts_with(&a));
    }

    #[test]
    fn read_write_sets() {
        let (_, ids) = line_world(2);
        let t = Action::Trade {
            from: ids[0],
            to: ids[1],
            amount: 5,
        };
        assert_eq!(t.read_set(), vec![ids[0], ids[1]]);
        assert_eq!(t.write_set(), vec![ids[0], ids[1]]);
        let a = Action::Attack {
            attacker: ids[0],
            target: ids[1],
        };
        assert_eq!(a.write_set(), vec![ids[1]]);
    }
}
