//! Synthetic MMO workload generation.
//!
//! Substitute for the production traces of WoW / EVE / Everquest that the
//! paper's techniques were built against (see DESIGN.md §Substitutions).
//! Tunable knobs capture the phenomena those workloads stress:
//! `hotspot_fraction` reproduces the "everyone piles into one fight"
//! contention spike; the action mix reproduces the conflict profile; and
//! the fleet movement model reproduces the EVE solar-system scenario that
//! motivates causality bubbles.

use gamedb_content::{Value, ValueType};
use gamedb_core::{EntityId, World};
use gamedb_spatial::Vec2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::action::{arena_world, Action};

/// Workload parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of player entities.
    pub players: usize,
    /// Square world edge length.
    pub map_size: f32,
    /// Fraction of players placed inside the hotspot disk.
    pub hotspot_fraction: f32,
    /// Hotspot disk radius.
    pub hotspot_radius: f32,
    /// Actions generated per player per tick.
    pub actions_per_player: f32,
    /// Interaction radius for choosing attack/trade partners.
    pub interaction_range: f32,
    /// Action mix (attack, trade, move, heal) — normalized internally.
    pub mix: ActionMix,
    /// RNG seed (workloads are reproducible).
    pub seed: u64,
}

/// Relative weights of the action types.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActionMix {
    pub attack: f32,
    pub trade: f32,
    pub mv: f32,
    pub heal: f32,
}

impl Default for ActionMix {
    fn default() -> Self {
        ActionMix {
            attack: 0.5,
            trade: 0.1,
            mv: 0.3,
            heal: 0.1,
        }
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            players: 1024,
            map_size: 1000.0,
            hotspot_fraction: 0.3,
            hotspot_radius: 25.0,
            actions_per_player: 1.0,
            interaction_range: 10.0,
            mix: ActionMix::default(),
            seed: 42,
        }
    }
}

/// A generated MMO workload: the world plus a per-tick action stream.
pub struct Workload {
    pub world: World,
    pub players: Vec<EntityId>,
    cfg: WorkloadConfig,
    rng: StdRng,
}

impl Workload {
    /// Build the world: `hotspot_fraction` of players in the hotspot at
    /// the map center, the rest uniform.
    pub fn new(cfg: WorkloadConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let center = Vec2::new(cfg.map_size / 2.0, cfg.map_size / 2.0);
        let positions: Vec<Vec2> = (0..cfg.players)
            .map(|_| {
                if rng.gen::<f32>() < cfg.hotspot_fraction {
                    let angle = rng.gen::<f32>() * std::f32::consts::TAU;
                    let radius = rng.gen::<f32>() * cfg.hotspot_radius;
                    center + Vec2::new(angle.cos(), angle.sin()) * radius
                } else {
                    Vec2::new(
                        rng.gen::<f32>() * cfg.map_size,
                        rng.gen::<f32>() * cfg.map_size,
                    )
                }
            })
            .collect();
        let (world, players) = arena_world(cfg.players, |i| positions[i]);
        Workload {
            world,
            players,
            cfg,
            rng,
        }
    }

    /// Configuration used to build this workload.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Generate one tick's action batch. Attack/trade/heal partners are
    /// chosen among neighbors within `interaction_range` (conflicts are
    /// local, as in real games); moves pick random waypoints.
    pub fn next_batch(&mut self) -> Vec<Action> {
        let n_actions = (self.cfg.players as f32 * self.cfg.actions_per_player) as usize;
        let total =
            self.cfg.mix.attack + self.cfg.mix.trade + self.cfg.mix.mv + self.cfg.mix.heal;
        let mut batch = Vec::with_capacity(n_actions);
        let mut near = Vec::new();
        for _ in 0..n_actions {
            let who = self.players[self.rng.gen_range(0..self.players.len())];
            if !self.world.is_live(who) {
                continue;
            }
            let Some(p) = self.world.pos(who) else { continue };
            let roll = self.rng.gen::<f32>() * total;
            let pick_partner = |world: &World, rng: &mut StdRng, near: &mut Vec<EntityId>| {
                near.clear();
                world.within(p, self.cfg.interaction_range, near);
                near.retain(|&e| e != who);
                if near.is_empty() {
                    None
                } else {
                    Some(near[rng.gen_range(0..near.len())])
                }
            };
            let action = if roll < self.cfg.mix.attack {
                match pick_partner(&self.world, &mut self.rng, &mut near) {
                    Some(target) => Action::Attack {
                        attacker: who,
                        target,
                    },
                    None => continue,
                }
            } else if roll < self.cfg.mix.attack + self.cfg.mix.trade {
                match pick_partner(&self.world, &mut self.rng, &mut near) {
                    Some(to) => Action::Trade {
                        from: who,
                        to,
                        amount: self.rng.gen_range(1..20),
                    },
                    None => continue,
                }
            } else if roll < self.cfg.mix.attack + self.cfg.mix.trade + self.cfg.mix.mv {
                Action::Move {
                    who,
                    to: Vec2::new(
                        self.rng.gen::<f32>() * self.cfg.map_size,
                        self.rng.gen::<f32>() * self.cfg.map_size,
                    ),
                    speed: 2.0,
                }
            } else {
                match pick_partner(&self.world, &mut self.rng, &mut near) {
                    Some(target) => Action::Heal {
                        healer: who,
                        target,
                    },
                    None => continue,
                }
            };
            batch.push(action);
        }
        batch
    }
}

/// Build the EVE-style fleet world: `fleets` fleets of `ships` ships
/// each, spread across a `map_size` system, each fleet moving coherently
/// with speed `fleet_speed` (per-ship jitter on top). Ships carry a `vel`
/// component so causality-bubble partitioning can integrate motion.
pub fn fleet_world(
    fleets: usize,
    ships: usize,
    map_size: f32,
    fleet_speed: f32,
    seed: u64,
) -> (World, Vec<EntityId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut world, ids) = arena_world(fleets * ships, |_| Vec2::ZERO);
    world.define_component("vel", ValueType::Vec2).unwrap();
    let mut fleet_centers = Vec::new();
    let mut fleet_vels = Vec::new();
    for _ in 0..fleets {
        fleet_centers.push(Vec2::new(
            rng.gen::<f32>() * map_size,
            rng.gen::<f32>() * map_size,
        ));
        let angle = rng.gen::<f32>() * std::f32::consts::TAU;
        fleet_vels.push(Vec2::new(angle.cos(), angle.sin()) * fleet_speed);
    }
    for (i, &e) in ids.iter().enumerate() {
        let f = i / ships;
        let jitter = Vec2::new(rng.gen::<f32>() - 0.5, rng.gen::<f32>() - 0.5) * 20.0;
        world.set_pos(e, fleet_centers[f] + jitter).unwrap();
        let vj = Vec2::new(rng.gen::<f32>() - 0.5, rng.gen::<f32>() - 0.5) * 0.5;
        let v = fleet_vels[f] + vj;
        world.set(e, "vel", Value::Vec2(v.x, v.y)).unwrap();
    }
    (world, ids)
}

/// Advance every ship by its velocity for `dt` (the fleet simulation
/// step between bubble re-partitions).
pub fn step_fleet(world: &mut World, ids: &[EntityId], dt: f32) {
    for &e in ids {
        if let (Some(p), Some(Value::Vec2(vx, vy))) = (world.pos(e), world.get(e, "vel")) {
            world
                .set_pos(e, p + Vec2::new(vx, vy) * dt)
                .expect("live ship");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_reproducible() {
        let cfg = WorkloadConfig {
            players: 64,
            ..Default::default()
        };
        let mut w1 = Workload::new(cfg);
        let mut w2 = Workload::new(cfg);
        assert_eq!(w1.next_batch(), w2.next_batch());
        assert_eq!(w1.next_batch(), w2.next_batch());
    }

    #[test]
    fn hotspot_concentrates_players() {
        let cfg = WorkloadConfig {
            players: 400,
            hotspot_fraction: 0.5,
            hotspot_radius: 20.0,
            map_size: 1000.0,
            ..Default::default()
        };
        let w = Workload::new(cfg);
        let center = Vec2::new(500.0, 500.0);
        let inside = w
            .players
            .iter()
            .filter(|&&e| w.world.pos(e).unwrap().dist(center) <= 21.0)
            .count();
        // ~50% inside the hotspot (allow sampling noise)
        assert!(inside > 140 && inside < 260, "inside={inside}");
    }

    #[test]
    fn zero_hotspot_spreads_players() {
        let cfg = WorkloadConfig {
            players: 200,
            hotspot_fraction: 0.0,
            ..Default::default()
        };
        let w = Workload::new(cfg);
        let center = Vec2::new(500.0, 500.0);
        let inside = w
            .players
            .iter()
            .filter(|&&e| w.world.pos(e).unwrap().dist(center) <= 26.0)
            .count();
        assert!(inside < 10);
    }

    #[test]
    fn batch_respects_mix_extremes() {
        let cfg = WorkloadConfig {
            players: 128,
            hotspot_fraction: 1.0, // all together so partners exist
            mix: ActionMix {
                attack: 1.0,
                trade: 0.0,
                mv: 0.0,
                heal: 0.0,
            },
            ..Default::default()
        };
        let mut w = Workload::new(cfg);
        let batch = w.next_batch();
        assert!(!batch.is_empty());
        assert!(batch.iter().all(|a| matches!(a, Action::Attack { .. })));
    }

    #[test]
    fn isolated_players_skip_partner_actions() {
        let cfg = WorkloadConfig {
            players: 4,
            map_size: 100_000.0,
            hotspot_fraction: 0.0,
            mix: ActionMix {
                attack: 1.0,
                trade: 0.0,
                mv: 0.0,
                heal: 0.0,
            },
            ..Default::default()
        };
        let mut w = Workload::new(cfg);
        // nobody within range: batch is empty rather than self-attacks
        assert!(w.next_batch().is_empty());
    }

    #[test]
    fn fleet_world_moves_coherently() {
        let (mut w, ids) = fleet_world(3, 10, 10_000.0, 5.0, 7);
        assert_eq!(ids.len(), 30);
        let before: Vec<Vec2> = ids.iter().map(|&e| w.pos(e).unwrap()).collect();
        step_fleet(&mut w, &ids, 1.0);
        let mut moved = 0;
        for (i, &e) in ids.iter().enumerate() {
            if w.pos(e).unwrap().dist(before[i]) > 1.0 {
                moved += 1;
            }
        }
        assert_eq!(moved, 30, "all ships move");
    }
}
