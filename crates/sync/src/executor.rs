//! Transaction executors for a tick's action batch.
//!
//! "Traditional approaches such as locking transactions are often too
//! slow for games." This module makes that claim measurable: four
//! executors process the same action batch with identical results but
//! very different schedules —
//!
//! * [`SerialExecutor`] — the global-lock baseline: one action at a time.
//! * [`LockingExecutor`] — two-phase locking compressed into conflict-free
//!   *waves* (actions whose footprints are disjoint run together).
//! * [`OptimisticExecutor`] — OCC: run everything against the snapshot,
//!   validate footprints, retry aborted actions in later rounds.
//! * [`crate::bubbles::BubbleExecutor`] — causality bubbles (its own
//!   module).
//!
//! Waves matter because a wave is exactly the unit a server can fan out
//! over cores or shards: fewer waves = shorter critical path. `ExecStats`
//! reports both wall time and the schedule shape so experiment E6 can
//! print the paper's comparison.

use std::collections::HashSet;
use std::time::Instant;

use gamedb_core::{EffectBuffer, EntityId, World};

use crate::action::Action;

/// Statistics from executing one action batch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecStats {
    /// Actions submitted.
    pub submitted: usize,
    /// Actions that executed (non-conflicting slots; aborted OCC actions
    /// retry and eventually land here too).
    pub executed: usize,
    /// Scheduling rounds: waves (2PL), validation rounds (OCC), or
    /// bubbles executed serially (bubble executor reports bubble count).
    pub rounds: usize,
    /// OCC aborts (0 for other executors).
    pub aborts: usize,
    /// Wall-clock microseconds for the whole batch.
    pub micros: u128,
    /// Size of the largest parallel group (wave / bubble).
    pub max_group: usize,
    /// Sequential steps on the critical path given unlimited cores:
    /// actions for the serial executor, waves for 2PL, validation rounds
    /// for OCC, and (largest bubble's action count + residual actions)
    /// for causality bubbles. This is the schedule-quality number that
    /// compares executors independently of this machine's core count.
    pub critical_path: usize,
}

/// An executor applies a batch of actions to the world for one tick.
pub trait Executor {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Execute the batch. Implementations must be serially equivalent:
    /// the final world state must equal *some* serial order of the
    /// non-conflicting subsets they chose.
    fn execute(&self, world: &mut World, actions: &[Action]) -> ExecStats;
}

/// Global lock: every action is its own wave, applied immediately.
#[derive(Debug, Default, Clone, Copy)]
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn execute(&self, world: &mut World, actions: &[Action]) -> ExecStats {
        let start = Instant::now();
        for a in actions {
            let mut buf = EffectBuffer::new();
            a.execute(world, &mut buf);
            buf.apply(world).expect("action effects are well-typed");
        }
        ExecStats {
            submitted: actions.len(),
            executed: actions.len(),
            rounds: actions.len(),
            aborts: 0,
            micros: start.elapsed().as_micros(),
            max_group: 1,
            critical_path: actions.len(),
        }
    }
}

/// Two-phase locking, compressed into waves.
///
/// Actions are scanned in order; each action joins the earliest wave
/// whose locked entity set does not intersect its footprint (first-fit).
/// All actions in a wave execute against the wave-start snapshot and
/// their effects apply atomically — equivalent to acquiring all locks in
/// a canonical order, executing, and releasing.
#[derive(Debug, Default, Clone, Copy)]
pub struct LockingExecutor;

impl LockingExecutor {
    /// Build the wave schedule (exposed for tests and the bench harness).
    pub fn schedule(actions: &[Action]) -> Vec<Vec<usize>> {
        let mut waves: Vec<(HashSet<EntityId>, Vec<usize>)> = Vec::new();
        for (i, a) in actions.iter().enumerate() {
            let fp: Vec<EntityId> = {
                let mut v = a.read_set();
                v.extend(a.write_set());
                v
            };
            // first-fit: earliest wave with no lock conflicts; writes
            // conflict with everything, reads conflict with writes.
            // We approximate with full-footprint exclusivity, which is
            // strictly more conservative (a valid 2PL schedule).
            let slot = waves
                .iter()
                .position(|(locked, _)| fp.iter().all(|e| !locked.contains(e)));
            match slot {
                Some(s) => {
                    waves[s].0.extend(fp.iter().copied());
                    waves[s].1.push(i);
                }
                None => {
                    let mut locked = HashSet::new();
                    locked.extend(fp.iter().copied());
                    waves.push((locked, vec![i]));
                }
            }
        }
        waves.into_iter().map(|(_, idx)| idx).collect()
    }
}

impl Executor for LockingExecutor {
    fn name(&self) -> &'static str {
        "2pl"
    }

    fn execute(&self, world: &mut World, actions: &[Action]) -> ExecStats {
        let start = Instant::now();
        let waves = Self::schedule(actions);
        let mut max_group = 0;
        for wave in &waves {
            max_group = max_group.max(wave.len());
            let mut buf = EffectBuffer::new();
            for &i in wave {
                actions[i].execute(world, &mut buf);
            }
            buf.apply(world).expect("action effects are well-typed");
        }
        ExecStats {
            submitted: actions.len(),
            executed: actions.len(),
            rounds: waves.len(),
            aborts: 0,
            micros: start.elapsed().as_micros(),
            max_group,
            critical_path: waves.len(),
        }
    }
}

/// Optimistic concurrency control with retry rounds.
///
/// Every pending action runs against the round-start snapshot. Then
/// validation scans the batch in submission order: an action commits if
/// its footprint does not overlap the write sets of actions already
/// committed *in this round*; otherwise it aborts and retries next round.
#[derive(Debug, Clone, Copy)]
pub struct OptimisticExecutor {
    /// Safety valve: a batch with pathological conflicts still terminates
    /// (remaining actions fall back to serial execution).
    pub max_rounds: usize,
}

impl Default for OptimisticExecutor {
    fn default() -> Self {
        OptimisticExecutor { max_rounds: 64 }
    }
}

impl Executor for OptimisticExecutor {
    fn name(&self) -> &'static str {
        "occ"
    }

    fn execute(&self, world: &mut World, actions: &[Action]) -> ExecStats {
        let start = Instant::now();
        let mut pending: Vec<usize> = (0..actions.len()).collect();
        let mut rounds = 0usize;
        let mut aborts = 0usize;
        let mut max_group = 0usize;
        while !pending.is_empty() && rounds < self.max_rounds {
            rounds += 1;
            // validation: commit a conflict-free prefix-respecting subset
            let mut committed_writes: HashSet<EntityId> = HashSet::new();
            let mut committed: Vec<usize> = Vec::new();
            let mut retry: Vec<usize> = Vec::new();
            for &i in &pending {
                let a = &actions[i];
                let reads = a.read_set();
                let writes = a.write_set();
                let conflict = reads.iter().any(|e| committed_writes.contains(e))
                    || writes.iter().any(|e| committed_writes.contains(e));
                if conflict {
                    aborts += 1;
                    retry.push(i);
                } else {
                    committed_writes.extend(writes);
                    committed.push(i);
                }
            }
            max_group = max_group.max(committed.len());
            let mut buf = EffectBuffer::new();
            for &i in &committed {
                actions[i].execute(world, &mut buf);
            }
            buf.apply(world).expect("action effects are well-typed");
            pending = retry;
        }
        // pathological leftovers: serial fallback
        for &i in &pending {
            let mut buf = EffectBuffer::new();
            actions[i].execute(world, &mut buf);
            buf.apply(world).expect("action effects are well-typed");
            rounds += 1;
        }
        ExecStats {
            submitted: actions.len(),
            executed: actions.len(),
            rounds,
            aborts,
            micros: start.elapsed().as_micros(),
            max_group,
            critical_path: rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::arena_world;
    use gamedb_spatial::Vec2;

    /// Batch where players 0..n-1 each attack player (i+1): chain of
    /// conflicts.
    fn chain_batch(ids: &[EntityId]) -> Vec<Action> {
        (0..ids.len() - 1)
            .map(|i| Action::Attack {
                attacker: ids[i],
                target: ids[i + 1],
            })
            .collect()
    }

    /// Batch of disjoint pairs: (0→1), (2→3), … — fully parallel.
    fn pair_batch(ids: &[EntityId]) -> Vec<Action> {
        (0..ids.len() / 2)
            .map(|i| Action::Attack {
                attacker: ids[2 * i],
                target: ids[2 * i + 1],
            })
            .collect()
    }

    fn executors() -> Vec<Box<dyn Executor>> {
        vec![
            Box::new(SerialExecutor),
            Box::new(LockingExecutor),
            Box::new(OptimisticExecutor::default()),
        ]
    }

    #[test]
    fn all_executors_agree_on_final_state() {
        for batch_fn in [chain_batch, pair_batch] {
            let mut finals = Vec::new();
            for exec in executors() {
                let (mut w, ids) = arena_world(16, |i| Vec2::new(i as f32 * 5.0, 0.0));
                let batch = batch_fn(&ids);
                let stats = exec.execute(&mut w, &batch);
                assert_eq!(stats.executed, batch.len(), "{}", exec.name());
                finals.push((exec.name(), w.rows()));
            }
            let reference = finals[0].1.clone();
            for (name, rows) in &finals {
                assert_eq!(rows, &reference, "{name} diverged");
            }
        }
    }

    #[test]
    fn locking_waves_respect_conflicts() {
        let (_, ids) = arena_world(8, |i| Vec2::new(i as f32, 0.0));
        let batch = pair_batch(&ids);
        let waves = LockingExecutor::schedule(&batch);
        // fully disjoint: one wave
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 4);

        // everyone attacks player 0: fully serial
        let hot: Vec<Action> = (1..8)
            .map(|i| Action::Attack {
                attacker: ids[i],
                target: ids[0],
            })
            .collect();
        let waves = LockingExecutor::schedule(&hot);
        assert_eq!(waves.len(), 7);
    }

    #[test]
    fn occ_abort_rate_tracks_contention() {
        let (mut w1, ids1) = arena_world(32, |i| Vec2::new(i as f32 * 5.0, 0.0));
        let low = pair_batch(&ids1);
        let occ = OptimisticExecutor::default();
        let low_stats = occ.execute(&mut w1, &low);
        assert_eq!(low_stats.aborts, 0, "disjoint batch never aborts");

        let (mut w2, ids2) = arena_world(32, |i| Vec2::new(i as f32 * 5.0, 0.0));
        let hot: Vec<Action> = (1..32)
            .map(|i| Action::Attack {
                attacker: ids2[i],
                target: ids2[0],
            })
            .collect();
        let hot_stats = occ.execute(&mut w2, &hot);
        assert!(hot_stats.aborts > 0, "hotspot batch must abort");
        assert!(hot_stats.rounds > 1);
    }

    #[test]
    fn serial_rounds_equal_actions() {
        let (mut w, ids) = arena_world(10, |i| Vec2::new(i as f32 * 5.0, 0.0));
        let batch = pair_batch(&ids);
        let stats = SerialExecutor.execute(&mut w, &batch);
        assert_eq!(stats.rounds, batch.len());
        assert_eq!(stats.max_group, 1);
    }

    #[test]
    fn empty_batch() {
        for exec in executors() {
            let (mut w, _) = arena_world(4, |i| Vec2::new(i as f32, 0.0));
            let stats = exec.execute(&mut w, &[]);
            assert_eq!(stats.submitted, 0);
            assert_eq!(stats.executed, 0);
        }
    }

    #[test]
    fn trade_chain_conserves_gold() {
        // serial equivalence sanity: gold total is conserved by every
        // executor even under conflicting trades
        for exec in executors() {
            let (mut w, ids) = arena_world(8, |i| Vec2::new(i as f32 * 3.0, 0.0));
            let batch: Vec<Action> = (0..8)
                .map(|i| Action::Trade {
                    from: ids[i],
                    to: ids[(i + 1) % 8],
                    amount: 60,
                })
                .collect();
            exec.execute(&mut w, &batch);
            let total: i64 = ids
                .iter()
                .map(|&e| w.get_i64(e, "gold").unwrap())
                .sum();
            assert_eq!(total, 800, "{} lost gold", exec.name());
        }
    }
}
