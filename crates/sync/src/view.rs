//! Read views for action execution.
//!
//! Every executor in this crate runs actions against *some* read state:
//! the wave executors read the wave-start world, and the bubble executor
//! reads the world **through the bubble's own pending effects** so that
//! actions inside one bubble observe each other — serial-within-bubble
//! semantics. [`StateView`] abstracts the reads an [`crate::Action`]
//! performs; [`OverlayView`] is the world-plus-pending-effects
//! implementation the bubble executor uses.
//!
//! Without the overlay, two trades out of one account in the same bubble
//! both clamp against the tick-start balance and overdraw it — a
//! write-skew anomaly experiment E13's auditor catches. The overlay
//! restores serial equivalence: bubbles are disjoint, actions within a
//! bubble are serial, so the whole tick equals *some* serial order.

use std::collections::{HashMap, HashSet};

use gamedb_content::Value;
use gamedb_core::{Effect, EffectBuffer, EntityId, World, POS};
use gamedb_spatial::Vec2;

/// The reads an action may perform against tick state.
pub trait StateView {
    /// Component value, if the entity is live and the value present.
    fn view_get(&self, id: EntityId, component: &str) -> Option<Value>;

    /// Position, if the entity is live and positioned.
    fn view_pos(&self, id: EntityId) -> Option<Vec2>;

    /// True when the entity is live in this view.
    fn view_is_live(&self, id: EntityId) -> bool;

    /// Float component helper.
    fn view_f32(&self, id: EntityId, component: &str) -> Option<f32> {
        match self.view_get(id, component) {
            Some(Value::Float(x)) => Some(x),
            _ => None,
        }
    }

    /// Int component helper.
    fn view_i64(&self, id: EntityId, component: &str) -> Option<i64> {
        match self.view_get(id, component) {
            Some(Value::Int(x)) => Some(x),
            _ => None,
        }
    }
}

impl StateView for World {
    fn view_get(&self, id: EntityId, component: &str) -> Option<Value> {
        self.get(id, component)
    }

    fn view_pos(&self, id: EntityId) -> Option<Vec2> {
        self.pos(id)
    }

    fn view_is_live(&self, id: EntityId) -> bool {
        self.is_live(id)
    }
}

/// A world read through pending (unapplied) effects.
///
/// [`OverlayView::absorb`] folds an action's emitted effects into the
/// overlay with the same semantics [`EffectBuffer::apply`] would use, so
/// subsequent reads see the action's writes without mutating the shared
/// world — exactly what a bubble worker needs to run its actions serially
/// while other workers run other bubbles.
pub struct OverlayView<'a> {
    world: &'a World,
    /// Per-entity overlaid component values. Nested maps so the read
    /// path probes with `(&EntityId, &str)` without allocating — reads
    /// outnumber writes heavily in action execution.
    values: HashMap<EntityId, HashMap<String, Value>>,
    positions: HashMap<EntityId, Vec2>,
    despawned: HashSet<EntityId>,
}

impl<'a> OverlayView<'a> {
    pub fn new(world: &'a World) -> Self {
        OverlayView {
            world,
            values: HashMap::new(),
            positions: HashMap::new(),
            despawned: HashSet::new(),
        }
    }

    /// Number of overlaid component values (diagnostic).
    pub fn pending(&self) -> usize {
        self.values.values().map(HashMap::len).sum::<usize>()
            + self.positions.len()
            + self.despawned.len()
    }

    /// Fold a buffer's operations into the overlay so later reads observe
    /// them. Mirrors `EffectBuffer::apply`: adds treat absent numeric
    /// components as zero, effects on despawned entities are dropped.
    pub fn absorb(&mut self, buf: &EffectBuffer) {
        for (id, component, effect) in buf.ops() {
            if !self.view_is_live(*id) {
                continue;
            }
            if component == POS {
                if let Effect::AddVec2(dx, dy) = effect {
                    if let Some(p) = self.view_pos(*id) {
                        self.positions.insert(*id, p + Vec2::new(*dx, *dy));
                    }
                    continue;
                }
            }
            let current = self.view_get(*id, component);
            let next = match (effect, current) {
                (Effect::Set(v), _) => Some(v.clone()),
                (Effect::Add(x), Some(Value::Float(cur))) => Some(Value::Float(cur + *x as f32)),
                (Effect::Add(x), Some(Value::Int(cur))) => Some(Value::Int(cur + *x as i64)),
                (Effect::Add(x), None) => match self.world.component_type(component) {
                    Some(gamedb_content::ValueType::Float) => Some(Value::Float(*x as f32)),
                    Some(gamedb_content::ValueType::Int) => Some(Value::Int(*x as i64)),
                    _ => None,
                },
                (Effect::Min(x), Some(Value::Float(cur))) => {
                    Some(Value::Float(cur.min(*x as f32)))
                }
                (Effect::Max(x), Some(Value::Float(cur))) => {
                    Some(Value::Float(cur.max(*x as f32)))
                }
                (Effect::Min(x), Some(Value::Int(cur))) => Some(Value::Int(cur.min(*x as i64))),
                (Effect::Max(x), Some(Value::Int(cur))) => Some(Value::Int(cur.max(*x as i64))),
                (Effect::AddVec2(dx, dy), Some(Value::Vec2(x, y))) => {
                    Some(Value::Vec2(x + dx, y + dy))
                }
                _ => None,
            };
            if let Some(v) = next {
                self.values
                    .entry(*id)
                    .or_default()
                    .insert(component.clone(), v);
            }
        }
        for &id in buf.despawned() {
            self.despawned.insert(id);
        }
    }
}

impl StateView for OverlayView<'_> {
    fn view_get(&self, id: EntityId, component: &str) -> Option<Value> {
        if self.despawned.contains(&id) {
            return None;
        }
        self.values
            .get(&id)
            .and_then(|m| m.get(component))
            .cloned()
            .or_else(|| self.world.get(id, component))
    }

    fn view_pos(&self, id: EntityId) -> Option<Vec2> {
        if self.despawned.contains(&id) {
            return None;
        }
        self.positions.get(&id).copied().or_else(|| self.world.pos(id))
    }

    fn view_is_live(&self, id: EntityId) -> bool {
        !self.despawned.contains(&id) && self.world.is_live(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::arena_world;

    fn world_pair() -> (World, Vec<EntityId>) {
        arena_world(3, |i| Vec2::new(i as f32 * 4.0, 0.0))
    }

    #[test]
    fn overlay_reads_through_to_world() {
        let (w, ids) = world_pair();
        let view = OverlayView::new(&w);
        assert_eq!(view.view_i64(ids[0], "gold"), Some(100));
        assert_eq!(view.view_f32(ids[0], "hp"), Some(100.0));
        assert_eq!(view.view_pos(ids[1]), Some(Vec2::new(4.0, 0.0)));
        assert!(view.view_is_live(ids[2]));
        assert_eq!(view.pending(), 0);
    }

    #[test]
    fn absorbed_adds_are_visible() {
        let (w, ids) = world_pair();
        let mut view = OverlayView::new(&w);
        let mut buf = EffectBuffer::new();
        buf.push(ids[0], "gold", Effect::Add(-30.0));
        buf.push(ids[0], "hp", Effect::Add(5.0));
        view.absorb(&buf);
        assert_eq!(view.view_i64(ids[0], "gold"), Some(70));
        assert_eq!(view.view_f32(ids[0], "hp"), Some(105.0));
        // the world itself is untouched
        assert_eq!(w.get_i64(ids[0], "gold"), Some(100));
    }

    #[test]
    fn absorbed_adds_accumulate() {
        let (w, ids) = world_pair();
        let mut view = OverlayView::new(&w);
        for _ in 0..3 {
            let mut buf = EffectBuffer::new();
            buf.push(ids[0], "gold", Effect::Add(-25.0));
            view.absorb(&buf);
        }
        assert_eq!(view.view_i64(ids[0], "gold"), Some(25));
    }

    #[test]
    fn set_and_minmax_semantics() {
        let (w, ids) = world_pair();
        let mut view = OverlayView::new(&w);
        let mut buf = EffectBuffer::new();
        buf.push(ids[0], "hp", Effect::Set(Value::Float(40.0)));
        view.absorb(&buf);
        assert_eq!(view.view_f32(ids[0], "hp"), Some(40.0));
        let mut buf = EffectBuffer::new();
        buf.push(ids[0], "hp", Effect::Min(25.0));
        buf.push(ids[0], "gold", Effect::Max(500.0));
        view.absorb(&buf);
        assert_eq!(view.view_f32(ids[0], "hp"), Some(25.0));
        assert_eq!(view.view_i64(ids[0], "gold"), Some(500));
    }

    #[test]
    fn despawn_hides_entity() {
        let (w, ids) = world_pair();
        let mut view = OverlayView::new(&w);
        let mut buf = EffectBuffer::new();
        buf.despawn(ids[1]);
        view.absorb(&buf);
        assert!(!view.view_is_live(ids[1]));
        assert_eq!(view.view_get(ids[1], "gold"), None);
        assert_eq!(view.view_pos(ids[1]), None);
        assert!(view.view_is_live(ids[0]));
    }

    #[test]
    fn effects_on_despawned_entities_are_dropped() {
        let (w, ids) = world_pair();
        let mut view = OverlayView::new(&w);
        let mut buf = EffectBuffer::new();
        buf.despawn(ids[1]);
        view.absorb(&buf);
        let mut buf = EffectBuffer::new();
        buf.push(ids[1], "gold", Effect::Add(50.0));
        view.absorb(&buf);
        assert_eq!(view.view_get(ids[1], "gold"), None);
    }

    #[test]
    fn position_overlay_accumulates() {
        let (w, ids) = world_pair();
        let mut view = OverlayView::new(&w);
        for _ in 0..2 {
            let mut buf = EffectBuffer::new();
            buf.push(ids[0], POS, Effect::AddVec2(1.5, 0.5));
            view.absorb(&buf);
        }
        assert_eq!(view.view_pos(ids[0]), Some(Vec2::new(3.0, 1.0)));
        assert_eq!(w.pos(ids[0]), Some(Vec2::ZERO));
    }

    #[test]
    fn add_to_absent_component_uses_schema_zero() {
        let (mut w, ids) = world_pair();
        w.define_component("score", gamedb_content::ValueType::Int).unwrap();
        let mut view = OverlayView::new(&w);
        let mut buf = EffectBuffer::new();
        buf.push(ids[0], "score", Effect::Add(7.0));
        view.absorb(&buf);
        assert_eq!(view.view_i64(ids[0], "score"), Some(7));
    }
}
