//! Server→client state replication with tunable consistency.
//!
//! The paper: "Another way in which games deal with concurrency is by
//! having weaker consistency guarantees. Sometimes this means ensuring
//! that the world is consistent at only a very coarse level; animation …
//! may be out of sync between computers but the persistent game state is
//! the same." A [`Replica`] is a client's copy of the world; the
//! [`Replicator`] decides, per tick, which rows to ship. Three levels
//! trade bandwidth for divergence, measured by [`Divergence`].

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use gamedb_content::Value;
use gamedb_core::{
    ChangeOp, ComponentId, DurabilityWatermark, EntityId, Query, TapId, ViewId, World,
};
use gamedb_metrics::MetricsRegistry;
use gamedb_spatial::Vec2;

use crate::metrics::ReplMetrics;

/// Wire size of a value under the replication framing (1 type-tag byte
/// is accounted separately).
fn value_wire_bytes(v: &Value) -> usize {
    match v {
        Value::Float(_) => 4,
        Value::Int(_) => 8,
        Value::Bool(_) => 1,
        Value::Str(s) => 4 + s.len(),
        Value::Vec2(..) => 8,
    }
}

/// LEB128 length of a component id (mirrors the WAL's varint framing).
fn varint_len(v: u32) -> usize {
    match v {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

/// Wire size of one row under the legacy **row-shipping** framing:
/// entity id + length-prefixed component name + type tag + value. This
/// is the baseline [`Replicator::sync`]/[`Replicator::sync_live`]
/// account against.
pub(crate) fn row_wire_bytes(component: &str, v: &Value) -> usize {
    8 + 4 + component.len() + 1 + value_wire_bytes(v)
}

/// One shipped delta segment: the per-tick unit
/// [`Replicator::sync_stream`] sends instead of re-walked rows. Writes
/// are keyed by interned [`ComponentId`]; the name table ships once per
/// component per client ([`DeltaSegment::defines`]), so steady-state
/// rows cost a 1-byte varint where the row framing pays `4 + len(name)`
/// bytes — on top of shipping only the `old → new` columns the change
/// records named instead of whole rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaSegment {
    /// First-use name-table entries `(id, name)` — the client resolves
    /// later puts against its accumulated table.
    pub defines: Vec<(ComponentId, String)>,
    /// Component writes `(entity, column id, new value)`.
    pub puts: Vec<(EntityId, ComponentId, Value)>,
    /// Component removals `(entity, column id)`: the entity stays, the
    /// named column goes. Client→server replication never needs these
    /// (interest rules drop whole rows); cross-shard handoff streams do
    /// — a node-local state must track removals exactly to stay
    /// byte-identical to the by-value oracle.
    pub unsets: Vec<(EntityId, ComponentId)>,
    /// Whole-entity drops: the entity despawned on the primary, or its
    /// ownership was handed off this link's node. The receiver forgets
    /// every row it holds for the entity.
    pub drops: Vec<EntityId>,
}

impl DeltaSegment {
    /// True when nothing would go on the wire.
    pub fn is_empty(&self) -> bool {
        self.defines.is_empty()
            && self.puts.is_empty()
            && self.unsets.is_empty()
            && self.drops.is_empty()
    }

    /// Encoded size under the delta framing (the bandwidth metric the
    /// acceptance bound compares against [`row_wire_bytes`]).
    pub fn wire_bytes(&self) -> usize {
        let defines: usize = self
            .defines
            .iter()
            .map(|(id, name)| 1 + varint_len(id.as_u32()) + 4 + name.len())
            .sum();
        let puts: usize = self
            .puts
            .iter()
            .map(|(_, id, v)| 8 + varint_len(id.as_u32()) + 1 + value_wire_bytes(v))
            .sum();
        let unsets: usize = self
            .unsets
            .iter()
            .map(|(_, id)| 8 + varint_len(id.as_u32()))
            .sum();
        let drops = self.drops.len() * 8;
        defines + puts + unsets + drops
    }
}

/// Consistency levels from strongest to weakest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConsistencyLevel {
    /// Every component of every entity, every tick.
    Strict,
    /// Persistent state (non-`pos` components) every tick; positions only
    /// every `pos_period` ticks — animation may lag, inventory never does.
    CoarseEpoch { pos_period: u32 },
    /// Positions ship only when they drift beyond `threshold` world units
    /// on the replica; persistent state every `state_period` ticks.
    EventualSimilar { threshold: f32, state_period: u32 },
}

/// A client-side copy of (part of) the world state.
#[derive(Debug, Clone, Default)]
pub struct Replica {
    /// replicated component values
    pub rows: HashMap<(EntityId, String), Value>,
    /// Accumulated component name table (from [`DeltaSegment::defines`])
    /// — how id-keyed puts resolve to the name-keyed rows above.
    names: HashMap<ComponentId, String>,
}

impl Replica {
    /// Position the client believes an entity has.
    pub fn pos(&self, id: EntityId) -> Option<(f32, f32)> {
        match self.rows.get(&(id, "pos".to_string())) {
            Some(Value::Vec2(x, y)) => Some((*x, *y)),
            _ => None,
        }
    }

    /// Apply one delta segment: per-component reconciliation. Defines
    /// extend the name table; puts upsert exactly the named columns;
    /// unsets remove exactly the named columns; drops forget every row
    /// of the named entities — nothing else on the replica is touched.
    /// Application order (defines, puts, unsets, drops) means a put and
    /// a drop for the same entity in one segment resolve to the drop.
    pub fn apply_segment(&mut self, seg: &DeltaSegment) {
        for (id, name) in &seg.defines {
            self.names.insert(*id, name.clone());
        }
        for (entity, comp, value) in &seg.puts {
            let name = self
                .names
                .get(comp)
                .expect("segment defines precede first use of an id")
                .clone();
            self.rows.insert((*entity, name), value.clone());
        }
        for (entity, comp) in &seg.unsets {
            let name = self
                .names
                .get(comp)
                .expect("segment defines precede first use of an id")
                .clone();
            self.rows.remove(&(*entity, name));
        }
        if !seg.drops.is_empty() {
            let dropped: HashSet<EntityId> = seg.drops.iter().copied().collect();
            self.rows.retain(|(id, _), _| !dropped.contains(id));
        }
    }
}

/// Divergence between server truth and a replica.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Divergence {
    /// Mean position error (world units) over positioned entities.
    pub mean_pos_error: f32,
    /// Maximum position error.
    pub max_pos_error: f32,
    /// Number of non-position component values that differ.
    pub persistent_mismatches: usize,
}

/// Area-of-interest filter: a client only receives entities near its
/// focus (its character). Interest management is the third server-load
/// lever next to partitioning and weak consistency — the server simply
/// never ships most of the world to most clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interest {
    /// Focus point (usually the player character's position).
    pub center: (f32, f32),
    /// Entities within this radius are replicated.
    pub radius: f32,
    /// Hysteresis margin: entities already known to the client are kept
    /// until `radius + margin`, avoiding subscribe/unsubscribe flapping
    /// at the boundary.
    pub margin: f32,
}

impl Interest {
    /// Everything is interesting (no filtering).
    pub fn unbounded() -> Self {
        Interest {
            center: (0.0, 0.0),
            radius: f32::INFINITY,
            margin: 0.0,
        }
    }

    fn inside(&self, pos: (f32, f32), known: bool) -> bool {
        let dx = pos.0 - self.center.0;
        let dy = pos.1 - self.center.1;
        let r = if known {
            self.radius + self.margin
        } else {
            self.radius
        };
        if r.is_infinite() {
            return true;
        }
        dx * dx + dy * dy <= r * r
    }
}

/// Replicates a world to a client each tick under a consistency level.
#[derive(Debug, Clone)]
pub struct Replicator {
    pub level: ConsistencyLevel,
    /// Area-of-interest filter (defaults to unbounded).
    pub interest: Interest,
    /// Standing interest-bubble view (see [`Replicator::attach_view`]).
    interest_view: Option<ViewId>,
    /// Center/radius the view was last anchored at.
    view_anchor: ((f32, f32), f32),
    /// Change-stream tap (see [`Replicator::attach_stream`]).
    stream_tap: Option<TapId>,
    /// Entities touched by the stream since they were last fully
    /// shipped — the candidate set [`Replicator::sync_stream`] visits.
    dirty: BTreeSet<EntityId>,
    /// Per dirty entity, the columns the stream named since the last
    /// settling tick — the delta a segment ships for an entity the
    /// replica already fully knows.
    pending_comps: HashMap<EntityId, BTreeSet<ComponentId>>,
    /// Entities whose complete row image the replica currently holds
    /// (full-walked at least once and retained since). Only these may
    /// ship partial (changed-columns-only) updates.
    known: BTreeSet<EntityId>,
    /// Component ids whose names this client has been sent (the
    /// server-side mirror of the replica's name table).
    named: HashSet<ComponentId>,
    /// Whether the first (full) stream sync has happened.
    stream_primed: bool,
    tick: u32,
    /// rows shipped so far (the bandwidth proxy)
    pub rows_sent: usize,
    /// wire bytes shipped so far (row framing for full walks, delta
    /// framing for stream segments — the acceptance metric)
    pub bytes_sent: usize,
    /// Instrumentation handles ([`Replicator::attach_metrics`]).
    metrics: Option<ReplMetrics>,
}

impl Replicator {
    pub fn new(level: ConsistencyLevel) -> Self {
        Self::with_interest(level, Interest::unbounded())
    }

    /// Replicator with an area-of-interest filter.
    pub fn with_interest(level: ConsistencyLevel, interest: Interest) -> Self {
        Replicator {
            level,
            interest,
            interest_view: None,
            view_anchor: ((0.0, 0.0), 0.0),
            stream_tap: None,
            dirty: BTreeSet::new(),
            pending_comps: HashMap::new(),
            known: BTreeSet::new(),
            named: HashSet::new(),
            stream_primed: false,
            tick: 0,
            rows_sent: 0,
            bytes_sent: 0,
            metrics: None,
        }
    }

    /// Attach a metrics registry: segments, wire bytes, full-row vs
    /// delta-row counts, resyncs, and durability-gated ticks are
    /// reported into `registry` from here on. Several replicators
    /// sharing one registry sum into fleet totals. Purely
    /// observational.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(ReplMetrics::new(registry));
    }

    /// Detach the registry attached by [`Replicator::attach_metrics`].
    pub fn detach_metrics(&mut self) {
        self.metrics = None;
    }

    /// Ticks processed.
    pub fn ticks(&self) -> u32 {
        self.tick
    }

    /// Turn the interest bubble into a standing view: the world
    /// maintains the set of entities within `radius + margin` of the
    /// focus incrementally, so [`Replicator::sync_live`] walks only the
    /// bubble's members (plus unpositioned global state) instead of
    /// every row of the world. No-op for unbounded interest.
    ///
    pub fn attach_view(&mut self, world: &mut World) {
        if self.interest_view.is_none() && self.interest.radius.is_finite() {
            let (cx, cy) = self.interest.center;
            let r = self.interest.radius + self.interest.margin;
            self.interest_view =
                Some(world.register_view(Query::select().within(Vec2::new(cx, cy), r)));
            self.view_anchor = (self.interest.center, r);
        }
    }

    /// [`Replicator::attach_view`] for a world recovered from the
    /// persistence layer: the interest view survived the crash (the
    /// snapshot/WAL catalog re-materialized it), so a replicator rebuilt
    /// after a restart adopts the view matching its interest query
    /// instead of registering a duplicate; a fresh view is registered
    /// when none survives.
    ///
    /// Re-attachment is deliberately **not** the default `attach_view`
    /// behavior: a replicator retargets its view as the focus moves, so
    /// two live replicators must never share one — adoption is only
    /// sound when the caller knows the matching view is its own orphan
    /// (the restart path).
    pub fn reattach_view(&mut self, world: &mut World) {
        if self.interest_view.is_none() && self.interest.radius.is_finite() {
            let (cx, cy) = self.interest.center;
            let r = self.interest.radius + self.interest.margin;
            let query = Query::select().within(Vec2::new(cx, cy), r);
            self.interest_view = Some(
                world
                    .find_view(&query)
                    .unwrap_or_else(|| world.register_view(query)),
            );
            self.view_anchor = (self.interest.center, r);
        }
    }

    /// [`Replicator::sync`] driven by the standing interest view: the
    /// view is re-anchored if the focus moved, pending deltas are
    /// folded, and row shipping visits only bubble members and
    /// unpositioned entities — identical replica state. The expensive
    /// part of the full walk (materializing and interest-testing every
    /// row of every entity) shrinks to O(interest); what remains
    /// world-sized is a cheap liveness pass to find unpositioned
    /// global-state entities (one presence check per entity, no row
    /// materialization — a spatial view cannot contain them). Falls
    /// back to the full-walk sync when no view is attached.
    pub fn sync_live(&mut self, world: &mut World, replica: &mut Replica) {
        let Some(view) = self.interest_view.filter(|&v| world.has_view(v)) else {
            self.sync(world, replica);
            return;
        };
        let anchor = (self.interest.center, self.interest.radius + self.interest.margin);
        if anchor != self.view_anchor {
            let ((cx, cy), r) = anchor;
            world.retarget_view(view, Vec2::new(cx, cy), r);
            self.view_anchor = anchor;
        } else {
            world.refresh_views();
        }
        let mut candidates: Vec<EntityId> = world.view_rows(view).to_vec();
        // Unpositioned entities (global flags, quest state) replicate at
        // every interest level; a spatial view can never contain them.
        candidates.extend(world.entities().filter(|&e| world.pos(e).is_none()));
        self.sync_from(world, replica, Some(&candidates));
    }

    /// Turn incremental replication on: attaches the interest-bubble
    /// view (finite interest only) **and** a change-stream tap, so
    /// [`Replicator::sync_stream`] can ship exactly the rows each
    /// stream segment touched instead of re-walking bubble members.
    pub fn attach_stream(&mut self, world: &mut World) {
        self.attach_view(world);
        if self.stream_tap.is_none() {
            self.stream_tap = Some(world.attach_tap());
            self.dirty.clear();
            self.stream_primed = false;
        }
    }

    /// The change-stream tap this replicator reads, if streaming is
    /// attached — pass it to `World::tap_stats` to inspect lag, ack
    /// position, and eviction state from the outside.
    pub fn stream_tap(&self) -> Option<TapId> {
        self.stream_tap
    }

    /// Release the change-stream tap (and drop the interest view, if
    /// one was attached). Call this when the client disconnects: an
    /// abandoned tap would pin the world's change-stream window — every
    /// later mutation retained, waiting for an ack that never comes.
    pub fn detach_stream(&mut self, world: &mut World) {
        if let Some(tap) = self.stream_tap.take() {
            world.detach_tap(tap);
        }
        if let Some(view) = self.interest_view.take() {
            world.drop_view(view);
        }
        self.dirty.clear();
        self.pending_comps.clear();
        self.known.clear();
        // a later attach may serve a fresh Replica whose name table is
        // empty: the defines must ship again
        self.named.clear();
        self.stream_primed = false;
    }

    /// What the ship rules are for a given tick number, per the
    /// consistency level: `(send_all_pos, send_state, pos_threshold)`.
    fn ship_plan(&self, tick: u32) -> (bool, bool, Option<f32>) {
        match self.level {
            ConsistencyLevel::Strict => (true, true, None),
            ConsistencyLevel::CoarseEpoch { pos_period } => {
                (tick.is_multiple_of(pos_period.max(1)), true, None)
            }
            ConsistencyLevel::EventualSimilar {
                threshold,
                state_period,
            } => (
                false,
                tick.is_multiple_of(state_period.max(1)),
                Some(threshold),
            ),
        }
    }

    /// [`Replicator::sync`] driven by the change stream: the pending
    /// segment names every entity touched since the last shipment, the
    /// interest view's changelog names every entity the (possibly
    /// retargeted) bubble gained — and only those candidates are
    /// visited. Ships the **exact** replica state and row counts of the
    /// full-walk [`Replicator::sync_live`] (proven by test) while the
    /// per-tick work shrinks from O(bubble) to O(changed).
    ///
    /// Entities whose rows could not all ship under the current level's
    /// off-cycle rules (e.g. positions between `CoarseEpoch` epochs)
    /// stay in the dirty set and are revisited until a full-ship tick
    /// clears them. Falls back to [`Replicator::sync_live`] when no
    /// stream is attached.
    /// [`Replicator::sync_stream`] gated on the server's durability
    /// watermark. A `Strict` replicator refuses to ship while commits
    /// are still in flight behind the async WAL writer
    /// (`!durability.is_drained()`): strict consistency promises the
    /// replica only ever observes state the server cannot lose, and a
    /// crash would un-happen anything past the durable watermark.
    /// Returns whether the sync ran — a refused tick ships nothing and
    /// leaves the change stream accumulating; call again once the
    /// writer drains (e.g. after `WalStore::wait_durable`). The weaker
    /// levels already tolerate replica lag by design, so they ship
    /// regardless and the durability pipeline catches up underneath.
    pub fn sync_stream_durable(
        &mut self,
        world: &mut World,
        replica: &mut Replica,
        durability: &impl DurabilityWatermark,
    ) -> bool {
        if matches!(self.level, ConsistencyLevel::Strict) && !durability.is_drained() {
            if let Some(m) = &self.metrics {
                m.gated_ticks.inc();
            }
            return false;
        }
        self.sync_stream(world, replica);
        true
    }

    pub fn sync_stream(&mut self, world: &mut World, replica: &mut Replica) {
        let Some(tap) = self.stream_tap else {
            self.sync_live(world, replica);
            return;
        };
        if world.tap_evicted(tap) {
            // the retention policy dropped this consumer (the sync loop
            // stalled past the window): the stream is no longer a
            // complete delta source, so resynchronize from live state
            // and re-attach fresh
            world.detach_tap(tap);
            self.stream_tap = None;
            self.dirty.clear();
            self.pending_comps.clear();
            self.known.clear();
            self.named.clear(); // re-ship defines: the replica may be fresh
            self.stream_primed = false;
            if let Some(m) = &self.metrics {
                m.resyncs.inc();
            }
            self.sync_live(world, replica);
            self.stream_tap = Some(world.attach_tap());
            return;
        }
        // fold pending changes into the interest view, re-anchoring it
        // if the focus moved — mirroring sync_live exactly
        let view = self.interest_view.filter(|&v| world.has_view(v));
        let mut retargeted = false;
        if let Some(view) = view {
            let anchor = (
                self.interest.center,
                self.interest.radius + self.interest.margin,
            );
            if anchor != self.view_anchor {
                let ((cx, cy), r) = anchor;
                world.retarget_view(view, Vec2::new(cx, cy), r);
                self.view_anchor = anchor;
                retargeted = true;
            } else {
                world.refresh_views();
            }
        } else {
            world.refresh_views();
        }
        // the pending records name every touched entity — and, per
        // entity, exactly the columns whose values moved: the delta a
        // segment ships instead of the whole row
        for change in world.tap_pending(tap) {
            match &change.op {
                ChangeOp::Set { id, component, .. }
                | ChangeOp::Removed { id, component, .. } => {
                    self.dirty.insert(*id);
                    self.pending_comps.entry(*id).or_default().insert(*component);
                }
                ChangeOp::Spawned { id } | ChangeOp::Despawned { id, .. } => {
                    self.dirty.insert(*id);
                }
                _ => {}
            }
        }
        world.ack_tap(tap);
        // membership the bubble gained without the entity itself moving
        // (the focus moved): the view changelog names it
        if let Some(view) = view {
            let log = world.take_view_changelog(view);
            self.dirty.extend(log.entered);
            if retargeted {
                // a focus move changes interest geometry for *every*
                // member — entities in the hysteresis band can become
                // shippable without moving or re-entering the view, so
                // the whole membership is revisited this tick (the same
                // O(bubble) cost sync_live pays every tick, paid here
                // only when the focus actually moved)
                self.dirty.extend(world.view_rows(view).iter().copied());
            }
        }
        let (candidates, settled): (Vec<EntityId>, bool) = if !self.stream_primed {
            // first shipment: the full candidate set, like sync_live
            self.stream_primed = true;
            self.dirty.clear();
            self.pending_comps.clear();
            let c = match view {
                Some(v) => {
                    let mut c: Vec<EntityId> = world.view_rows(v).to_vec();
                    c.extend(world.entities().filter(|&e| world.pos(e).is_none()));
                    c
                }
                None => world.entity_vec(),
            };
            (c, false)
        } else {
            let c: Vec<EntityId> = self.dirty.iter().copied().collect();
            // a tick that ships everything shippable settles all debts;
            // partial ticks (epoch positions pending) keep entities dirty
            let (send_all_pos, send_state, pos_threshold) = self.ship_plan(self.tick + 1);
            let settled = send_state && (send_all_pos || pos_threshold.is_some());
            if settled {
                self.dirty.clear();
            }
            (c, settled)
        };
        self.ship_delta_segment(world, replica, &candidates);
        if settled {
            self.pending_comps.clear();
        }
    }

    /// The delta-encoded ship body: visit `candidates`, decide each row
    /// under the exact rules of [`Replicator::sync_from`], but collect
    /// the shipped rows into one [`DeltaSegment`] (id-keyed, names
    /// shipped once) and reconcile it onto the replica per component.
    /// Entities the replica does not fully know (first sight, or
    /// re-entering interest after their rows were dropped) ship their
    /// whole row; known entities ship only the columns the change
    /// records named since the last settling tick.
    fn ship_delta_segment(
        &mut self,
        world: &World,
        replica: &mut Replica,
        candidates: &[EntityId],
    ) {
        self.tick += 1;
        let (send_all_pos, send_state, pos_threshold) = self.ship_plan(self.tick);
        let interest = self.interest;
        let interesting = |id: EntityId, known: bool| -> bool {
            match world.pos(id) {
                Some(p) => interest.inside((p.x, p.y), known),
                None => true,
            }
        };
        // drop rows of dead entities and of entities that left the
        // interest area (all levels) — and forget their full-image
        // status, so a return ships the whole row again
        let in_replica: BTreeSet<EntityId> = replica.rows.keys().map(|(id, _)| *id).collect();
        let dropped: BTreeSet<EntityId> = in_replica
            .into_iter()
            .filter(|&id| !world.is_live(id) || !interesting(id, true))
            .collect();
        if !dropped.is_empty() {
            replica.rows.retain(|(id, _), _| !dropped.contains(id));
            for id in &dropped {
                self.known.remove(id);
            }
        }
        // decide-and-collect: decisions read the replica's pre-segment
        // state (each (entity, component) key is decided at most once
        // per tick, so deferring the writes cannot change a decision)
        let mut seg = DeltaSegment::default();
        let decide = |seg: &mut DeltaSegment,
                          named: &mut HashSet<ComponentId>,
                          id: EntityId,
                          cid: ComponentId,
                          name: &str,
                          value: Value| {
            let key = (id, name.to_string());
            let ship = if name == "pos" {
                if send_all_pos {
                    true
                } else if let Some(threshold) = pos_threshold {
                    match (&value, replica.rows.get(&key)) {
                        (Value::Vec2(sx, sy), Some(Value::Vec2(cx, cy))) => {
                            let (dx, dy) = (sx - cx, sy - cy);
                            (dx * dx + dy * dy).sqrt() > threshold
                        }
                        _ => true, // client has never seen it
                    }
                } else {
                    // CoarseEpoch off-cycle: ship only brand-new rows
                    !replica.rows.contains_key(&key)
                }
            } else if send_state {
                replica.rows.get(&key) != Some(&value)
            } else {
                !replica.rows.contains_key(&key)
            };
            if ship {
                if named.insert(cid) {
                    seg.defines.push((cid, name.to_string()));
                }
                seg.puts.push((id, cid, value));
            }
        };
        let mut full_rows = 0u64;
        let mut delta_rows = 0u64;
        for &id in candidates {
            if !world.is_live(id)
                || !interesting(id, replica.rows.contains_key(&(id, "pos".to_string())))
            {
                continue;
            }
            if !self.known.contains(&id) {
                // full row: the replica holds no (complete) image
                for (name, value) in world.components_of(id) {
                    let cid = world.component_id(name).expect("named column exists");
                    decide(&mut seg, &mut self.named, id, cid, name, value);
                }
                self.known.insert(id);
                full_rows += 1;
            } else if let Some(comps) = self.pending_comps.get(&id) {
                // delta: only the columns the records named
                for &cid in comps {
                    let Some(name) = world.component_name(cid) else {
                        continue;
                    };
                    let Some(value) = world.get(id, name) else {
                        continue; // removed column: full walks skip it too
                    };
                    decide(&mut seg, &mut self.named, id, cid, name, value);
                }
                delta_rows += 1;
            }
        }
        self.rows_sent += seg.puts.len();
        self.bytes_sent += seg.wire_bytes();
        if let Some(m) = &self.metrics {
            m.segments.inc();
            m.segment_bytes.add(seg.wire_bytes() as u64);
            m.rows.add(seg.puts.len() as u64);
            m.full_rows.add(full_rows);
            m.delta_rows.add(delta_rows);
        }
        replica.apply_segment(&seg);
    }

    /// Ship one tick of updates from `world` into `replica`.
    pub fn sync(&mut self, world: &World, replica: &mut Replica) {
        self.sync_from(world, replica, None);
    }

    /// The shared sync body: `candidates` limits which entities are
    /// visited (`None` = every row of the world); visiting a superset
    /// never changes the outcome because every row still passes the
    /// interest test.
    fn sync_from(
        &mut self,
        world: &World,
        replica: &mut Replica,
        candidates: Option<&[EntityId]>,
    ) {
        self.tick += 1;
        let (send_all_pos, send_state, pos_threshold) = self.ship_plan(self.tick);
        // Interest management: which live entities does this client care
        // about? Known entities get the hysteresis margin.
        let interest = self.interest;
        let interesting = |id: EntityId, known: bool| -> bool {
            match world.pos(id) {
                Some(p) => interest.inside((p.x, p.y), known),
                // unpositioned entities (global flags, quest state) always
                // replicate
                None => true,
            }
        };
        // remove rows of despawned entities (all levels: death is
        // persistent state) and of entities that left the interest area
        replica.rows.retain(|(id, _), _| {
            world.is_live(*id) && interesting(*id, true)
        });
        let mut rows_sent = 0usize;
        let mut bytes_sent = 0usize;
        let mut ship_row = |replica: &mut Replica, id: EntityId, comp: &str, value: Value| {
            let key = (id, comp.to_string());
            if comp == "pos" {
                let ship = if send_all_pos {
                    true
                } else if let Some(threshold) = pos_threshold {
                    match (&value, replica.rows.get(&key)) {
                        (Value::Vec2(sx, sy), Some(Value::Vec2(cx, cy))) => {
                            let (dx, dy) = (sx - cx, sy - cy);
                            (dx * dx + dy * dy).sqrt() > threshold
                        }
                        _ => true, // client has never seen it
                    }
                } else {
                    // CoarseEpoch off-cycle: ship only brand-new entities
                    !replica.rows.contains_key(&key)
                };
                if ship {
                    bytes_sent += row_wire_bytes(comp, &value);
                    replica.rows.insert(key, value);
                    rows_sent += 1;
                }
            } else {
                let ship = if send_state {
                    replica.rows.get(&key) != Some(&value)
                } else {
                    !replica.rows.contains_key(&key)
                };
                if ship {
                    bytes_sent += row_wire_bytes(comp, &value);
                    replica.rows.insert(key, value);
                    rows_sent += 1;
                }
            }
        };
        match candidates {
            None => {
                for (id, comp, value) in world.rows() {
                    if !interesting(id, replica.rows.contains_key(&(id, "pos".to_string()))) {
                        continue;
                    }
                    ship_row(replica, id, &comp, value);
                }
            }
            Some(ids) => {
                for &id in ids {
                    if !world.is_live(id)
                        || !interesting(id, replica.rows.contains_key(&(id, "pos".to_string())))
                    {
                        continue;
                    }
                    for (comp, value) in world.components_of(id) {
                        ship_row(replica, id, comp, value);
                    }
                }
            }
        }
        self.rows_sent += rows_sent;
        self.bytes_sent += bytes_sent;
        if let Some(m) = &self.metrics {
            m.full_walks.inc();
            m.full_walk_bytes.add(bytes_sent as u64);
        }
    }

    /// Measure divergence between `world` and `replica` over the whole
    /// world (unbounded interest).
    pub fn divergence(world: &World, replica: &Replica) -> Divergence {
        Self::divergence_within(world, replica, Interest::unbounded())
    }

    /// Divergence restricted to the client's interest area — what the
    /// player can actually observe being wrong.
    pub fn divergence_within(
        world: &World,
        replica: &Replica,
        interest: Interest,
    ) -> Divergence {
        let mut pos_errors = Vec::new();
        let mut mismatches = 0usize;
        let server_rows: BTreeMap<(EntityId, String), Value> = world
            .rows()
            .into_iter()
            .filter(|(id, _, _)| match world.pos(*id) {
                // mirror sync's subscribe rule: entities the client knows
                // get the hysteresis margin, unknown ones the base radius
                Some(p) => interest.inside(
                    (p.x, p.y),
                    replica.rows.contains_key(&(*id, "pos".to_string())),
                ),
                None => true,
            })
            .map(|(id, c, v)| ((id, c), v))
            .collect();
        for ((id, comp), value) in &server_rows {
            if comp == "pos" {
                if let Value::Vec2(sx, sy) = value {
                    let (cx, cy) = replica.pos(*id).unwrap_or((f32::MAX, f32::MAX));
                    let err = if cx == f32::MAX {
                        f32::MAX
                    } else {
                        ((sx - cx).powi(2) + (sy - cy).powi(2)).sqrt()
                    };
                    pos_errors.push(err.min(1e9));
                }
            } else if replica.rows.get(&(*id, comp.clone())) != Some(value) {
                mismatches += 1;
            }
        }
        // replica rows for entities/components the server lacks also count
        for key in replica.rows.keys() {
            if key.1 != "pos" && !server_rows.contains_key(key) {
                mismatches += 1;
            }
        }
        let mean = if pos_errors.is_empty() {
            0.0
        } else {
            pos_errors.iter().sum::<f32>() / pos_errors.len() as f32
        };
        Divergence {
            mean_pos_error: mean,
            max_pos_error: pos_errors.iter().copied().fold(0.0, f32::max),
            persistent_mismatches: mismatches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::arena_world;
    use gamedb_spatial::Vec2;

    fn moving_world(n: usize) -> (World, Vec<EntityId>) {
        arena_world(n, |i| Vec2::new(i as f32 * 3.0, 0.0))
    }

    fn drift(world: &mut World, ids: &[EntityId], step: f32) {
        for (i, &e) in ids.iter().enumerate() {
            let p = world.pos(e).unwrap();
            world
                .set_pos(e, Vec2::new(p.x + step, p.y + (i % 3) as f32 * 0.1))
                .unwrap();
        }
    }

    #[test]
    fn strict_replication_has_zero_divergence() {
        let (mut w, ids) = moving_world(10);
        let mut rep = Replicator::new(ConsistencyLevel::Strict);
        let mut client = Replica::default();
        for _ in 0..5 {
            drift(&mut w, &ids, 1.0);
            rep.sync(&w, &mut client);
            let d = Replicator::divergence(&w, &client);
            assert_eq!(d.mean_pos_error, 0.0);
            assert_eq!(d.persistent_mismatches, 0);
        }
    }

    #[test]
    fn coarse_epoch_lags_positions_but_not_state() {
        let (mut w, ids) = moving_world(10);
        let mut rep = Replicator::new(ConsistencyLevel::CoarseEpoch { pos_period: 5 });
        let mut client = Replica::default();
        rep.sync(&w, &mut client); // tick 1: initial (new rows ship)
        for tick in 2..=4 {
            drift(&mut w, &ids, 1.0);
            w.set_f32(ids[0], "hp", 40.0 + tick as f32).unwrap();
            rep.sync(&w, &mut client);
            let d = Replicator::divergence(&w, &client);
            assert!(d.mean_pos_error > 0.0, "positions lag between epochs");
            assert_eq!(d.persistent_mismatches, 0, "hp always in sync");
        }
        // epoch tick flushes positions
        drift(&mut w, &ids, 1.0);
        rep.sync(&w, &mut client); // tick 5
        let d = Replicator::divergence(&w, &client);
        assert_eq!(d.mean_pos_error, 0.0);
    }

    #[test]
    fn eventual_similar_bounds_drift() {
        let (mut w, ids) = moving_world(10);
        let threshold = 5.0;
        let mut rep = Replicator::new(ConsistencyLevel::EventualSimilar {
            threshold,
            state_period: 4,
        });
        let mut client = Replica::default();
        rep.sync(&w, &mut client);
        for _ in 0..30 {
            drift(&mut w, &ids, 0.9);
            rep.sync(&w, &mut client);
            let d = Replicator::divergence(&w, &client);
            // drift is bounded by threshold + one tick of movement
            assert!(
                d.max_pos_error <= threshold + 1.0 + 1e-3,
                "divergence {d:?} exceeds bound"
            );
        }
    }

    #[test]
    fn weaker_levels_send_fewer_rows() {
        let mk = |level| {
            let (mut w, ids) = moving_world(20);
            let mut rep = Replicator::new(level);
            let mut client = Replica::default();
            for _ in 0..20 {
                drift(&mut w, &ids, 0.3);
                rep.sync(&w, &mut client);
            }
            rep.rows_sent
        };
        let strict = mk(ConsistencyLevel::Strict);
        let coarse = mk(ConsistencyLevel::CoarseEpoch { pos_period: 5 });
        let eventual = mk(ConsistencyLevel::EventualSimilar {
            threshold: 5.0,
            state_period: 5,
        });
        assert!(strict > coarse, "strict={strict} coarse={coarse}");
        assert!(coarse > eventual, "coarse={coarse} eventual={eventual}");
    }

    #[test]
    fn despawns_propagate_at_every_level() {
        for level in [
            ConsistencyLevel::Strict,
            ConsistencyLevel::CoarseEpoch { pos_period: 10 },
            ConsistencyLevel::EventualSimilar {
                threshold: 100.0,
                state_period: 10,
            },
        ] {
            let (mut w, ids) = moving_world(5);
            let mut rep = Replicator::new(level);
            let mut client = Replica::default();
            rep.sync(&w, &mut client);
            w.despawn(ids[2]);
            rep.sync(&w, &mut client);
            assert!(client.pos(ids[2]).is_none(), "{level:?}");
            let d = Replicator::divergence(&w, &client);
            assert_eq!(d.persistent_mismatches, 0, "{level:?}");
        }
    }

    #[test]
    fn interest_limits_replication_to_nearby_entities() {
        let (mut w, ids) = moving_world(20); // x = 0, 3, 6, …, 57
        let interest = Interest {
            center: (0.0, 0.0),
            radius: 10.0,
            margin: 3.0,
        };
        let mut rep = Replicator::with_interest(ConsistencyLevel::Strict, interest);
        let mut client = Replica::default();
        rep.sync(&w, &mut client);
        // entities at x = 0, 3, 6, 9 are inside radius 10
        let known: Vec<_> = ids
            .iter()
            .filter(|&&e| client.pos(e).is_some())
            .collect();
        assert_eq!(known.len(), 4);
        // inside the interest area the client is exact
        let d = Replicator::divergence_within(&w, &client, interest);
        assert_eq!(d.mean_pos_error, 0.0);
        assert_eq!(d.persistent_mismatches, 0);
        // globally the client is missing most of the world (by design)
        let global = Replicator::divergence(&w, &client);
        assert!(global.max_pos_error > 0.0);

        // an entity walking away is kept until radius+margin, then dropped
        w.set_pos(ids[0], Vec2::new(12.0, 0.0)).unwrap();
        rep.sync(&w, &mut client);
        assert!(client.pos(ids[0]).is_some(), "hysteresis keeps it at 12 < 13");
        w.set_pos(ids[0], Vec2::new(14.0, 0.0)).unwrap();
        rep.sync(&w, &mut client);
        assert!(client.pos(ids[0]).is_none(), "dropped beyond radius+margin");
    }

    /// ISSUE-2: the standing interest-bubble view must reproduce the
    /// full-world walk exactly — same replica rows, same bandwidth —
    /// while the world churns, entities die, unpositioned state exists,
    /// and the focus itself moves.
    #[test]
    fn interest_view_sync_matches_full_walk() {
        let interest = Interest {
            center: (0.0, 0.0),
            radius: 12.0,
            margin: 4.0,
        };
        let (mut w_full, ids_f) = moving_world(30);
        let (mut w_view, ids_v) = moving_world(30);
        // an unpositioned global-state entity replicates at every level
        for w in [&mut w_full, &mut w_view] {
            let flag = w.spawn();
            w.set(flag, "gold", Value::Int(999)).unwrap();
        }
        let mut plain = Replicator::with_interest(ConsistencyLevel::Strict, interest);
        let mut viewed = Replicator::with_interest(ConsistencyLevel::Strict, interest);
        viewed.attach_view(&mut w_view);
        let mut r_plain = Replica::default();
        let mut r_view = Replica::default();
        let drift_live = |world: &mut World, ids: &[EntityId], step: f32| {
            for (i, &e) in ids.iter().enumerate() {
                let Some(p) = world.pos(e) else { continue };
                world
                    .set_pos(e, Vec2::new(p.x + step, p.y + (i % 3) as f32 * 0.1))
                    .unwrap();
            }
        };
        for tick in 0..12 {
            drift_live(&mut w_full, &ids_f, 0.8);
            drift_live(&mut w_view, &ids_v, 0.8);
            if tick == 5 {
                w_full.despawn(ids_f[1]);
                w_view.despawn(ids_v[1]);
            }
            if tick >= 6 {
                // the player walks: the bubble must follow its focus
                plain.interest.center = (tick as f32, 0.0);
                viewed.interest.center = (tick as f32, 0.0);
            }
            plain.sync(&w_full, &mut r_plain);
            viewed.sync_live(&mut w_view, &mut r_view);
            assert_eq!(r_plain.rows, r_view.rows, "tick {tick}");
            assert_eq!(plain.rows_sent, viewed.rows_sent, "tick {tick}");
        }
    }

    #[test]
    fn sync_live_without_view_is_plain_sync() {
        let (mut w, ids) = moving_world(10);
        let mut rep = Replicator::new(ConsistencyLevel::Strict);
        // unbounded interest: attach_view is a no-op, sync_live degrades
        rep.attach_view(&mut w);
        let mut client = Replica::default();
        drift(&mut w, &ids, 1.0);
        rep.sync_live(&mut w, &mut client);
        assert_eq!(Replicator::divergence(&w, &client).mean_pos_error, 0.0);
    }

    #[test]
    fn interest_reduces_bandwidth() {
        let run = |interest: Interest| {
            let (mut w, ids) = moving_world(100);
            let mut rep = Replicator::with_interest(ConsistencyLevel::Strict, interest);
            let mut client = Replica::default();
            for _ in 0..10 {
                drift(&mut w, &ids, 0.2);
                rep.sync(&w, &mut client);
            }
            rep.rows_sent
        };
        let unbounded = run(Interest::unbounded());
        let local = run(Interest {
            center: (0.0, 0.0),
            radius: 30.0,
            margin: 5.0,
        });
        assert!(
            local < unbounded / 3,
            "AOI must cut bandwidth: local={local} unbounded={unbounded}"
        );
    }

    /// ISSUE-4 satellite: stream-shipped replication must be exactly
    /// the full-walk `sync_live` oracle — same replica rows, same
    /// bandwidth, tick for tick — over a seeded 50-tick workload of
    /// drifting entities, spawns, despawns, component churn,
    /// unpositioned global state, and a wandering focus (bubble
    /// retargets), at every consistency level.
    #[test]
    fn sync_stream_equals_full_walk_over_seeded_workload() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for level in [
            ConsistencyLevel::Strict,
            ConsistencyLevel::CoarseEpoch { pos_period: 3 },
            ConsistencyLevel::EventualSimilar {
                threshold: 2.5,
                state_period: 4,
            },
        ] {
            let interest = Interest {
                center: (0.0, 0.0),
                radius: 15.0,
                margin: 4.0,
            };
            let (mut w_walk, mut ids_w) = moving_world(40);
            let (mut w_stream, mut ids_s) = moving_world(40);
            for w in [&mut w_walk, &mut w_stream] {
                let flag = w.spawn();
                w.set(flag, "gold", Value::Int(7)).unwrap();
            }
            let mut walk = Replicator::with_interest(level, interest);
            walk.attach_view(&mut w_walk);
            let mut stream = Replicator::with_interest(level, interest);
            stream.attach_stream(&mut w_stream);
            let mut r_walk = Replica::default();
            let mut r_stream = Replica::default();

            let mut rng = StdRng::seed_from_u64(0x5CA1E);
            for tick in 0..50 {
                // an identical random mutation script against both worlds
                let n_ops = 1 + rng.gen_range(0..4u32);
                for _ in 0..n_ops {
                    let roll = rng.gen_range(0..100u32);
                    let pick = rng.gen_range(0..ids_w.len().max(1));
                    match roll {
                        0..=54 => {
                            let (dx, dy) = (
                                rng.gen_range(-2.0..2.0f32),
                                rng.gen_range(-2.0..2.0f32),
                            );
                            for (w, ids) in
                                [(&mut w_walk, &ids_w), (&mut w_stream, &ids_s)]
                            {
                                let e = ids[pick];
                                if let Some(p) = w.pos(e) {
                                    w.set_pos(e, Vec2::new(p.x + dx, p.y + dy)).unwrap();
                                }
                            }
                        }
                        55..=74 => {
                            let hp = rng.gen_range(0.0..100.0f32);
                            for (w, ids) in
                                [(&mut w_walk, &ids_w), (&mut w_stream, &ids_s)]
                            {
                                let e = ids[pick];
                                if w.is_live(e) {
                                    w.set_f32(e, "hp", hp).unwrap();
                                }
                            }
                        }
                        75..=84 => {
                            let (x, y) = (
                                rng.gen_range(-20.0..20.0f32),
                                rng.gen_range(-20.0..20.0f32),
                            );
                            let hp = rng.gen_range(1.0..99.0f32);
                            let a = w_walk.spawn_at(Vec2::new(x, y));
                            w_walk.set_f32(a, "hp", hp).unwrap();
                            ids_w.push(a);
                            let b = w_stream.spawn_at(Vec2::new(x, y));
                            w_stream.set_f32(b, "hp", hp).unwrap();
                            ids_s.push(b);
                        }
                        _ => {
                            if ids_w.len() > 5 {
                                w_walk.despawn(ids_w[pick]);
                                w_stream.despawn(ids_s[pick]);
                            }
                        }
                    }
                }
                if tick % 5 == 4 {
                    // the player walks: the bubble must follow its focus
                    let focus = (tick as f32 * 0.7, rng.gen_range(-3.0..3.0f32));
                    walk.interest.center = focus;
                    stream.interest.center = focus;
                }
                walk.sync_live(&mut w_walk, &mut r_walk);
                stream.sync_stream(&mut w_stream, &mut r_stream);
                assert_eq!(
                    r_walk.rows, r_stream.rows,
                    "replica state diverged at tick {tick} under {level:?}"
                );
                assert!(
                    stream.rows_sent <= walk.rows_sent,
                    "stream shipping must never cost more bandwidth \
                     (tick {tick}, {level:?}): {} vs {}",
                    stream.rows_sent,
                    walk.rows_sent
                );
            }
            // ISSUE-5 acceptance: delta segments (id-keyed, changed
            // columns only) must land strictly below the row-shipping
            // baseline's wire bytes at every consistency level
            assert!(
                stream.bytes_sent < walk.bytes_sent,
                "delta segments must beat row shipping ({level:?}): {} vs {} bytes",
                stream.bytes_sent,
                walk.bytes_sent
            );
            if level == ConsistencyLevel::Strict {
                // Strict full walks re-ship every member's position
                // every tick; the stream ships only touched rows — the
                // bandwidth win must actually materialize
                assert!(
                    stream.rows_sent < walk.rows_sent,
                    "stream={} walk={}",
                    stream.rows_sent,
                    walk.rows_sent
                );
                println!(
                    "strict bandwidth: delta {} bytes vs row-ship {} bytes ({:.1}% of baseline)",
                    stream.bytes_sent,
                    walk.bytes_sent,
                    100.0 * stream.bytes_sent as f64 / walk.bytes_sent as f64
                );
            }
        }
    }

    /// A disconnect (`detach_stream`) followed by a reconnect serving a
    /// **fresh** replica must re-ship the component name table — the
    /// old client's defines are gone with it.
    #[test]
    fn reconnect_with_fresh_replica_reships_name_table() {
        let interest = Interest {
            center: (0.0, 0.0),
            radius: 10.0,
            margin: 2.0,
        };
        let (mut w, ids) = moving_world(8);
        let mut rep = Replicator::with_interest(ConsistencyLevel::Strict, interest);
        rep.attach_stream(&mut w);
        let mut first = Replica::default();
        rep.sync_stream(&mut w, &mut first);
        assert!(!first.rows.is_empty());
        // client disconnects; a new session starts with an empty replica
        rep.detach_stream(&mut w);
        rep.attach_stream(&mut w);
        let mut second = Replica::default();
        drift(&mut w, &ids, 0.5);
        rep.sync_stream(&mut w, &mut second);
        let d = Replicator::divergence_within(&w, &second, interest);
        assert_eq!(d.mean_pos_error, 0.0);
        assert_eq!(d.persistent_mismatches, 0);
    }

    /// A sync loop that stalls past the world's tap-retention window is
    /// evicted rather than pinning the record window; the next
    /// `sync_stream` detects the eviction, resynchronizes from live
    /// state, and re-attaches — the replica ends exact either way.
    #[test]
    fn evicted_stream_tap_resyncs_from_live_state() {
        let (mut w, ids) = moving_world(10);
        w.set_tap_retention(Some(32));
        let mut rep = Replicator::new(ConsistencyLevel::Strict);
        rep.attach_stream(&mut w);
        let mut client = Replica::default();
        rep.sync_stream(&mut w, &mut client);
        // the client stalls while the world churns far past the window
        for _ in 0..40 {
            drift(&mut w, &ids, 0.5);
        }
        assert!(
            w.retained_changes() <= 33,
            "window bounded despite the stalled consumer"
        );
        w.set(ids[0], "hp", Value::Float(7.0)).unwrap();
        rep.sync_stream(&mut w, &mut client);
        let d = Replicator::divergence(&w, &client);
        assert_eq!(d.mean_pos_error, 0.0, "resync restored exactness");
        assert_eq!(d.persistent_mismatches, 0);
        // the re-attached tap streams incrementally again
        drift(&mut w, &ids, 0.5);
        rep.sync_stream(&mut w, &mut client);
        assert_eq!(Replicator::divergence(&w, &client).mean_pos_error, 0.0);
    }

    #[test]
    fn detach_stream_releases_tap_and_view() {
        let interest = Interest {
            center: (0.0, 0.0),
            radius: 10.0,
            margin: 2.0,
        };
        let (mut w, ids) = moving_world(10);
        let mut rep = Replicator::with_interest(ConsistencyLevel::Strict, interest);
        rep.attach_stream(&mut w);
        let mut client = Replica::default();
        rep.sync_stream(&mut w, &mut client);
        assert_eq!(w.view_ids().len(), 1);
        // the disconnect path: tap + view released, later mutations are
        // not retained for a consumer that will never come back
        rep.detach_stream(&mut w);
        assert!(w.view_ids().is_empty(), "interest view dropped");
        drift(&mut w, &ids, 1.0);
        assert_eq!(w.pending_deltas(), 0, "no consumers ⇒ no recording");
        // the replicator still works, as a plain full-walk sync
        rep.sync_stream(&mut w, &mut client);
        let d = Replicator::divergence_within(&w, &client, interest);
        assert_eq!(d.mean_pos_error, 0.0);
    }

    #[test]
    fn sync_stream_without_tap_is_sync_live() {
        let (mut w, ids) = moving_world(10);
        let mut rep = Replicator::new(ConsistencyLevel::Strict);
        let mut client = Replica::default();
        drift(&mut w, &ids, 1.0);
        rep.sync_stream(&mut w, &mut client);
        assert_eq!(Replicator::divergence(&w, &client).mean_pos_error, 0.0);
    }

    /// ISSUE-8 tentpole: segments now carry component removals and
    /// whole-entity drops (what a cross-shard handoff stream ships when
    /// a column is removed, an entity despawns, or ownership moves),
    /// reconciled per component with in-segment puts losing to drops.
    #[test]
    fn segment_unsets_and_drops_reconcile_exactly() {
        let (mut w, ids) = moving_world(3);
        w.set_f32(ids[0], "hp", 50.0).unwrap();
        w.set_f32(ids[1], "hp", 60.0).unwrap();
        let hp = w.component_id("hp").unwrap();
        let pos = w.component_id("pos").unwrap();
        let mut replica = Replica::default();
        let full = DeltaSegment {
            defines: vec![(pos, "pos".into()), (hp, "hp".into())],
            puts: vec![
                (ids[0], pos, Value::Vec2(0.0, 0.0)),
                (ids[0], hp, Value::Float(50.0)),
                (ids[1], pos, Value::Vec2(3.0, 0.0)),
                (ids[1], hp, Value::Float(60.0)),
            ],
            ..Default::default()
        };
        replica.apply_segment(&full);
        assert_eq!(replica.rows.len(), 4);
        // an unset removes exactly the named column; a drop forgets the
        // entity wholesale even against a same-segment put
        let next = DeltaSegment {
            puts: vec![(ids[1], hp, Value::Float(61.0))],
            unsets: vec![(ids[0], hp)],
            drops: vec![ids[1]],
            ..Default::default()
        };
        assert!(next.wire_bytes() > 0);
        assert!(!next.is_empty());
        replica.apply_segment(&next);
        assert_eq!(replica.pos(ids[0]), Some((0.0, 0.0)));
        assert!(!replica.rows.contains_key(&(ids[0], "hp".to_string())));
        assert!(replica.pos(ids[1]).is_none(), "dropped entity forgotten");
        assert!(!replica.rows.contains_key(&(ids[1], "hp".to_string())));
        assert_eq!(replica.rows.len(), 1);
        // unsets/drops cost wire bytes: 8 + varint for unset, 8 for drop
        assert_eq!(next.wire_bytes(), (8 + 1 + 1 + 4) + (8 + 1) + 8);
    }

    #[test]
    fn new_entities_always_ship() {
        let (mut w, _) = moving_world(3);
        let mut rep = Replicator::new(ConsistencyLevel::EventualSimilar {
            threshold: 100.0,
            state_period: 100,
        });
        let mut client = Replica::default();
        rep.sync(&w, &mut client);
        let newborn = w.spawn_at(Vec2::new(50.0, 50.0));
        rep.sync(&w, &mut client);
        assert_eq!(client.pos(newborn), Some((50.0, 50.0)));
    }

    /// A stand-in durability pipeline for gating tests (the end-to-end
    /// test against a real async `WalStore` lives in the workspace-root
    /// `tests/async_durability.rs`).
    struct FakeWatermark {
        enqueued: u64,
        durable: u64,
    }

    impl DurabilityWatermark for FakeWatermark {
        fn enqueued_seq(&self) -> u64 {
            self.enqueued
        }
        fn durable_seq(&self) -> u64 {
            self.durable
        }
    }

    #[test]
    fn strict_replication_gates_on_the_durable_watermark() {
        let (mut w, ids) = moving_world(6);
        let mut rep = Replicator::new(ConsistencyLevel::Strict);
        rep.attach_stream(&mut w);
        let mut client = Replica::default();
        let mut mark = FakeWatermark {
            enqueued: 5,
            durable: 3,
        };
        drift(&mut w, &ids, 1.0);
        // in-flight commits behind the writer: Strict refuses to ship
        assert!(!rep.sync_stream_durable(&mut w, &mut client, &mark));
        assert!(client.rows.is_empty(), "a refused tick ships nothing");
        // the writer drains; the same tick now ships, nothing was lost
        mark.durable = 5;
        assert!(rep.sync_stream_durable(&mut w, &mut client, &mark));
        assert_eq!(Replicator::divergence(&w, &client).mean_pos_error, 0.0);
        assert_eq!(Replicator::divergence(&w, &client).persistent_mismatches, 0);
    }

    #[test]
    fn weaker_levels_ship_despite_durability_lag() {
        let (mut w, ids) = moving_world(6);
        let mut rep = Replicator::new(ConsistencyLevel::CoarseEpoch { pos_period: 1 });
        rep.attach_stream(&mut w);
        let mut client = Replica::default();
        let lagging = FakeWatermark {
            enqueued: 100,
            durable: 0,
        };
        drift(&mut w, &ids, 1.0);
        assert!(
            rep.sync_stream_durable(&mut w, &mut client, &lagging),
            "weak consistency already tolerates lag; durability gating is Strict-only"
        );
        assert_eq!(Replicator::divergence(&w, &client).mean_pos_error, 0.0);
    }
}
