//! The experiment harness: regenerates every table of the reproduction.
//!
//! The paper is a tutorial and publishes no tables of its own; DESIGN.md
//! §4 reifies each of its quantitative claims into experiments E1–E14.
//! This binary prints one table per experiment:
//!
//! ```text
//! cargo run --release -p gamedb-bench --bin expt -- all
//! cargo run --release -p gamedb-bench --bin expt -- e1 e6
//! cargo run --release -p gamedb-bench --bin expt -- --full e3
//! ```
//!
//! `--full` enlarges the sweeps (slower, smoother curves).
//! `--engine=interp|vm` selects how per-entity scripts execute in the
//! scripted experiments (default `vm`), so E1/E2 can be A/B'd between
//! the tree-walking interpreter and the bytecode VM.

use gamedb_bench::{clustered_world, combat_world, constant_density_world, f3, mean_ms, time_ms, Table};
use gamedb_content::{Value, ValueType};
use gamedb_core::{Access, EffectBuffer, EntityId, Plan, TableStats, TickExecutor, World};
use gamedb_core::Query;
use gamedb_persist::{
    Backend, BlobStore, CheckpointPolicy, GameStore, Migration, SchemaVersion, SnapshotMode,
    StructuredStore,
};
use gamedb_script::{
    check_script, compile, compile_program, parse_script, run_script, ExecMode, ExecOptions,
    Level, ScriptLibrary, Vm,
};
use gamedb_spatial::{
    Aabb, Annotation, BruteForce, BspTree, CostProfile, NavMesh, Quadtree, SpatialIndex,
    UniformGrid, Vec2,
};
use gamedb_sync::{
    collapse_moves, fleet_world, inject_speed_hacks, partition, step_fleet, step_flock,
    AggroTargeting, AssignPolicy, Auditor, BubbleConfig, BubbleExecutor, ClusterExecutor,
    ConsistencyLevel, Executor, LockingExecutor, NearestTargeting, OptimisticExecutor,
    RacyExecutor, Replica, Replicator, Role, SerialExecutor, ShardManager, Targeting, Workload,
    WorkloadConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn banner(id: &str, title: &str, claim: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("paper claim: {claim}");
    println!("================================================================");
}

/// Engine selected by `--engine=interp|vm` (default: the VM, matching
/// the `ScriptEngine` default).
static ENGINE: std::sync::OnceLock<ExecMode> = std::sync::OnceLock::new();

fn engine_mode() -> ExecMode {
    *ENGINE.get().unwrap_or(&ExecMode::Vm)
}

/// Per-entity scripted execution under the harness-selected engine.
/// In VM mode the script is lowered once and dispatched as bytecode;
/// in interp mode (or if the script doesn't lower) it tree-walks.
struct ScriptRunner<'a> {
    lib: &'a ScriptLibrary,
    name: &'a str,
    program: Option<gamedb_script::Program>,
    vm: Vm,
}

impl<'a> ScriptRunner<'a> {
    fn new(lib: &'a ScriptLibrary, name: &'a str, world: &World) -> Self {
        let program = match engine_mode() {
            ExecMode::Vm => compile_program(lib, name, world).ok(),
            ExecMode::Interp => None,
        };
        ScriptRunner { lib, name, program, vm: Vm::new() }
    }

    fn run(&mut self, world: &World, id: EntityId, buf: &mut EffectBuffer, opts: ExecOptions) {
        match &self.program {
            Some(p) => {
                self.vm.run(p, world, id, buf, opts).unwrap();
            }
            None => {
                run_script(self.lib, self.name, world, id, buf, opts).unwrap();
            }
        }
    }
}

// ---------------------------------------------------------------------
// E1 — script evaluation scaling
// ---------------------------------------------------------------------

fn e1(full: bool) {
    banner(
        "E1",
        "script evaluation: naive vs indexed vs compiled",
        "\"scripts where every object interacts with every other object\" are \
         Omega(n^2); indices make them near-linear",
    );
    let sizes: &[usize] = if full {
        &[250, 500, 1000, 2000, 4000, 8000, 16000]
    } else {
        &[250, 500, 1000, 2000, 4000]
    };
    const SRC: &str =
        "self.hp -= count(8; other.team != self.team) * 0.1; self.hp += 0.05;";
    let mut table = Table::new(&[
        "n",
        "naive ms/tick",
        "indexed ms/tick",
        "compiled ms/tick",
        "naive/indexed",
        "indexed/compiled",
    ]);
    println!("engine: {:?} (select with --engine=interp|vm)", engine_mode());
    for &n in sizes {
        let (world, ids) = constant_density_world(n, 0.05, 7);
        let mut lib = ScriptLibrary::new();
        lib.insert(parse_script("combat", SRC).unwrap());
        let compiled = compile(&lib, "combat", &world).unwrap();
        let mut runner = ScriptRunner::new(&lib, "combat", &world);

        let mut run_mode = |use_index: bool| {
            let mut buf = EffectBuffer::new();
            for &id in &ids {
                runner.run(
                    &world,
                    id,
                    &mut buf,
                    ExecOptions {
                        use_index,
                        ..Default::default()
                    },
                );
            }
            std::hint::black_box(buf.len());
        };
        let reps_naive = if n > 4000 { 1 } else { 3 };
        let naive = mean_ms(reps_naive, || run_mode(false));
        let indexed = mean_ms(5, || run_mode(true));
        let compiled_ms = mean_ms(5, || {
            let mut buf = EffectBuffer::new();
            for &id in &ids {
                compiled.run(&world, id, &mut buf, true).unwrap();
            }
            std::hint::black_box(buf.len());
        });
        table.row(&[
            n.to_string(),
            f3(naive),
            f3(indexed),
            f3(compiled_ms),
            f3(naive / indexed.max(1e-9)),
            f3(indexed / compiled_ms.max(1e-9)),
        ]);
    }
    table.print();
    println!(
        "expected shape: naive grows ~n^2, indexed/compiled near-linear; \
         naive/indexed ratio grows with n."
    );
}

// ---------------------------------------------------------------------
// E2 — the restricted language level
// ---------------------------------------------------------------------

fn e2(_full: bool) {
    banner(
        "E2",
        "restricted scripting level prevents expensive behaviour",
        "studios removed \"iteration and recursion from their scripting \
         languages\" to stop designers writing quadratic scripts",
    );
    // A designer's quadratic script: nested iteration over a huge radius.
    const PATHOLOGICAL: &str = r#"
        foreach within (1000) {
          foreach within (1000) {
            self.hp += 0.000001;
          }
        }"#;
    // The declarative rewrite a restricted designer must use instead.
    const DECLARATIVE: &str = "self.hp += count(1000) * count(1000) * 0.000001;";

    println!("engine: {:?} (select with --engine=interp|vm)", engine_mode());
    let n = 400;
    let (world, ids) = combat_world(n, 200.0, 3);
    let mut lib = ScriptLibrary::new();
    lib.insert(parse_script("bad", PATHOLOGICAL).unwrap());
    lib.insert(parse_script("good", DECLARATIVE).unwrap());

    let mut table = Table::new(&["script", "level", "accepted", "ms/entity"]);
    for (name, src) in [("bad", PATHOLOGICAL), ("good", DECLARATIVE)] {
        for level in [Level::Full, Level::Restricted] {
            let script = parse_script(name, src).unwrap();
            let errors = check_script(&script, &world, level);
            let accepted = errors.is_empty();
            let ms = if accepted {
                // the quadratic script is measured on few entities; the
                // declarative one on many — both report per-entity cost
                let sample = if name == "bad" { 5 } else { 100 };
                let mut runner = ScriptRunner::new(&lib, name, &world);
                let mut run_sample = || {
                    let mut buf = EffectBuffer::new();
                    for &id in ids.iter().take(sample) {
                        runner.run(&world, id, &mut buf, ExecOptions::default());
                    }
                    std::hint::black_box(buf.len());
                };
                run_sample(); // warmup
                let ms = mean_ms(2, run_sample);
                f3(ms / sample as f64)
            } else {
                "-".to_string()
            };
            table.row(&[
                name.to_string(),
                format!("{level:?}"),
                accepted.to_string(),
                ms,
            ]);
        }
    }
    table.print();

    // The optimizer performs the paper's rewrite mechanically: a designer
    // foreach becomes the declarative aggregate, and constant clutter
    // folds away. Same interpreter, same world — only the AST differs.
    println!("\noptimizer ablation: designer source vs optimizer output (interpreted, n=400)");
    let mut t2 = Table::new(&["script", "variant", "ms/entity", "rewrites", "folds"]);
    const DESIGNER: &str = "foreach within (8) { if other.team != self.team { self.hp -= other.dmg * 1 + 0; } }";
    const CLUTTER: &str =
        "let unused = count(8); if 1 < 2 { self.hp -= min(2, 5) * 1; } while false { self.hp += 1; }";
    for (name, src) in [("foreach combat", DESIGNER), ("constant clutter", CLUTTER)] {
        let script = parse_script(name, src).unwrap();
        let (opt, stats) = gamedb_script::optimize(&script);
        for (variant, body) in [("original", &script), ("optimized", &opt)] {
            let mut lib = ScriptLibrary::new();
            lib.insert((*body).clone());
            let sample = 200;
            let mut runner = ScriptRunner::new(&lib, name, &world);
            let mut run_sample = || {
                let mut buf = EffectBuffer::new();
                for &id in ids.iter().take(sample) {
                    runner.run(&world, id, &mut buf, ExecOptions::default());
                }
                std::hint::black_box(buf.len());
            };
            run_sample();
            let ms = mean_ms(3, run_sample);
            t2.row(&[
                name.into(),
                variant.into(),
                f3(ms / sample as f64),
                if variant == "optimized" { stats.foreach_rewrites.to_string() } else { "-".into() },
                if variant == "optimized" { stats.folded.to_string() } else { "-".into() },
            ]);
            // the rewrite's real payoff: the loop-free form compiles
            if let Ok(compiled) = compile(&lib, name, &world) {
                let sample = 200;
                let run_compiled = || {
                    let mut buf = EffectBuffer::new();
                    for &id in ids.iter().take(sample) {
                        compiled.run(&world, id, &mut buf, true).unwrap();
                    }
                    std::hint::black_box(buf.len());
                };
                run_compiled();
                let ms = mean_ms(3, run_compiled);
                t2.row(&[
                    name.into(),
                    format!("{variant}+compiled"),
                    f3(ms / sample as f64),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    t2.print();
    println!(
        "expected shape: the nested-foreach script is rejected by the \
         restricted level and is orders of magnitude slower where allowed; \
         the aggregate rewrite is accepted everywhere and cheap; the \
         optimizer's aggregate rewrite matches the hand-rewritten form."
    );
}

// ---------------------------------------------------------------------
// E3 — spatial index comparison
// ---------------------------------------------------------------------

fn e3(full: bool) {
    banner(
        "E3",
        "spatial index comparison (grid vs BSP vs quadtree vs scan)",
        "\"many games use traditional spatial indices such as BSP trees or \
         Octrees\"; index choice depends on distribution and churn",
    );
    let sizes: &[usize] = if full {
        &[1000, 4000, 16000, 64000]
    } else {
        &[1000, 4000, 16000]
    };
    let mut table = Table::new(&[
        "dist",
        "n",
        "index",
        "build ms",
        "1k range ms",
        "1k knn ms",
        "10% update ms",
    ]);
    for &clustered in &[false, true] {
        for &n in sizes {
            let (world, ids) = if clustered {
                clustered_world(n, 8, 2000.0, 15.0, 5)
            } else {
                constant_density_world(n, 0.05, 5)
            };
            let points: Vec<(u64, Vec2)> = ids
                .iter()
                .map(|&e| (e.to_bits(), world.pos(e).unwrap()))
                .collect();
            let bounds = points
                .iter()
                .fold(Aabb::from_size(1.0, 1.0), |b, &(_, p)| {
                    b.union(&Aabb::new(p, p))
                });
            let mut rng = StdRng::seed_from_u64(99);
            let queries: Vec<Vec2> = (0..1000)
                .map(|_| {
                    let (_, p) = points[rng.gen_range(0..points.len())];
                    p
                })
                .collect();
            let movers: Vec<(u64, Vec2)> = (0..n / 10)
                .map(|_| {
                    let (id, p) = points[rng.gen_range(0..points.len())];
                    (id, p + Vec2::new(rng.gen::<f32>() * 9.0, rng.gen::<f32>() * 9.0))
                })
                .collect();

            let mut bench_index = |name: &str, mut idx: Box<dyn SpatialIndex>| {
                if name == "scan" && n > 16000 {
                    table.row(&[
                        if clustered { "clustered" } else { "uniform" }.into(),
                        n.to_string(),
                        name.into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                    return;
                }
                let (_, build) = time_ms(|| {
                    for &(id, p) in &points {
                        idx.insert(id, p);
                    }
                });
                let mut out = Vec::new();
                let (_, range) = time_ms(|| {
                    for &q in &queries {
                        out.clear();
                        idx.query_range(q, 10.0, &mut out);
                        std::hint::black_box(out.len());
                    }
                });
                let (_, knn) = time_ms(|| {
                    for &q in &queries {
                        out.clear();
                        idx.query_knn(q, 8, &mut out);
                        std::hint::black_box(out.len());
                    }
                });
                let (_, update) = time_ms(|| {
                    for &(id, p) in &movers {
                        idx.update(id, p);
                    }
                });
                table.row(&[
                    if clustered { "clustered" } else { "uniform" }.into(),
                    n.to_string(),
                    name.into(),
                    f3(build),
                    f3(range),
                    f3(knn),
                    f3(update),
                ]);
            };
            bench_index("scan", Box::new(BruteForce::new()));
            bench_index("grid", Box::new(UniformGrid::new(10.0)));
            bench_index("bsp", Box::new(BspTree::new(16)));
            bench_index("quadtree", Box::new(Quadtree::new(bounds, 16, 14)));
        }
    }
    table.print();
    println!(
        "expected shape: every index beats the scan by orders of magnitude \
         on range queries; the grid wins updates everywhere and range \
         queries under uniform density; trees close the gap under \
         clustering."
    );
}

// ---------------------------------------------------------------------
// E4 — navigation meshes with designer annotations
// ---------------------------------------------------------------------

/// A 48x32 dungeon: three halls split by walls with door gaps, a lava
/// region (danger), alcoves with cover, defensible doorways.
fn dungeon() -> NavMesh {
    let (w, h) = (48usize, 32usize);
    let wall = |x: usize, y: usize| -> bool {
        if x == 0 || y == 0 || x == w - 1 || y == h - 1 {
            return true;
        }
        if y == 10 && x % 12 != 6 {
            return true;
        }
        if y == 21 && x % 16 != 8 {
            return true;
        }
        false
    };
    NavMesh::from_tile_grid(
        w,
        h,
        1.0,
        |x, y| !wall(x, y),
        |x, y| {
            let mut a = Annotation::neutral();
            if (11..21).contains(&y) && (16..32).contains(&x) {
                a.danger = 0.9;
            }
            if y >= 28 && x % 7 == 3 {
                a.cover = 0.8;
                a.tags.push("alcove".into());
            }
            if (y == 10 && x % 12 == 6) || (y == 21 && x % 16 == 8) {
                a.defensibility = 0.9;
            }
            a
        },
    )
}

fn e4(_full: bool) {
    banner(
        "E4",
        "navmesh pathfinding with designer annotations",
        "navmeshes are \"annotated by a designer ... such as whether a position \
         is a good hiding place or is easily defensible\"",
    );
    let mesh = dungeon();
    println!(
        "dungeon mesh: {} polygons, {} connected component(s), {} validation problems",
        mesh.len(),
        mesh.connected_components(),
        mesh.validate().len()
    );
    let from = Vec2::new(2.5, 2.5);
    let to = Vec2::new(45.5, 30.5);
    let mut table = Table::new(&[
        "profile",
        "length",
        "weighted cost",
        "A* expanded",
        "danger polys crossed",
        "ms/query",
    ]);
    for (name, profile) in [
        ("shortest", CostProfile::shortest()),
        ("cautious", CostProfile::cautious()),
    ] {
        let path = mesh.find_path(from, to, &profile).expect("dungeon is connected");
        let danger_crossed = path
            .polys
            .iter()
            .filter(|&&p| mesh.annotation(p).danger > 0.5)
            .count();
        let ms = mean_ms(20, || {
            std::hint::black_box(mesh.find_path(from, to, &profile));
        });
        table.row(&[
            name.into(),
            f3(path.length() as f64),
            f3(path.cost as f64),
            path.expanded.to_string(),
            danger_crossed.to_string(),
            f3(ms),
        ]);
    }
    table.print();

    let (spot, ms) = time_ms(|| mesh.best_hiding_spot(Vec2::new(24.0, 29.0), 15.0));
    println!(
        "best_hiding_spot near (24,29): poly {:?} (cover {}) in {} ms",
        spot,
        spot.map(|p| mesh.annotation(p).cover).unwrap_or(0.0),
        f3(ms)
    );
    println!(
        "defensible positions (>=0.5): {} chokepoints; tagged 'alcove': {}",
        mesh.defensible_positions(0.5).len(),
        mesh.tagged("alcove").len()
    );
    println!(
        "expected shape: the cautious profile takes a longer path that \
         crosses zero high-danger polygons; the shortest profile cuts \
         through the lava hall."
    );
}

// ---------------------------------------------------------------------
// E5 — parallel tick execution
// ---------------------------------------------------------------------

fn e5(full: bool) {
    banner(
        "E5",
        "parallel script processing via the state-effect pattern",
        "game parallelism looks \"very similar to the techniques that database \
         engines use for join processing\"; per-entity scripts batch like a \
         self-join and fan out over cores",
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("machine parallelism: {cores} core(s) — speedup is bounded by this");
    let n = if full { 20000 } else { 8000 };
    let threads_list = [1usize, 2, 4, 8];
    let mut table = Table::new(&["threads", "ms/tick", "speedup", "effects/tick"]);
    let mut base = 0.0f64;
    for &threads in &threads_list {
        let (mut world, _) = constant_density_world(n, 0.05, 11);
        // Compute-heavy read phase (a wide aggregate join), single effect
        // per entity: the parallelizable fraction dominates, the serial
        // effect-apply phase stays small.
        let combat = |id: EntityId, w: &World, buf: &mut EffectBuffer| {
            let Some(p) = w.pos(id) else { return };
            let mut near = Vec::new();
            w.within(p, 30.0, &mut near);
            let mut threat = 0.0f64;
            for other in near {
                if other != id {
                    if let (Some(q), Some(dmg)) = (w.pos(other), w.get_f32(other, "dmg")) {
                        threat += dmg as f64 / (1.0 + p.dist(q) as f64);
                    }
                }
            }
            buf.push(id, "hp", gamedb_core::Effect::Add(-threat * 0.001));
        };
        let exec = if threads == 1 {
            TickExecutor::sequential()
        } else {
            TickExecutor::parallel(threads)
        };
        exec.run_tick(&mut world, &[&combat]).unwrap();
        let mut effects = 0usize;
        let ms = mean_ms(5, || {
            let stats = exec.run_tick(&mut world, &[&combat]).unwrap();
            effects = stats.effects_applied;
        });
        if threads == 1 {
            base = ms;
        }
        table.row(&[
            threads.to_string(),
            f3(ms),
            f3(base / ms.max(1e-9)),
            effects.to_string(),
        ]);
    }
    table.print();
    println!(
        "expected shape: speedup approaches min(threads, cores); effect \
         merging is the serial fraction. On a single-core machine all rows \
         are ~1.0 — the determinism property (identical results at every \
         thread count) is verified by the test suite regardless."
    );
}

// ---------------------------------------------------------------------
// E6 — consistency executors + causality bubbles
// ---------------------------------------------------------------------

fn e6(full: bool) {
    banner(
        "E6",
        "tick transaction processing: serial vs 2PL vs OCC vs causality bubbles",
        "\"locking transactions are often too slow for games\"; causality \
         bubbles \"dynamically partition their databases to reduce server \
         load\" (EVE's motion differential equation)",
    );
    let player_counts: &[usize] = if full { &[512, 2048, 8192] } else { &[512, 2048] };
    let mut table = Table::new(&[
        "players",
        "hotspot",
        "executor",
        "ms/batch",
        "rounds",
        "crit path",
        "max group",
        "aborts",
    ]);
    for &players in player_counts {
        for &hotspot in &[0.0f32, 0.3, 0.8] {
            let cfg = WorkloadConfig {
                players,
                hotspot_fraction: hotspot,
                ..Default::default()
            };
            let execs: Vec<Box<dyn Executor>> = vec![
                Box::new(SerialExecutor),
                Box::new(LockingExecutor),
                Box::new(OptimisticExecutor::default()),
                Box::new(BubbleExecutor::new(BubbleConfig {
                    dt: 1.0,
                    max_accel: 2.0,
                    interaction_range: cfg.interaction_range,
                })),
            ];
            for exec in execs {
                let mut wl = Workload::new(cfg);
                let batch = wl.next_batch();
                let mut micros = 0u128;
                let mut rounds = 0usize;
                let mut crit = 0usize;
                let mut max_group = 0usize;
                let mut aborts = 0usize;
                let ticks = 3;
                for _ in 0..ticks {
                    let stats = exec.execute(&mut wl.world, &batch);
                    micros += stats.micros;
                    rounds += stats.rounds;
                    crit += stats.critical_path;
                    max_group = max_group.max(stats.max_group);
                    aborts += stats.aborts;
                }
                table.row(&[
                    players.to_string(),
                    format!("{hotspot}"),
                    exec.name().into(),
                    f3(micros as f64 / 1000.0 / ticks as f64),
                    (rounds / ticks).to_string(),
                    (crit / ticks).to_string(),
                    max_group.to_string(),
                    (aborts / ticks).to_string(),
                ]);
            }
        }
    }
    table.print();

    println!("\nEVE fleet scenario: bubble structure vs density (16 fleets x 64 ships)");
    let mut t2 = Table::new(&[
        "map size",
        "bubbles",
        "max bubble",
        "mean bubble",
        "partition ms",
    ]);
    let maps: &[f32] = if full {
        &[20_000.0, 2_000.0, 800.0, 500.0, 300.0, 150.0]
    } else {
        &[20_000.0, 800.0, 500.0, 300.0, 150.0]
    };
    for &map in maps {
        let (mut world, ids) = fleet_world(16, 64, map, 5.0, 13);
        step_fleet(&mut world, &ids, 1.0);
        let cfg = BubbleConfig {
            dt: 1.0,
            max_accel: 2.0,
            interaction_range: 10.0,
        };
        let (part, ms) = time_ms(|| partition(&world, &cfg));
        t2.row(&[
            format!("{map}"),
            part.len().to_string(),
            part.max_bubble().to_string(),
            f3(part.mean_bubble() as f64),
            f3(ms),
        ]);
    }
    t2.print();
    println!(
        "expected shape: 2PL/OCC/bubbles all beat serial rounds; at low \
         hotspot bubbles give the fewest rounds with zero aborts; as \
         density rises bubbles merge toward one giant bubble and the \
         advantage decays — the regime structure the paper describes."
    );
}

// ---------------------------------------------------------------------
// E7 — replication consistency levels
// ---------------------------------------------------------------------

fn e7(full: bool) {
    banner(
        "E7",
        "weak consistency: bandwidth vs divergence",
        "games allow \"inconsistent, but very similar game states\" — \
         animation lags, persistent state never does",
    );
    let n = if full { 2000 } else { 500 };
    let ticks = 100;
    let levels = [
        ("strict", ConsistencyLevel::Strict),
        ("coarse(5)", ConsistencyLevel::CoarseEpoch { pos_period: 5 }),
        ("coarse(20)", ConsistencyLevel::CoarseEpoch { pos_period: 20 }),
        (
            "eventual(2.5)",
            ConsistencyLevel::EventualSimilar {
                threshold: 2.5,
                state_period: 5,
            },
        ),
        (
            "eventual(10)",
            ConsistencyLevel::EventualSimilar {
                threshold: 10.0,
                state_period: 5,
            },
        ),
    ];
    let mut table = Table::new(&[
        "level",
        "rows sent",
        "rows/tick/entity",
        "mean pos err",
        "max pos err",
        "transient state lag/tick",
        "mismatches after quiesce",
    ]);
    for (name, level) in levels {
        let (mut world, ids) = combat_world(n, 500.0, 17);
        let mut rng = StdRng::seed_from_u64(23);
        let mut rep = Replicator::new(level);
        let mut client = Replica::default();
        // divergence is averaged over the whole run (measuring only the
        // final tick would land on an epoch flush and hide the lag)
        let mut mean_err_sum = 0.0f64;
        let mut max_err = 0.0f32;
        let mut mismatches = 0usize;
        for _ in 0..ticks {
            for &e in &ids {
                let p = world.pos(e).unwrap();
                let d = Vec2::new(rng.gen::<f32>() - 0.5, rng.gen::<f32>() - 0.5) * 2.0;
                world.set_pos(e, p + d).unwrap();
                if rng.gen::<f32>() < 0.02 {
                    let hp = world.get_f32(e, "hp").unwrap();
                    world.set_f32(e, "hp", hp - 1.0).unwrap();
                }
            }
            rep.sync(&world, &mut client);
            let div = Replicator::divergence(&world, &client);
            mean_err_sum += div.mean_pos_error as f64;
            max_err = max_err.max(div.max_pos_error);
            mismatches += div.persistent_mismatches;
        }
        // quiesce: stop mutating, let the replicator drain — eventual
        // consistency means persistent mismatches must reach zero
        for _ in 0..25 {
            rep.sync(&world, &mut client);
        }
        let settled = Replicator::divergence(&world, &client);
        table.row(&[
            name.into(),
            rep.rows_sent.to_string(),
            f3(rep.rows_sent as f64 / ticks as f64 / n as f64),
            f3(mean_err_sum / ticks as f64),
            f3(max_err as f64),
            f3(mismatches as f64 / ticks as f64),
            settled.persistent_mismatches.to_string(),
        ]);
    }
    table.print();
    println!(
        "expected shape: bandwidth drops steeply down the table while \
         position error grows; the eventual levels lag persistent state by \
         a few ticks mid-combat, but after quiescence every level converges \
         to zero persistent mismatches — divergent-but-similar, never \
         permanently wrong."
    );
}

// ---------------------------------------------------------------------
// E8 — aggro management
// ---------------------------------------------------------------------

fn e8(_full: bool) {
    banner(
        "E8",
        "aggro management vs exact nearest-target combat",
        "aggro \"assigns abstract roles to the participants, which allows the \
         game to handle combat without exact spatial fidelity\"",
    );
    let run = |noise: f32, seed: u64| -> (usize, usize, f64, f64) {
        let (mut world, ids) =
            gamedb_sync::arena_world(12, |i| Vec2::new((i as f32) * 2.0, 0.0));
        let boss = ids[0];
        let tank = ids[1];
        let healers: Vec<EntityId> = ids[2..4].to_vec();
        let dps: Vec<EntityId> = ids[4..].to_vec();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut aggro = AggroTargeting::new(0.97);
        let mut nearest = NearestTargeting;
        let mut world2 = world.clone();
        let (mut a_sw, mut n_sw) = (0usize, 0usize);
        let (mut a_div, mut n_div) = (0usize, 0usize);
        let (mut last_a, mut last_n) = (None, None);
        let ticks = 300;
        let players: Vec<EntityId> = ids[1..].to_vec();
        for _ in 0..ticks {
            for &e in &players {
                let p = world.pos(e).unwrap();
                let d = Vec2::new(rng.gen::<f32>() - 0.5, rng.gen::<f32>() - 0.5) * noise;
                world.set_pos(e, p + d).unwrap();
                let lag = Vec2::new(rng.gen::<f32>() - 0.5, rng.gen::<f32>() - 0.5) * noise;
                world2.set_pos(e, p + d + lag).unwrap();
            }
            aggro.record_damage(boss, tank, Role::Tank, 8.0);
            for &h in &healers {
                aggro.record_damage(boss, h, Role::Healer, 4.0);
            }
            for &d in &dps {
                aggro.record_damage(boss, d, Role::Dps, rng.gen_range(8.0..14.0));
            }
            aggro.tick();
            let a1 = aggro.choose(&world, boss, &players);
            let a2 = aggro.choose(&world2, boss, &players);
            let n1 = nearest.choose(&world, boss, &players);
            let n2 = nearest.choose(&world2, boss, &players);
            if last_a.is_some() && a1 != last_a {
                a_sw += 1;
            }
            if last_n.is_some() && n1 != last_n {
                n_sw += 1;
            }
            if a1 != a2 {
                a_div += 1;
            }
            if n1 != n2 {
                n_div += 1;
            }
            last_a = a1;
            last_n = n1;
        }
        (
            a_sw,
            n_sw,
            a_div as f64 / ticks as f64,
            n_div as f64 / ticks as f64,
        )
    };
    let mut table = Table::new(&[
        "pos noise",
        "aggro switches",
        "nearest switches",
        "aggro replica-divergence",
        "nearest replica-divergence",
    ]);
    for noise in [0.5f32, 2.0, 6.0] {
        let (a_sw, n_sw, a_div, n_div) = run(noise, 31);
        table.row(&[
            format!("{noise}"),
            a_sw.to_string(),
            n_sw.to_string(),
            f3(a_div),
            f3(n_div),
        ]);
    }
    table.print();
    println!(
        "expected shape: aggro targeting barely switches and two replicas \
         agree despite lag noise; nearest-targeting flaps and diverges \
         increasingly with noise — spatial fidelity is exactly what it \
         cannot tolerate."
    );
}

// ---------------------------------------------------------------------
// E9 — checkpointing policies
// ---------------------------------------------------------------------

fn e9(full: bool) {
    banner(
        "E9",
        "intelligent checkpointing vs fixed periods",
        "checkpoints \"can be as far as 10 minutes apart\"; recoveries \"may \
         force a player to repeat a difficult fight or lose a particularly \
         desirable reward\" — write when important events complete",
    );
    let trials = if full { 50 } else { 20 };
    let policies = [
        CheckpointPolicy::Periodic { period: 30.0 },
        CheckpointPolicy::Periodic { period: 120.0 },
        CheckpointPolicy::Periodic { period: 600.0 },
        CheckpointPolicy::EventDriven { threshold: 20.0 },
        CheckpointPolicy::Hybrid {
            period: 600.0,
            threshold: 20.0,
        },
    ];
    let mut table = Table::new(&[
        "policy",
        "checkpoints",
        "MB written",
        "mean lost secs",
        "mean lost importance",
        "big events lost/trial",
    ]);
    for policy in policies {
        let mut tot_lost_secs = 0.0;
        let mut tot_lost_imp = 0.0;
        let mut tot_cps = 0u64;
        let mut tot_bytes = 0u64;
        let mut big_lost = 0usize;
        for trial in 0..trials {
            let mut rng = StdRng::seed_from_u64(1000 + trial as u64);
            let (world, _) = combat_world(200, 200.0, trial as u64);
            let backend =
                Backend::open(gamedb_persist::temp_dir(&format!("e9-{trial}"))).unwrap();
            let mut store = GameStore::new(world, backend, policy).unwrap();
            let crash_at = rng.gen_range(600.0..3600.0);
            let mut big_events_before_crash = 0usize;
            let mut t = 0.0f64;
            while t < crash_at {
                let imp = if (t as u64) % 400 == 399 {
                    big_events_before_crash += 1;
                    25.0
                } else if rng.gen::<f64>() < 0.002 {
                    10.0
                } else {
                    0.02
                };
                store.observe(1.0, imp).unwrap();
                t += 1.0;
            }
            tot_cps += store.stats.checkpoints;
            tot_bytes += store.stats.bytes_written;
            let (recovered, report) = store.crash_and_recover().unwrap();
            tot_lost_secs += report.lost_game_seconds;
            tot_lost_imp += report.lost_importance;
            let cp_time = recovered.last_checkpoint_at();
            let mut big_events_recovered = 0usize;
            let mut tt = 0.0;
            while tt < cp_time {
                if (tt as u64) % 400 == 399 {
                    big_events_recovered += 1;
                }
                tt += 1.0;
            }
            big_lost += big_events_before_crash.saturating_sub(big_events_recovered);
        }
        table.row(&[
            policy.label(),
            (tot_cps / trials as u64).to_string(),
            f3(tot_bytes as f64 / trials as f64 / 1e6),
            f3(tot_lost_secs / trials as f64),
            f3(tot_lost_imp / trials as f64),
            f3(big_lost as f64 / trials as f64),
        ]);
    }
    table.print();
    println!(
        "expected shape: lost progress grows linearly with the period; the \
         event-driven policy loses ~zero important events at a fraction of \
         periodic(30)'s write volume; hybrid adds a bounded-staleness \
         backstop for quiet stretches."
    );

    // The zero-loss alternative: redo logging with group commit.
    println!("\nWAL (redo logging) alternative: loss bounded by the commit group");
    let mut t2 = Table::new(&[
        "group commit",
        "flushes",
        "records",
        "records lost at crash",
        "bytes written",
    ]);
    for &group in &[1usize, 10, 100] {
        let (world, ids) = combat_world(100, 100.0, 5);
        let backend =
            Backend::open(gamedb_persist::temp_dir(&format!("e9-wal-{group}"))).unwrap();
        let mut store = gamedb_persist::WalStore::new(world, backend, group).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let total_mutations = 2003usize; // not a multiple of any group: some records stay unflushed
        for k in 0..total_mutations {
            let id = ids[rng.gen_range(0..ids.len())];
            store
                .world_mut()
                .set(id, "hp", Value::Float(k as f32 % 100.0))
                .unwrap();
            store.commit().unwrap();
        }
        let records = store.stats.records;
        let flushes = store.stats.flushes;
        let bytes = store.backend().bytes_written;
        let (recovered, replayed) = store.crash_and_recover().unwrap();
        let _ = recovered;
        t2.row(&[
            group.to_string(),
            flushes.to_string(),
            records.to_string(),
            (records as usize - replayed).to_string(),
            bytes.to_string(),
        ]);
    }
    t2.print();

    // Incremental checkpoints: ship only the rows that changed.
    println!("\nincremental checkpoints: write volume vs churn (2000 entities, 30 checkpoints)");
    let mut t3 = Table::new(&[
        "mode",
        "churn/cp",
        "MB written",
        "vs full",
        "recovery ok",
    ]);
    for &churn in &[10usize, 200, 2000] {
        let mut results: Vec<(String, u64, bool)> = Vec::new();
        for mode in [
            SnapshotMode::Full,
            SnapshotMode::Incremental { full_every: 10 },
            SnapshotMode::Incremental { full_every: 1000 },
        ] {
            let (world, ids) = combat_world(2000, 500.0, 3);
            let backend = Backend::open(gamedb_persist::temp_dir(&format!(
                "e9-incr-{churn}-{}",
                mode.label().replace([' ', '('], "-")
            )))
            .unwrap();
            let mut store = GameStore::with_mode(
                world,
                backend,
                CheckpointPolicy::Periodic { period: 1.0 },
                mode,
            )
            .unwrap();
            let mut rng = StdRng::seed_from_u64(11);
            for _ in 0..30 {
                for _ in 0..churn {
                    let id = ids[rng.gen_range(0..ids.len())];
                    store
                        .world
                        .set_f32(id, "hp", rng.gen::<f32>() * 100.0)
                        .unwrap();
                }
                store.observe(1.5, 0.0).unwrap();
            }
            let expected = store.world.rows();
            let bytes = store.stats.bytes_written;
            let (recovered, _) = store.crash_and_recover().unwrap();
            let ok = recovered.world.rows() == expected;
            results.push((mode.label(), bytes, ok));
        }
        let full_bytes = results[0].1;
        for (label, bytes, ok) in results {
            t3.row(&[
                label,
                churn.to_string(),
                f3(bytes as f64 / 1e6),
                format!("{:.2}x", bytes as f64 / full_bytes as f64),
                ok.to_string(),
            ]);
        }
    }
    t3.print();

    // Log compaction: the bound on WAL growth.
    println!("\nWAL compaction after checkpoint");
    let mut t4 = Table::new(&["mutations", "log KB before", "log KB after"]);
    for &muts in &[1000usize, 10_000] {
        let (world, ids) = combat_world(100, 100.0, 5);
        let backend =
            Backend::open(gamedb_persist::temp_dir(&format!("e9-compact-{muts}"))).unwrap();
        let mut store = gamedb_persist::WalStore::new(world, backend, 100).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for k in 0..muts {
            let id = ids[rng.gen_range(0..ids.len())];
            store
                .world_mut()
                .set(id, "hp", Value::Float(k as f32 % 100.0))
                .unwrap();
            store.commit().unwrap();
        }
        store.checkpoint().unwrap();
        let (before, after) = store.compact_log().unwrap();
        t4.row(&[
            muts.to_string(),
            f3(before as f64 / 1024.0),
            f3(after as f64 / 1024.0),
        ]);
    }
    t4.print();
    println!(
        "expected shape: synchronous logging (group 1) loses zero records \
         at maximal flush cost; group commit trades bounded loss (< group \
         size) for fewer flushes; incremental checkpoints cut write volume \
         by the churn ratio (and converge to full-snapshot cost at 100% \
         churn); compaction truncates the dead log prefix."
    );
}

// ---------------------------------------------------------------------
// E10 — schema migration vs blobs
// ---------------------------------------------------------------------

fn e10(full: bool) {
    banner(
        "E10",
        "live schema migration vs the blob strategy",
        "studios \"write data as unstructured 'blobs' into a single attribute, \
         so that they can preserve their old schemas\" — trading query \
         performance and sustainability for instant migrations",
    );
    let n = if full { 100_000 } else { 20_000 };
    let base = SchemaVersion {
        fields: vec![
            ("hp".into(), ValueType::Float, Value::Float(100.0)),
            ("gold".into(), ValueType::Int, Value::Int(0)),
            ("name".into(), ValueType::Str, Value::Str(String::new())),
        ],
    };
    let mut blob = BlobStore::new(base);
    let mut world = World::new();
    world.define_component("hp", ValueType::Float).unwrap();
    world.define_component("gold", ValueType::Int).unwrap();
    world.define_component("name", ValueType::Str).unwrap();
    for i in 0..n {
        let row = vec![
            ("hp".to_string(), Value::Float(i as f32 % 100.0)),
            ("gold".to_string(), Value::Int(i as i64 % 1000)),
            ("name".to_string(), Value::Str(format!("p{i}"))),
        ];
        blob.put(i as u64, &row).unwrap();
        let e = world.spawn_at(Vec2::new((i % 1000) as f32, (i / 1000) as f32));
        for (name, v) in row {
            world.set(e, &name, v).unwrap();
        }
    }
    let mut structured = StructuredStore::new(world);

    let migrations = vec![
        (
            "add mana",
            Migration::AddColumn {
                name: "mana".into(),
                ty: ValueType::Float,
                default: Value::Float(50.0),
            },
        ),
        (
            "add level",
            Migration::AddColumn {
                name: "level".into(),
                ty: ValueType::Int,
                default: Value::Int(1),
            },
        ),
        (
            "widen gold",
            Migration::WidenIntToFloat {
                name: "gold".into(),
            },
        ),
        (
            "rename gold->coins",
            Migration::RenameColumn {
                from: "gold".into(),
                to: "coins".into(),
            },
        ),
        (
            "drop name",
            Migration::DropColumn {
                name: "name".into(),
            },
        ),
    ];

    let mut table = Table::new(&[
        "step",
        "structured ms",
        "rows rewritten",
        "blob ms",
        "blob rows rewritten",
    ]);
    let (s_sum, s_q) = time_ms(|| structured.sum_column("hp"));
    let (b_sum, b_q) = time_ms(|| blob.sum_column("hp").unwrap());
    assert_eq!(s_sum, b_sum, "stores must agree");
    table.row(&[
        "query sum(hp) before".into(),
        f3(s_q),
        "-".into(),
        f3(b_q),
        "-".into(),
    ]);
    for (label, m) in &migrations {
        let s_stats = structured.migrate(m).unwrap();
        let b_stats = blob.migrate(m.clone()).unwrap();
        table.row(&[
            (*label).into(),
            f3(s_stats.micros as f64 / 1000.0),
            s_stats.rows_rewritten.to_string(),
            f3(b_stats.micros as f64 / 1000.0),
            b_stats.rows_rewritten.to_string(),
        ]);
    }
    let (s_sum, s_q) = time_ms(|| structured.sum_column("coins"));
    let (b_sum, b_q) = time_ms(|| blob.sum_column("coins").unwrap());
    assert_eq!(s_sum, b_sum, "stores must agree after migrations");
    table.row(&[
        "query sum(coins) after".into(),
        f3(s_q),
        "-".into(),
        f3(b_q),
        "-".into(),
    ]);
    let (c_stats, _) = time_ms(|| blob.compact().unwrap());
    table.row(&[
        "blob compaction".into(),
        "-".into(),
        "-".into(),
        f3(c_stats.micros as f64 / 1000.0),
        c_stats.rows_rewritten.to_string(),
    ]);
    let (_, b_q2) = time_ms(|| blob.sum_column("coins").unwrap());
    table.row(&[
        "query sum(coins) post-compaction".into(),
        "-".into(),
        "-".into(),
        f3(b_q2),
        "-".into(),
    ]);
    table.print();
    println!(
        "blob stale fraction after compaction: {}%",
        (blob.stale_fraction() * 100.0) as u32
    );
    println!(
        "expected shape: blob migrations are ~0 ms while structured \
         migrations rewrite every row; the bill comes due at query time, \
         where the blob store decodes every row — the sustainability \
         trade-off the paper describes."
    );
}

// ---------------------------------------------------------------------
// E11 — ablations of the design choices DESIGN.md calls out
// ---------------------------------------------------------------------

fn e11(_full: bool) {
    banner(
        "E11",
        "ablations: grid cell size, BSP leaf capacity, bubble horizon",
        "tuning knobs behind the headline results (this repository's own \
         design choices, not a paper claim)",
    );
    // grid cell size vs range-query and update cost
    let (world, ids) = constant_density_world(8000, 0.05, 5);
    let points: Vec<(u64, Vec2)> = ids
        .iter()
        .map(|&e| (e.to_bits(), world.pos(e).unwrap()))
        .collect();
    let mut rng = StdRng::seed_from_u64(3);
    let queries: Vec<Vec2> = (0..1000)
        .map(|_| points[rng.gen_range(0..points.len())].1)
        .collect();
    println!("\nuniform grid: cell size ablation (n=8000, query radius 10)");
    let mut t = Table::new(&["cell size", "1k range ms", "10% update ms", "occupied cells"]);
    for &cell in &[2.0f32, 5.0, 10.0, 20.0, 50.0, 100.0] {
        let mut g = UniformGrid::new(cell);
        for &(id, p) in &points {
            g.insert(id, p);
        }
        let mut out = Vec::new();
        let (_, range) = time_ms(|| {
            for &q in &queries {
                out.clear();
                g.query_range(q, 10.0, &mut out);
                std::hint::black_box(out.len());
            }
        });
        let (_, update) = time_ms(|| {
            for &(id, p) in points.iter().take(800) {
                g.update(id, p + Vec2::new(3.0, 3.0));
            }
        });
        t.row(&[
            format!("{cell}"),
            f3(range),
            f3(update),
            g.occupied_cells().to_string(),
        ]);
    }
    t.print();

    println!("\nBSP tree: leaf capacity ablation (n=8000)");
    let mut t = Table::new(&["leaf cap", "build ms", "1k range ms", "depth"]);
    for &cap in &[4usize, 16, 64, 256] {
        let (tree, build) = time_ms(|| BspTree::build(points.iter().copied(), cap));
        let mut out = Vec::new();
        let (_, range) = time_ms(|| {
            for &q in &queries {
                out.clear();
                tree.query_range(q, 10.0, &mut out);
                std::hint::black_box(out.len());
            }
        });
        t.row(&[
            cap.to_string(),
            f3(build),
            f3(range),
            tree.depth().to_string(),
        ]);
    }
    t.print();

    println!("\ncausality bubbles: prediction horizon ablation (fleet world, map 600)");
    let mut t = Table::new(&["dt", "bubbles", "max bubble", "mean bubble"]);
    for &dt in &[0.25f32, 0.5, 1.0, 2.0, 4.0] {
        let (world, _) = fleet_world(16, 64, 600.0, 5.0, 13);
        let cfg = BubbleConfig {
            dt,
            max_accel: 2.0,
            interaction_range: 10.0,
        };
        let part = partition(&world, &cfg);
        t.row(&[
            format!("{dt}"),
            part.len().to_string(),
            part.max_bubble().to_string(),
            f3(part.mean_bubble() as f64),
        ]);
    }
    t.print();
    println!(
        "expected shapes: grid range cost is U-shaped in cell size (too \
         small = many cells, too large = many candidates) while updates \
         stay flat; BSP range cost is U-shaped in leaf capacity; longer \
         bubble horizons merge bubbles (safety is conservative in dt)."
    );
}

// ---------------------------------------------------------------------
// E12 — multi-server dynamic map partitioning
// ---------------------------------------------------------------------

fn e12(full: bool) {
    banner(
        "E12",
        "shard placement: static zones vs hash vs dynamic bubbles",
        "games \"predict which players may issue conflicting interactions \
         \u{2026} and dynamically partition their databases to reduce \
         server load\"",
    );
    let nodes = 4;
    let ticks = if full { 120 } else { 60 };
    let map = 1000.0f32;
    let event = Vec2::new(150.0, 150.0);

    println!(
        "\nflock scenario: {ticks} ticks, 512 players all walking to a world \
         event at ({}, {}), {nodes} server nodes",
        event.x, event.y
    );
    let mut t = Table::new(&[
        "policy",
        "mean imbalance",
        "max imbalance",
        "cross-node %",
        "migrations",
    ]);
    let policies: Vec<(&str, AssignPolicy)> = vec![
        (
            "static zones",
            AssignPolicy::StaticZones { cols: 2, rows: 2, map_size: map },
        ),
        ("hash", AssignPolicy::HashEntities),
        (
            "dynamic bubbles",
            AssignPolicy::DynamicBubbles {
                cfg: BubbleConfig { dt: 1.0, max_accel: 2.0, interaction_range: 10.0 },
                max_overload: 1.25,
            },
        ),
    ];
    for (name, policy) in policies {
        let cfg = WorkloadConfig {
            players: 512,
            hotspot_fraction: 0.0,
            map_size: map,
            seed: 11,
            ..Default::default()
        };
        let mut wl = Workload::new(cfg);
        let players = wl.players.clone();
        let mut mgr = ShardManager::new(nodes, policy);
        for _ in 0..ticks {
            step_flock(&mut wl.world, &players, event, 8.0);
            let batch = wl.next_batch();
            mgr.tick(&wl.world, &batch);
        }
        let s = mgr.stats();
        t.row(&[
            name.into(),
            f3(s.mean_imbalance as f64),
            f3(s.max_imbalance as f64),
            f3(s.mean_cross_node as f64 * 100.0),
            s.total_migrations.to_string(),
        ]);
    }
    t.print();

    println!("\nnode-count sweep: dynamic bubbles on the EVE fleet world (8 fleets x 128 ships)");
    let mut t2 = Table::new(&["nodes", "mean imbalance", "cross-node %", "migrations/tick"]);
    let node_counts: &[usize] = if full { &[2, 4, 8, 16, 32] } else { &[2, 4, 8, 16] };
    for &n in node_counts {
        let (mut world, ids) = fleet_world(8, 128, 8000.0, 5.0, 13);
        let mut mgr = ShardManager::new(
            n,
            AssignPolicy::DynamicBubbles {
                cfg: BubbleConfig { dt: 1.0, max_accel: 2.0, interaction_range: 10.0 },
                max_overload: 1.25,
            },
        );
        let sweep_ticks = 20;
        for _ in 0..sweep_ticks {
            step_fleet(&mut world, &ids, 1.0);
            mgr.tick(&world, &[]);
        }
        let s = mgr.stats();
        t2.row(&[
            n.to_string(),
            f3(s.mean_imbalance as f64),
            f3(s.mean_cross_node as f64 * 100.0),
            f3(s.total_migrations as f64 / sweep_ticks as f64),
        ]);
    }
    t2.print();

    // What the placement costs at execution time: local actions run in
    // parallel across nodes, cross-node actions pay a 2PC round trip.
    println!("\ncluster execution: simulated tick cost under each placement (4 nodes, 1024 players)");
    let mut t3 = Table::new(&[
        "policy",
        "local actions",
        "distributed",
        "sim tick ms",
        "1-server ms",
        "speedup",
    ]);
    let policies: Vec<(&str, AssignPolicy)> = vec![
        (
            "static zones",
            AssignPolicy::StaticZones { cols: 2, rows: 2, map_size: map },
        ),
        ("hash", AssignPolicy::HashEntities),
        (
            "dynamic bubbles",
            AssignPolicy::DynamicBubbles {
                cfg: BubbleConfig { dt: 1.0, max_accel: 2.0, interaction_range: 10.0 },
                max_overload: 1.25,
            },
        ),
    ];
    for (name, policy) in policies {
        let cfg = WorkloadConfig {
            players: 1024,
            hotspot_fraction: 0.2,
            seed: 31,
            ..Default::default()
        };
        let mut wl = Workload::new(cfg);
        let mgr = ShardManager::new(4, policy);
        let exec = ClusterExecutor::default();
        let mut local = 0usize;
        let mut dist = 0usize;
        let mut sim_us = 0.0f64;
        let mut one_us = 0.0f64;
        for _ in 0..5 {
            let batch = wl.next_batch();
            let assignment = mgr.assign(&wl.world);
            let stats = exec.execute(&mut wl.world, &assignment, &batch);
            local += stats.local_per_node.iter().sum::<usize>();
            dist += stats.distributed;
            sim_us += stats.simulated_us;
            one_us += stats.single_server_us;
        }
        t3.row(&[
            name.into(),
            local.to_string(),
            dist.to_string(),
            f3(sim_us / 1000.0),
            f3(one_us / 1000.0),
            format!("{:.2}x", one_us / sim_us.max(1e-9)),
        ]);
    }
    t3.print();
    println!(
        "expected shape: static zones end at imbalance ~= node count as the \
         flock collapses into one zone; hash stays balanced but makes nearly \
         every interaction cross-node; dynamic bubbles hold both low until \
         the flock merges into one bubble (when no placement can split it). \
         On the fleet world imbalance grows with node count once nodes \
         outnumber big bubbles — the paper's \"feasible units\" bound. In \
         the execution model, hash placement's 2PC bill makes the cluster \
         slower than one server; bubble placement turns the same batch into \
         near-ideal parallelism."
    );
}

// ---------------------------------------------------------------------
// E13 — exploits under broken concurrency control
// ---------------------------------------------------------------------

fn e13(full: bool) {
    banner(
        "E13",
        "dupes and speed hacks: racy loop vs safe executors",
        "\"concurrency violations in scripting languages are one of the \
         largest sources of bugs and exploits in MMOs\" (dupes, speed \
         hacks)",
    );
    let ticks = if full { 30 } else { 10 };

    println!(
        "\ntrade-heavy hotspot workload (1024 players, hotspot 0.8, {ticks} \
         ticks), audited per tick"
    );
    let mut t = Table::new(&[
        "executor",
        "wealth drift",
        "dirty ticks",
        "overdrafts",
        "speed viols",
    ]);
    let execs: Vec<Box<dyn Executor>> = vec![
        Box::new(RacyExecutor),
        Box::new(SerialExecutor),
        Box::new(LockingExecutor),
        Box::new(OptimisticExecutor::default()),
        Box::new(BubbleExecutor::new(BubbleConfig {
            dt: 1.0,
            max_accel: 2.0,
            interaction_range: 10.0,
        })),
    ];
    for exec in execs {
        let cfg = WorkloadConfig {
            players: 1024,
            hotspot_fraction: 0.8,
            mix: gamedb_sync::ActionMix { attack: 0.2, trade: 0.6, mv: 0.1, heal: 0.1 },
            seed: 23,
            ..Default::default()
        };
        let mut wl = Workload::new(cfg);
        let mut auditor = Auditor::new(2.0);
        for _ in 0..ticks {
            let batch = collapse_moves(wl.next_batch());
            let before = auditor.snapshot(&wl.world);
            exec.execute(&mut wl.world, &batch);
            auditor.audit(&before, &wl.world);
        }
        t.row(&[
            exec.name().into(),
            auditor.total_drift().to_string(),
            format!("{}/{}", auditor.dirty_ticks(), auditor.ticks()),
            auditor.total_overdrafts().to_string(),
            auditor.total_speed_violations().to_string(),
        ]);
    }
    t.print();

    println!("\nspeed-hack injection: movement audit catches every hacked move");
    let mut t2 = Table::new(&["injected fraction", "injected", "detected"]);
    for &fraction in &[0.0f32, 0.01, 0.05, 0.2] {
        let cfg = WorkloadConfig {
            players: 512,
            hotspot_fraction: 0.0,
            mix: gamedb_sync::ActionMix { attack: 0.0, trade: 0.0, mv: 1.0, heal: 0.0 },
            seed: 29,
            ..Default::default()
        };
        let mut wl = Workload::new(cfg);
        let mut batch = collapse_moves(wl.next_batch());
        let injected = inject_speed_hacks(&mut batch, fraction, 40.0);
        let mut auditor = Auditor::new(2.0);
        let before = auditor.snapshot(&wl.world);
        SerialExecutor.execute(&mut wl.world, &batch);
        let report = auditor.audit(&before, &wl.world);
        t2.row(&[
            format!("{fraction}"),
            injected.to_string(),
            report.speed_violations.to_string(),
        ]);
    }
    t2.print();
    println!(
        "expected shape: only the racy loop conjures wealth (dupes) — every \
         serially-equivalent executor audits clean; the movement audit \
         detects exactly the injected speed hacks with zero false positives."
    );
}

// ---------------------------------------------------------------------
// E14 — cost-based planning of world queries
// ---------------------------------------------------------------------

fn e14(full: bool) {
    banner(
        "E14",
        "query planner: scan vs spatial index vs cost-based choice",
        "game-state access is query processing in disguise; a planner \
         should pick the index for local queries and the scan once the \
         radius covers the map (this repository's extension of the \
         paper's join-processing analogy)",
    );
    let n = if full { 64_000 } else { 16_000 };
    let (world, _ids) = constant_density_world(n, 0.05, 17);
    let stats = TableStats::build(&world);
    let (lo, hi) = stats.bounds.unwrap();
    let center = Vec2::new((lo.x + hi.x) / 2.0, (lo.y + hi.y) / 2.0);
    let map_w = hi.x - lo.x;

    println!("\nradius sweep (n={n}, uniform density, query = within(r) AND hp >= 50)");
    let mut t = Table::new(&[
        "radius/map",
        "scan ms",
        "index ms",
        "planner picks",
        "planner ms",
        "est rows",
        "rows",
    ]);
    for &frac in &[0.005f32, 0.02, 0.05, 0.15, 0.4, 0.8, 1.5] {
        let radius = map_w * frac;
        let q = Query::select()
            .within(center, radius)
            .filter("hp", gamedb_content::CmpOp::Ge, Value::Float(50.0));
        let chosen = gamedb_core::plan(&q, &stats);
        let forced_index = Plan {
            access: Access::SpatialIndex { center, radius },
            residual_within: None,
            ..chosen.clone()
        };
        let forced_scan = Plan {
            access: Access::FullScan,
            residual_within: Some((center, radius)),
            ..chosen.clone()
        };
        let reps = 5;
        let scan_ms = mean_ms(reps, || {
            std::hint::black_box(forced_scan.run(&world).len());
        });
        let index_ms = mean_ms(reps, || {
            std::hint::black_box(forced_index.run(&world).len());
        });
        let planner_ms = mean_ms(reps, || {
            std::hint::black_box(chosen.run(&world).len());
        });
        let rows = chosen.run(&world).len();
        t.row(&[
            format!("{frac}"),
            f3(scan_ms),
            f3(index_ms),
            match chosen.access {
                Access::FullScan => "scan".into(),
                Access::SpatialIndex { .. } => "index".into(),
                Access::AttributeIndex { .. } => "attr".into(),
            },
            f3(planner_ms),
            format!("{:.0}", chosen.est_rows),
            rows.to_string(),
        ]);
    }
    t.print();

    println!("\npredicate ordering: selective-first vs authored order (n={n})");
    let mut t2 = Table::new(&["order", "ms/query", "plan"]);
    // authored order tests the common predicate first; dmg == 5 holds on
    // one row in five, so the planner flips the order
    let q = Query::select()
        .filter("team", gamedb_content::CmpOp::Ne, Value::Str("red".into()))
        .filter("dmg", gamedb_content::CmpOp::Eq, Value::Float(5.0));
    let chosen = gamedb_core::plan(&q, &stats);
    let authored = Plan {
        preds: q.predicates().to_vec(),
        selectivities: q.predicates().iter().map(|p| stats.selectivity(p)).collect(),
        ..chosen.clone()
    };
    for (name, p) in [("authored", &authored), ("planned", &chosen)] {
        let ms = mean_ms(3, || {
            std::hint::black_box(p.run(&world).len());
        });
        t2.row(&[name.into(), f3(ms), p.explain()]);
    }
    t2.print();
    println!(
        "expected shape: the index wins while the disk is a small fraction \
         of the map and loses past ~half the map; the planner's own row \
         tracks min(scan, index) across the crossover; putting the rare \
         predicate first cuts evaluation cost."
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let engine = args
        .iter()
        .find_map(|a| a.strip_prefix("--engine="))
        .map(|v| match v {
            "interp" => ExecMode::Interp,
            "vm" => ExecMode::Vm,
            other => {
                eprintln!("unknown engine {other:?} (use interp or vm); defaulting to vm");
                ExecMode::Vm
            }
        })
        .unwrap_or(ExecMode::Vm);
    let _ = ENGINE.set(engine);
    let mut wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.to_lowercase())
        .collect();
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = (1..=14).map(|i| format!("e{i}")).collect();
    }
    type Experiment = (&'static str, fn(bool));
    let experiments: Vec<Experiment> = vec![
        ("e1", e1),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e5", e5),
        ("e6", e6),
        ("e7", e7),
        ("e8", e8),
        ("e9", e9),
        ("e10", e10),
        ("e11", e11),
        ("e12", e12),
        ("e13", e13),
        ("e14", e14),
    ];
    for w in &wanted {
        match experiments.iter().find(|(name, _)| name == w) {
            Some((_, f)) => f(full),
            None => eprintln!("unknown experiment {w:?} (use e1..e14 or all)"),
        }
    }
}
