//! # gamedb-bench
//!
//! Shared infrastructure for the experiment harness (`expt` binary) and
//! the Criterion benches: table printing, timing, and the standard world
//! builders every experiment uses. The experiments themselves (E1–E14,
//! indexed in DESIGN.md) live in `src/bin/expt.rs`.

use std::time::Instant;

use gamedb_content::{Value, ValueType};
use gamedb_core::{EntityId, World};
use gamedb_spatial::Vec2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Time a closure, returning (result, milliseconds).
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Run a closure `reps` times and return the mean milliseconds.
pub fn mean_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / reps.max(1) as f64
}

/// A fixed-width text table that prints like the paper's tables.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with precision adapted to magnitude.
pub fn f3(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Uniform random world with the standard combat components: hp, dmg,
/// team. Density is controlled by `map_size`.
pub fn combat_world(n: usize, map_size: f32, seed: u64) -> (World, Vec<EntityId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = World::new();
    w.define_component("hp", ValueType::Float).unwrap();
    w.define_component("dmg", ValueType::Float).unwrap();
    w.define_component("team", ValueType::Str).unwrap();
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let e = w.spawn_at(Vec2::new(
            rng.gen::<f32>() * map_size,
            rng.gen::<f32>() * map_size,
        ));
        w.set_f32(e, "hp", 100.0).unwrap();
        w.set_f32(e, "dmg", 1.0 + (i % 5) as f32).unwrap();
        w.set(
            e,
            "team",
            Value::Str(if i % 2 == 0 { "red" } else { "blue" }.into()),
        )
        .unwrap();
        ids.push(e);
    }
    (w, ids)
}

/// World with constant *density*: the map grows with n so each entity
/// keeps roughly `density` entities per unit area — the fair regime for
/// index scaling curves.
pub fn constant_density_world(n: usize, density: f32, seed: u64) -> (World, Vec<EntityId>) {
    let map = ((n as f32) / density).sqrt().max(1.0);
    combat_world(n, map, seed)
}

/// Clustered world: entities concentrated in `clusters` blobs (the regime
/// where tree indices beat the uniform grid).
pub fn clustered_world(
    n: usize,
    clusters: usize,
    map_size: f32,
    spread: f32,
    seed: u64,
) -> (World, Vec<EntityId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec2> = (0..clusters.max(1))
        .map(|_| {
            Vec2::new(
                rng.gen::<f32>() * map_size,
                rng.gen::<f32>() * map_size,
            )
        })
        .collect();
    let mut w = World::new();
    w.define_component("hp", ValueType::Float).unwrap();
    w.define_component("dmg", ValueType::Float).unwrap();
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let c = centers[i % centers.len()];
        let dx = (rng.gen::<f32>() + rng.gen::<f32>() - 1.0) * spread;
        let dy = (rng.gen::<f32>() + rng.gen::<f32>() - 1.0) * spread;
        let e = w.spawn_at(c + Vec2::new(dx, dy));
        w.set_f32(e, "hp", 100.0).unwrap();
        w.set_f32(e, "dmg", 1.0).unwrap();
        ids.push(e);
    }
    (w, ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["n", "time"]);
        t.row(&["100".into(), "1.5".into()]);
        t.row(&["10000".into(), "123.4".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n'));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn builders_produce_requested_sizes() {
        let (w, ids) = combat_world(100, 50.0, 1);
        assert_eq!(w.len(), 100);
        assert_eq!(ids.len(), 100);
        let (w2, _) = constant_density_world(400, 1.0, 1);
        assert_eq!(w2.len(), 400);
        let (w3, _) = clustered_world(100, 4, 1000.0, 10.0, 1);
        assert_eq!(w3.len(), 100);
    }

    #[test]
    fn builders_are_deterministic() {
        let (w1, _) = combat_world(50, 100.0, 9);
        let (w2, _) = combat_world(50, 100.0, 9);
        assert_eq!(w1.rows(), w2.rows());
    }

    #[test]
    fn timing_helpers() {
        let (v, ms) = time_ms(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
        let m = mean_ms(3, || {
            std::hint::black_box(1 + 1);
        });
        assert!(m >= 0.0);
    }
}
