//! Write-path bench: per-call commit vs `World::apply_batch` batch
//! commit through the unified change pipeline — the ISSUE-4 acceptance
//! experiment.
//!
//! 100k entities with **2 secondary indexes** (`hp` sorted, `team`
//! hash), **3 standing views** (two predicate views, one spatial
//! bubble), and a **WAL durability tap** attached. One "tick" of K
//! writes runs (a) as K individual `set` calls each followed by its own
//! `WalStore::commit` (one frame + flush per write — the per-call
//! discipline), and (b) as one `WriteBatch` through `apply_batch`
//! followed by a single commit (one group-commit WAL frame). Both end
//! with one view refresh, as a real tick would. The batch path must be
//! ≥2× the per-call path; the amortization curve over intermediate
//! batch sizes is printed so the shape — not just the endpoints — is
//! checked on every run.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gamedb_bench::combat_world;
use gamedb_content::{CmpOp, Value};
use gamedb_core::{ChangeOp, IndexKind, Query, WriteBatch};
use gamedb_persist::{temp_dir, Backend, CompRef, WalRecord, WalStore};
use gamedb_spatial::Vec2;
use std::time::Instant;

/// Counting allocator: the ISSUE-5 allocation budget on the hot write
/// path is measured, not guessed.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOCS.load(Ordering::Relaxed) - before)
}

const N: usize = 100_000;
const K: usize = 512; // writes per measured tick

fn build_store(label: &str) -> WalStore {
    let (mut world, _ids) = combat_world(N, 2_000.0, 42);
    world.create_index("hp", IndexKind::Sorted).unwrap();
    world.create_index("team", IndexKind::Hash).unwrap();
    world.register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(25.0)));
    world.register_view(Query::select().filter("team", CmpOp::Eq, Value::Str("red".into())));
    world.register_view(Query::select().within(Vec2::new(1_000.0, 1_000.0), 150.0));
    let backend = Backend::open(temp_dir(label)).unwrap();
    WalStore::new(world, backend, 1).unwrap()
}

/// The k-th write of round `r`: a pseudo-random entity gets a fresh hp.
fn write_of(ids: &[gamedb_core::EntityId], r: u64, k: usize) -> (gamedb_core::EntityId, f32) {
    let pick = ((r as usize).wrapping_mul(7919) + k.wrapping_mul(104_729)) % ids.len();
    (ids[pick], ((r as usize + k * 13) % 100) as f32)
}

fn bench_write_path(c: &mut Criterion) {
    // one store per path so log growth is comparable
    let per_call = RefCell::new(build_store("write-path-percall"));
    let batched = RefCell::new(build_store("write-path-batch"));
    let ids = per_call.borrow().world().entity_vec();
    let round = Cell::new(0u64);

    {
        let mut group = c.benchmark_group("write_path");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("per_call_commit", K), &K, |b, _| {
            b.iter(|| {
                let mut s = per_call.borrow_mut();
                round.set(round.get() + 1);
                let r = round.get();
                for k in 0..K {
                    let (e, hp) = write_of(&ids, r, k);
                    s.world_mut().set(e, "hp", Value::Float(hp)).unwrap();
                    s.commit().unwrap();
                }
                s.world_mut().refresh_views();
            })
        });
        group.bench_with_input(BenchmarkId::new("batch_commit", K), &K, |b, _| {
            b.iter(|| {
                let mut s = batched.borrow_mut();
                round.set(round.get() + 1);
                let r = round.get();
                let mut batch = WriteBatch::new();
                for k in 0..K {
                    let (e, hp) = write_of(&ids, r, k);
                    batch.set(e, "hp", Value::Float(hp));
                }
                s.world_mut().apply_batch(batch).unwrap();
                s.commit().unwrap();
                s.world_mut().refresh_views();
            })
        });
        group.finish();
    }

    // sanity: both stores agree with their own scan oracles and both
    // logs actually carried the writes (recovery is exercised elsewhere;
    // here we pin that the tap captured everything)
    for store in [&per_call, &batched] {
        let mut s = store.borrow_mut();
        assert_eq!(s.uncommitted(), 0);
        let w = s.world_mut();
        w.refresh_views();
        for v in w.view_ids() {
            assert_eq!(w.view_rows(v).to_vec(), w.view_query(v).run_scan(w));
        }
    }

    // the amortization curve: ns/write as the commit batch widens
    println!("\namortization curve ({N} entities, 2 indexes + 3 views + WAL attached):");
    println!("{:>10} {:>14} {:>12}", "batch", "ns/write", "frames");
    let mut curve = Vec::new();
    for &size in &[1usize, 4, 16, 64, 256, K] {
        let mut s = batched.borrow_mut();
        let frames_before = s.stats.records;
        let rounds = 3usize;
        let start = Instant::now();
        for _ in 0..rounds {
            round.set(round.get() + 1);
            let r = round.get();
            let mut k = 0;
            while k < K {
                let mut batch = WriteBatch::new();
                for j in k..(k + size).min(K) {
                    let (e, hp) = write_of(&ids, r, j);
                    batch.set(e, "hp", Value::Float(hp));
                }
                s.world_mut().apply_batch(batch).unwrap();
                s.commit().unwrap();
                k += size;
            }
            s.world_mut().refresh_views();
        }
        let ns_per_write = start.elapsed().as_secs_f64() * 1e9 / (rounds * K) as f64;
        let frames = s.stats.records - frames_before;
        println!("{size:>10} {ns_per_write:>14.1} {frames:>12}");
        curve.push((size, ns_per_write));
    }
    assert!(
        curve.last().unwrap().1 < curve[0].1,
        "widening the commit batch must reduce per-write cost: {curve:?}"
    );

    // ---- ISSUE-5: encoded-record size, interned ids vs string names ----
    // The same K writes, recorded by the change stream and framed as WAL
    // records: once as the interned framing actually produces them
    // (varint column ids), once re-framed with the legacy string-named
    // records. Interned must be strictly smaller per record.
    {
        let mut s = batched.borrow_mut();
        let w = s.world_mut();
        let tap = w.attach_tap();
        round.set(round.get() + 1);
        let r = round.get();
        let (_, writes_allocs) = allocs_during(|| {
            for k in 0..K {
                let (e, hp) = write_of(&ids, r, k);
                w.set(e, "hp", Value::Float(hp)).unwrap();
            }
        });
        let changes: Vec<gamedb_core::Change> = w.tap_pending(tap).to_vec();
        assert_eq!(changes.len(), K);
        let interned_bytes: usize = changes
            .iter()
            .map(|c| WalRecord::from_change(c).encode().len())
            .sum();
        let string_bytes: usize = changes
            .iter()
            .map(|c| {
                let ChangeOp::Set { id, component, new, .. } = &c.op else {
                    panic!("hp writes only");
                };
                let name = w.component_name(*component).unwrap().to_string();
                WalRecord::Set {
                    entity: *id,
                    component: CompRef::Name(name),
                    value: new.clone(),
                }
                .encode()
                .len()
            })
            .sum();
        // the string baseline pays one extra name clone per record on
        // top of the wire bytes; measure that allocation delta too
        let (_, baseline_allocs) = allocs_during(|| {
            for c in &changes {
                let ChangeOp::Set { component, .. } = &c.op else { unreachable!() };
                std::hint::black_box(w.component_name(*component).unwrap().to_string());
            }
        });
        w.detach_tap(tap);
        s.commit().unwrap();
        println!(
            "\nencoded record size ({K} hp writes): interned {:.1} B/record vs \
             string {:.1} B/record ({} vs {} total)",
            interned_bytes as f64 / K as f64,
            string_bytes as f64 / K as f64,
            interned_bytes,
            string_bytes
        );
        println!(
            "write-path allocations: {:.2}/write recording interned records; \
             string records would add {:.2}/write for name clones alone",
            writes_allocs as f64 / K as f64,
            baseline_allocs as f64 / K as f64
        );
        assert!(
            interned_bytes < string_bytes,
            "acceptance: interned framing must shrink encoded records \
             ({interned_bytes} vs {string_bytes} bytes)"
        );
        assert!(
            interned_bytes as f64 <= string_bytes as f64 * 0.9,
            "expected a measurable (>10%) record-size drop, got {interned_bytes} \
             vs {string_bytes}"
        );
    }

    let ns = |name: &str| {
        c.results
            .iter()
            .find(|(k, _)| k.contains(name))
            .map(|(_, v)| *v)
            .expect("bench ran")
    };
    let speedup = ns("per_call_commit") / ns("batch_commit");
    println!(
        "\nwrite-path speedup: {speedup:.1}x (per-call commit vs one {K}-write \
         batch commit, {N} entities, 2 indexes + 3 views + WAL)"
    );
    assert!(
        speedup >= 2.0,
        "acceptance: batch commit must be >=2x over per-call commit, got {speedup:.1}x"
    );
}

criterion_group!(benches, bench_write_path);
criterion_main!(benches);
