//! Criterion bench for experiment E12: per-tick shard placement cost of
//! each policy on a 2048-player world. Placement must be cheap relative
//! to the tick itself or dynamic partitioning eats its own benefit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gamedb_sync::{AssignPolicy, BubbleConfig, ShardManager, Workload, WorkloadConfig};

fn bench_shard(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_placement");
    group.sample_size(10);
    let cfg = WorkloadConfig {
        players: 2048,
        hotspot_fraction: 0.3,
        ..Default::default()
    };
    let policies: Vec<(&str, AssignPolicy)> = vec![
        (
            "static_zones",
            AssignPolicy::StaticZones { cols: 4, rows: 4, map_size: cfg.map_size },
        ),
        ("hash", AssignPolicy::HashEntities),
        (
            "dynamic_bubbles",
            AssignPolicy::DynamicBubbles {
                cfg: BubbleConfig { dt: 1.0, max_accel: 2.0, interaction_range: 10.0 },
                max_overload: 1.25,
            },
        ),
    ];
    for (name, policy) in policies {
        group.bench_with_input(BenchmarkId::new(name, cfg.players), &cfg, |b, cfg| {
            let wl = Workload::new(*cfg);
            let mgr = ShardManager::new(8, policy);
            b.iter(|| mgr.assign(&wl.world).node_of.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shard);
criterion_main!(benches);
