//! Criterion bench for experiment E1: per-tick script evaluation cost,
//! naive full-scan vs spatial-index vs compiled, across world sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gamedb_bench::constant_density_world;
use gamedb_core::EffectBuffer;
use gamedb_script::{compile, parse_script, run_script, ExecOptions, ScriptLibrary};

const SRC: &str = "self.hp -= count(8; other.team != self.team) * 0.1; self.hp += 0.05;";

fn bench_script_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("script_scaling");
    group.sample_size(10);
    for &n in &[250usize, 1000, 4000] {
        let (world, ids) = constant_density_world(n, 0.05, 7);
        let mut lib = ScriptLibrary::new();
        lib.insert(parse_script("combat", SRC).unwrap());
        let compiled = compile(&lib, "combat", &world).unwrap();

        if n <= 1000 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                b.iter(|| {
                    let mut buf = EffectBuffer::new();
                    for &id in &ids {
                        run_script(
                            &lib,
                            "combat",
                            &world,
                            id,
                            &mut buf,
                            ExecOptions {
                                use_index: false,
                                ..Default::default()
                            },
                        )
                        .unwrap();
                    }
                    buf.len()
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = EffectBuffer::new();
                for &id in &ids {
                    run_script(&lib, "combat", &world, id, &mut buf, ExecOptions::default())
                        .unwrap();
                }
                buf.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("compiled", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = EffectBuffer::new();
                for &id in &ids {
                    compiled.run(&world, id, &mut buf, true).unwrap();
                }
                buf.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_script_scaling);
criterion_main!(benches);
