//! Criterion bench for experiment E6: executing one MMO action batch
//! under each concurrency-control strategy, at low and high contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gamedb_sync::{
    BubbleConfig, BubbleExecutor, Executor, LockingExecutor, OptimisticExecutor, SerialExecutor,
    Workload, WorkloadConfig,
};

fn bench_consistency(c: &mut Criterion) {
    for &hotspot in &[0.0f32, 0.8] {
        let mut group = c.benchmark_group(format!("consistency_hotspot_{hotspot}"));
        group.sample_size(10);
        let cfg = WorkloadConfig {
            players: 1024,
            hotspot_fraction: hotspot,
            ..Default::default()
        };
        let execs: Vec<(&str, Box<dyn Executor>)> = vec![
            ("serial", Box::new(SerialExecutor)),
            ("2pl", Box::new(LockingExecutor)),
            ("occ", Box::new(OptimisticExecutor::default())),
            (
                "bubbles",
                Box::new(BubbleExecutor::new(BubbleConfig {
                    dt: 1.0,
                    max_accel: 2.0,
                    interaction_range: cfg.interaction_range,
                })),
            ),
        ];
        for (name, exec) in execs {
            group.bench_with_input(BenchmarkId::new(name, cfg.players), &cfg, |b, cfg| {
                let mut wl = Workload::new(*cfg);
                let batch = wl.next_batch();
                b.iter(|| exec.execute(&mut wl.world, &batch).executed)
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_consistency);
criterion_main!(benches);
