//! Criterion bench for experiment E10: migration cost and query cost of
//! the structured store versus the blob store.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gamedb_content::{Value, ValueType};
use gamedb_core::World;
use gamedb_persist::{BlobStore, Migration, SchemaVersion, StructuredStore};
use gamedb_spatial::Vec2;

fn base_schema() -> SchemaVersion {
    SchemaVersion {
        fields: vec![
            ("hp".into(), ValueType::Float, Value::Float(100.0)),
            ("gold".into(), ValueType::Int, Value::Int(0)),
            ("name".into(), ValueType::Str, Value::Str(String::new())),
        ],
    }
}

fn blob_store(n: u64) -> BlobStore {
    let mut s = BlobStore::new(base_schema());
    for i in 0..n {
        s.put(
            i,
            &[
                ("hp".into(), Value::Float(i as f32)),
                ("gold".into(), Value::Int(i as i64)),
                ("name".into(), Value::Str(format!("p{i}"))),
            ],
        )
        .unwrap();
    }
    s
}

fn structured_store(n: usize) -> StructuredStore {
    let mut w = World::new();
    w.define_component("hp", ValueType::Float).unwrap();
    w.define_component("gold", ValueType::Int).unwrap();
    w.define_component("name", ValueType::Str).unwrap();
    for i in 0..n {
        let e = w.spawn_at(Vec2::new(i as f32, 0.0));
        w.set_f32(e, "hp", i as f32).unwrap();
        w.set(e, "gold", Value::Int(i as i64)).unwrap();
        w.set(e, "name", Value::Str(format!("p{i}"))).unwrap();
    }
    StructuredStore::new(w)
}

fn add_mana() -> Migration {
    Migration::AddColumn {
        name: "mana".into(),
        ty: ValueType::Float,
        default: Value::Float(50.0),
    }
}

fn bench_migration(c: &mut Criterion) {
    let n = 10_000;
    let mut group = c.benchmark_group("migration");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("structured_add_column", n), &n, |b, &n| {
        b.iter_with_setup(
            || structured_store(n),
            |mut s| s.migrate(&add_mana()).unwrap().rows_rewritten,
        )
    });
    group.bench_with_input(BenchmarkId::new("blob_add_column", n), &n, |b, &n| {
        b.iter_with_setup(
            || blob_store(n as u64),
            |mut s| s.migrate(add_mana()).unwrap().rows_rewritten,
        )
    });
    group.finish();

    let mut group = c.benchmark_group("post_migration_query");
    group.sample_size(10);
    let mut structured = structured_store(n);
    structured.migrate(&add_mana()).unwrap();
    let mut blob = blob_store(n as u64);
    blob.migrate(add_mana()).unwrap();
    group.bench_function("structured_sum", |b| {
        b.iter(|| structured.sum_column("mana"))
    });
    group.bench_function("blob_sum_stale_rows", |b| {
        b.iter(|| blob.sum_column("mana").unwrap())
    });
    let mut compacted = blob_store(n as u64);
    compacted.migrate(add_mana()).unwrap();
    compacted.compact().unwrap();
    group.bench_function("blob_sum_compacted", |b| {
        b.iter(|| compacted.sum_column("mana").unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_migration);
criterion_main!(benches);
