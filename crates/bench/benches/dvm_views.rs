//! Differential view maintenance bench: the ISSUE-10 acceptance
//! experiment.
//!
//! Two operator-tree views over a 100k-entity world with 1% churn per
//! tick — an equi-join (`hp < 10` rows against their teammates) and a
//! per-team `Sum(hp)` group aggregate — maintained two ways: (a) a
//! forced `ViewPlan::evaluate` re-materialization every tick, and (b)
//! incremental maintenance from the delta stream (`refresh_views`).
//! Both sides pay the same churn writes inside the measured iteration —
//! the delta path additionally pays delta recording, so the comparison
//! charges the subsystem its full overhead. Incremental maintenance
//! must beat per-tick recompute by ≥10×; the measured speedup prints on
//! every run.

use std::cell::{Cell, RefCell};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gamedb_bench::combat_world;
use gamedb_content::{CmpOp, Value};
use gamedb_core::{AggFn, EntityId, JoinOn, PlanNode, Query, ViewPlan, World};

const N: usize = 100_000;
/// 1% of the world is written per tick.
const CHURN: usize = N / 100;
/// hp cycles through 0..1000, so `hp < 10` keeps ~1% of rows.
const HP_SPREAD: usize = 1_000;
/// 10 entities per team keeps the join output ~10 pairs per left row.
const TEAMS: usize = 10_000;

/// One tick of churn: rotate the hp of a striding 1% slice. Entities
/// enter and leave the join's left side as their hp wraps past the
/// threshold, and every write shifts its team's aggregate sum.
fn churn(world: &mut World, ids: &[EntityId], step: usize) {
    for k in 0..CHURN {
        let e = ids[(step * CHURN + k) % N];
        let hp = world.get_f32(e, "hp").expect("combat world sets hp");
        world
            .set_f32(e, "hp", (hp + 1.0) % HP_SPREAD as f32)
            .expect("hp is float");
    }
}

fn join_plan() -> ViewPlan {
    ViewPlan::join(
        PlanNode::scan(Query::select().filter("hp", CmpOp::Lt, Value::Float(10.0))),
        PlanNode::scan(Query::select()),
        JoinOn::Eq {
            left: "team".into(),
            right: "team".into(),
        },
    )
}

fn group_plan() -> ViewPlan {
    Query::select()
        .into_grouped_plan("team", AggFn::Sum("hp".into()))
        .expect("sum over a named column is a valid aggregate")
}

fn bench_dvm_views(c: &mut Criterion) {
    let (mut world, ids) = combat_world(N, 2_000.0, 42);
    for (i, &e) in ids.iter().enumerate() {
        // whole-number hp keeps the incrementally maintained f64 sums
        // exact, so the final equality check is bit-identical
        world.set_f32(e, "hp", (i % HP_SPREAD) as f32).unwrap();
        world
            .set(e, "team", Value::Str(format!("t{}", i % TEAMS)))
            .unwrap();
    }
    let (jp, gp) = (join_plan(), group_plan());
    let seed_pairs = jp.evaluate(&world).unwrap().as_pairs().unwrap().len();
    assert!(
        seed_pairs > 0 && seed_pairs < N,
        "join output should be selective (~10 teammates per hp<10 row), \
         got {seed_pairs} pairs"
    );
    assert_eq!(
        gp.evaluate(&world).unwrap().as_groups().unwrap().len(),
        TEAMS,
        "one group row per team"
    );

    let world = RefCell::new(world);
    let step = Cell::new(0usize);
    // (a) no views registered: churn writes record nothing, both
    // standing questions are answered by full re-materialization
    {
        let mut group = c.benchmark_group("dvm_views");
        group.sample_size(15);
        group.bench_with_input(BenchmarkId::new("per_tick_recompute", N), &(), |b, _| {
            b.iter(|| {
                let mut w = world.borrow_mut();
                step.set(step.get() + 1);
                churn(&mut w, &ids, step.get());
                let pairs = jp.evaluate(&w).unwrap().as_pairs().unwrap().len();
                let groups = gp.evaluate(&w).unwrap().as_groups().unwrap().len();
                pairs + groups
            })
        });
        group.finish();
    }

    // (b) the same questions as standing operator-tree views folded
    // from the delta stream
    let jv = world.borrow_mut().register_view_plan(join_plan()).unwrap();
    let gv = world.borrow_mut().register_view_plan(group_plan()).unwrap();
    {
        let mut group = c.benchmark_group("dvm_views");
        group.sample_size(15);
        group.bench_with_input(BenchmarkId::new("incremental_refresh", N), &(), |b, _| {
            b.iter(|| {
                let mut w = world.borrow_mut();
                step.set(step.get() + 1);
                churn(&mut w, &ids, step.get());
                w.refresh_views();
                w.view_pairs(jv).len() + w.view_groups(gv).len()
            })
        });
        group.finish();
    }

    // the incrementally maintained outputs are exactly the forced
    // recompute, and plan views never fell back to a rescan
    {
        let mut w = world.borrow_mut();
        w.refresh_views();
        assert_eq!(w.view_output(jv), jp.evaluate(&w).unwrap());
        assert_eq!(w.view_output(gv), gp.evaluate(&w).unwrap());
        for v in [jv, gv] {
            let stats = w.view_stats(v);
            assert_eq!(stats.rescans, 0, "plan views are delta-only ({stats:?})");
            println!(
                "view {v:?}: {} refreshes, {} deltas folded",
                stats.refreshes, stats.deltas_seen
            );
        }
    }

    let ns = |name: &str| {
        c.results
            .iter()
            .find(|(k, _)| k.contains(name))
            .map(|(_, v)| *v)
            .expect("bench ran")
    };
    let speedup = ns("per_tick_recompute") / ns("incremental_refresh");
    println!(
        "dvm views speedup: {speedup:.1}x (per-tick operator-tree recompute vs \
         incremental maintenance, {N} entities, {CHURN} writes/tick, join + group-by)"
    );
    assert!(
        speedup >= 10.0,
        "acceptance: incremental operator-tree maintenance must be >=10x over \
         per-tick recompute at 1% churn, got {speedup:.1}x"
    );
}

criterion_group!(benches, bench_dvm_views);
criterion_main!(benches);
