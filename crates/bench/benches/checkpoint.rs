//! Criterion bench for experiment E9's cost side: snapshot encoding and
//! durable checkpoint writes as world size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gamedb_bench::combat_world;
use gamedb_persist::{temp_dir, Backend, CheckpointPolicy, GameStore};

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint");
    group.sample_size(10);
    for &n in &[500usize, 2000, 8000] {
        group.bench_with_input(BenchmarkId::new("encode", n), &n, |b, &n| {
            let (world, _) = combat_world(n, 500.0, 3);
            b.iter(|| gamedb_persist::encode(&world).len())
        });
        group.bench_with_input(BenchmarkId::new("checkpoint_durable", n), &n, |b, &n| {
            let (world, _) = combat_world(n, 500.0, 3);
            let backend = Backend::open(temp_dir(&format!("bench-cp-{n}"))).unwrap();
            let mut store = GameStore::new(
                world,
                backend,
                CheckpointPolicy::Periodic { period: 1e12 },
            )
            .unwrap();
            b.iter(|| store.checkpoint().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("recover", n), &n, |b, &n| {
            let (world, _) = combat_world(n, 500.0, 3);
            let data = gamedb_persist::encode(&world);
            b.iter(|| gamedb_persist::decode(&data).unwrap().0.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
