//! Criterion bench for experiment E4: navmesh path queries with and
//! without annotation-aware costs, plus semantic annotation queries.

use criterion::{criterion_group, criterion_main, Criterion};
use gamedb_spatial::{Annotation, CostProfile, NavMesh, Vec2};

/// The same dungeon as expt e4: three halls, lava band, cover alcoves.
fn dungeon() -> NavMesh {
    let (w, h) = (48usize, 32usize);
    let wall = |x: usize, y: usize| -> bool {
        if x == 0 || y == 0 || x == w - 1 || y == h - 1 {
            return true;
        }
        if y == 10 && x % 12 != 6 {
            return true;
        }
        if y == 21 && x % 16 != 8 {
            return true;
        }
        false
    };
    NavMesh::from_tile_grid(
        w,
        h,
        1.0,
        |x, y| !wall(x, y),
        |x, y| {
            let mut a = Annotation::neutral();
            if (11..21).contains(&y) && (16..32).contains(&x) {
                a.danger = 0.9;
            }
            if y >= 28 && x % 7 == 3 {
                a.cover = 0.8;
            }
            a
        },
    )
}

fn bench_navmesh(c: &mut Criterion) {
    let mesh = dungeon();
    let from = Vec2::new(2.5, 2.5);
    let to = Vec2::new(45.5, 30.5);

    let mut group = c.benchmark_group("navmesh");
    group.sample_size(30);
    group.bench_function("path_shortest", |b| {
        b.iter(|| mesh.find_path(from, to, &CostProfile::shortest()).unwrap().cost)
    });
    group.bench_function("path_cautious", |b| {
        b.iter(|| mesh.find_path(from, to, &CostProfile::cautious()).unwrap().cost)
    });
    group.bench_function("locate", |b| {
        b.iter(|| mesh.locate(Vec2::new(24.0, 16.0)))
    });
    group.bench_function("best_hiding_spot", |b| {
        b.iter(|| mesh.best_hiding_spot(Vec2::new(24.0, 29.0), 15.0))
    });
    group.bench_function("build_48x32", |b| {
        b.iter(|| dungeon().len())
    });
    group.finish();
}

criterion_group!(benches, bench_navmesh);
criterion_main!(benches);
