//! Replication bandwidth bench: delta-encoded stream segments
//! (`Replicator::sync_stream`) vs the full-walk row-shipping baseline
//! (`Replicator::sync_live`) — the ISSUE-5 acceptance experiment.
//!
//! A 20k-entity arena with a finite interest bubble drifts for a fixed
//! number of ticks (1% of entities move or change state per tick, the
//! focus wanders every few ticks). Both replicators are held
//! replica-identical by construction (the equivalence is pinned by unit
//! test); here we measure what that identity *costs* on the wire:
//! rows shipped, bytes shipped (row framing vs id-keyed delta framing
//! with a one-time name table), and wall time per sync. Asserts the
//! delta path ships strictly fewer bytes — the bandwidth claim of the
//! interned change pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use gamedb_bench::combat_world;
use gamedb_content::Value;
use gamedb_core::World;
use gamedb_spatial::Vec2;
use gamedb_sync::{ConsistencyLevel, Interest, Replica, Replicator};

const N: usize = 20_000;
const TICKS: usize = 60;
const CHURN: usize = N / 100;

fn churn(world: &mut World, ids: &[gamedb_core::EntityId], tick: usize) {
    for k in 0..CHURN {
        let e = ids[(tick * 7919 + k * 104_729) % ids.len()];
        if !world.is_live(e) {
            continue;
        }
        if k % 3 == 0 {
            world
                .set(e, "hp", Value::Float(((tick + k) % 100) as f32))
                .unwrap();
        } else if let Some(p) = world.pos(e) {
            world
                .set_pos(e, Vec2::new(p.x + 0.8, p.y - 0.3))
                .unwrap();
        }
    }
}

fn bench_replication_delta(c: &mut Criterion) {
    let interest = Interest {
        center: (1_000.0, 1_000.0),
        radius: 400.0,
        margin: 40.0,
    };
    let run = |stream: bool| {
        let (mut world, ids) = combat_world(N, 2_000.0, 42);
        let mut rep = Replicator::with_interest(ConsistencyLevel::Strict, interest);
        if stream {
            rep.attach_stream(&mut world);
        } else {
            rep.attach_view(&mut world);
        }
        let mut client = Replica::default();
        let start = std::time::Instant::now();
        for t in 0..TICKS {
            churn(&mut world, &ids, t);
            if t % 5 == 4 {
                rep.interest.center = (1_000.0 + t as f32 * 2.0, 1_000.0);
            }
            if stream {
                rep.sync_stream(&mut world, &mut client);
            } else {
                rep.sync_live(&mut world, &mut client);
            }
        }
        let ms = start.elapsed().as_secs_f64() * 1e3;
        (rep.rows_sent, rep.bytes_sent, ms, client)
    };

    let (walk_rows, walk_bytes, walk_ms, r_walk) = run(false);
    let (delta_rows, delta_bytes, delta_ms, r_delta) = run(true);
    assert_eq!(r_walk.rows, r_delta.rows, "replicas must be identical");

    println!(
        "\nreplication over {TICKS} ticks, {N} entities, ~{CHURN} mutations/tick, \
         Strict, finite bubble:"
    );
    println!(
        "{:>14} {:>12} {:>14} {:>10}",
        "path", "rows", "bytes", "ms total"
    );
    println!(
        "{:>14} {:>12} {:>14} {:>10.1}",
        "row-ship walk", walk_rows, walk_bytes, walk_ms
    );
    println!(
        "{:>14} {:>12} {:>14} {:>10.1}",
        "delta segments", delta_rows, delta_bytes, delta_ms
    );
    println!(
        "delta segments ship {:.1}% of baseline bytes ({:.1}x reduction)",
        100.0 * delta_bytes as f64 / walk_bytes as f64,
        walk_bytes as f64 / delta_bytes as f64
    );
    assert!(
        delta_bytes < walk_bytes,
        "acceptance: delta segments must ship strictly fewer bytes \
         ({delta_bytes} vs {walk_bytes})"
    );
    assert!(delta_rows <= walk_rows);

    // a Criterion timing pair over one steady-state tick each
    let mut group = c.benchmark_group("replication_sync");
    group.sample_size(10);
    {
        let (mut world, ids) = combat_world(N, 2_000.0, 42);
        let mut rep = Replicator::with_interest(ConsistencyLevel::Strict, interest);
        rep.attach_view(&mut world);
        let mut client = Replica::default();
        rep.sync_live(&mut world, &mut client);
        let mut t = 0usize;
        group.bench_function("full_walk", |b| {
            b.iter(|| {
                t += 1;
                churn(&mut world, &ids, t);
                rep.sync_live(&mut world, &mut client);
            })
        });
    }
    {
        let (mut world, ids) = combat_world(N, 2_000.0, 42);
        let mut rep = Replicator::with_interest(ConsistencyLevel::Strict, interest);
        rep.attach_stream(&mut world);
        let mut client = Replica::default();
        rep.sync_stream(&mut world, &mut client);
        let mut t = 0usize;
        group.bench_function("delta_segments", |b| {
            b.iter(|| {
                t += 1;
                churn(&mut world, &ids, t);
                rep.sync_stream(&mut world, &mut client);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replication_delta);
criterion_main!(benches);
