//! Criterion bench for experiment E5: one combat tick at different thread
//! counts (speedup is bounded by the machine's core count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gamedb_bench::constant_density_world;
use gamedb_core::{Effect, EffectBuffer, EntityId, TickExecutor, World};

fn combat(id: EntityId, w: &World, buf: &mut EffectBuffer) {
    let Some(p) = w.pos(id) else { return };
    let mut near = Vec::new();
    w.within(p, 30.0, &mut near);
    let mut threat = 0.0f64;
    for other in near {
        if other != id {
            if let (Some(q), Some(dmg)) = (w.pos(other), w.get_f32(other, "dmg")) {
                threat += dmg as f64 / (1.0 + p.dist(q) as f64);
            }
        }
    }
    buf.push(id, "hp", Effect::Add(-threat * 0.001));
}

fn bench_parallel_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_tick");
    group.sample_size(10);
    let n = 4000;
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            let (mut world, _) = constant_density_world(n, 0.05, 11);
            let exec = if t == 1 {
                TickExecutor::sequential()
            } else {
                TickExecutor::parallel(t)
            };
            b.iter(|| {
                exec.run_tick(&mut world, &[&combat]).unwrap().effects_applied
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_tick);
criterion_main!(benches);
