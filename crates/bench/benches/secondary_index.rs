//! Secondary-index bench: the ISSUE-1 acceptance experiment.
//!
//! At 100k entities, an equality predicate selecting <1% of rows runs
//! through (a) the forced full scan the seed engine was limited to
//! (`Query::run_scan`), (b) the hash-indexed path, and (c) a sorted-index
//! range probe — plus the planner's own choice. The indexed paths must
//! beat the scan by ≥10×; the bench prints the measured speedups so the
//! claim is checked on every run, not asserted once and forgotten.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gamedb_bench::combat_world;
use gamedb_content::{CmpOp, Value, ValueType};
use gamedb_core::{plan, IndexKind, Query, TableStats};

const N: usize = 100_000;
const CLASSES: usize = 200; // 0.5% of rows per class

fn bench_secondary_index(c: &mut Criterion) {
    let (mut world, ids) = combat_world(N, 2_000.0, 42);
    world.define_component("class", ValueType::Str).unwrap();
    for (i, &e) in ids.iter().enumerate() {
        world
            .set(e, "class", Value::Str(format!("class-{:03}", i % CLASSES)))
            .unwrap();
        // hp becomes a spread the sorted index can range over
        world.set_f32(e, "hp", (i % 1000) as f32).unwrap();
    }

    let eq_query = Query::select().filter("class", CmpOp::Eq, Value::Str("class-007".into()));
    let range_query = Query::select().filter("hp", CmpOp::Lt, Value::Float(5.0));
    let expected_eq = N / CLASSES;
    assert_eq!(eq_query.run_scan(&world).len(), expected_eq);
    assert_eq!(range_query.run_scan(&world).len(), N / 1000 * 5);

    {
        let mut group = c.benchmark_group("secondary_index");
        group.sample_size(15);
        group.bench_with_input(BenchmarkId::new("eq_scan", N), &eq_query, |b, q| {
            b.iter(|| q.run_scan(&world).len())
        });
        group.bench_with_input(BenchmarkId::new("range_scan", N), &range_query, |b, q| {
            b.iter(|| q.run_scan(&world).len())
        });
        group.finish();
    }

    world.create_index("class", IndexKind::Hash).unwrap();
    world.create_index("hp", IndexKind::Sorted).unwrap();
    // sanity: identical result sets through the indexed paths
    assert_eq!(eq_query.run(&world), eq_query.run_scan(&world));
    assert_eq!(range_query.run(&world), range_query.run_scan(&world));
    let stats = TableStats::from_catalog(&world);
    println!("planned eq:    {}", plan(&eq_query, &stats).explain());
    println!("planned range: {}", plan(&range_query, &stats).explain());

    {
        let mut group = c.benchmark_group("secondary_index");
        group.sample_size(15);
        group.bench_with_input(BenchmarkId::new("eq_hash_index", N), &eq_query, |b, q| {
            b.iter(|| q.run(&world).len())
        });
        group.bench_with_input(
            BenchmarkId::new("range_sorted_index", N),
            &range_query,
            |b, q| b.iter(|| q.run(&world).len()),
        );
        group.finish();
    }

    let ns = |name: &str| {
        c.results
            .iter()
            .find(|(k, _)| k.contains(name))
            .map(|(_, v)| *v)
            .expect("bench ran")
    };
    let eq_speedup = ns("eq_scan") / ns("eq_hash_index");
    let range_speedup = ns("range_scan") / ns("range_sorted_index");
    println!("eq    speedup: {eq_speedup:.1}x (scan vs hash index, {expected_eq} of {N} rows)");
    println!("range speedup: {range_speedup:.1}x (scan vs sorted index)");
    assert!(
        eq_speedup >= 10.0,
        "acceptance: equality index must be >=10x over the scan, got {eq_speedup:.1}x"
    );
    assert!(
        range_speedup >= 10.0,
        "acceptance: range index must be >=10x over the scan, got {range_speedup:.1}x"
    );
}

criterion_group!(benches, bench_secondary_index);
criterion_main!(benches);
