//! Criterion bench for the recovery side of E9: snapshot decode + WAL
//! tail replay at 100k entities, with and without the catalog work —
//! secondary-index rebuild and standing-view re-materialization — that
//! exact recovery performs on top of row restore.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gamedb_bench::combat_world;
use gamedb_content::{CmpOp, Value};
use gamedb_core::{EntityId, IndexKind, Query, World};
use gamedb_persist::{encode, recover_from_parts, WalRecord};
use gamedb_spatial::Vec2;

/// A checkpoint-anchored WAL tail: the base mark plus `writes` hp
/// updates spread over the population.
fn wal_tail(ids: &[EntityId], writes: usize) -> Vec<u8> {
    let mut log = Vec::new();
    log.extend_from_slice(&WalRecord::CheckpointMark { seq: 0 }.encode());
    for i in 0..writes {
        let e = ids[(i * 37) % ids.len()];
        log.extend_from_slice(
            &WalRecord::Set {
                entity: e,
                component: "hp".into(),
                value: Value::Float((i % 100) as f32),
            }
            .encode(),
        );
    }
    log
}

fn with_catalog(mut world: World) -> World {
    world.create_index("hp", IndexKind::Sorted).unwrap();
    world.create_index("team", IndexKind::Hash).unwrap();
    world.register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(30.0)));
    world.register_view(Query::select().filter(
        "team",
        CmpOp::Eq,
        Value::Str("red".into()),
    ));
    world.register_view(Query::select().within(Vec2::new(250.0, 250.0), 60.0));
    world
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery");
    group.sample_size(10);
    for &n in &[10_000usize, 100_000] {
        let (bare, ids) = combat_world(n, 500.0, 3);
        let tail = wal_tail(&ids, 1_000);
        let bare_snap = vec![(0u64, encode(&bare).to_vec())];
        group.bench_with_input(BenchmarkId::new("rows_only", n), &n, |b, _| {
            b.iter(|| {
                let (world, _, replayed) = recover_from_parts(&bare_snap, &tail).unwrap();
                assert_eq!(replayed, 1_000);
                world.len()
            })
        });
        let full = with_catalog(bare);
        let full_snap = vec![(0u64, encode(&full).to_vec())];
        group.bench_with_input(BenchmarkId::new("rows_plus_catalog", n), &n, |b, _| {
            b.iter(|| {
                let (world, _, replayed) = recover_from_parts(&full_snap, &tail).unwrap();
                assert_eq!(replayed, 1_000);
                assert_eq!(world.view_ids().len(), 3);
                world.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
