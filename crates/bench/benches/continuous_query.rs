//! Continuous-query bench: the ISSUE-2 acceptance experiment.
//!
//! A standing view (`hp < 10`, ~1% of rows) over a 100k-entity world
//! with 1% churn per tick, maintained two ways: (a) the per-tick rescan
//! the engine was limited to (`Query::run_scan` after every write
//! batch), and (b) incremental maintenance from the delta stream
//! (`World::refresh_views`). Both sides pay the same churn writes inside
//! the measured iteration — the delta path additionally pays delta
//! recording, so the comparison charges the subsystem its full overhead.
//! Incremental maintenance must beat the rescan by ≥10×; the measured
//! speedup prints on every run.

use std::cell::{Cell, RefCell};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gamedb_bench::combat_world;
use gamedb_content::{CmpOp, Value};
use gamedb_core::{EntityId, Query, World};

const N: usize = 100_000;
/// 1% of the world is written per tick.
const CHURN: usize = N / 100;
/// hp cycles through 0..1000, so `hp < 10` keeps ~1% of rows.
const HP_SPREAD: usize = 1_000;

/// One tick of churn: rotate the hp of a striding 1% slice. Entities
/// enter and leave the view as their hp wraps past the threshold.
fn churn(world: &mut World, ids: &[EntityId], step: usize) {
    for k in 0..CHURN {
        let e = ids[(step * CHURN + k) % N];
        let hp = world.get_f32(e, "hp").expect("combat world sets hp");
        world
            .set_f32(e, "hp", (hp + 1.0) % HP_SPREAD as f32)
            .expect("hp is float");
    }
}

fn bench_continuous_query(c: &mut Criterion) {
    let (mut world, ids) = combat_world(N, 2_000.0, 42);
    for (i, &e) in ids.iter().enumerate() {
        world.set_f32(e, "hp", (i % HP_SPREAD) as f32).unwrap();
    }
    let query = Query::select().filter("hp", CmpOp::Lt, Value::Float(10.0));
    assert_eq!(query.run_scan(&world).len(), N / HP_SPREAD * 10);

    let world = RefCell::new(world);
    let step = Cell::new(0usize);
    // (a) no views registered: churn writes record nothing, the standing
    // question is answered by a fresh scan every tick
    {
        let mut group = c.benchmark_group("continuous_query");
        group.sample_size(15);
        group.bench_with_input(BenchmarkId::new("per_tick_rescan", N), &query, |b, q| {
            b.iter(|| {
                let mut w = world.borrow_mut();
                step.set(step.get() + 1);
                churn(&mut w, &ids, step.get());
                q.run_scan(&w).len()
            })
        });
        group.finish();
    }

    // (b) the same question as a standing view maintained from deltas
    let view = world.borrow_mut().register_view(query.clone());
    {
        let mut group = c.benchmark_group("continuous_query");
        group.sample_size(15);
        group.bench_with_input(
            BenchmarkId::new("incremental_refresh", N),
            &query,
            |b, _| {
                b.iter(|| {
                    let mut w = world.borrow_mut();
                    step.set(step.get() + 1);
                    churn(&mut w, &ids, step.get());
                    w.refresh_views();
                    w.view_count(view)
                })
            },
        );
        group.finish();
    }

    // the incremental result is exactly the rescan result, and the cost
    // model kept 1% churn on the incremental path (no rescan fallback)
    {
        let mut w = world.borrow_mut();
        w.refresh_views();
        assert_eq!(w.view_rows(view).to_vec(), query.run_scan(&w));
        let stats = w.view_stats(view);
        assert_eq!(
            stats.rescans, 0,
            "1% churn must stay on the incremental path ({stats:?})"
        );
        println!(
            "view stats: {} refreshes, {} deltas folded",
            stats.refreshes, stats.deltas_seen
        );
    }

    let ns = |name: &str| {
        c.results
            .iter()
            .find(|(k, _)| k.contains(name))
            .map(|(_, v)| *v)
            .expect("bench ran")
    };
    let speedup = ns("per_tick_rescan") / ns("incremental_refresh");
    println!(
        "continuous query speedup: {speedup:.1}x (per-tick rescan vs incremental \
         maintenance, {N} entities, {CHURN} writes/tick)"
    );
    assert!(
        speedup >= 10.0,
        "acceptance: incremental view maintenance must be >=10x over the \
         per-tick rescan at 1% churn, got {speedup:.1}x"
    );
}

criterion_group!(benches, bench_continuous_query);
criterion_main!(benches);
