//! Criterion bench for experiment E3: range / kNN / update throughput of
//! each spatial index under uniform and clustered distributions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gamedb_bench::{clustered_world, constant_density_world};
use gamedb_spatial::{Aabb, BspTree, Quadtree, SpatialIndex, UniformGrid, Vec2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn points(n: usize, clustered: bool) -> Vec<(u64, Vec2)> {
    let (world, ids) = if clustered {
        clustered_world(n, 8, 2000.0, 15.0, 5)
    } else {
        constant_density_world(n, 0.05, 5)
    };
    ids.iter()
        .map(|&e| (e.to_bits(), world.pos(e).unwrap()))
        .collect()
}

fn filled<I: SpatialIndex>(mut idx: I, pts: &[(u64, Vec2)]) -> I {
    for &(id, p) in pts {
        idx.insert(id, p);
    }
    idx
}

fn bench_spatial(c: &mut Criterion) {
    let n = 8000;
    for &clustered in &[false, true] {
        let label = if clustered { "clustered" } else { "uniform" };
        let pts = points(n, clustered);
        let bounds = pts.iter().fold(Aabb::from_size(1.0, 1.0), |b, &(_, p)| {
            b.union(&Aabb::new(p, p))
        });
        let mut rng = StdRng::seed_from_u64(42);
        let queries: Vec<Vec2> = (0..256)
            .map(|_| pts[rng.gen_range(0..pts.len())].1)
            .collect();

        let grid = filled(UniformGrid::new(10.0), &pts);
        let bsp = filled(BspTree::new(16), &pts);
        let quad = filled(Quadtree::new(bounds, 16, 14), &pts);
        let indices: Vec<(&str, &dyn SpatialIndex)> =
            vec![("grid", &grid), ("bsp", &bsp), ("quadtree", &quad)];

        let mut group = c.benchmark_group(format!("spatial_range_{label}"));
        group.sample_size(20);
        for (name, idx) in &indices {
            group.bench_with_input(BenchmarkId::new(*name, n), &n, |b, _| {
                let mut out = Vec::new();
                b.iter(|| {
                    let mut total = 0usize;
                    for &q in &queries {
                        out.clear();
                        idx.query_range(q, 10.0, &mut out);
                        total += out.len();
                    }
                    total
                })
            });
        }
        group.finish();

        let mut group = c.benchmark_group(format!("spatial_knn_{label}"));
        group.sample_size(20);
        for (name, idx) in &indices {
            group.bench_with_input(BenchmarkId::new(*name, n), &n, |b, _| {
                let mut out = Vec::new();
                b.iter(|| {
                    let mut total = 0usize;
                    for &q in &queries {
                        out.clear();
                        idx.query_knn(q, 8, &mut out);
                        total += out.len();
                    }
                    total
                })
            });
        }
        group.finish();

        let mut group = c.benchmark_group(format!("spatial_update_{label}"));
        group.sample_size(20);
        group.bench_function("grid", |b| {
            let mut idx = filled(UniformGrid::new(10.0), &pts);
            let mut i = 0usize;
            b.iter(|| {
                let (id, p) = pts[i % pts.len()];
                idx.update(id, p + Vec2::new(3.0, 3.0));
                idx.update(id, p);
                i += 1;
            })
        });
        group.bench_function("bsp", |b| {
            let mut idx = filled(BspTree::new(16), &pts);
            let mut i = 0usize;
            b.iter(|| {
                let (id, p) = pts[i % pts.len()];
                idx.update(id, p + Vec2::new(3.0, 3.0));
                idx.update(id, p);
                i += 1;
            })
        });
        group.bench_function("quadtree", |b| {
            let mut idx = filled(Quadtree::new(bounds, 16, 14), &pts);
            let mut i = 0usize;
            b.iter(|| {
                let (id, p) = pts[i % pts.len()];
                idx.update(id, p + Vec2::new(3.0, 3.0));
                idx.update(id, p);
                i += 1;
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_spatial);
criterion_main!(benches);
