//! Criterion bench for the GSL bytecode VM: a 100k-entity E1-style
//! scripted tick, tree-walking interpreter vs register VM, identical
//! semantics (the equivalence suite pins that) — only dispatch differs.
//!
//! Before the criterion groups run, a single timed tick of each engine
//! asserts the VM's ≥2x throughput floor, so `cargo bench --bench
//! script_vm` doubles as a perf regression gate.

use criterion::{criterion_group, criterion_main, Criterion};
use gamedb_bench::constant_density_world;
use gamedb_core::{EffectBuffer, EntityId, World};
use gamedb_script::{
    compile_program, parse_script, run_script, ExecOptions, Program, ScriptLibrary, Vm,
};
use std::time::Instant;

const N: usize = 100_000;
// E1-style per-entity combat tick: spatial aggregates feed a damage
// model evaluated in script. The radius keeps the (engine-independent)
// index probe from drowning out script execution, which is what this
// bench compares.
const SRC: &str = "let threat = count(2; other.team != self.team);\n\
                   let pressure = threat * 0.1 + self.dmg * 0.01;\n\
                   let regen = 0.05;\n\
                   let decay = 0;\n\
                   let i = 0;\n\
                   while i < 24 {\n\
                     decay = decay * 0.5 + pressure * 0.125;\n\
                     regen = regen * 0.97;\n\
                     i = i + 1;\n\
                   }\n\
                   self.hp -= clamp(decay, 0, 5);\n\
                   self.hp += regen;";

fn tick_interp(lib: &ScriptLibrary, world: &World, ids: &[EntityId]) -> usize {
    let mut buf = EffectBuffer::new();
    for &id in ids {
        run_script(lib, "combat", world, id, &mut buf, ExecOptions::default()).unwrap();
    }
    buf.len()
}

fn tick_vm(vm: &mut Vm, program: &Program, world: &World, ids: &[EntityId]) -> usize {
    let mut buf = EffectBuffer::new();
    for &id in ids {
        vm.run(program, world, id, &mut buf, ExecOptions::default())
            .unwrap();
    }
    buf.len()
}

fn bench_script_vm(c: &mut Criterion) {
    let (world, ids) = constant_density_world(N, 0.05, 7);
    let mut lib = ScriptLibrary::new();
    lib.insert(parse_script("combat", SRC).unwrap());
    let program = compile_program(&lib, "combat", &world).unwrap();
    let mut vm = Vm::new();

    // warm both paths (index build, allocator), then gate on one timed
    // tick each: the VM must clear 2x the interpreter
    tick_interp(&lib, &world, &ids);
    tick_vm(&mut vm, &program, &world, &ids);
    let t = Instant::now();
    let a = tick_interp(&lib, &world, &ids);
    let interp_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let b = tick_vm(&mut vm, &program, &world, &ids);
    let vm_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(a, b, "engines emitted different effect counts");
    let speedup = interp_ms / vm_ms.max(1e-9);
    println!("script_vm floor: interp {interp_ms:.1} ms/tick, vm {vm_ms:.1} ms/tick ({speedup:.2}x)");
    assert!(
        speedup >= 2.0,
        "bytecode VM below the 2x floor: interp {interp_ms:.1} ms vs vm {vm_ms:.1} ms ({speedup:.2}x)"
    );

    let mut group = c.benchmark_group("script_vm");
    group.sample_size(10);
    group.bench_function("interp_100k", |bch| {
        bch.iter(|| tick_interp(&lib, &world, &ids))
    });
    group.bench_function("vm_100k", |bch| {
        bch.iter(|| tick_vm(&mut vm, &program, &world, &ids))
    });
    group.finish();
}

criterion_group!(benches, bench_script_vm);
criterion_main!(benches);
