//! Metrics write-path overhead bench — the observability tentpole's
//! cost ceiling.
//!
//! Two identical stores run the same seeded write tick (K batched
//! writes → one commit → view refresh) with indexes, views, and a WAL
//! attached; one of them additionally reports into a
//! [`MetricsRegistry`] through every write-path hook (change stream,
//! batch apply, WAL commit, view refresh). The instrumented tick must
//! cost no more than 1.05× the bare tick: every hook is a relaxed
//! atomic bump behind a pre-resolved handle, so the budget is mostly a
//! guard against someone adding allocation or locking to a hot path.

use std::cell::{Cell, RefCell};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gamedb_bench::combat_world;
use gamedb_content::{CmpOp, Value};
use gamedb_core::{IndexKind, Query, WriteBatch};
use gamedb_metrics::MetricsRegistry;
use gamedb_persist::{temp_dir, Backend, WalStore};
use gamedb_spatial::Vec2;

const N: usize = 50_000;
const K: usize = 512; // writes per measured tick

fn build_store(label: &str) -> WalStore {
    let (mut world, _ids) = combat_world(N, 2_000.0, 42);
    world.create_index("hp", IndexKind::Sorted).unwrap();
    world.register_view(Query::select().filter("hp", CmpOp::Lt, Value::Float(25.0)));
    world.register_view(Query::select().within(Vec2::new(1_000.0, 1_000.0), 150.0));
    let backend = Backend::open(temp_dir(label)).unwrap();
    WalStore::new(world, backend, K).unwrap()
}

/// The k-th write of round `r` (same picker as the write_path bench).
fn write_of(ids: &[gamedb_core::EntityId], r: u64, k: usize) -> (gamedb_core::EntityId, f32) {
    let pick = ((r as usize).wrapping_mul(7919) + k.wrapping_mul(104_729)) % ids.len();
    (ids[pick], ((r as usize + k * 13) % 100) as f32)
}

fn one_tick(s: &mut WalStore, ids: &[gamedb_core::EntityId], r: u64) {
    let mut batch = WriteBatch::new();
    for k in 0..K {
        let (e, hp) = write_of(ids, r, k);
        batch.set(e, "hp", Value::Float(hp));
    }
    s.world_mut().apply_batch(batch).unwrap();
    s.commit().unwrap();
    s.world_mut().refresh_views();
}

fn bench_metrics_overhead(c: &mut Criterion) {
    let bare = RefCell::new(build_store("metrics-overhead-bare"));
    let registry = MetricsRegistry::new();
    let instrumented = RefCell::new(build_store("metrics-overhead-instrumented"));
    {
        let mut s = instrumented.borrow_mut();
        s.attach_metrics(&registry);
        s.world_mut().attach_metrics(&registry);
    }
    let ids = bare.borrow().world().entity_vec();
    let round = Cell::new(0u64);

    {
        let mut group = c.benchmark_group("metrics_overhead");
        group.sample_size(30);
        group.bench_with_input(BenchmarkId::new("bare", K), &K, |b, _| {
            b.iter(|| {
                round.set(round.get() + 1);
                one_tick(&mut bare.borrow_mut(), &ids, round.get());
            })
        });
        group.bench_with_input(BenchmarkId::new("instrumented", K), &K, |b, _| {
            b.iter(|| {
                round.set(round.get() + 1);
                one_tick(&mut instrumented.borrow_mut(), &ids, round.get());
            })
        });
        group.finish();
    }

    // the instrumented store must actually have measured the ticks —
    // otherwise the comparison above proves nothing
    let snap = registry.snapshot();
    assert!(snap.counter("change.records") >= K as u64);
    assert!(snap.counter("change.batches") > 0);
    assert!(snap.counter("wal.commits") > 0);
    assert!(snap.counter("view.refreshes") > 0);

    let ns = |name: &str| {
        c.results
            .iter()
            .find(|(k, _)| k.contains(name))
            .map(|(_, v)| *v)
            .expect("bench ran")
    };
    let overhead = ns("instrumented") / ns("bare");
    println!(
        "\nmetrics write-path overhead: {overhead:.3}x \
         ({K}-write batch tick, {N} entities, 1 index + 2 views + WAL; \
         {} change records counted)",
        snap.counter("change.records")
    );
    assert!(
        overhead <= 1.05,
        "acceptance: instrumented write path must stay within 5% of bare, \
         got {overhead:.3}x"
    );
}

criterion_group!(benches, bench_metrics_overhead);
criterion_main!(benches);
