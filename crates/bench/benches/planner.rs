//! Criterion bench for experiment E14: executing the same spatial +
//! predicate query through a forced full scan, a forced index probe, and
//! the planner's choice, at a radius on each side of the crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gamedb_bench::constant_density_world;
use gamedb_core::{plan, Access, Plan, Query, TableStats};
use gamedb_spatial::Vec2;

fn bench_planner(c: &mut Criterion) {
    let (world, _) = constant_density_world(16_000, 0.05, 17);
    let stats = TableStats::build(&world);
    let (lo, hi) = stats.bounds.unwrap();
    let center = Vec2::new((lo.x + hi.x) / 2.0, (lo.y + hi.y) / 2.0);
    let map_w = hi.x - lo.x;

    for &frac in &[0.02f32, 0.8] {
        let radius = map_w * frac;
        let q = Query::select().within(center, radius).filter(
            "dmg",
            gamedb_content::CmpOp::Ge,
            gamedb_content::Value::Float(3.0),
        );
        let chosen = plan(&q, &stats);
        let forced_index = Plan {
            access: Access::SpatialIndex { center, radius },
            residual_within: None,
            ..chosen.clone()
        };
        let forced_scan = Plan {
            access: Access::FullScan,
            residual_within: Some((center, radius)),
            ..chosen.clone()
        };
        let mut group = c.benchmark_group(format!("planner_radius_{frac}"));
        group.sample_size(20);
        for (name, p) in [
            ("scan", &forced_scan),
            ("index", &forced_index),
            ("planned", &chosen),
        ] {
            group.bench_with_input(BenchmarkId::new(name, frac.to_string()), p, |b, p| {
                b.iter(|| p.run(&world).len())
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
