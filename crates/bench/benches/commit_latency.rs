//! Commit-latency bench: tick-thread cost of `WalStore::commit` under
//! synchronous logging vs the async background writer — the ISSUE-6
//! acceptance experiment.
//!
//! A 10k-entity combat world with a WAL durability tap. One measured
//! iteration is M single-write commits. The sync store pays frame
//! encoding plus (at group size 1) a durable flush inside every
//! `commit`; the async store enqueues the pending segment and returns —
//! encoding and flushing happen on the writer thread, off the tick.
//! Group sizes {1, 64, 512} are measured on both sides; the acceptance
//! assertion pins the headline: **async enqueue spends ≥5× less
//! tick-thread time in `commit` than a sync flush-per-commit store.**
//! Each async round ack-tracks afterwards (`wait_durable` of
//! `last_enqueued`, outside the timed region) so the comparison never
//! hides an unbounded queue — everything enqueued really lands.
//!
//! Reading the two outputs: the criterion rows run enough back-to-back
//! rounds that the bounded queue saturates, so they measure *sustained
//! throughput* — where async ≈ sync by design, since both drain through
//! the same backend, and the group-size curve shows fsync amortization.
//! The acceptance table below measures the tick-thread *latency* story
//! on fresh stores with queue headroom, which is where the async writer
//! earns its keep.

use std::cell::{Cell, RefCell};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gamedb_bench::combat_world;
use gamedb_content::Value;
use gamedb_core::World;
use gamedb_persist::{temp_dir, Backend, CommitSeq, FlushPolicy, WalStore};

const N: usize = 10_000;
const M: usize = 256; // commits per measured iteration

fn build_world() -> (World, Vec<gamedb_core::EntityId>) {
    let (world, ids) = combat_world(N, 2_000.0, 7);
    (world, ids)
}

fn sync_store(label: &str, group_commit: usize) -> (WalStore, Vec<gamedb_core::EntityId>) {
    let (world, ids) = build_world();
    let backend = Backend::open(temp_dir(label)).unwrap();
    (WalStore::new(world, backend, group_commit).unwrap(), ids)
}

fn async_store(label: &str, every_ops: usize) -> (WalStore, Vec<gamedb_core::EntityId>) {
    let (world, ids) = build_world();
    let backend = Backend::open(temp_dir(label)).unwrap();
    let policy = FlushPolicy::flush_every(every_ops, 2);
    (WalStore::new_async(world, backend, policy, 8192).unwrap(), ids)
}

/// The k-th write of round `r`: a pseudo-random entity, a fresh hp.
fn write_of(ids: &[gamedb_core::EntityId], r: u64, k: usize) -> (gamedb_core::EntityId, f32) {
    let pick = ((r as usize).wrapping_mul(7919) + k.wrapping_mul(104_729)) % ids.len();
    (ids[pick], ((r as usize + k * 13) % 100) as f32)
}

/// Run M single-write commits; returns tick-thread time spent inside
/// `commit` alone (the contended quantity — `set` cost is identical on
/// both sides and excluded).
fn commit_time(s: &mut WalStore, ids: &[gamedb_core::EntityId], r: u64) -> Duration {
    let mut in_commit = Duration::ZERO;
    for k in 0..M {
        let (e, hp) = write_of(ids, r, k);
        s.world_mut().set(e, "hp", Value::Float(hp)).unwrap();
        let t = Instant::now();
        s.commit().unwrap();
        in_commit += t.elapsed();
    }
    in_commit
}

fn bench_commit_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_latency");
    group.sample_size(10);
    let round = Cell::new(0u64);

    for &g in &[1usize, 64, 512] {
        let store = RefCell::new(sync_store(&format!("commit-lat-sync-{g}"), g));
        group.bench_with_input(BenchmarkId::new("sync", g), &g, |b, _| {
            b.iter(|| {
                let (s, ids) = &mut *store.borrow_mut();
                round.set(round.get() + 1);
                commit_time(s, ids, round.get())
            })
        });

        let store = RefCell::new(async_store(&format!("commit-lat-async-{g}"), g));
        group.bench_with_input(BenchmarkId::new("async", g), &g, |b, _| {
            b.iter(|| {
                let (s, ids) = &mut *store.borrow_mut();
                round.set(round.get() + 1);
                commit_time(s, ids, round.get())
            })
        });
        // drain outside the timed region: everything enqueued lands
        let (s, _) = &mut *store.borrow_mut();
        let target = s.last_enqueued();
        s.wait_durable(target).unwrap();
        assert_eq!(s.unacked(), 0);
    }
    group.finish();

    // ---- acceptance: async enqueue ≥5× below sync flush cost ----
    // Fresh stores, multiple rounds, tick-thread commit time only.
    println!("\ncommit-latency table ({N} entities, {M} commits/round, ns per commit):");
    println!("{:>8} {:>12} {:>12} {:>8}", "group", "sync", "async", "ratio");
    let rounds = 6u64;
    let mut headline_ratio = 0.0f64;
    for &g in &[1usize, 64, 512] {
        let (mut sync_s, sync_ids) = sync_store(&format!("commit-lat-acc-sync-{g}"), g);
        let (mut async_s, async_ids) = async_store(&format!("commit-lat-acc-async-{g}"), g);
        let mut sync_total = Duration::ZERO;
        let mut async_total = Duration::ZERO;
        for r in 0..rounds {
            sync_total += commit_time(&mut sync_s, &sync_ids, r);
            async_total += commit_time(&mut async_s, &async_ids, r);
        }
        // ack-track the async side: the enqueue numbers above are only
        // honest if the writer actually lands everything
        let target = async_s.last_enqueued();
        async_s.wait_durable(target).unwrap();
        assert_eq!(async_s.last_durable(), target);
        assert!(async_s.last_durable() > CommitSeq(0));
        let per = |d: Duration| d.as_nanos() as f64 / (rounds as u128 * M as u128) as f64;
        let ratio = per(sync_total) / per(async_total);
        println!(
            "{g:>8} {:>12.0} {:>12.0} {ratio:>7.1}x",
            per(sync_total),
            per(async_total)
        );
        if g == 1 {
            headline_ratio = ratio;
        }
    }
    assert!(
        headline_ratio >= 5.0,
        "async enqueue must spend ≥5× less tick-thread time in commit \
         than sync flush-per-commit; measured {headline_ratio:.1}x"
    );
}

criterion_group!(benches, bench_commit_latency);
criterion_main!(benches);
