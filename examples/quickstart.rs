//! Quickstart: the whole pipeline in one file.
//!
//! Designer-authored GDML content → templates → a world database →
//! a designer script (restricted level) → ticks → declarative queries.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gamedb::content::{CmpOp, ContentBundle, Value};
use gamedb::core::{aggregate, AggFn, EffectBuffer, Query, World};
use gamedb::script::{check_library, parse_script, run_script, ExecOptions, Level, ScriptLibrary};
use gamedb::spatial::Vec2;

/// Everything a designer ships: entity templates, a trigger, a HUD.
const CONTENT: &str = r#"
<content>
  <templates>
    <template name="monster" tags="hostile">
      <component name="hp" type="float" default="100"/>
      <component name="dmg" type="float" default="5"/>
      <component name="team" type="str" default="mob"/>
      <script>brawl</script>
    </template>
    <template name="goblin" extends="monster" tags="green">
      <component name="hp" type="float" default="40"/>
      <component name="loot" type="str" default="copper"/>
    </template>
    <template name="ogre" extends="monster">
      <component name="hp" type="float" default="250"/>
      <component name="dmg" type="float" default="15"/>
    </template>
  </templates>
  <triggers>
    <trigger id="ogre_dying" event="stat_below" component="hp" threshold="50">
      <action kind="emit" event="ogre_enrage"/>
    </trigger>
  </triggers>
  <ui>
    <bar name="boss_hp" width="300" height="16" bind="hp" min="0" max="250"
         anchor="top" relative_to="screen" relative_point="top" dy="20"/>
  </ui>
</content>"#;

/// The designer's combat script, in the *restricted* language level: no
/// loops, no recursion — neighborhood logic goes through aggregates.
const BRAWL: &str = r#"
    let enemies = count(6; other.team != self.team);
    let pressure = sum(6; other.dmg; other.team != self.team);
    if enemies > 0 {
        self.hp -= pressure * 0.1;
    }
    if self.hp < 15 {
        move(0 - 2, 0);
        emit "fleeing";
    }
"#;

fn main() {
    // 1. Load and validate the content bundle.
    let bundle = ContentBundle::from_gdml_str(CONTENT).expect("content parses");
    assert!(bundle.validate().is_empty(), "content validates");
    println!(
        "loaded content: {} templates, {} triggers, {} widgets",
        bundle.templates.len(),
        bundle.triggers.len(),
        bundle.ui.widgets.len()
    );

    // 2. Build a world and spawn entities from templates.
    let mut world = World::new();
    let goblin_t = bundle.templates.resolve("goblin").unwrap();
    let ogre_t = bundle.templates.resolve("ogre").unwrap();
    for i in 0..8 {
        let g = world
            .spawn_from_template(&goblin_t, Vec2::new(i as f32 * 2.0, 0.0))
            .unwrap();
        world.set(g, "team", Value::Str("green".into())).unwrap();
    }
    let ogre = world
        .spawn_from_template(&ogre_t, Vec2::new(8.0, 1.0))
        .unwrap();
    println!("spawned {} entities (1 ogre, 8 goblins)", world.len());

    // 3. Type-check the designer script at the restricted level.
    let mut lib = ScriptLibrary::new();
    lib.insert(parse_script("brawl", BRAWL).unwrap());
    let scripts: Vec<_> = lib.iter().cloned().collect();
    let errors = check_library(&scripts, &world, Level::Restricted);
    assert!(errors.is_empty(), "script passes the restricted level: {errors:?}");
    println!("script 'brawl' accepted at the restricted language level");

    // 4. Run ten ticks: each entity runs its script against the
    //    tick-start state; effects apply atomically.
    for tick in 1..=10 {
        let mut buf = EffectBuffer::new();
        let mut events = Vec::new();
        for id in world.entity_vec() {
            let out = run_script(&lib, "brawl", &world, id, &mut buf, ExecOptions::default())
                .unwrap();
            events.extend(out.events);
        }
        buf.apply(&mut world).unwrap();
        if !events.is_empty() {
            println!("tick {tick}: events {events:?}");
        }
    }

    // 5. Ask the world database declarative questions.
    let wounded = Query::select()
        .filter("hp", CmpOp::Lt, Value::Float(30.0))
        .run(&world);
    println!("wounded entities (hp < 30): {}", wounded.len());

    let near_ogre = Query::select()
        .within(world.pos(ogre).unwrap(), 6.0)
        .excluding(ogre)
        .count(&world);
    println!("entities within 6 units of the ogre: {near_ogre}");

    let avg_hp = aggregate(&world, &Query::select(), &AggFn::Avg("hp".into()))
        .as_number()
        .unwrap();
    println!("average hp across the shard: {avg_hp:.1}");

    // 6. Lay out the designer's HUD for a 1080p screen.
    let layout = bundle.ui.layout(1920.0, 1080.0).unwrap();
    let bar = layout["boss_hp"];
    println!(
        "boss hp bar renders at ({:.0},{:.0}) size {:.0}x{:.0}, bound to {:?}",
        bar.x,
        bar.y,
        bar.w,
        bar.h,
        bundle.ui.bound_components()
    );
}
