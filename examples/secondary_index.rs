//! Secondary indexes and the access-path planner, end to end.
//!
//! Builds a 100k-entity shard, runs a selective query through the forced
//! scan and the indexed path, prints the planner's `EXPLAIN` output for
//! each choice, and shows the index staying exact through overwrites,
//! despawns and index drops.
//!
//! ```text
//! cargo run --release --example secondary_index
//! ```

use std::time::Instant;

use gamedb::content::{CmpOp, Value, ValueType};
use gamedb::core::{plan, CoreError, IndexKind, Query, TableStats, World};
use gamedb::spatial::Vec2;

fn main() {
    let n = 100_000usize;
    let mut world = World::new();
    world.define_component("hp", ValueType::Float).unwrap();
    world.define_component("class", ValueType::Str).unwrap();
    for i in 0..n {
        let e = world.spawn_at(Vec2::new((i % 400) as f32, (i / 400) as f32));
        world.set_f32(e, "hp", (i % 1000) as f32).unwrap();
        world
            .set(e, "class", Value::Str(format!("class-{:03}", i % 200)))
            .unwrap();
    }
    println!("shard: {n} entities, 200 classes, hp in 0..1000");

    let rare = Query::select().filter("class", CmpOp::Eq, Value::Str("class-042".into()));
    let wounded = Query::select().filter("hp", CmpOp::Lt, Value::Float(5.0));

    // 1. Before any index: both queries scan.
    let t = Instant::now();
    let scan_hits = rare.run(&world).len();
    let scan_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("\nno index:   class-042 -> {scan_hits} rows in {scan_ms:.2} ms (full scan)");

    // 2. Create indexes; the same queries replan onto probes.
    world.create_index("class", IndexKind::Hash).unwrap();
    world.create_index("hp", IndexKind::Sorted).unwrap();
    let stats = TableStats::from_catalog(&world);
    println!("\nEXPLAIN {}", plan(&rare, &stats).explain());
    println!("EXPLAIN {}", plan(&wounded, &stats).explain());

    let t = Instant::now();
    let idx_hits = rare.run(&world).len();
    let idx_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(idx_hits, scan_hits, "probe must equal scan");
    println!(
        "\nhash index: class-042 -> {idx_hits} rows in {idx_ms:.3} ms ({:.0}x faster)",
        scan_ms / idx_ms.max(1e-9)
    );
    assert_eq!(wounded.run(&world), wounded.run_scan(&world));

    // 3. The index tracks writes: wound one specific entity and find it.
    let victim = rare.run(&world)[0];
    world.set_f32(victim, "hp", 1.0).unwrap();
    let before = wounded.count(&world);
    world.despawn(victim);
    assert_eq!(wounded.count(&world), before - 1);
    println!("after wounding + despawning one entity: wounded count tracks exactly");

    // 4. Error paths a tools engineer would hit.
    assert!(matches!(
        world.create_index("mana", IndexKind::Hash),
        Err(CoreError::UnknownComponent(_))
    ));
    assert!(matches!(
        world.create_index("pos", IndexKind::Sorted),
        Err(CoreError::ReservedComponent(_))
    ));
    assert!(matches!(
        world.create_index("hp", IndexKind::Hash),
        Err(CoreError::DuplicateIndex(_))
    ));
    println!("index ddl errors: unknown component / reserved pos / duplicate all refused");

    // 5. Hostile literals: NaN compares false under every operator, so
    // the probe returns nothing — same as the scan, no panic.
    let nan_q = Query::select().filter("hp", CmpOp::Lt, Value::Float(f32::NAN));
    assert!(nan_q.run(&world).is_empty());
    assert_eq!(nan_q.run(&world), nan_q.run_scan(&world));
    // ...and a string literal against a float column matches nothing.
    let cross = Query::select().filter("hp", CmpOp::Eq, Value::Str("5".into()));
    assert_eq!(cross.run(&world), cross.run_scan(&world));
    println!("hostile literals (NaN, cross-type): empty result, probe == scan");

    // 6. Dropping the index returns the query to the scan path — same rows.
    let indexed_rows = rare.run(&world);
    world.drop_index("class");
    assert_eq!(rare.run(&world), indexed_rows);
    println!("drop_index: query falls back to the scan, identical result set");
}
