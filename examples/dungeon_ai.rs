//! Dungeon AI: annotated navigation meshes driving character behaviour.
//!
//! A patrol guard walks the dungeon; when outnumbered (a designer script
//! decides, using aggregates), it flees to the best hiding spot the
//! designers annotated, routing around the lava hall with an
//! annotation-aware cost profile.
//!
//! ```text
//! cargo run --example dungeon_ai
//! ```

use gamedb::content::ValueType;
use gamedb::core::{EffectBuffer, World};
use gamedb::script::{parse_script, run_script, ExecOptions, ScriptLibrary};
use gamedb::spatial::{Annotation, CostProfile, NavMesh, Vec2};

/// 24x16 dungeon: a wall with two doors, a lava pool, two alcoves.
fn build_dungeon() -> NavMesh {
    let (w, h) = (24usize, 16usize);
    NavMesh::from_tile_grid(
        w,
        h,
        1.0,
        |x, y| {
            if x == 0 || y == 0 || x == w - 1 || y == h - 1 {
                return false;
            }
            // vertical wall at x=12 with doors at y=3 and y=12
            !(x == 12 && y != 3 && y != 12)
        },
        |x, y| {
            let mut a = Annotation::neutral();
            if (14..20).contains(&x) && (6..10).contains(&y) {
                a.danger = 1.0; // lava pool
            }
            if (x, y) == (2, 13) || (x, y) == (21, 2) {
                a.cover = 0.9;
                a.tags.push("alcove".into());
            }
            if x == 12 {
                a.defensibility = 0.8; // doorways
            }
            a
        },
    )
}

const GUARD_BRAIN: &str = r#"
    let intruders = count(8; other.kind == "raider");
    if intruders >= 2 {
        self.state = "flee";
        emit "guard_overwhelmed";
    } else {
        if intruders == 1 {
            self.state = "fight";
        } else {
            self.state = "patrol";
        }
    }
"#;

fn main() {
    let mesh = build_dungeon();
    println!(
        "dungeon: {} walkable polygons, {} component(s), {} alcoves, {} chokepoints",
        mesh.len(),
        mesh.connected_components(),
        mesh.tagged("alcove").len(),
        mesh.defensible_positions(0.5).len()
    );

    // World: one guard, raiders trickling in near the east door.
    let mut world = World::new();
    world.define_component("kind", ValueType::Str).unwrap();
    world.define_component("state", ValueType::Str).unwrap();
    let guard = world.spawn_at(Vec2::new(6.5, 8.5));
    world
        .set(guard, "kind", gamedb::content::Value::Str("guard".into()))
        .unwrap();
    world
        .set(guard, "state", gamedb::content::Value::Str("patrol".into()))
        .unwrap();

    let mut lib = ScriptLibrary::new();
    lib.insert(parse_script("guard_brain", GUARD_BRAIN).unwrap());

    // Step toward a waypoint without walking into a wall: if the raw step
    // leaves the mesh, snap to the waypoint itself (which is on-mesh).
    let step_on_mesh = |mesh: &NavMesh, pos: Vec2, next: Vec2, speed: f32| -> Vec2 {
        let step = (next - pos).normalized() * speed;
        let cand = pos + step;
        if mesh.locate(cand).is_some() {
            cand
        } else {
            next
        }
    };

    // Patrol waypoints across both rooms.
    let patrol = [
        Vec2::new(6.5, 8.5),
        Vec2::new(6.5, 3.5),
        Vec2::new(16.5, 3.5),
        Vec2::new(16.5, 12.5),
        Vec2::new(6.5, 12.5),
    ];
    let mut leg = 0usize;
    let mut raiders = Vec::new();

    for tick in 1..=12 {
        // raiders spawn on ticks 4 and 7
        if tick == 4 || tick == 7 {
            let p = world.pos(guard).unwrap() + Vec2::new(3.0, 1.0);
            let r = world.spawn_at(p);
            world
                .set(r, "kind", gamedb::content::Value::Str("raider".into()))
                .unwrap();
            raiders.push(r);
            println!("tick {tick:>2}: a raider appears at {p}");
        }

        // think
        let mut buf = EffectBuffer::new();
        let out = run_script(&lib, "guard_brain", &world, guard, &mut buf, ExecOptions::default())
            .unwrap();
        buf.apply(&mut world).unwrap();
        for ev in &out.events {
            println!("tick {tick:>2}: event {ev:?}");
        }

        // act on the decided state
        let state = world
            .get(guard, "state")
            .and_then(|v| v.as_str().map(str::to_string))
            .unwrap_or_default();
        let pos = world.pos(guard).unwrap();
        match state.as_str() {
            "patrol" => {
                let target = patrol[leg % patrol.len()];
                if pos.dist(target) < 0.8 {
                    leg += 1;
                }
                let path = mesh
                    .find_path(pos, target, &CostProfile::shortest())
                    .expect("patrol route exists");
                let next = path.waypoints.get(1).copied().unwrap_or(target);
                world
                    .set_pos(guard, step_on_mesh(&mesh, pos, next, 1.2))
                    .unwrap();
                println!("tick {tick:>2}: patrolling toward {target} (at {pos})");
            }
            "fight" => {
                println!("tick {tick:>2}: guard stands and fights at {pos}");
            }
            "flee" => {
                let spot = mesh
                    .best_hiding_spot(pos, 30.0)
                    .expect("designers annotated hiding spots");
                let target = mesh.polygon(spot).centroid();
                // cautious profile: do not flee through lava
                let path = mesh
                    .find_path(pos, target, &CostProfile::cautious())
                    .expect("hiding spot reachable");
                let lava_crossed = path
                    .polys
                    .iter()
                    .filter(|&&p| mesh.annotation(p).danger > 0.5)
                    .count();
                println!(
                    "tick {tick:>2}: fleeing to hiding spot {target} — {} waypoints, \
                     {} lava polygons crossed (cover there: {})",
                    path.waypoints.len(),
                    lava_crossed,
                    mesh.annotation(spot).cover
                );
                assert_eq!(lava_crossed, 0, "cautious profile avoids lava");
                let next = path.waypoints.get(1).copied().unwrap_or(target);
                world
                    .set_pos(guard, step_on_mesh(&mesh, pos, next, 2.0))
                    .unwrap();
            }
            other => println!("tick {tick:>2}: unknown state {other:?}"),
        }
    }
    println!(
        "\nfinal: guard at {}, {} raiders in the dungeon",
        world.pos(guard).unwrap(),
        raiders.len()
    );
}
