//! Live-ops engineering: checkpointing through a patch day.
//!
//! A running world is checkpointed into the durable backend, the server
//! crashes and recovers, and then the expansion launches: the same schema
//! change is applied the structured way (rewrite every row) and the blob
//! way (instant, pay at query time) — the paper's legacy-schema trade-off
//! end to end.
//!
//! ```text
//! cargo run --release --example live_migration
//! ```

use gamedb::content::{Value, ValueType};
use gamedb::core::World;
use gamedb::persist::{
    temp_dir, Backend, BlobStore, CheckpointPolicy, GameStore, Migration, SchemaVersion,
    StructuredStore,
};
use gamedb::spatial::Vec2;
use std::time::Instant;

fn populated_world(n: usize) -> World {
    let mut w = World::new();
    w.define_component("hp", ValueType::Float).unwrap();
    w.define_component("gold", ValueType::Int).unwrap();
    w.define_component("name", ValueType::Str).unwrap();
    for i in 0..n {
        let e = w.spawn_at(Vec2::new((i % 100) as f32, (i / 100) as f32));
        w.set_f32(e, "hp", 50.0 + (i % 50) as f32).unwrap();
        w.set(e, "gold", Value::Int((i * 3) as i64)).unwrap();
        w.set(e, "name", Value::Str(format!("player-{i}"))).unwrap();
    }
    w
}

fn main() {
    let n = 5000;
    println!("== day 1: normal operation ==");
    let world = populated_world(n);
    let backend = Backend::open(temp_dir("live-migration")).unwrap();
    let mut store = GameStore::new(
        world,
        backend,
        CheckpointPolicy::EventDriven { threshold: 25.0 },
    )
    .unwrap();

    // an hour of play with a boss kill at minute 40
    for minute in 1..=60 {
        let importance = if minute == 40 { 30.0 } else { 0.3 };
        let wrote = store.observe(60.0, importance).unwrap();
        if wrote {
            println!("minute {minute}: checkpoint (importance threshold crossed)");
        }
    }

    println!("\n== the server node dies ==");
    let (recovered, report) = store.crash_and_recover().unwrap();
    println!(
        "recovered from snapshot #{}; lost {:.0} game-seconds, {:.1} importance",
        report.recovered_seq, report.lost_game_seconds, report.lost_importance
    );
    assert_eq!(recovered.world.len(), n);

    println!("\n== patch day: the expansion adds 'mana' and renames 'gold' ==");
    let migrations = [
        Migration::AddColumn {
            name: "mana".into(),
            ty: ValueType::Float,
            default: Value::Float(100.0),
        },
        Migration::RenameColumn {
            from: "gold".into(),
            to: "coins".into(),
        },
    ];

    // Path A: structured migration on the recovered world.
    let mut structured = StructuredStore::new(recovered.world);
    let t = Instant::now();
    for m in &migrations {
        let stats = structured.migrate(m).unwrap();
        println!(
            "structured: {m:?} rewrote {} rows in {:.2} ms",
            stats.rows_rewritten,
            stats.micros as f64 / 1000.0
        );
    }
    let structured_total = t.elapsed();

    // Path B: the blob store that Everquest-style legacy games keep.
    let mut blob = BlobStore::new(SchemaVersion {
        fields: vec![
            ("hp".into(), ValueType::Float, Value::Float(100.0)),
            ("gold".into(), ValueType::Int, Value::Int(0)),
            ("name".into(), ValueType::Str, Value::Str(String::new())),
        ],
    });
    for i in 0..n as u64 {
        blob.put(
            i,
            &[
                ("hp".into(), Value::Float(50.0 + (i % 50) as f32)),
                ("gold".into(), Value::Int((i * 3) as i64)),
                ("name".into(), Value::Str(format!("player-{i}"))),
            ],
        )
        .unwrap();
    }
    let t = Instant::now();
    for m in &migrations {
        let stats = blob.migrate(m.clone()).unwrap();
        println!(
            "blob:       {m:?} rewrote {} rows in {:.3} ms",
            stats.rows_rewritten,
            stats.micros as f64 / 1000.0
        );
    }
    let blob_total = t.elapsed();
    println!(
        "migration wall time — structured: {:.1} ms, blob: {:.3} ms",
        structured_total.as_secs_f64() * 1e3,
        blob_total.as_secs_f64() * 1e3
    );

    println!("\n== but the first post-patch query tells the other half ==");
    let t = Instant::now();
    let s_sum = structured.sum_column("coins");
    let s_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let b_sum = blob.sum_column("coins").unwrap();
    let b_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(s_sum, b_sum, "both stores hold the same logical data");
    println!("sum(coins) — structured: {s_ms:.2} ms, blob (stale rows): {b_ms:.2} ms");
    println!(
        "blob stale fraction: {:.0}% — every read pays the upgrade tax \
         until a compaction window",
        blob.stale_fraction() * 100.0
    );
    let stats = blob.compact().unwrap();
    println!(
        "compaction rewrote {} rows in {:.1} ms; queries are cheap again",
        stats.rows_rewritten,
        stats.micros as f64 / 1000.0
    );
}
