//! An MMO shard in miniature: the paper's consistency and engineering
//! machinery working together.
//!
//! Each game tick:
//!   1. the workload generator produces a batch of player actions;
//!   2. the causality-bubble executor partitions the world by motion
//!      prediction and applies the batch without locks;
//!   3. the replicator ships weakly-consistent updates to a client;
//!   4. the write-behind store decides whether this tick's events are
//!      important enough to checkpoint into the durable backend.
//!
//! At a random point the server crashes, recovers from the backend, and
//! reports what the players lost.
//!
//! ```text
//! cargo run --release --example mmo_shard
//! ```

use gamedb::persist::{temp_dir, Backend, CheckpointPolicy, GameStore};
use gamedb::sync::{
    BubbleConfig, BubbleExecutor, ConsistencyLevel, Executor, Replica, Replicator, Workload,
    WorkloadConfig,
};

fn main() {
    let cfg = WorkloadConfig {
        players: 600,
        map_size: 800.0,
        hotspot_fraction: 0.35,
        hotspot_radius: 30.0,
        actions_per_player: 1.0,
        interaction_range: 10.0,
        seed: 2026,
        ..Default::default()
    };
    let mut wl = Workload::new(cfg);
    println!(
        "shard up: {} players, {:.0}x{:.0} map, {:.0}% in the hotspot",
        cfg.players,
        cfg.map_size,
        cfg.map_size,
        cfg.hotspot_fraction * 100.0
    );

    let executor = BubbleExecutor::new(BubbleConfig {
        dt: 1.0,
        max_accel: 2.0,
        interaction_range: cfg.interaction_range,
    });
    let mut replicator = Replicator::new(ConsistencyLevel::EventualSimilar {
        threshold: 5.0,
        state_period: 4,
    });
    let mut client = Replica::default();

    // Write-behind persistence: periodic backstop + importance threshold.
    let backend = Backend::open(temp_dir("mmo-shard")).expect("backend opens");
    let world = std::mem::replace(&mut wl.world, gamedb::core::World::new());
    let mut store = GameStore::new(
        world,
        backend,
        CheckpointPolicy::Hybrid {
            period: 30.0,
            threshold: 40.0,
        },
    )
    .expect("store initializes");

    let crash_tick = 47;
    for tick in 1..=crash_tick {
        // generate against the live world
        std::mem::swap(&mut wl.world, &mut store.world);
        let batch = wl.next_batch();
        std::mem::swap(&mut wl.world, &mut store.world);

        let stats = executor.execute(&mut store.world, &batch);

        // importance: deaths are important events, trades mildly so
        let deaths = batch.len().saturating_sub(store.world.len()); // rough proxy
        let importance = deaths as f64 * 10.0 + batch.len() as f64 * 0.01;
        let checkpointed = store.observe(1.0, importance).expect("backend writes");

        replicator.sync(&store.world, &mut client);

        if tick % 10 == 0 || checkpointed {
            let div = Replicator::divergence(&store.world, &client);
            println!(
                "tick {tick:>3}: {} actions, {} bubbles (crit path {}), \
                 client pos err {:.2}, {}",
                stats.executed,
                stats.rounds,
                stats.critical_path,
                div.mean_pos_error,
                if checkpointed {
                    "CHECKPOINT"
                } else {
                    "no checkpoint"
                }
            );
        }
    }

    println!("\n*** power failure at tick {crash_tick} ***");
    let (recovered, report) = store.crash_and_recover().expect("recovery");
    println!(
        "recovered from snapshot #{} — players lost {:.0} game-seconds \
         and {:.1} importance units of progress",
        report.recovered_seq, report.lost_game_seconds, report.lost_importance
    );
    println!(
        "world after recovery: {} entities, {} checkpoints written, {} bytes durable",
        recovered.world.len(),
        recovered.stats.checkpoints,
        recovered.backend().bytes_written
    );
    println!(
        "replication totals: {} rows shipped over {} ticks",
        replicator.rows_sent,
        replicator.ticks()
    );
}
